"""Tests for the behavior-based performance prediction package."""

import numpy as np
import pytest

from repro._util.errors import ValidationError
from repro.behavior.metrics import METRIC_NAMES, BehaviorMetrics
from repro.prediction import (
    SystemModel,
    compare_systems,
    fit_system_model,
    predict_cost,
    predict_ensemble_cost,
)
from repro.prediction.cost_model import ARCHETYPES


def metrics(updt=0.5, work=1e-8, eread=1.0, msg=0.8, iters=10):
    return BehaviorMetrics(updt, work, eread, msg, 0.5, iters)


class TestSystemModel:
    def test_weight_vector_order(self):
        m = SystemModel("s", weights={"msg": 4.0, "updt": 1.0})
        np.testing.assert_allclose(m.weight_vector(), [1.0, 0, 0, 4.0])

    def test_rejects_unknown_metric(self):
        with pytest.raises(ValidationError):
            SystemModel("s", weights={"latency": 1.0})

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            SystemModel("s", weights={"msg": -1.0})
        with pytest.raises(ValidationError):
            SystemModel("s", overhead=-0.1)

    def test_archetypes_valid(self):
        for name, model in ARCHETYPES.items():
            assert model.name == name
            assert set(model.weights) <= set(METRIC_NAMES)


class TestPredictCost:
    def test_hand_computed(self):
        model = SystemModel("s", weights={"updt": 2.0, "msg": 1.0},
                            overhead=0.5)
        m = metrics(updt=0.5, msg=0.8, iters=10)
        # per iter: 2*0.5 + 1*0.8 + 0.5 = 2.3 → ×10 iterations.
        assert predict_cost(model, m) == pytest.approx(23.0)

    def test_iteration_override(self):
        model = SystemModel("s", weights={"updt": 1.0})
        m = metrics(updt=1.0, work=0, eread=0, msg=0, iters=10)
        assert predict_cost(model, m, n_iterations=3) == pytest.approx(3.0)

    def test_rejects_zero_iterations(self):
        model = SystemModel("s")
        with pytest.raises(ValidationError):
            predict_cost(model, metrics(iters=0))

    def test_ensemble_cost_additive(self):
        model = ARCHETYPES["shared-memory"]
        ms = [metrics(), metrics(msg=2.0)]
        assert predict_ensemble_cost(model, ms) == pytest.approx(
            predict_cost(model, ms[0]) + predict_cost(model, ms[1]))

    def test_ensemble_cost_rejects_empty(self):
        with pytest.raises(ValidationError):
            predict_ensemble_cost(ARCHETYPES["out-of-core"], [])


class TestFitSystemModel:
    def test_recovers_planted_weights(self, rng):
        true = SystemModel("truth",
                           weights={"updt": 1.5, "work": 3e7,
                                    "eread": 0.7, "msg": 4.0},
                           overhead=0.2)
        observations = []
        costs = []
        for _ in range(40):
            m = BehaviorMetrics(
                updt=float(rng.uniform(0, 2)),
                work=float(rng.uniform(0, 2e-8)),
                eread=float(rng.uniform(0, 2)),
                msg=float(rng.uniform(0, 2)),
                active_fraction_mean=0.5,
                n_iterations=int(rng.integers(5, 50)),
            )
            observations.append(m)
            costs.append(predict_cost(true, m))
        fitted = fit_system_model("fit", observations, costs)
        for name in METRIC_NAMES:
            assert fitted.weights[name] == pytest.approx(
                true.weights[name], rel=1e-6)
        assert fitted.overhead == pytest.approx(0.2, rel=1e-6)

    def test_predicts_unseen_runs(self, rng):
        true = ARCHETYPES["sync-distributed"]
        train, costs = [], []
        for _ in range(20):
            m = metrics(updt=float(rng.uniform(0, 2)),
                        work=float(rng.uniform(0, 2e-8)),
                        eread=float(rng.uniform(0, 2)),
                        msg=float(rng.uniform(0, 2)),
                        iters=int(rng.integers(3, 30)))
            train.append(m)
            costs.append(predict_cost(true, m))
        fitted = fit_system_model("fit", train, costs)
        probe = metrics(updt=1.7, work=1.3e-8, eread=0.3, msg=1.9, iters=7)
        assert predict_cost(fitted, probe) == pytest.approx(
            predict_cost(true, probe), rel=1e-4)

    def test_rejects_misaligned(self):
        with pytest.raises(ValidationError):
            fit_system_model("x", [metrics()], [1.0, 2.0])

    def test_rejects_underdetermined(self):
        with pytest.raises(ValidationError):
            fit_system_model("x", [metrics()] * 3, [1.0] * 3)


class TestCompareSystems:
    def test_winner_by_construction(self):
        cheap = SystemModel("cheap", weights={"msg": 0.1})
        pricey = SystemModel("pricey", weights={"msg": 10.0})
        report = compare_systems(cheap, pricey, [metrics(), metrics(msg=2)])
        assert report.overall_winner == "cheap"
        assert report.wins_a == 2 and report.wins_b == 0
        assert not report.split_decision

    def test_split_decision_detected(self):
        compute_bound = SystemModel("A", weights={"work": 1e8, "msg": 0.1})
        msg_bound = SystemModel("B", weights={"work": 1e6, "msg": 5.0})
        runs = [
            metrics(work=5e-8, msg=0.01),  # heavy compute → B wins
            metrics(work=1e-10, msg=2.0),  # heavy messaging → A wins
        ]
        report = compare_systems(compute_bound, msg_bound, runs)
        assert report.split_decision

    def test_rows_tagged_and_summary(self):
        a = SystemModel("a", weights={"updt": 1.0})
        b = SystemModel("b", weights={"updt": 2.0})
        report = compare_systems(a, b, [metrics()], tags=["run-0"])
        assert report.rows[0][0] == "run-0"
        assert "a vs b" in report.summary()

    def test_rejects_empty_and_misaligned(self):
        a = SystemModel("a")
        with pytest.raises(ValidationError):
            compare_systems(a, a, [])
        with pytest.raises(ValidationError):
            compare_systems(a, a, [metrics()], tags=[1, 2])


class TestFindingOne:
    """Paper finding (1): narrow ensembles can crown either system;
    diverse ensembles characterize fairly."""

    def test_single_algorithm_ensembles_flip_the_verdict(self, mini_corpus):
        a = ARCHETYPES["shared-memory"]
        b = ARCHETYPES["sync-distributed"]
        winners = set()
        for alg in mini_corpus.algorithms():
            runs = mini_corpus.by_algorithm(alg)
            report = compare_systems(a, b, [r.metrics for r in runs])
            winners.add(report.overall_winner)
        # At least two different "overall winners" across single-
        # algorithm studies — the Table 1 phenomenon.
        assert len(winners) >= 2
