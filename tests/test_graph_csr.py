"""Tests for the CSR graph substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util.errors import GraphConstructionError, ValidationError
from repro.graph.csr import Graph


def toy_graph(directed=False):
    # 0-1, 0-2, 1-2, 2-3
    return Graph.from_edges(
        4,
        np.array([0, 0, 1, 2]),
        np.array([1, 2, 2, 3]),
        directed=directed,
    )


class TestConstruction:
    def test_counts_undirected(self):
        g = toy_graph()
        assert g.n_vertices == 4
        assert g.n_edges == 4
        assert g.n_arcs == 8
        assert not g.directed

    def test_counts_directed(self):
        g = toy_graph(directed=True)
        assert g.n_edges == 4
        assert g.n_arcs == 4

    def test_dedup_collapses_duplicates(self):
        g = Graph.from_edges(3, np.array([0, 1, 0]), np.array([1, 0, 1]))
        assert g.n_edges == 1  # (0,1), (1,0), (0,1) are one undirected edge

    def test_directed_keeps_antiparallel(self):
        g = Graph.from_edges(3, np.array([0, 1]), np.array([1, 0]),
                             directed=True)
        assert g.n_edges == 2

    def test_drops_self_loops(self):
        g = Graph.from_edges(3, np.array([0, 1]), np.array([0, 2]))
        assert g.n_edges == 1

    def test_keeps_self_loops_when_asked(self):
        g = Graph.from_edges(3, np.array([0]), np.array([0]),
                             drop_self_loops=False, directed=True)
        assert g.n_edges == 1

    def test_weights_follow_dedup(self):
        g = Graph.from_edges(
            3, np.array([0, 0]), np.array([1, 1]),
            weight=np.array([5.0, 9.0]),
        )
        assert g.n_edges == 1
        assert g.edge_weight[0] == 5.0  # first occurrence wins

    def test_rejects_out_of_range(self):
        with pytest.raises(GraphConstructionError):
            Graph.from_edges(2, np.array([0]), np.array([5]))

    def test_rejects_zero_vertices(self):
        with pytest.raises(GraphConstructionError):
            Graph.from_edges(0, np.array([], dtype=int),
                             np.array([], dtype=int))

    def test_rejects_mismatched_weight(self):
        with pytest.raises(ValidationError):
            Graph.from_edges(3, np.array([0]), np.array([1]),
                             weight=np.array([1.0, 2.0]))

    def test_arrays_are_readonly(self):
        g = toy_graph()
        with pytest.raises(ValueError):
            g.out_dst[0] = 99


class TestAdjacency:
    def test_degrees_undirected(self):
        g = toy_graph()
        assert g.degree.tolist() == [2, 2, 3, 1]
        assert g.out_degree.tolist() == g.in_degree.tolist()

    def test_degrees_directed(self):
        g = toy_graph(directed=True)
        assert g.out_degree.tolist() == [2, 1, 1, 0]
        assert g.in_degree.tolist() == [0, 1, 2, 1]
        assert g.degree.tolist() == [2, 2, 3, 1]

    def test_degrees_are_cached_and_read_only(self):
        g = toy_graph()
        assert g.out_degree is g.out_degree
        assert g.in_degree is g.in_degree
        assert g.degree is g.degree
        for arr in (g.out_degree, g.in_degree, g.degree):
            assert not arr.flags.writeable
        d = toy_graph(directed=True)
        assert d.degree is d.degree
        assert not d.degree.flags.writeable

    def test_neighbors_sorted(self):
        g = toy_graph()
        assert g.neighbors(2).tolist() == [0, 1, 3]

    def test_neighbors_rejects_directed(self):
        g = toy_graph(directed=True)
        with pytest.raises(ValidationError):
            g.neighbors(0)

    def test_out_in_neighbors_directed(self):
        g = toy_graph(directed=True)
        assert g.out_neighbors(0).tolist() == [1, 2]
        assert g.in_neighbors(2).tolist() == [0, 1]

    def test_has_edge(self):
        g = toy_graph()
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)  # symmetric
        assert not g.has_edge(0, 3)

    def test_has_edge_directed(self):
        g = toy_graph(directed=True)
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 0)

    def test_edge_ids_shared_between_directions(self):
        g = toy_graph()
        # Arc 0->1 and arc 1->0 must carry the same edge id.
        eid_fwd = g.out_eid[g.out_ptr[0]:g.out_ptr[1]][
            g.out_dst[g.out_ptr[0]:g.out_ptr[1]].tolist().index(1)]
        eid_bwd = g.out_eid[g.out_ptr[1]:g.out_ptr[2]][
            g.out_dst[g.out_ptr[1]:g.out_ptr[2]].tolist().index(0)]
        assert eid_fwd == eid_bwd

    def test_edge_endpoints_roundtrip(self):
        g = toy_graph()
        src, dst = g.edge_endpoints()
        got = {tuple(sorted(p)) for p in zip(src.tolist(), dst.tolist())}
        assert got == {(0, 1), (0, 2), (1, 2), (2, 3)}

    def test_edge_endpoints_directed(self):
        g = toy_graph(directed=True)
        src, dst = g.edge_endpoints()
        assert set(zip(src.tolist(), dst.tolist())) == {
            (0, 1), (0, 2), (1, 2), (2, 3)}

    def test_memory_bytes_positive(self):
        assert toy_graph().memory_bytes() > 0


class TestAgainstNetworkx:
    def test_random_graph_matches_networkx(self, rng):
        nx = pytest.importorskip("networkx")
        n = 40
        src = rng.integers(0, n, 200)
        dst = rng.integers(0, n, 200)
        g = Graph.from_edges(n, src, dst)
        G = nx.Graph()
        G.add_nodes_from(range(n))
        G.add_edges_from((int(a), int(b)) for a, b in zip(src, dst)
                         if a != b)
        assert g.n_edges == G.number_of_edges()
        for v in range(n):
            assert sorted(g.neighbors(v).tolist()) == sorted(G.neighbors(v))


@given(st.integers(2, 30), st.integers(0, 120), st.booleans(),
       st.integers(0, 2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_csr_invariants(n, m, directed, seed):
    """Property: CSR structure is internally consistent for any input."""
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, m)
    dst = rng.integers(0, n, m)
    g = Graph.from_edges(n, src, dst, directed=directed)
    # ptr arrays are monotone and span the arc count.
    assert g.out_ptr[0] == 0 and g.out_ptr[-1] == g.n_arcs
    assert g.in_ptr[0] == 0 and g.in_ptr[-1] == g.n_arcs
    assert np.all(np.diff(g.out_ptr) >= 0)
    assert np.all(np.diff(g.in_ptr) >= 0)
    # Every arc's eid is a valid logical edge.
    if g.n_arcs:
        assert g.out_eid.max() < g.n_edges
        assert g.in_eid.max() < g.n_edges
    # Undirected graphs store exactly two arcs per edge.
    if not directed:
        assert g.n_arcs == 2 * g.n_edges
    # Total degree equals arc count.
    assert int(g.out_degree.sum()) == g.n_arcs
    assert int(g.in_degree.sum()) == g.n_arcs
