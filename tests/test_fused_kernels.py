"""Fused CSR kernels and direction optimization (DESIGN §13).

The contract under test: the fused gather/scatter kernels and the
push/pull direction policy are *pure implementation choices* — every
arm (fused off, fused push, fused pull, auto-switching, reference
mode) must produce bit-identical traces: same iteration counts, same
WORK units, same per-iteration counters, and literally the same
frontier arrays, on power-law, grid, and uniform graphs alike.
"""

import os

import numpy as np
import pytest

from repro.algorithms.registry import create
from repro.engine.checkpoint import (
    CheckpointConfig,
    CheckpointPolicy,
    SnapshotStore,
)
from repro.engine.engine import EngineOptions, SynchronousEngine
from repro.engine.kernels import VERIFY_ENV, FusedKernels, reduce_block
from repro.generators import (
    erdos_renyi_graph,
    matrix_problem,
    powerlaw_graph,
    regular_graph,
)
from repro.generators.problem import ProblemInstance
from repro.graph.csr import Graph


def lattice_problem(side=18):
    """An undirected 2-D grid lattice (the "grid" topology family)."""
    vid = np.arange(side * side).reshape(side, side)
    src = np.concatenate([vid[:, :-1].ravel(), vid[:-1, :].ravel()])
    dst = np.concatenate([vid[:, 1:].ravel(), vid[1:, :].ravel()])
    return ProblemInstance(
        graph=Graph.from_edges(side * side, src, dst, directed=False),
        domain="ga",
        params={"family": "grid", "side": side},
    )


GRAPHS = {
    "powerlaw": lambda: powerlaw_graph(2_000, 2.3, seed=11),
    "uniform": lambda: erdos_renyi_graph(2_000, seed=12),
    "regular": lambda: regular_graph(400, 6, seed=13),
    "grid": lambda: lattice_problem(),
}

ALGORITHMS = ("pagerank", "cc", "sssp", "kcore")

ARMS = {
    "legacy": dict(fused_kernels=False),
    "push": dict(direction="push"),
    "pull": dict(direction="pull"),
    "auto": dict(direction="auto"),
    "auto-tight": dict(direction="auto", direction_threshold=0.05),
    "reference": dict(mode="reference"),
}


def run_arm(algorithm, problem, arm, **extra):
    """One run; returns (trace, frontier list, final state arrays)."""
    program = create(algorithm)
    frontiers = []
    inner_apply = program.apply

    def recording_apply(ctx, vids, acc):
        frontiers.append(np.asarray(vids).copy())
        return inner_apply(ctx, vids, acc)

    program.apply = recording_apply
    opts = EngineOptions(**{**ARMS[arm], **extra})
    trace = SynchronousEngine(opts).run(program, problem)
    state = {name: arr for name, arr in vars(program).items()
             if isinstance(arr, np.ndarray)}
    return trace, frontiers, state


def assert_equivalent(base, other, label, frontiers=True):
    trace_a, fronts_a, state_a = base
    trace_b, fronts_b, state_b = other
    assert [(r.iteration, r.active, r.updates, r.edge_reads, r.messages,
             r.work) for r in trace_a.iterations] == \
           [(r.iteration, r.active, r.updates, r.edge_reads, r.messages,
             r.work) for r in trace_b.iterations], label
    assert trace_a.stop_reason == trace_b.stop_reason, label
    assert trace_a.converged == trace_b.converged, label
    if frontiers:
        assert len(fronts_a) == len(fronts_b), label
        for i, (fa, fb) in enumerate(zip(fronts_a, fronts_b)):
            np.testing.assert_array_equal(fa, fb,
                                          err_msg=f"{label} frontier {i}")
    assert state_a.keys() == state_b.keys(), label
    for name in state_a:
        np.testing.assert_array_equal(state_a[name], state_b[name],
                                      err_msg=f"{label} state {name}")


@pytest.mark.parametrize("family", sorted(GRAPHS))
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_direction_arms_bit_identical(algorithm, family):
    """Every fused/direction arm reproduces the legacy run exactly —
    same iteration counters, same frontier sequence, same final state."""
    problem = GRAPHS[family]()
    base = run_arm(algorithm, problem, "legacy")
    assert base[0].n_iterations >= 2  # a trivial run proves nothing
    for arm in ARMS:
        if arm == "legacy":
            continue
        # Reference mode applies vertex-at-a-time, so its recorded
        # apply granularity differs; traces and state still match.
        assert_equivalent(base, run_arm(algorithm, problem, arm),
                          f"{algorithm}/{family}/{arm}",
                          frontiers=arm != "reference")


def test_weighted_sssp_and_jacobi_arms():
    """The *_edge gather shapes: dist+w (sssp) and A_ij·x_j (jacobi)."""
    weighted = powerlaw_graph(2_000, 2.3, seed=17, with_weights=True)
    base = run_arm("sssp", weighted, "legacy")
    for arm in ("pull", "auto"):
        assert_equivalent(base, run_arm("sssp", weighted, arm),
                          f"sssp-weighted/{arm}")

    system = matrix_problem(120, seed=5)
    base = run_arm("jacobi", system, "legacy")
    for arm in ("pull", "auto", "push"):
        assert_equivalent(base, run_arm("jacobi", system, arm),
                          f"jacobi/{arm}")


def test_runtime_verification_hook(monkeypatch):
    """REPRO_VERIFY_FUSED=1 cross-checks every fused gather/scatter
    against the callback path in-line (and passes)."""
    monkeypatch.setenv(VERIFY_ENV, "1")
    problem = powerlaw_graph(1_000, 2.4, seed=23)
    for algorithm in ("pagerank", "kcore"):
        trace, _, _ = run_arm(algorithm, problem, "pull")
        assert trace.converged


def test_build_rejects_unfusable_programs():
    problem = powerlaw_graph(500, 2.5, seed=29)
    graph = problem.graph
    # Diameter gathers with op "or"; triangle declares no gather shape.
    for name in ("diameter", "triangle"):
        program = create(name)
        assert FusedKernels.build(program, graph) is None
    kernels = FusedKernels.build(create("pagerank"), graph)
    assert kernels is not None
    assert kernels.can_gather and kernels.can_scatter
    cc = FusedKernels.build(create("cc"), graph)
    assert cc is not None and cc.can_gather and not cc.can_scatter


def test_reduce_block_matches_segmented_reduce():
    """The single-block fast path is bit-identical to the general
    segment kernel (both reduce via ``ufunc.reduceat``; a plain
    ``ufunc.reduce`` would re-associate the sum and change bits)."""
    from repro._util.segments import segmented_reduce

    rng = np.random.default_rng(31)
    values = rng.random(257)
    out = reduce_block(values, "sum")
    ref = segmented_reduce(values, np.asarray([values.size]), "sum")
    assert out.shape == (1,)
    assert out[0] == ref[0]
    assert reduce_block(values, "min")[0] == values.min()


def test_auto_switch_telemetry(tmp_path):
    """A run that crosses the direction threshold mid-flight records
    per-mode iteration counters and the switch-point histogram."""
    from repro.obs.telemetry import configure, deactivate, get_telemetry

    problem = powerlaw_graph(2_000, 2.3, seed=11)
    # PageRank's frontier decays gradually: with the threshold at 0.5
    # the run starts in pull mode and switches to push as it drains.
    extra = dict(direction_threshold=0.5)
    base = run_arm("pagerank", problem, "auto", **extra)
    fractions = [r.active / problem.graph.n_vertices
                 for r in base[0].iterations]
    assert max(fractions) >= 0.5 > min(fractions), \
        "workload must cross the threshold for this test to bite"

    configure("full", run_id="dirsw")
    try:
        run_arm("pagerank", problem, "auto", **extra)
        tel = get_telemetry()
        labels = dict(engine="synchronous", algorithm="pagerank")
        pulls = tel.counter_value("engine_direction_iterations_total",
                                  mode="pull", **labels)
        pushes = tel.counter_value("engine_direction_iterations_total",
                                   mode="push", **labels)
        assert pulls == sum(f >= 0.5 for f in fractions)
        assert pushes == sum(f < 0.5 for f in fractions)
        hist = tel.histogram("engine_direction_switch_active_fraction",
                             to="push", **labels)
        assert hist is not None and hist.count >= 1
    finally:
        deactivate()


def test_checkpoint_resume_across_direction_switch(tmp_path, monkeypatch):
    """Killing an auto-direction run *before* its pull→push switch and
    resuming replays the identical trace — the direction decision is a
    pure function of (active_fraction, threshold), not of run history."""
    from repro.engine.checkpoint import INJECT_KILL_ENV, SimulatedKillError

    problem = powerlaw_graph(2_000, 2.3, seed=11)
    options = dict(direction="auto", direction_threshold=0.5)

    base_program = create("pagerank")
    base = SynchronousEngine(EngineOptions(**options)).run(
        base_program, problem)
    fractions = [r.active / problem.graph.n_vertices
                 for r in base.iterations]
    switch_at = next(i for i, f in enumerate(fractions) if f < 0.5)
    assert 1 <= switch_at < len(fractions)

    key = "dirswitch"
    store = SnapshotStore(tmp_path)
    config = CheckpointConfig(store=store,
                              policy=CheckpointPolicy.parse("1"), key=key)
    # Die right after the snapshot covering the pre-switch iteration.
    monkeypatch.setenv(INJECT_KILL_ENV, f"{key}:{switch_at - 1}")
    with pytest.raises(SimulatedKillError):
        SynchronousEngine(EngineOptions(checkpoint=config, **options)).run(
            create("pagerank"), problem)
    monkeypatch.delenv(INJECT_KILL_ENV)
    assert store.latest_iteration(key) == switch_at

    resumed_program = create("pagerank")
    config = CheckpointConfig(store=SnapshotStore(tmp_path),
                              policy=CheckpointPolicy.parse("1"),
                              key=key, resume=True)
    trace = SynchronousEngine(
        EngineOptions(checkpoint=config, **options)).run(
        resumed_program, problem)

    assert trace.meta["resumed_from_iteration"] == switch_at
    assert [(r.iteration, r.active, r.updates, r.edge_reads, r.messages,
             r.work) for r in trace.iterations] == \
           [(r.iteration, r.active, r.updates, r.edge_reads, r.messages,
             r.work) for r in base.iterations]
    assert trace.stop_reason == base.stop_reason
    for name, arr in vars(base_program).items():
        if isinstance(arr, np.ndarray):
            np.testing.assert_array_equal(getattr(resumed_program, name),
                                          arr, err_msg=name)


def test_verify_env_name_is_stable():
    assert VERIFY_ENV == "REPRO_VERIFY_FUSED"
    assert os.environ.get(VERIFY_ENV) is None
