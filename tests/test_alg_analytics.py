"""Correctness tests for the Graph Analytics vertex programs,
validated against networkx oracles and structural expectations."""

import networkx as nx
import numpy as np
import pytest

from repro.behavior.run import run_computation
from repro.engine.engine import SynchronousEngine
from repro.engine.program import VertexProgram  # noqa: F401 (docs)
from repro.experiments.config import GraphSpec
from repro.generators.problem import ProblemInstance
from repro.graph.csr import Graph


def as_networkx(graph: Graph) -> "nx.Graph":
    src, dst = graph.edge_endpoints()
    G = nx.Graph()
    G.add_nodes_from(range(graph.n_vertices))
    G.add_edges_from(zip(src.tolist(), dst.tolist()))
    return G


def run_program(name, problem, **kw):
    """Run and return (trace, program) so tests can inspect final state."""
    from repro.algorithms.registry import create
    from repro.behavior.run import build_engine_options

    program = create(name, **kw.pop("params", {}))
    engine = SynchronousEngine(build_engine_options(name, kw.pop("options", None)))
    trace = engine.run(program, problem)
    return trace, program


@pytest.fixture(scope="module")
def ga():
    return GraphSpec.ga(nedges=1500, alpha=2.5, seed=8).generate()


class TestConnectedComponents:
    def test_matches_networkx(self, ga):
        trace, prog = run_program("cc", ga)
        G = as_networkx(ga.graph)
        assert trace.result["n_components"] == nx.number_connected_components(G)
        # Same-component vertices share labels; distinct components differ.
        labels = prog.component.astype(int)
        for comp in nx.connected_components(G):
            comp = list(comp)
            assert len(set(labels[comp])) == 1
        assert len(set(labels.tolist())) == trace.result["n_components"]

    def test_label_is_component_minimum(self, ga):
        _trace, prog = run_program("cc", ga)
        G = as_networkx(ga.graph)
        labels = prog.component.astype(int)
        for comp in nx.connected_components(G):
            assert labels[next(iter(comp))] == min(comp)

    def test_active_fraction_starts_full_then_drains(self, ga):
        trace, _ = run_program("cc", ga)
        af = trace.active_fraction()
        assert af[0] == 1.0
        assert af[-1] < af[0]


class TestKCore:
    def test_matches_networkx_core_number(self):
        prob = GraphSpec.ga(nedges=600, alpha=2.2, seed=5).generate()
        _trace, prog = run_program("kcore", prob)
        G = as_networkx(prob.graph)
        expected = nx.core_number(G)
        got = prog.core
        for v, k in expected.items():
            assert got[v] == k, f"core number of {v}"

    def test_everything_peeled(self, ga):
        trace, prog = run_program("kcore", ga)
        assert not prog.alive.any()
        assert trace.converged

    def test_max_core_in_result(self, ga):
        trace, prog = run_program("kcore", ga)
        assert trace.result["max_core"] == int(prog.core.max())


class TestTriangleCounting:
    def test_matches_networkx(self, ga):
        trace, prog = run_program("triangle", ga)
        G = as_networkx(ga.graph)
        expected = sum(nx.triangles(G).values()) / 3
        assert trace.result["total_triangles"] == pytest.approx(expected)

    def test_per_vertex_counts(self):
        prob = GraphSpec.ga(nedges=400, alpha=2.0, seed=6).generate()
        _trace, prog = run_program("triangle", prob)
        G = as_networkx(prob.graph)
        expected = nx.triangles(G)
        for v, t in expected.items():
            assert prog.counts[v] == pytest.approx(t), f"triangles at {v}"

    def test_three_iterations(self, ga):
        trace, _ = run_program("triangle", ga)
        assert trace.n_iterations == 3

    def test_known_triangle(self):
        g = Graph.from_edges(4, np.array([0, 0, 1, 2]),
                             np.array([1, 2, 2, 3]))
        prob = ProblemInstance(graph=g, domain="ga")
        trace, prog = run_program("triangle", prob)
        assert trace.result["total_triangles"] == 1.0
        assert prog.counts[3] == 0


class TestSSSP:
    def test_matches_networkx_bfs(self, ga):
        trace, prog = run_program("sssp", ga)
        G = as_networkx(ga.graph)
        src = trace.result["source"]
        expected = nx.single_source_shortest_path_length(G, src)
        for v in range(ga.graph.n_vertices):
            if v in expected:
                assert prog.dist[v] == expected[v], f"dist to {v}"
            else:
                assert np.isinf(prog.dist[v])

    def test_explicit_source(self, ga):
        trace, prog = run_program("sssp", ga, params={"source": 3})
        assert trace.result["source"] == 3
        assert prog.dist[3] == 0

    def test_active_fraction_grows_from_one_vertex(self, ga):
        trace, _ = run_program("sssp", ga)
        af = trace.active_fraction()
        assert af[0] == pytest.approx(1.0 / ga.graph.n_vertices)
        assert af.max() > af[0] * 10  # rapid growth (paper Section 1)

    def test_bad_source_rejected(self, ga):
        with pytest.raises(ValueError):
            run_program("sssp", ga, params={"source": 10**9})


class TestPageRank:
    def test_ranking_matches_networkx(self, ga):
        _trace, prog = run_program("pagerank", ga,
                                   params={"tol": 1e-6})
        G = as_networkx(ga.graph)
        expected = nx.pagerank(G, alpha=0.85, tol=1e-10)
        ours = prog.rank / prog.rank.sum()
        theirs = np.array([expected[v] for v in range(ga.graph.n_vertices)])
        # Tight numerical agreement after normalization.
        corr = np.corrcoef(ours, theirs)[0, 1]
        assert corr > 0.999
        # Top-10 sets agree.
        assert (set(np.argsort(ours)[-10:].tolist())
                == set(np.argsort(theirs)[-10:].tolist()))

    def test_active_fraction_decays(self, ga):
        trace, _ = run_program("pagerank", ga)
        af = trace.active_fraction()
        assert af[0] == 1.0
        assert af[-1] < 0.5
        # Gradual decay overall (signals may re-activate a few vertices,
        # so the series need not be strictly monotone).
        half = af.size // 2
        assert af[half:].mean() < af[:half].mean()

    def test_param_validation(self):
        from repro.algorithms.registry import create
        with pytest.raises(ValueError):
            create("pagerank", damping=1.5)
        with pytest.raises(ValueError):
            create("pagerank", tol=0)


class TestApproximateDiameter:
    def test_path_graph_diameter(self):
        n = 24
        g = Graph.from_edges(n, np.arange(n - 1), np.arange(1, n))
        prob = ProblemInstance(graph=g, domain="ga")
        trace, _ = run_program("diameter", prob,
                               params={"n_hashes": 32})
        # FM sketches need exactly diameter hops to saturate the path.
        assert trace.result["diameter_estimate"] == pytest.approx(n - 1, abs=2)

    def test_estimate_close_to_true_diameter(self, ga):
        trace, _ = run_program("diameter", ga, params={"n_hashes": 32})
        G = as_networkx(ga.graph)
        giant = G.subgraph(max(nx.connected_components(G), key=len))
        true_d = nx.diameter(giant)
        est = trace.result["diameter_estimate"]
        # FM-sketch growth plateaus at the *effective* diameter: at most
        # the true diameter (plus sketch noise), and not wildly below.
        assert est <= true_d + 2
        assert est >= 0.5 * true_d

    def test_always_fully_active(self, ga):
        trace, _ = run_program("diameter", ga)
        np.testing.assert_allclose(trace.active_fraction(), 1.0)

    def test_param_validation(self):
        from repro.algorithms.registry import create
        with pytest.raises(ValueError):
            create("diameter", n_hashes=0)
