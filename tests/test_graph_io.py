"""Tests for edge-list and UAI file I/O."""

import numpy as np
import pytest

from repro._util.errors import ValidationError
from repro.generators import mrf_problem, powerlaw_graph
from repro.graph.csr import Graph
from repro.graph.io import (
    PairwiseMRF,
    read_edge_list,
    read_uai,
    write_edge_list,
    write_uai,
)


class TestEdgeList:
    def test_roundtrip_unweighted(self, tmp_path):
        g = powerlaw_graph(300, 2.5, seed=4).graph
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        g2 = read_edge_list(path)
        assert g2.n_vertices == g.n_vertices
        assert g2.n_edges == g.n_edges
        assert not g2.directed
        np.testing.assert_array_equal(g.degree, g2.degree)

    def test_roundtrip_weighted_directed(self, tmp_path):
        g = Graph.from_edges(
            3, np.array([0, 1]), np.array([1, 2]),
            weight=np.array([0.5, -2.0]), directed=True,
        )
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        g2 = read_edge_list(path)
        assert g2.directed
        assert g2.n_edges == 2
        assert sorted(g2.edge_weight.tolist()) == [-2.0, 0.5]

    def test_read_without_header(self, tmp_path):
        path = tmp_path / "bare.txt"
        path.write_text("0 1\n1 2\n")
        g = read_edge_list(path)
        assert g.n_vertices == 3
        assert g.n_edges == 2

    def test_rejects_malformed_line(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1 2 3\n")
        with pytest.raises(ValidationError):
            read_edge_list(path)

    def test_rejects_mixed_weighting(self, tmp_path):
        path = tmp_path / "mixed.txt"
        path.write_text("0 1\n1 2 0.5\n")
        with pytest.raises(ValidationError):
            read_edge_list(path)


class TestUAI:
    def test_roundtrip_generated_mrf(self, tmp_path, mrf_problem_small):
        mrf = mrf_problem_small.inputs["mrf"]
        path = tmp_path / "net.uai"
        write_uai(mrf, path)
        back = read_uai(path)
        assert back.n_variables == mrf.n_variables
        assert back.n_pairwise == mrf.n_pairwise
        np.testing.assert_array_equal(back.cardinalities, mrf.cardinalities)
        np.testing.assert_array_equal(back.pair_vars, mrf.pair_vars)
        for a, b in zip(back.pair_tables, mrf.pair_tables):
            np.testing.assert_allclose(a, b, rtol=1e-8)
        for a, b in zip(back.unary, mrf.unary):
            np.testing.assert_allclose(a, b, rtol=1e-8)

    def test_to_graph_matches_pairs(self, mrf_problem_small):
        mrf = mrf_problem_small.inputs["mrf"]
        g = mrf.to_graph()
        assert g.n_edges == mrf.n_pairwise
        assert g.n_vertices == mrf.n_variables

    def test_rejects_higher_order(self, tmp_path):
        path = tmp_path / "ho.uai"
        path.write_text("MARKOV\n3\n2 2 2\n1\n3 0 1 2\n8\n" +
                        " ".join(["0.1"] * 8) + "\n")
        with pytest.raises(ValidationError):
            read_uai(path)

    def test_rejects_non_markov(self, tmp_path):
        path = tmp_path / "b.uai"
        path.write_text("BAYES\n1\n2\n1\n1 0\n2\n0.5 0.5\n")
        with pytest.raises(ValidationError):
            read_uai(path)

    def test_rejects_truncated(self, tmp_path):
        path = tmp_path / "t.uai"
        path.write_text("MARKOV\n2\n2 2\n")
        with pytest.raises(ValidationError):
            read_uai(path)

    def test_validate_catches_bad_table(self):
        mrf = PairwiseMRF(
            cardinalities=np.array([2, 2]),
            unary=[np.zeros(2), np.zeros(3)],  # wrong shape
            pair_vars=np.array([[0, 1]]),
            pair_tables=[np.zeros((2, 2))],
        )
        with pytest.raises(ValidationError):
            mrf.validate()

    def test_missing_unary_filled(self, tmp_path):
        # A UAI file with only the pairwise factor still loads, with
        # zero unary potentials synthesized.
        path = tmp_path / "p.uai"
        path.write_text("MARKOV\n2\n2 2\n1\n2 0 1\n4\n1 2 3 4\n")
        mrf = read_uai(path)
        assert np.all(mrf.unary[0] == 0)
        assert mrf.pair_tables[0].tolist() == [[1.0, 2.0], [3.0, 4.0]]


class TestTruncationHardening:
    """A partially-copied input must fail loudly, not load as a
    silently smaller graph."""

    def test_truncated_edge_list_detected(self, tmp_path):
        g = powerlaw_graph(300, 2.5, seed=4).graph
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        lines = path.read_text(encoding="utf-8").splitlines()
        path.write_text("\n".join(lines[: len(lines) // 2]) + "\n",
                        encoding="utf-8")
        with pytest.raises(ValidationError, match="truncated"):
            read_edge_list(path)

    def test_edge_list_header_edge_count_enforced(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# repro edge list: undirected n_vertices=3 "
                        "n_edges=3\n0 1\n1 2\n", encoding="utf-8")
        with pytest.raises(ValidationError, match="n_edges=3"):
            read_edge_list(path)

    def test_edge_list_out_of_range_vertex_id(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 7\n", encoding="utf-8")
        with pytest.raises(ValidationError, match="outside"):
            read_edge_list(path, n_vertices=3)

    def test_edge_list_header_vertex_count_enforced(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# repro edge list: undirected n_vertices=3\n"
                        "0 1\n1 9\n", encoding="utf-8")
        with pytest.raises(ValidationError, match="outside"):
            read_edge_list(path)

    def test_truncated_uai_tables_detected(self, tmp_path, mrf_problem_small):
        mrf = mrf_problem_small.inputs["mrf"]
        path = tmp_path / "m.uai"
        write_uai(mrf, path)
        tokens = path.read_text(encoding="utf-8").split()
        path.write_text(" ".join(tokens[: len(tokens) - 5]),
                        encoding="utf-8")
        with pytest.raises(ValidationError, match="truncated"):
            read_uai(path)

    def test_uai_trailing_garbage_detected(self, tmp_path,
                                           mrf_problem_small):
        mrf = mrf_problem_small.inputs["mrf"]
        path = tmp_path / "m.uai"
        write_uai(mrf, path)
        path.write_text(path.read_text(encoding="utf-8") + "\n0.5 0.5\n",
                        encoding="utf-8")
        with pytest.raises(ValidationError, match="trailing"):
            read_uai(path)

    def test_uai_scope_out_of_range_detected(self, tmp_path):
        path = tmp_path / "m.uai"
        path.write_text("MARKOV\n2\n2 2\n1\n2 0 5\n4\n1 1 1 1\n",
                        encoding="utf-8")
        with pytest.raises(ValidationError, match="scope"):
            read_uai(path)
