"""Tests for the run façade (GraphComputation, run_computation) and
engine instrumentation helpers."""

import pytest

from repro._util.errors import ValidationError
from repro.behavior.run import (
    GraphComputation,
    build_engine_options,
    run_computation,
)
from repro.engine.instrumentation import Counters, WorkModel
from repro.experiments.config import GraphSpec


class TestRunComputation:
    def test_spec_and_problem_inputs(self, ga_problem):
        spec = GraphSpec.ga(nedges=300, alpha=2.5, seed=1)
        by_spec = run_computation("cc", spec)
        by_problem = run_computation("cc", ga_problem)
        assert by_spec.algorithm == by_problem.algorithm == "cc"

    def test_domain_mismatch_rejected(self, ga_problem):
        with pytest.raises(ValidationError):
            run_computation("als", ga_problem)  # ALS wants cf inputs

    def test_rejects_junk_input(self):
        with pytest.raises(ValidationError):
            run_computation("cc", "not-a-spec")

    def test_param_overrides_reach_program(self):
        spec = GraphSpec.ga(nedges=300, alpha=2.5, seed=1)
        trace = run_computation("sssp", spec, params={"source": 2})
        assert trace.result["source"] == 2

    def test_option_overrides_reach_engine(self):
        spec = GraphSpec.ga(nedges=300, alpha=2.5, seed=1)
        trace = run_computation("pagerank", spec,
                                options={"max_iterations": 2})
        assert trace.n_iterations == 2


class TestGraphComputation:
    def test_make_and_run(self):
        gc = GraphComputation.make(
            "cc", GraphSpec.ga(nedges=200, alpha=2.5, seed=2))
        trace = gc.run()
        assert trace.algorithm == "cc"
        assert "cc@ga" in gc.label

    def test_cache_key_includes_overrides(self):
        spec = GraphSpec.ga(nedges=200, alpha=2.5, seed=2)
        plain = GraphComputation.make("pagerank", spec)
        tuned = GraphComputation.make("pagerank", spec,
                                      params={"tol": 0.01})
        assert plain.cache_key() != tuned.cache_key()
        assert "tol=0.01" in tuned.cache_key()

    def test_hashable(self):
        spec = GraphSpec.ga(nedges=200, alpha=2.5, seed=2)
        a = GraphComputation.make("cc", spec)
        b = GraphComputation.make("cc", spec)
        assert a == b and hash(a) == hash(b)


class TestBuildEngineOptions:
    def test_registry_defaults_applied(self):
        opts = build_engine_options("nmf")
        assert opts.max_iterations == 20

    def test_overrides_win(self):
        opts = build_engine_options("nmf", {"max_iterations": 5})
        assert opts.max_iterations == 5


class TestInstrumentation:
    def test_counters_merge(self):
        a = Counters(active=5, updates=5, edge_reads=10, messages=2,
                     work=0.5)
        b = Counters(active=8, updates=3, edge_reads=4, messages=1,
                     work=0.25)
        a.merge(b)
        assert a.active == 8          # max
        assert a.updates == 8         # sum
        assert a.edge_reads == 14
        assert a.messages == 3
        assert a.work == pytest.approx(0.75)

    def test_work_model_validation(self):
        WorkModel(kind="unit")
        WorkModel(kind="measured")
        with pytest.raises(ValueError):
            WorkModel(kind="psychic")
