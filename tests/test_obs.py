"""Unit tests for the telemetry plane: registry, events, exporters,
merge semantics, and the progress-event/human-line contract."""

import json
import os

import pytest

from repro._util.errors import ValidationError
from repro.obs.events import (
    EventLog,
    merge_sinks,
    read_all_events,
    read_events,
    worker_metrics_path,
    worker_sink_path,
    write_worker_metrics,
)
from repro.obs.export import (
    load_telemetry,
    render_prometheus,
    write_prometheus,
    write_telemetry_json,
)
from repro.obs.telemetry import (
    BASIC_SAMPLE_EVERY,
    OBS_ENV,
    EngineObserver,
    Histogram,
    Telemetry,
    configure,
    deactivate,
    engine_observer,
    get_telemetry,
    peak_rss_bytes,
    resolve_obs_level,
    validate_obs_level,
)


@pytest.fixture(autouse=True)
def _reset_global_telemetry():
    yield
    deactivate()


class TestObsLevels:
    def test_validate_rejects_unknown(self):
        with pytest.raises(ValidationError):
            validate_obs_level("verbose")

    def test_explicit_level_wins(self, monkeypatch):
        monkeypatch.setenv(OBS_ENV, "full")
        assert resolve_obs_level("basic") == "basic"

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(OBS_ENV, "full")
        assert resolve_obs_level(None) == "full"
        monkeypatch.setenv(OBS_ENV, "nonsense")
        assert resolve_obs_level(None) == "off"
        monkeypatch.delenv(OBS_ENV)
        assert resolve_obs_level(None) == "off"

    def test_peak_rss_is_positive(self):
        assert peak_rss_bytes() > 1 << 20  # a python process is >1 MiB


class TestHistogram:
    def test_exact_aggregates(self):
        h = Histogram()
        for v in (3.0, 1.0, 2.0):
            h.observe(v)
        assert h.count == 3
        assert h.sum == 6.0
        assert h.min == 1.0
        assert h.max == 3.0
        assert h.mean == 2.0

    def test_nearest_rank_percentiles(self):
        h = Histogram()
        for v in range(1, 101):  # 1..100
            h.observe(float(v))
        # Nearest-rank on 100 values: rank(0.5) = round(49.5) = 50.
        assert h.percentile(0.50) == 51.0
        assert h.percentile(0.95) == 95.0
        assert h.percentile(0.0) == 1.0
        assert h.percentile(1.0) == 100.0

    def test_empty_percentile_is_zero(self):
        assert Histogram().percentile(0.5) == 0.0

    def test_snapshot_bounds_sample(self):
        h = Histogram()
        for v in range(2_000):
            h.observe(float(v))
        snap = h.snapshot()
        assert snap["count"] == 2_000
        assert len(snap["sample"]) <= 512

    def test_merge_snapshot_combines_exact_fields(self):
        a, b = Histogram(), Histogram()
        a.observe(1.0)
        a.observe(5.0)
        b.observe(3.0)
        a.merge_snapshot(b.snapshot())
        assert a.count == 3
        assert a.sum == 9.0
        assert a.min == 1.0
        assert a.max == 5.0

    def test_merge_empty_snapshot_is_noop(self):
        a = Histogram()
        a.observe(2.0)
        a.merge_snapshot(Histogram().snapshot())
        assert a.count == 1 and a.min == 2.0


class TestTelemetryRegistry:
    def test_off_level_is_inert(self):
        tel = Telemetry(level="off")
        tel.inc("c")
        tel.gauge_max("g", 5.0)
        tel.observe("h", 1.0)
        assert not tel.enabled
        assert tel.counter_value("c") == 0.0
        assert tel.snapshot() == {"counters": {}, "gauges": {},
                                  "histograms": {}}

    def test_labeled_series_are_distinct(self):
        tel = Telemetry(level="basic")
        tel.inc("cells", status="ok")
        tel.inc("cells", status="ok")
        tel.inc("cells", status="failed")
        assert tel.counter_value("cells", status="ok") == 2.0
        assert tel.counter_value("cells", status="failed") == 1.0
        assert tel.counter_total("cells") == 3.0

    def test_gauge_keeps_maximum(self):
        tel = Telemetry(level="basic")
        tel.gauge_max("peak", 10.0)
        tel.gauge_max("peak", 4.0)
        tel.gauge_max("peak", 12.0)
        snap = tel.snapshot()
        assert snap["gauges"]["peak"][0]["value"] == 12.0

    def test_merge_snapshot_sums_counters_maxes_gauges(self):
        parent = Telemetry(level="basic")
        parent.inc("cells", 2.0, status="ok")
        parent.gauge_max("peak_rss_bytes", 100.0)
        parent.observe("lat", 1.0)

        worker = Telemetry(level="basic")
        worker.inc("cells", 3.0, status="ok")
        worker.gauge_max("peak_rss_bytes", 250.0)
        worker.observe("lat", 3.0)

        parent.merge_snapshot(worker.snapshot())
        assert parent.counter_value("cells", status="ok") == 5.0
        snap = parent.snapshot()
        assert snap["gauges"]["peak_rss_bytes"][0]["value"] == 250.0
        hist = parent.histogram("lat")
        assert hist.count == 2 and hist.sum == 4.0

    def test_merge_is_associative_on_registries(self):
        def fresh(n):
            t = Telemetry(level="basic")
            t.inc("c", n, kind="x")
            t.gauge_max("g", n * 10.0)
            return t

        left = fresh(1)
        mid = fresh(2)
        mid.merge_snapshot(fresh(3).snapshot())
        left.merge_snapshot(mid.snapshot())

        right = fresh(1)
        right.merge_snapshot(fresh(2).snapshot())
        right.merge_snapshot(fresh(3).snapshot())

        assert (left.counter_value("c", kind="x")
                == right.counter_value("c", kind="x") == 6.0)
        assert left.snapshot()["gauges"] == right.snapshot()["gauges"]


class TestSpan:
    def test_measures_even_when_off(self):
        tel = Telemetry(level="off")
        with tel.span("work") as sp:
            pass
        assert sp.seconds >= 0.0
        assert tel.histogram("work_seconds") is None

    def test_records_histogram_and_late_labels(self):
        tel = Telemetry(level="basic")
        with tel.span("materialize") as sp:
            sp.set(source="shm")
        hist = tel.histogram("materialize_seconds", source="shm")
        assert hist is not None and hist.count == 1

    def test_full_level_emits_span_event(self, tmp_path):
        log_path = tmp_path / "events.jsonl"
        tel = Telemetry(level="full", events=EventLog(log_path),
                        run_id="r1")
        with tel.span("store", algorithm="cc"):
            pass
        tel.close()
        events = list(read_events(log_path))
        assert len(events) == 1
        ev = events[0]
        assert ev["kind"] == "span"
        assert ev["name"] == "store"
        assert ev["algorithm"] == "cc"
        assert ev["run"] == "r1"
        assert ev["seconds"] >= 0.0

    def test_records_on_exception(self):
        tel = Telemetry(level="basic")
        with pytest.raises(RuntimeError):
            with tel.span("engine_run"):
                raise RuntimeError("boom")
        assert tel.histogram("engine_run_seconds").count == 1


class TestEngineObserver:
    def test_off_returns_none(self):
        deactivate()
        assert engine_observer("synchronous", "cc") is None

    def test_sampling_rate_by_level(self):
        basic = EngineObserver(Telemetry(level="basic"), "e", "a")
        full = EngineObserver(Telemetry(level="full"), "e", "a")
        basic_hits = sum(basic.sampled(i) for i in range(64))
        assert basic_hits == 64 // BASIC_SAMPLE_EVERY
        assert all(full.sampled(i) for i in range(64))

    def test_iteration_totals_and_sampled_timing(self):
        tel = Telemetry(level="full")
        obs = EngineObserver(tel, "synchronous", "cc")
        obs.iteration(iteration=0, active=10, updates=10, edge_reads=40,
                      messages=20, seconds=0.5,
                      phases={"gather": 0.2, "apply": 0.3})
        obs.iteration(iteration=1, active=4, updates=4, edge_reads=16,
                      messages=8)  # unsampled: totals only
        labels = {"engine": "synchronous", "algorithm": "cc"}
        assert tel.counter_value("engine_iterations_total",
                                 **labels) == 2.0
        assert tel.counter_value("engine_active_total", **labels) == 14.0
        assert tel.histogram("engine_iteration_seconds",
                             **labels).count == 1
        assert tel.histogram("engine_phase_seconds", phase="gather",
                             **labels).count == 1


class TestEventLog:
    def test_rotation_keeps_bounded_disk(self, tmp_path):
        path = tmp_path / "events.jsonl"
        max_bytes, backups = 2_000, 2
        log = EventLog(path, max_bytes=max_bytes, backups=backups)
        payload = "x" * 100
        for i in range(200):
            log.append({"kind": "t", "i": i, "pad": payload})
        log.close()
        files = [path, *(path.with_name(f"{path.name}.{g}")
                         for g in range(1, backups + 2))]
        existing = [f for f in files if f.exists()]
        # At most the live file + `backups` generations.
        assert len(existing) <= backups + 1
        total = sum(f.stat().st_size for f in existing)
        # One event of slack per file: rotation triggers post-append.
        assert total <= (backups + 1) * (max_bytes + 200)

    def test_rotated_generations_are_readable_oldest_first(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path, max_bytes=500, backups=3)
        for i in range(40):
            log.append({"i": i, "pad": "y" * 50})
        log.close()
        events = read_all_events(tmp_path)
        ids = [e["i"] for e in events]
        assert ids == sorted(ids)  # oldest generation first
        assert ids[-1] == 39  # newest event retained

    def test_read_events_skips_torn_line(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps({"kind": "ok", "i": 1}) + "\n")
            fh.write('{"kind": "torn", "i"')  # killed mid-write
        events = list(read_events(path))
        assert [e["i"] for e in events] == [1]

    def test_missing_file_reads_empty(self, tmp_path):
        assert list(read_events(tmp_path / "nope.jsonl")) == []


class TestMergeSinks:
    def test_merges_rotated_sinks_and_metrics_files(self, tmp_path):
        sink = worker_sink_path(tmp_path, 111)
        sink.parent.mkdir(parents=True)
        rotated = sink.with_name(sink.name + ".1")
        rotated.write_text(json.dumps({"kind": "cell_start", "i": 0})
                           + "\n", encoding="utf-8")
        with open(sink, "w", encoding="utf-8") as fh:
            fh.write(json.dumps({"kind": "cell_end", "i": 1}) + "\n")
            fh.write('{"kind": "torn"')  # SIGKILL mid-write
        write_worker_metrics(
            worker_metrics_path(tmp_path, 111),
            {"counters": {"c": [{"labels": {}, "value": 2.0}]},
             "gauges": {}, "histograms": {}})

        main = EventLog(tmp_path / "events.jsonl")
        merged, snapshots = merge_sinks(tmp_path, main)
        main.close()

        assert merged == 2
        assert len(snapshots) == 1
        assert snapshots[0]["counters"]["c"][0]["value"] == 2.0
        events = read_all_events(tmp_path)
        # Rotated (older) sink content lands before the live sink's.
        assert [e["kind"] for e in events] == ["cell_start", "cell_end"]
        assert not sink.exists() and not rotated.exists()
        assert not sink.parent.exists()  # empty sink dir removed

    def test_no_sink_dir_is_noop(self, tmp_path):
        assert merge_sinks(tmp_path, None) == (0, [])

    def test_worker_metrics_overwrite_is_atomic(self, tmp_path):
        path = worker_metrics_path(tmp_path, 5)
        write_worker_metrics(path, {"v": 1})
        write_worker_metrics(path, {"v": 2})
        assert json.loads(path.read_text(encoding="utf-8")) == {"v": 2}
        assert list(path.parent.glob("*.tmp")) == []


class TestExporters:
    def _snapshot(self):
        tel = Telemetry(level="basic")
        tel.inc("corpus_cells_total", 3.0, status="ok")
        tel.gauge_max("peak_rss_bytes", 1024.0)
        tel.observe("engine_iteration_seconds", 0.25,
                    engine="synchronous")
        return tel.snapshot()

    def test_prometheus_rendering(self):
        text = render_prometheus(self._snapshot())
        assert "# TYPE repro_corpus_cells_total counter" in text
        assert 'repro_corpus_cells_total{status="ok"} 3' in text
        assert "# TYPE repro_peak_rss_bytes gauge" in text
        assert ('repro_engine_iteration_seconds{engine="synchronous",'
                'quantile="0.5"} 0.25') in text
        assert ('repro_engine_iteration_seconds_count'
                '{engine="synchronous"} 1') in text

    def test_telemetry_json_roundtrip(self, tmp_path):
        write_telemetry_json(tmp_path, self._snapshot(), run="abc",
                             level="basic")
        payload = load_telemetry(tmp_path)
        assert payload["schema"] == 1
        assert payload["run"] == "abc"
        counters = payload["metrics"]["counters"]
        assert counters["corpus_cells_total"][0]["value"] == 3.0

    def test_load_missing_or_corrupt_returns_none(self, tmp_path):
        assert load_telemetry(tmp_path) is None
        (tmp_path / "telemetry.json").write_text("{not json",
                                                 encoding="utf-8")
        assert load_telemetry(tmp_path) is None

    def test_write_prometheus_file(self, tmp_path):
        path = write_prometheus(tmp_path, self._snapshot())
        assert path.read_text(encoding="utf-8").startswith("# HELP")

    def test_prometheus_help_and_summary_aggregates(self):
        # Downstream consumers derive rates and means from the exact
        # _count/_sum pair next to the nearest-rank quantiles; pin the
        # exposition shape.
        text = render_prometheus(self._snapshot())
        assert "# HELP repro_corpus_cells_total" in text
        assert "# HELP repro_peak_rss_bytes" in text
        assert "# HELP repro_engine_iteration_seconds" in text
        assert "# TYPE repro_engine_iteration_seconds summary" in text
        assert ('repro_engine_iteration_seconds_sum'
                '{engine="synchronous"} 0.25') in text
        assert ('repro_engine_iteration_seconds_count'
                '{engine="synchronous"} 1') in text


class TestGlobalConfigure:
    def test_configure_then_deactivate(self, tmp_path):
        tel = configure("full", run_id="r9",
                        events_path=tmp_path / "events.jsonl")
        assert get_telemetry() is tel
        assert tel.full and tel.run_id == "r9"
        deactivate()
        assert not get_telemetry().enabled

    def test_context_rides_on_events(self, tmp_path):
        tel = configure("full", run_id="r1",
                        events_path=tmp_path / "events.jsonl")
        tel.set_context(cell="cc@ga", attempt=2)
        tel.emit("retry", failure_kind="timeout")
        tel.set_context()
        tel.emit("build_end")
        deactivate()
        events = read_all_events(tmp_path)
        assert events[0]["cell"] == "cc@ga"
        assert events[0]["attempt"] == 2
        assert "cell" not in events[1]


class TestProgressEventContract:
    """Satellite: the human progress line is a pure formatter over the
    structured progress event — they can never drift apart."""

    def _ok_run(self):
        from repro.behavior.run import run_computation
        from repro.experiments.config import GraphSpec
        from repro.experiments.corpus import CorpusRun

        spec = GraphSpec.ga(nedges=200, alpha=2.5, seed=3)
        trace = run_computation("cc", spec)
        return CorpusRun("cc", spec, trace, None, store_s=0.01)

    def _failed_run(self):
        from repro.experiments.config import GraphSpec
        from repro.experiments.corpus import CorpusRun
        from repro.experiments.failures import RunFailure

        spec = GraphSpec.ga(nedges=200, alpha=2.5, seed=3)
        failure = RunFailure(kind="crash", message="boom", attempts=2)
        return CorpusRun("cc", spec, None, None, failure=failure)

    def test_ok_line_matches_formatter(self):
        from repro.experiments.corpus import (
            _progress_line,
            format_progress,
            progress_event,
        )

        run = self._ok_run()
        event = progress_event(run, 3, 10)
        assert _progress_line(run, 3, 10) == format_progress(event)
        line = format_progress(event)
        assert line.startswith("[3/10] cc@")
        assert "status=ok source=run" in line
        assert "graph=" in line and "mat=" in line

    def test_failed_line_reports_taxonomy_kind(self):
        from repro.experiments.corpus import (
            format_progress,
            progress_event,
        )

        event = progress_event(self._failed_run(), 1, 10)
        assert event["status"] == "failed"
        assert event["failure_kind"] == "crash"
        assert "kind" not in event  # reserved for the event envelope
        line = format_progress(event)
        assert "status=failed kind=crash attempts=2" in line
        assert "boom" in line

    def test_event_is_json_clean(self):
        from repro.experiments.corpus import progress_event

        for run in (self._ok_run(), self._failed_run()):
            event = progress_event(run, 1, 2)
            assert json.loads(json.dumps(event)) == event

    def test_emitted_progress_event_formats_identically(self, tmp_path):
        """The event as read back from the log still renders the exact
        same human line (envelope fields do not interfere)."""
        from repro.experiments.corpus import (
            format_progress,
            progress_event,
        )

        run = self._ok_run()
        event = progress_event(run, 1, 2)
        tel = configure("full", run_id="r1",
                        events_path=tmp_path / "events.jsonl")
        tel.emit("progress", **event)
        deactivate()
        (logged,) = read_all_events(tmp_path)
        assert format_progress(logged) == format_progress(event)


class TestStatsRendering:
    def test_resolve_run_dir_accepts_parent(self, tmp_path):
        from repro.obs.stats import resolve_run_dir

        obs = tmp_path / "obs"
        obs.mkdir()
        write_telemetry_json(obs, {"counters": {}, "gauges": {},
                                   "histograms": {}})
        assert resolve_run_dir(obs) == obs
        assert resolve_run_dir(tmp_path) == obs
        with pytest.raises(ValidationError):
            resolve_run_dir(tmp_path / "nowhere")

    def test_render_stats_sections(self, tmp_path):
        from repro.obs.stats import render_stats

        tel = Telemetry(level="full")
        tel.inc("corpus_cells_total", 5.0, status="ok", source="run")
        tel.inc("corpus_cells_total", 1.0, status="failed", source="run")
        tel.inc("corpus_failures_total", 1.0, kind="timeout")
        tel.inc("corpus_cell_seconds_total", 8.0, phase="engine")
        tel.inc("corpus_cell_seconds_total", 2.0, phase="materialize")
        tel.inc("graph_resolutions_total", 9.0, source="shm")
        tel.inc("graph_resolutions_total", 1.0, source="generated")
        tel.gauge_max("peak_rss_bytes", float(64 << 20))
        tel.observe("engine_iteration_seconds", 0.1,
                    engine="synchronous", algorithm="cc")
        write_telemetry_json(tmp_path, tel.snapshot(), run="deadbeef",
                             level="full")
        out = render_stats(tmp_path)
        assert "Cell outcomes" in out
        assert "Failure taxonomy" in out and "timeout" in out
        assert "Graph resolution" in out and "90.0%" in out
        assert "peak RSS: 64.0 MiB" in out
        assert "Iteration latency (sampled)" in out

    def test_format_event_generic_and_progress(self):
        from repro.obs.stats import format_event

        line = format_event({"ts": 1_700_000_000.0, "kind": "shm",
                             "pid": 1, "action": "publish",
                             "bytes": 4096})
        assert "shm" in line and "action=publish" in line
        # Progress events reuse the corpus formatter.
        line = format_event({
            "ts": 1_700_000_000.0, "kind": "progress", "pid": 1,
            "done": 1, "total": 2, "algorithm": "cc", "label": "x",
            "source": "cache", "status": "ok"})
        assert "[1/2] cc@x: status=ok source=cache" in line
