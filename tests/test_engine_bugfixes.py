"""Hot-path bugfix regressions: stop accounting at the iteration cap,
and degree-zero normalization for isolated vertices.

Stop accounting: a run that drains its frontier on the *last* allowed
iteration used to fall out of the loop and report ``max-iterations``
even though it had converged — the cap and the drain happened to
coincide. Every engine now checks the drain at the end of the loop
body, so capping a run at exactly its natural length changes nothing.

Degree-zero: normalizations that divide by a vertex degree
(``1/out_degree`` in PageRank's contribution, the edge-centric
accumulator rows of isolated vertices) must yield exact zeros and
reduction identities — never NaN/Inf leaking into vertex state.
"""

import numpy as np
import pytest

from repro.algorithms.registry import create
from repro.engine.async_engine import AsyncEngineOptions, AsynchronousEngine
from repro.engine.edge_centric import EdgeCentricEngine, EdgeCentricOptions
from repro.engine.engine import EngineOptions, SynchronousEngine
from repro.engine.graph_centric import GraphCentricEngine, GraphCentricOptions
from repro.generators import powerlaw_graph
from repro.generators.problem import ProblemInstance
from repro.graph.csr import Graph


@pytest.fixture(scope="module")
def problem():
    return powerlaw_graph(800, 2.4, seed=19)


def records(trace):
    return [(r.iteration, r.active, r.updates, r.edge_reads, r.messages,
             r.work) for r in trace.iterations]


# ----------------------------------------------------------------------
# Satellite 1: frontier-empty stop accounting at the iteration cap
# ----------------------------------------------------------------------

class TestStopAccountingAtCap:
    """Capping a run at its natural iteration count must not change
    its stop reason, its convergence flag, or any counter."""

    def test_synchronous(self, problem):
        free = SynchronousEngine(EngineOptions()).run(create("cc"), problem)
        assert free.stop_reason == "frontier-empty" and free.converged
        n = free.n_iterations
        capped = SynchronousEngine(EngineOptions(max_iterations=n)).run(
            create("cc"), problem)
        assert capped.stop_reason == "frontier-empty"
        assert capped.converged
        assert records(capped) == records(free)

    def test_synchronous_converged_precedence(self, problem):
        """A tolerance stop on the last allowed iteration still reports
        "converged" (the drain check must not shadow it)."""
        free = SynchronousEngine(EngineOptions()).run(
            create("jacobi"), _system())
        assert free.stop_reason == "converged"
        capped = SynchronousEngine(
            EngineOptions(max_iterations=free.n_iterations)).run(
            create("jacobi"), _system())
        assert capped.stop_reason == "converged" and capped.converged

    def test_edge_centric(self, problem):
        free = EdgeCentricEngine().run(create("cc"), problem)
        assert free.stop_reason == "frontier-empty" and free.converged
        n = free.n_iterations
        capped = EdgeCentricEngine(EdgeCentricOptions(
            max_iterations=n)).run(create("cc"), problem)
        assert capped.stop_reason == "frontier-empty"
        assert capped.converged
        assert records(capped) == records(free)

    def test_graph_centric(self, problem):
        free = GraphCentricEngine().run(create("cc"), problem)
        assert free.stop_reason == "frontier-empty" and free.converged
        n = free.n_iterations
        capped = GraphCentricEngine(GraphCentricOptions(
            max_supersteps=n)).run(create("cc"), problem)
        assert capped.stop_reason == "frontier-empty"
        assert capped.converged
        assert records(capped) == records(free)

    def test_asynchronous(self, problem):
        free = AsynchronousEngine(AsyncEngineOptions()).run(
            create("cc"), problem)
        assert free.stop_reason == "scheduler-drained" and free.converged
        steps = sum(r.updates for r in free.iterations)
        capped = AsynchronousEngine(AsyncEngineOptions(
            max_steps=steps)).run(create("cc"), problem)
        assert capped.stop_reason == "scheduler-drained"
        assert capped.converged
        assert records(capped) == records(free)

    def test_cap_below_natural_length_still_reported(self, problem):
        """One iteration short of convergence IS a max-iterations stop."""
        free = SynchronousEngine(EngineOptions()).run(create("cc"), problem)
        short = SynchronousEngine(EngineOptions(
            max_iterations=free.n_iterations - 1,
            health_policy="off")).run(create("cc"), problem)
        assert short.stop_reason == "max-iterations"
        assert not short.converged


def _system():
    from repro.generators import matrix_problem

    return matrix_problem(60, seed=2)


# ----------------------------------------------------------------------
# Satellite 2: degree-zero normalization / isolated vertices
# ----------------------------------------------------------------------

def isolated_problem(n=12, n_isolated=4):
    """A small connected core plus ``n_isolated`` degree-0 vertices."""
    core = n - n_isolated
    src = np.arange(core - 1)
    dst = np.arange(1, core)
    graph = Graph.from_edges(n, src, dst, directed=False)
    return ProblemInstance(graph=graph, domain="ga",
                           params={"isolated": n_isolated})


class TestDegreeZero:
    def test_inverse_degree_is_zero_for_isolated(self):
        g = isolated_problem().graph
        assert np.all(np.isfinite(g.inv_out_degree))
        assert np.all(np.isfinite(g.inv_in_degree))
        isolated = g.out_degree == 0
        assert isolated.sum() == 4
        np.testing.assert_array_equal(g.inv_out_degree[isolated], 0.0)
        np.testing.assert_array_equal(
            g.inv_out_degree[~isolated],
            1.0 / g.out_degree[~isolated].astype(np.float64))

    @pytest.mark.parametrize("arm", [
        dict(), dict(fused_kernels=False), dict(direction="pull"),
        dict(mode="reference"),
    ])
    def test_pagerank_isolated_vertices_finite(self, arm):
        problem = isolated_problem()
        program = create("pagerank")
        trace = SynchronousEngine(EngineOptions(**arm)).run(program, problem)
        assert not trace.degraded
        assert np.all(np.isfinite(program.rank))
        # An isolated vertex receives nothing and keeps the teleport
        # mass exactly: (1 - damping) with the default 0.85.
        isolated = problem.graph.out_degree == 0
        np.testing.assert_array_equal(program.rank[isolated], 1.0 - 0.85)

    @pytest.mark.parametrize("algorithm", ["cc", "kcore"])
    def test_analytics_state_finite_with_isolated(self, algorithm):
        problem = isolated_problem()
        program = create(algorithm)
        trace = SynchronousEngine(EngineOptions()).run(program, problem)
        assert trace.converged and not trace.degraded
        for name, arr in vars(program).items():
            if isinstance(arr, np.ndarray) and arr.dtype.kind == "f":
                assert np.all(np.isfinite(arr)), f"{algorithm}.{name}"

    def test_sssp_isolated_unreachable_not_nan(self):
        problem = isolated_problem()
        program = create("sssp")
        trace = SynchronousEngine(EngineOptions()).run(program, problem)
        assert trace.converged
        # Unreachable (isolated) vertices stay at +inf — by definition —
        # but never NaN, and reachable distances are finite.
        assert not np.any(np.isnan(program.dist))
        isolated = problem.graph.out_degree == 0
        assert np.all(np.isinf(program.dist[isolated]))
        assert np.all(np.isfinite(program.dist[~isolated]))

    def test_engines_agree_on_isolated_graph(self):
        problem = isolated_problem()
        results = {}
        for label, run in {
            "sync": lambda p: SynchronousEngine(EngineOptions()).run(
                p, problem),
            "edge-centric": lambda p: EdgeCentricEngine().run(p, problem),
            "graph-centric": lambda p: GraphCentricEngine().run(p, problem),
            "async": lambda p: AsynchronousEngine(AsyncEngineOptions()).run(
                p, problem),
        }.items():
            program = create("cc")
            trace = run(program)
            assert not trace.degraded, label
            results[label] = program.component
        for label, component in results.items():
            np.testing.assert_array_equal(component, results["sync"],
                                          err_msg=label)
