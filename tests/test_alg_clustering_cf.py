"""Correctness tests for K-Means and the Collaborative Filtering programs."""

import numpy as np
import pytest

from repro.engine.engine import SynchronousEngine
from repro.experiments.config import GraphSpec
from repro.generators import bipartite_rating_graph, powerlaw_graph


def run_program(name, problem, params=None, options=None):
    from repro.algorithms.registry import create
    from repro.behavior.run import build_engine_options

    program = create(name, **(params or {}))
    engine = SynchronousEngine(build_engine_options(name, options))
    return engine.run(program, problem), program


@pytest.fixture(scope="module")
def clustering():
    return powerlaw_graph(1000, 2.5, seed=13, with_points=True)


@pytest.fixture(scope="module")
def cf():
    return bipartite_rating_graph(800, 2.5, seed=13)


class TestKMeans:
    def test_inertia_beats_random_assignment(self, clustering):
        trace, prog = run_program("kmeans", clustering)
        pts = clustering.inputs["points"]
        rng = np.random.default_rng(0)
        rand_assign = rng.integers(0, prog.k, pts.shape[0])
        rand_centers = np.stack([
            pts[rand_assign == c].mean(axis=0) if (rand_assign == c).any()
            else np.zeros(2) for c in range(prog.k)])
        rand_inertia = ((pts - rand_centers[rand_assign]) ** 2).sum()
        assert trace.result["inertia"] < rand_inertia

    def test_plain_lloyd_on_separated_blobs(self):
        # With reward=0 KM is Lloyd's algorithm; on well-separated blobs
        # it must recover the partition exactly.
        rng = np.random.default_rng(3)
        blob_a = rng.normal(0, 0.05, size=(50, 2))
        blob_b = rng.normal(5, 0.05, size=(50, 2))
        pts = np.vstack([blob_a, blob_b])
        prob = powerlaw_graph(150, 2.5, seed=3, with_points=True)
        # Splice our points in (vertex count must match).
        n = prob.graph.n_vertices
        reps = int(np.ceil(n / 100))
        prob.inputs["points"] = np.tile(pts, (reps, 1))[:n]
        trace, prog = run_program(
            "kmeans", prob, params={"k": 2, "reward": 0.0})
        labels = prog.assignment
        group_a = labels[np.arange(n) % 100 < 50]
        group_b = labels[np.arange(n) % 100 >= 50]
        assert len(set(group_a.tolist())) == 1
        assert len(set(group_b.tolist())) == 1
        assert group_a[0] != group_b[0]

    def test_always_fully_active(self, clustering):
        trace, _ = run_program("kmeans", clustering)
        np.testing.assert_allclose(trace.active_fraction(), 1.0)

    def test_eread_constant(self, clustering):
        trace, _ = run_program("kmeans", clustering)
        reads = trace.series("edge_reads")
        assert np.all(reads == reads[0])  # paper Fig 6: EREAD constant

    def test_cluster_sizes_sum_to_n(self, clustering):
        trace, _ = run_program("kmeans", clustering)
        assert sum(trace.result["cluster_sizes"]) == clustering.graph.n_vertices

    def test_param_validation(self):
        from repro._util.errors import ValidationError
        from repro.algorithms.registry import create
        with pytest.raises(ValidationError):
            create("kmeans", k=0)
        with pytest.raises(ValidationError):
            create("kmeans", reward=-1)


class TestALS:
    def test_rmse_improves_over_init(self, cf):
        trace, prog = run_program("als", cf)
        # Initial random factors predict ~0.2·0.2·4 ≈ far from ratings
        # (mean 3.5): final RMSE must be far below the raw rating std.
        assert trace.result["rmse"] < 1.0

    def test_sides_alternate_through_activation(self, cf):
        trace, prog = run_program("als", cf,
                                  options={"max_iterations": 4})
        # Iteration 0 is users only.
        n_users = cf.inputs["n_users"]
        assert trace.iterations[0].active <= n_users

    def test_frontier_drains(self, cf):
        trace, _ = run_program("als", cf)
        assert trace.converged
        af = trace.active_fraction()
        assert af[-1] < af.max()

    def test_requires_weighted_graph(self):
        prob = powerlaw_graph(200, 2.5, seed=1)
        prob.domain = "cf"
        prob.inputs["is_user"] = np.ones(prob.graph.n_vertices, dtype=bool)
        from repro._util.errors import ValidationError
        with pytest.raises(ValidationError):
            run_program("als", prob)


class TestNMF:
    def test_factors_stay_nonnegative(self, cf):
        _trace, prog = run_program("nmf", cf)
        assert prog.factors.min() >= 0

    def test_capped_at_20_iterations(self, cf):
        trace, _ = run_program("nmf", cf)
        assert trace.n_iterations == 20
        assert trace.stop_reason == "max-iterations"

    def test_rmse_improves(self, cf):
        short, _ = run_program("nmf", cf, options={"max_iterations": 1})
        full, _ = run_program("nmf", cf)
        assert full.result["rmse"] < short.result["rmse"]

    def test_always_fully_active(self, cf):
        trace, _ = run_program("nmf", cf)
        np.testing.assert_allclose(trace.active_fraction(), 1.0)

    def test_messages_one_direction_per_iteration(self, cf):
        trace, _ = run_program("nmf", cf)
        m = cf.graph.n_edges
        assert all(rec.messages == m for rec in trace.iterations)


class TestSGD:
    def test_rmse_improves(self, cf):
        short, _ = run_program("sgd", cf, options={"max_iterations": 1})
        full, _ = run_program("sgd", cf)
        assert full.result["rmse"] < short.result["rmse"]

    def test_max_messages(self, cf):
        # SGD pushes a gradient both ways on every edge, every iteration
        # — the paper's maximum-MSG algorithm.
        trace, _ = run_program("sgd", cf)
        m = cf.graph.n_edges
        assert all(rec.messages == 2 * m for rec in trace.iterations)

    def test_capped_at_20(self, cf):
        trace, _ = run_program("sgd", cf)
        assert trace.n_iterations == 20


class TestSVD:
    def test_top_singular_value_matches_dense(self, cf):
        trace, _ = run_program("svd", cf)
        # Dense oracle.
        n_users = cf.inputs["n_users"]
        src, dst = cf.graph.edge_endpoints()
        users = np.minimum(src, dst)
        items = np.maximum(src, dst) - n_users
        A = np.zeros((n_users, cf.inputs["n_items"]))
        A[users, items] = cf.graph.edge_weight
        sigma = np.linalg.svd(A, compute_uv=False)
        assert trace.result["top_singular_value"] == pytest.approx(
            sigma[0], rel=0.02)

    def test_leading_values_ordered(self, cf):
        trace, _ = run_program("svd", cf)
        sv = trace.result["singular_values"]
        assert all(a >= b - 1e-9 for a, b in zip(sv, sv[1:]))

    def test_iterations_equals_restarts_times_steps(self, cf):
        trace, _ = run_program(
            "svd", cf, params={"lanczos_steps": 5, "restarts": 3})
        assert trace.n_iterations == 2 * 5 * 3
        assert trace.converged

    def test_always_fully_active(self, cf):
        trace, _ = run_program("svd", cf)
        np.testing.assert_allclose(trace.active_fraction(), 1.0)
