"""Directed-graph traversal coverage: gather over OUT edges, scatter
over IN edges — orientations no built-in algorithm uses, exercised here
so user programs can rely on them."""

import numpy as np
import pytest

from repro.engine.engine import EngineOptions, SynchronousEngine
from repro.engine.program import Direction, VertexProgram
from repro.generators.problem import ProblemInstance
from repro.graph.csr import Graph


def directed_chain(n=5) -> ProblemInstance:
    """0 -> 1 -> 2 -> ... -> n-1."""
    return ProblemInstance(
        graph=Graph.from_edges(n, np.arange(n - 1), np.arange(1, n),
                               directed=True),
        domain="ga",
    )


class ForwardSum(VertexProgram):
    """Each vertex sums its *successors'* values (gather over OUT)."""

    name = "forward-sum"
    domain = "ga"
    gather_dir = Direction.OUT
    scatter_dir = Direction.IN  # signal predecessors
    gather_op = "sum"

    def init(self, ctx):
        self.value = np.arange(ctx.n_vertices, dtype=np.float64)
        self.collected = np.zeros(ctx.n_vertices)
        self._rounds = 0
        return ctx.all_vertices()

    def gather_edge(self, ctx, nbr, center, eid):
        return self.value[nbr]

    def apply(self, ctx, vids, acc):
        self.collected[vids] = acc.ravel()

    def scatter_edges(self, ctx, center, nbr, eid):
        return np.ones(center.size, dtype=bool)

    def converged(self, ctx):
        self._rounds += 1
        return self._rounds >= 1


@pytest.mark.parametrize("mode", ["vectorized", "reference"])
def test_gather_out_direction(mode):
    prob = directed_chain(5)
    engine = SynchronousEngine(EngineOptions(mode=mode))
    program = ForwardSum()
    trace = engine.run(program, prob)
    # Vertex i's only successor is i+1; the sink has none (identity 0).
    np.testing.assert_allclose(program.collected, [1, 2, 3, 4, 0])
    # Gather read one out-edge per non-sink vertex.
    assert trace.iterations[0].edge_reads == 4


@pytest.mark.parametrize("mode", ["vectorized", "reference"])
def test_scatter_in_direction(mode):
    """IN-direction scatter signals predecessors."""

    class BackSignal(ForwardSum):
        name = "back-signal"

        def converged(self, ctx):
            return ctx.iteration >= 1

    prob = directed_chain(4)
    engine = SynchronousEngine(EngineOptions(mode=mode))
    trace = engine.run(BackSignal(), prob)
    # Every vertex with an in-edge signals its predecessor: vertices
    # 1..3 each have one predecessor → 3 messages.
    assert trace.iterations[0].messages == 3


def test_modes_agree_on_directed_graph():
    prob = directed_chain(7)
    traces = {}
    for mode in ("vectorized", "reference"):
        engine = SynchronousEngine(EngineOptions(mode=mode))
        traces[mode] = engine.run(ForwardSum(), prob)
    a, b = traces["vectorized"], traces["reference"]
    assert [(r.active, r.updates, r.edge_reads, r.messages)
            for r in a.iterations] == \
           [(r.active, r.updates, r.edge_reads, r.messages)
            for r in b.iterations]
