"""Property tests for the fast ensemble-search engine.

The fast engine's contract (DESIGN §15) is checked here from three
angles: selection parity with the tie-stable legacy reference,
the (1 - 1/e) lazy-greedy guarantee against exhaustive optima, and
the blocked-kernel plumbing (LRU byte bound, hit/miss accounting,
worker- and precision-independence of results).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro._util.errors import ValidationError
from repro.behavior.space import BehaviorSpace, BehaviorVector
from repro.ensemble.fast import (
    BlockCache,
    PairwiseBlocks,
    SampleBlocks,
    boundary_positions,
    resolve_precision,
    resolve_workers,
    tie_sorted,
)
from repro.ensemble.metrics import coverage, spread
from repro.ensemble.search import best_ensemble, exhaustive_best

SPACE = BehaviorSpace()
#: One fixed sample cloud for every coverage comparison in this file —
#: both engines must see identical samples for scores to agree.
SAMPLES = SPACE.sample(400, seed=0)

#: Documented score tolerance for float32 tile storage (accumulation
#: stays float64); see docs/ensemble-search.md.
FLOAT32_REL_TOL = 1e-5


def make_pool(coords) -> list[BehaviorVector]:
    return [BehaviorVector(*c, tag=("a", 1, 2.0)) for c in coords]


#: Continuous coordinates: generic pools.
unit = st.floats(0.0, 1.0, allow_nan=False, width=32)
#: Coarse grid coordinates: heavy tie pressure (many equal distances).
grid = st.sampled_from([0.0, 0.25, 0.5, 0.75, 1.0])


def pools(coord, min_size=6, max_size=14):
    return st.lists(st.tuples(coord, coord, coord, coord),
                    min_size=min_size, max_size=max_size)


class TestFastMatchesLegacy:
    """Fast and legacy engines pick identical ensembles with scores
    equal to 1e-9 — on generic pools and under maximal tie pressure."""

    @pytest.mark.parametrize("metric", ["spread", "coverage"])
    @given(coords=pools(unit), size=st.integers(2, 5))
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_generic_pools(self, coords, size, metric):
        pool = make_pool(coords)
        size = min(size, len(pool))
        fast = best_ensemble(pool, size, metric, samples=SAMPLES,
                             engine="fast")
        legacy = best_ensemble(pool, size, metric, samples=SAMPLES,
                               engine="legacy")
        assert fast.indices == legacy.indices
        assert fast.score == pytest.approx(legacy.score, abs=1e-9)

    @pytest.mark.parametrize("metric", ["spread", "coverage"])
    @given(coords=pools(grid), size=st.integers(2, 4))
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_tie_heavy_pools(self, coords, size, metric):
        pool = make_pool(coords)
        size = min(size, len(pool))
        fast = best_ensemble(pool, size, metric, samples=SAMPLES,
                             engine="fast")
        legacy = best_ensemble(pool, size, metric, samples=SAMPLES,
                               engine="legacy")
        assert fast.indices == legacy.indices
        assert fast.score == pytest.approx(legacy.score, abs=1e-9)

    @given(coords=pools(unit, min_size=8, max_size=12))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_score_matches_metric_recompute(self, coords):
        pool = make_pool(coords)
        res = best_ensemble(pool, 4, "spread", engine="fast")
        assert res.score == pytest.approx(spread(res.ensemble), rel=1e-9)
        cov = best_ensemble(pool, 4, "coverage", samples=SAMPLES,
                            engine="fast")
        assert cov.score == pytest.approx(
            coverage(cov.ensemble, samples=SAMPLES), rel=1e-9)


class TestGreedyGuarantee:
    """Lazy-greedy coverage carries the classic (1 - 1/e) bound
    relative to the exhaustive optimum (coverage is monotone
    submodular with f(∅) = 0 over the sample cloud)."""

    @given(coords=pools(unit, min_size=5, max_size=9),
           size=st.integers(2, 4))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_bound_holds(self, coords, size):
        pool = make_pool(coords)
        size = min(size, len(pool))
        greedy = best_ensemble(pool, size, "coverage", samples=SAMPLES,
                               engine="fast", strategy="greedy",
                               refine=False)
        exact = exhaustive_best(pool, size, "coverage", samples=SAMPLES)
        bound = (1.0 - 1.0 / np.e) * exact.score
        assert greedy.score >= bound - 1e-9

    def test_refine_never_hurts(self):
        rng = np.random.default_rng(7)
        pool = make_pool(rng.random((20, 4)))
        raw = best_ensemble(pool, 5, "coverage", samples=SAMPLES,
                            engine="fast", strategy="greedy",
                            refine=False)
        refined = best_ensemble(pool, 5, "coverage", samples=SAMPLES,
                                engine="fast", strategy="greedy",
                                refine=True)
        assert refined.score >= raw.score - 1e-12

    def test_greedy_requires_coverage_and_fast(self):
        pool = make_pool(np.random.default_rng(0).random((8, 4)))
        with pytest.raises(ValidationError):
            best_ensemble(pool, 3, "spread", strategy="greedy")
        with pytest.raises(ValidationError):
            best_ensemble(pool, 3, "coverage", samples=SAMPLES,
                          strategy="greedy", engine="legacy")


class TestPrecision:
    """float32 tile storage keeps scores within the documented
    relative tolerance of the float64 path (accumulation is always
    float64)."""

    @pytest.mark.parametrize("metric", ["spread", "coverage"])
    @given(coords=pools(unit, min_size=8, max_size=12))
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_float32_within_tolerance(self, coords, metric):
        pool = make_pool(coords)
        f64 = best_ensemble(pool, 4, metric, samples=SAMPLES,
                            engine="fast", precision="float64")
        f32 = best_ensemble(pool, 4, metric, samples=SAMPLES,
                            engine="fast", precision="float32")
        assert f32.score == pytest.approx(f64.score, rel=FLOAT32_REL_TOL)
        # The quoted score must match a float64 re-score of the chosen
        # members to the same tolerance — tiles never leak into it.
        exact = (spread(f32.ensemble) if metric == "spread"
                 else coverage(f32.ensemble, samples=SAMPLES))
        assert f32.score == pytest.approx(exact, rel=FLOAT32_REL_TOL)

    def test_resolvers(self):
        assert resolve_precision(None) == np.dtype(np.float64)
        assert resolve_precision("float32") == np.dtype(np.float32)
        with pytest.raises(ValidationError):
            resolve_precision("float16")
        assert resolve_workers(None) == 1
        assert resolve_workers(0) == 1
        assert resolve_workers(4) == 4
        assert resolve_workers(-1) >= 1


class TestWorkers:
    """Chunking never depends on the worker count, so threaded scoring
    is bitwise identical to serial."""

    @pytest.mark.parametrize("metric", ["spread", "coverage"])
    def test_parallel_equals_serial(self, metric):
        rng = np.random.default_rng(11)
        pool = make_pool(rng.random((24, 4)))
        serial = best_ensemble(pool, 6, metric, samples=SAMPLES,
                               engine="fast", workers=1)
        threaded = best_ensemble(pool, 6, metric, samples=SAMPLES,
                                 engine="fast", workers=4)
        assert serial.indices == threaded.indices
        assert serial.score == threaded.score  # bitwise


class TestBlockedKernels:
    def test_pairwise_columns_match_cdist(self):
        from scipy.spatial.distance import cdist

        rng = np.random.default_rng(3)
        X = rng.random((50, 4))
        # Tiny block budget forces many column tiles.
        pb = PairwiseBlocks(X, block_bytes=50 * 8 * 3)
        assert pb.n_blocks > 1
        idx = [0, 7, 13, 49]
        np.testing.assert_array_equal(pb.columns(idx),
                                      cdist(X, X[idx]))

    def test_sample_rows_match_cdist(self):
        from scipy.spatial.distance import cdist

        rng = np.random.default_rng(4)
        X, S = rng.random((30, 4)), rng.random((64, 4))
        sb = SampleBlocks(X, S, block_bytes=64 * 8 * 4)
        assert sb.n_blocks > 1
        idx = [2, 3, 29]
        np.testing.assert_array_equal(sb.rows(idx), cdist(X[idx], S))

    def test_lru_byte_bound_and_counters(self):
        block = np.zeros(100)  # 800 bytes

        def build(key):
            return np.full(100, float(key))

        cache = BlockCache(2 * block.nbytes, "pairwise")
        cache.get(0, build)          # miss
        cache.get(1, build)          # miss
        cache.get(0, build)          # hit
        cache.get(2, build)          # miss -> evicts LRU block 1
        assert cache.cached_bytes <= 2 * block.nbytes
        cache.get(0, build)          # hit (still resident)
        cache.get(1, build)          # miss (was evicted)
        assert (cache.hits, cache.misses) == (2, 4)

    def test_keeps_at_least_one_block(self):
        cache = BlockCache(1, "samples")  # budget below any block

        def build(key):
            return np.zeros(1000)

        blk = cache.get(5, build)
        assert blk.nbytes == cache.cached_bytes  # retained despite budget
        assert cache.get(5, build) is blk        # and reusable

    def test_engine_cache_reuse_across_curve(self):
        from repro.ensemble.search import best_ensemble_curve

        rng = np.random.default_rng(9)
        pool = make_pool(rng.random((40, 4)))
        curve = best_ensemble_curve(pool, [2, 4, 6], "spread",
                                    engine="fast")
        assert sorted(curve) == [2, 4, 6]
        assert curve[2].score >= curve[4].score >= curve[6].score


class TestTieOrderingPrimitives:
    @given(st.lists(st.sampled_from([0.0, 0.5, 1.0, 1.0 + 5e-13]),
                    min_size=1, max_size=30),
           st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_boundary_positions_cover_tie_stable_top(self, vals, width):
        scores = np.asarray(vals)
        kept = set(boundary_positions(scores, width).tolist())
        ranked = tie_sorted([(s, (i,)) for i, s in enumerate(vals)])
        top = {t[1][0] for t in ranked[:width]}
        # Every position the tie-stable ordering would select must
        # survive the per-chunk boundary cut.
        assert top <= kept

    def test_tie_sorted_orders_ties_by_tuple(self):
        items = [(1.0, (3,)), (1.0 + 2e-13, (1,)), (0.5, (0,)),
                 (1.0 - 4e-13, (2,))]
        ordered = tie_sorted(items)
        assert [it[1] for it in ordered] == [(1,), (2,), (3,), (0,)]
