"""Tests for active-fraction shape classification."""

import numpy as np
import pytest

from repro._util.errors import ValidationError
from repro.behavior.shapes import (
    ActivityShape,
    classify_activity_shape,
    shape_profile,
)


class TestClassifier:
    def test_always_active(self):
        assert classify_activity_shape(np.ones(30)) \
            == ActivityShape.ALWAYS_ACTIVE

    def test_sharp_drop(self):
        series = np.concatenate([[1.0], np.full(3, 0.3), np.full(16, 0.05)])
        assert classify_activity_shape(series) == ActivityShape.SHARP_DROP

    def test_gradual_decay(self):
        series = np.linspace(1.0, 0.2, 30)
        assert classify_activity_shape(series) == ActivityShape.GRADUAL_DECAY

    def test_grow_peak_drain(self):
        series = np.concatenate([np.linspace(0.01, 0.9, 10),
                                 np.linspace(0.9, 0.02, 10)])
        assert classify_activity_shape(series) \
            == ActivityShape.GROW_PEAK_DRAIN

    def test_bursty(self):
        base = np.full(24, 0.2)
        base[0] = 1.0
        base[6] = base[12] = base[18] = 0.9  # repeated re-activations
        assert classify_activity_shape(base) == ActivityShape.BURSTY

    def test_short_series_irregular(self):
        assert classify_activity_shape(np.array([0.4, 0.2])) \
            == ActivityShape.IRREGULAR

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            classify_activity_shape(np.array([]))

    def test_rejects_out_of_range(self):
        with pytest.raises(ValidationError):
            classify_activity_shape(np.array([0.5, 1.5]))


class TestOnRealAlgorithms:
    """The classifier reproduces the paper's per-algorithm vocabulary."""

    def test_signatures(self, mini_corpus):
        traces = [r.trace for r in mini_corpus.runs]
        profile = shape_profile(traces)
        # Always-active family (paper Sections 4.2-4.4).
        for alg in ("diameter", "kmeans", "nmf", "sgd", "svd"):
            assert profile[alg] == ActivityShape.ALWAYS_ACTIVE, alg
        # SSSP grows from its source (paper Section 1).
        assert profile["sssp"] in (ActivityShape.GROW_PEAK_DRAIN,
                                   ActivityShape.BURSTY)
        # CC and PR start full and drain.
        for alg in ("cc", "pagerank"):
            assert profile[alg] in (ActivityShape.GRADUAL_DECAY,
                                    ActivityShape.SHARP_DROP), alg

    def test_shape_profile_is_per_algorithm(self, mini_corpus):
        traces = [r.trace for r in mini_corpus.runs]
        profile = shape_profile(traces)
        assert set(profile) == set(mini_corpus.algorithms())
