"""Tests for the synthetic workload generators."""

import numpy as np
import pytest

from repro._util.errors import ValidationError
from repro.generators import (
    bipartite_rating_graph,
    grid_problem,
    matrix_problem,
    mrf_problem,
    powerlaw_graph,
)
from repro.generators.bipartite import RATING_RANGE
from repro.generators.mrf import PAPER_MRF_EDGE_COUNTS
from repro.graph.properties import fit_power_law_alpha


class TestPowerlaw:
    @pytest.mark.parametrize("nedges", [500, 5_000, 20_000])
    def test_edge_count_within_tolerance(self, nedges):
        prob = powerlaw_graph(nedges, 2.5, seed=1)
        assert abs(prob.graph.n_edges - nedges) <= 0.02 * nedges

    @pytest.mark.parametrize("alpha", [2.0, 2.5, 3.0])
    def test_alpha_parameter_respected(self, alpha):
        prob = powerlaw_graph(20_000, alpha, seed=1)
        fitted = fit_power_law_alpha(prob.graph.degree, k_min=2)
        # Generator tolerance: fitted exponent tracks the request.
        assert fitted == pytest.approx(alpha, abs=0.5)

    def test_deterministic(self):
        a = powerlaw_graph(1_000, 2.5, seed=42)
        b = powerlaw_graph(1_000, 2.5, seed=42)
        np.testing.assert_array_equal(a.graph.out_dst, b.graph.out_dst)

    def test_seed_changes_graph(self):
        a = powerlaw_graph(1_000, 2.5, seed=1)
        b = powerlaw_graph(1_000, 2.5, seed=2)
        assert (a.graph.n_vertices != b.graph.n_vertices
                or not np.array_equal(a.graph.out_dst, b.graph.out_dst))

    def test_no_self_loops_or_duplicates(self):
        prob = powerlaw_graph(2_000, 2.0, seed=5)
        src, dst = prob.graph.edge_endpoints()
        assert np.all(src != dst)
        keys = np.minimum(src, dst) * prob.graph.n_vertices + np.maximum(src, dst)
        assert np.unique(keys).size == keys.size

    def test_with_points(self):
        prob = powerlaw_graph(500, 2.5, seed=1, with_points=True)
        assert prob.domain == "clustering"
        pts = prob.inputs["points"]
        assert pts.shape == (prob.graph.n_vertices, 2)

    def test_with_weights(self):
        prob = powerlaw_graph(500, 2.5, seed=1, with_weights=True)
        assert prob.graph.edge_weight is not None
        assert np.all(prob.graph.edge_weight > 0)

    def test_directed_variant(self):
        prob = powerlaw_graph(500, 2.5, seed=1, directed=True)
        assert prob.graph.directed

    def test_rejects_bad_params(self):
        with pytest.raises(ValidationError):
            powerlaw_graph(0, 2.5)
        with pytest.raises(ValidationError):
            powerlaw_graph(100, 0.9)

    def test_label(self):
        prob = powerlaw_graph(500, 2.5, seed=1)
        assert "nedges=500" in prob.label


class TestBipartite:
    def test_strictly_bipartite(self, cf_problem):
        g = cf_problem.graph
        is_user = cf_problem.inputs["is_user"]
        src, dst = g.edge_endpoints()
        assert np.all(is_user[src] != is_user[dst])

    def test_equal_sides(self, cf_problem):
        assert cf_problem.inputs["n_users"] == cf_problem.inputs["n_items"]

    def test_ratings_in_range(self, cf_problem):
        w = cf_problem.graph.edge_weight
        assert w is not None
        assert w.min() >= RATING_RANGE[0]
        assert w.max() <= RATING_RANGE[1]

    def test_edge_count(self):
        prob = bipartite_rating_graph(3_000, 2.5, seed=2)
        assert abs(prob.graph.n_edges - 3_000) <= 60

    def test_deterministic(self):
        a = bipartite_rating_graph(500, 2.5, seed=9)
        b = bipartite_rating_graph(500, 2.5, seed=9)
        np.testing.assert_allclose(a.graph.edge_weight, b.graph.edge_weight)

    def test_rejects_bad_params(self):
        with pytest.raises(ValidationError):
            bipartite_rating_graph(0, 2.5)
        with pytest.raises(ValidationError):
            bipartite_rating_graph(100, 1.0)


class TestMatrix:
    def test_uniform_row_degree(self, matrix_problem_small):
        g = matrix_problem_small.graph
        # Every row gathers the same number of off-diagonal entries.
        assert np.all(g.in_degree == g.in_degree[0])

    def test_diagonally_dominant(self, matrix_problem_small):
        g = matrix_problem_small.graph
        diag = matrix_problem_small.inputs["diag"]
        src, dst = g.edge_endpoints()
        offdiag_sum = np.zeros(g.n_vertices)
        np.add.at(offdiag_sum, dst, np.abs(g.edge_weight))
        assert np.all(diag > offdiag_sum)

    def test_b_equals_A_x_true(self, matrix_problem_small):
        g = matrix_problem_small.graph
        x = matrix_problem_small.inputs["x_true"]
        b = matrix_problem_small.inputs["b"]
        diag = matrix_problem_small.inputs["diag"]
        src, dst = g.edge_endpoints()
        recomputed = diag * x
        np.add.at(recomputed, dst, g.edge_weight * x[src])
        np.testing.assert_allclose(recomputed, b, rtol=1e-10)

    def test_no_diagonal_edges(self, matrix_problem_small):
        src, dst = matrix_problem_small.graph.edge_endpoints()
        assert np.all(src != dst)

    def test_rejects_bad_params(self):
        with pytest.raises(ValidationError):
            matrix_problem(1)
        with pytest.raises(ValidationError):
            matrix_problem(10, row_degree=10)

    def test_deterministic(self):
        a = matrix_problem(30, seed=4)
        b = matrix_problem(30, seed=4)
        np.testing.assert_allclose(a.inputs["b"], b.inputs["b"])


class TestGrid:
    def test_lattice_structure(self, grid_problem_small):
        g = grid_problem_small.graph
        side = grid_problem_small.inputs["side"]
        assert g.n_vertices == side * side
        assert g.n_edges == 2 * side * (side - 1)
        deg = g.degree
        assert deg.min() == 2 and deg.max() == 4

    def test_priors_are_distributions(self, grid_problem_small):
        priors = grid_problem_small.inputs["priors"]
        np.testing.assert_allclose(priors.sum(axis=1), 1.0, rtol=1e-9)
        assert priors.min() > 0

    def test_truth_labels_valid(self, grid_problem_small):
        truth = grid_problem_small.inputs["truth"]
        n_states = grid_problem_small.inputs["n_states"]
        assert truth.min() >= 0 and truth.max() < n_states

    def test_noise_rate_roughly_respected(self):
        prob = grid_problem(40, seed=6)
        observed = np.argmax(prob.inputs["priors"], axis=1)
        acc = (observed == prob.inputs["truth"]).mean()
        # NOISE_RATE=0.2 but a flipped label can land on the truth.
        assert 0.72 <= acc <= 0.92

    def test_rejects_bad_params(self):
        with pytest.raises(ValidationError):
            grid_problem(1)
        with pytest.raises(ValidationError):
            grid_problem(10, n_states=1)


class TestMRF:
    @pytest.mark.parametrize("nedges", PAPER_MRF_EDGE_COUNTS)
    def test_exact_edge_counts(self, nedges):
        prob = mrf_problem(nedges, seed=1)
        assert prob.graph.n_edges == nedges
        assert prob.inputs["mrf"].n_pairwise == nedges

    def test_tables_align_with_graph_eids(self, mrf_problem_small):
        mrf = mrf_problem_small.inputs["mrf"]
        g = mrf_problem_small.graph
        src, dst = g.edge_endpoints()
        # eid k's endpoints must be pair_vars[k] (canonical order).
        np.testing.assert_array_equal(np.minimum(src, dst), mrf.pair_vars[:, 0])
        np.testing.assert_array_equal(np.maximum(src, dst), mrf.pair_vars[:, 1])

    def test_deterministic(self):
        a = mrf_problem(100, seed=2)
        b = mrf_problem(100, seed=2)
        np.testing.assert_allclose(
            np.stack(a.inputs["mrf"].pair_tables),
            np.stack(b.inputs["mrf"].pair_tables))

    def test_rejects_bad_params(self):
        with pytest.raises(ValidationError):
            mrf_problem(2)
        with pytest.raises(ValidationError):
            mrf_problem(100, n_states=1)
