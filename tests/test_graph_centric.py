"""Tests for the graph-centric ("think like a graph") engine."""

import numpy as np
import pytest

from repro._util.errors import ValidationError
from repro.algorithms.registry import create
from repro.behavior.run import build_engine_options
from repro.engine.engine import SynchronousEngine
from repro.engine.graph_centric import GraphCentricEngine, GraphCentricOptions
from repro.generators import powerlaw_graph


def run_gc(name, problem, **opts):
    program = create(name)
    engine = GraphCentricEngine(GraphCentricOptions(**opts))
    return engine.run(program, problem), program


def run_sync(name, problem):
    program = create(name)
    engine = SynchronousEngine(build_engine_options(name))
    return engine.run(program, problem), program


@pytest.fixture(scope="module")
def problem():
    return powerlaw_graph(1_200, 2.4, seed=71)


class TestCorrectness:
    @pytest.mark.parametrize("n_partitions", [1, 3, 8])
    def test_cc_matches_sync(self, problem, n_partitions):
        gc_trace, gc_prog = run_gc("cc", problem,
                                   n_partitions=n_partitions)
        _s, sync_prog = run_sync("cc", problem)
        assert gc_trace.converged
        np.testing.assert_array_equal(gc_prog.component,
                                      sync_prog.component)

    @pytest.mark.parametrize("n_partitions", [2, 5])
    def test_sssp_matches_sync(self, problem, n_partitions):
        gc_trace, gc_prog = run_gc("sssp", problem,
                                   n_partitions=n_partitions)
        _s, sync_prog = run_sync("sssp", problem)
        assert gc_trace.converged
        np.testing.assert_array_equal(gc_prog.dist, sync_prog.dist)


class TestGraphCentricSignature:
    def test_fewer_supersteps_than_sync_iterations(self, problem):
        """The model's pitch: internal propagation collapses chains of
        synchronous iterations into one superstep."""
        gc_trace, _ = run_gc("cc", problem, n_partitions=4)
        sync_trace, _ = run_sync("cc", problem)
        assert gc_trace.n_iterations <= sync_trace.n_iterations

    def test_messages_are_cross_partition_only(self, problem):
        """With one partition there are no boundaries — zero messages."""
        gc_trace, _ = run_gc("cc", problem, n_partitions=1)
        assert all(rec.messages == 0 for rec in gc_trace.iterations)
        # And the whole computation finishes in one superstep.
        assert gc_trace.n_iterations == 1

    def test_more_partitions_more_messages(self, problem):
        msgs = {}
        for parts in (2, 8):
            trace, _ = run_gc("cc", problem, n_partitions=parts)
            msgs[parts] = sum(r.messages for r in trace.iterations)
        assert msgs[8] >= msgs[2]

    def test_inner_sweep_cap_does_not_lose_work(self, problem):
        """With a 1-sweep cap, residue carries to the next superstep and
        the fixed point is still exact."""
        gc_trace, gc_prog = run_gc("cc", problem, n_partitions=4,
                                   max_inner_sweeps=1)
        _s, sync_prog = run_sync("cc", problem)
        assert gc_trace.converged
        np.testing.assert_array_equal(gc_prog.component,
                                      sync_prog.component)


class TestValidation:
    def test_rejects_non_monotone_program(self, problem):
        with pytest.raises(ValidationError):
            run_gc("pagerank", problem)

    def test_options_validation(self):
        with pytest.raises(ValidationError):
            GraphCentricOptions(n_partitions=0)
        with pytest.raises(ValidationError):
            GraphCentricOptions(max_supersteps=0)

    def test_deterministic(self, problem):
        a, _ = run_gc("sssp", problem, n_partitions=3)
        b, _ = run_gc("sssp", problem, n_partitions=3)
        assert a.to_dict()["iterations"] == b.to_dict()["iterations"]
