"""Tests for the edge-centric (X-Stream-style) execution engine —
including the paper's §3.3 claim that basic behavior is conserved
across computation models."""

import numpy as np
import pytest

from repro._util.errors import ValidationError
from repro.algorithms.registry import create
from repro.behavior.run import build_engine_options
from repro.engine.edge_centric import EdgeCentricEngine, EdgeCentricOptions
from repro.engine.engine import SynchronousEngine
from repro.generators import powerlaw_graph


def run_edge_centric(name, problem, **params):
    program = create(name, **params)
    engine = EdgeCentricEngine()
    return engine.run(program, problem), program


def run_sync(name, problem, **params):
    program = create(name, **params)
    engine = SynchronousEngine(build_engine_options(name))
    return engine.run(program, problem), program


@pytest.fixture(scope="module")
def problem():
    return powerlaw_graph(1_500, 2.3, seed=51)


class TestResultEquivalence:
    def test_cc_same_components(self, problem):
        ec_trace, ec_prog = run_edge_centric("cc", problem)
        _sync_trace, sync_prog = run_sync("cc", problem)
        assert ec_trace.converged
        np.testing.assert_array_equal(ec_prog.component,
                                      sync_prog.component)

    def test_sssp_same_distances(self, problem):
        ec_trace, ec_prog = run_edge_centric("sssp", problem)
        _sync_trace, sync_prog = run_sync("sssp", problem)
        assert ec_trace.converged
        np.testing.assert_array_equal(ec_prog.dist, sync_prog.dist)


class TestBehaviorConservation:
    """Paper §3.3: 'the basic behavior of graph computation is
    conserved' across computation models — activations, updates, and
    messages match the vertex-centric engine iteration-for-iteration;
    only the edge-read profile changes (full-stream reads)."""

    @pytest.mark.parametrize("algorithm", ["cc", "sssp"])
    def test_updt_msg_active_conserved(self, problem, algorithm):
        ec_trace, _p1 = run_edge_centric(algorithm, problem)
        sync_trace, _p2 = run_sync(algorithm, problem)
        assert ec_trace.n_iterations == sync_trace.n_iterations
        for a, b in zip(ec_trace.iterations, sync_trace.iterations):
            assert a.active == b.active
            assert a.updates == b.updates
            assert a.messages == b.messages

    def test_eread_is_full_stream(self, problem):
        ec_trace, _prog = run_edge_centric("sssp", problem)
        arcs = 2 * problem.graph.n_edges
        assert all(rec.edge_reads == arcs for rec in ec_trace.iterations)

    def test_eread_differs_from_vertex_centric(self, problem):
        ec_trace, _p1 = run_edge_centric("sssp", problem)
        sync_trace, _p2 = run_sync("sssp", problem)
        # The frontier engine reads fewer edges early on.
        assert sync_trace.iterations[0].edge_reads \
            < ec_trace.iterations[0].edge_reads


class TestValidation:
    def test_rejects_unsupported_program(self, problem):
        with pytest.raises(ValidationError):
            run_edge_centric("pagerank", problem)

    def test_rejects_bad_options(self):
        with pytest.raises(ValidationError):
            EdgeCentricOptions(max_iterations=0)

    def test_deterministic(self, problem):
        a, _ = run_edge_centric("cc", problem)
        b, _ = run_edge_centric("cc", problem)
        assert a.to_dict()["iterations"] == b.to_dict()["iterations"]
