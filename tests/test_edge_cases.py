"""Edge-case coverage for branches not exercised elsewhere."""

import numpy as np
import pytest

from repro._util.errors import ValidationError
from repro.behavior.trace import IterationRecord, RunTrace
from repro.experiments.config import Profile
from repro.experiments.results import CACHE_ENV, ResultStore, default_cache_dir


class TestResultStoreDefaults:
    def test_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_ENV, str(tmp_path / "custom"))
        assert default_cache_dir() == tmp_path / "custom"

    def test_cwd_fallback(self, monkeypatch, tmp_path):
        monkeypatch.delenv(CACHE_ENV, raising=False)
        monkeypatch.chdir(tmp_path)
        assert default_cache_dir() == tmp_path / ".repro_cache"

    def test_clear_on_missing_dir(self, tmp_path):
        store = ResultStore(tmp_path / "never-created")
        assert store.clear() == 0


class TestProfileValidation:
    def test_empty_sizes_rejected(self):
        with pytest.raises(ValidationError):
            Profile(name="bad", ga_sizes=(), cf_sizes=(10,),
                    matrix_rows=(5,), grid_sides=(4,), mrf_edges=(10,))


class TestTraceJsonPaths:
    def test_from_json_accepts_path_string(self, tmp_path):
        trace = RunTrace(
            algorithm="t", graph_params={}, domain="ga",
            n_vertices=2, n_edges=1,
            iterations=[IterationRecord(0, 1, 1, 1, 1, 0.0)],
        )
        path = tmp_path / "t.json"
        trace.to_json(path)
        assert RunTrace.from_json(str(path)) == trace

    def test_from_json_accepts_inline_string(self):
        trace = RunTrace(algorithm="t", graph_params={}, domain="ga",
                         n_vertices=2, n_edges=1)
        assert RunTrace.from_json(trace.to_json()) == trace


class TestEngineDirectionErrors:
    def test_both_rejected_on_directed_graph_too(self):
        from repro.engine.engine import SynchronousEngine
        from repro.engine.program import Direction
        from repro.generators.problem import ProblemInstance
        from repro.graph.csr import Graph
        from tests.test_engine import Flood

        class BothWays(Flood):
            gather_dir = Direction.BOTH

        prob = ProblemInstance(
            graph=Graph.from_edges(3, np.array([0]), np.array([1]),
                                   directed=True),
            domain="ga")
        with pytest.raises(ValidationError):
            SynchronousEngine().run(BothWays(), prob)

    def test_async_rejects_both(self):
        from repro.engine.async_engine import AsynchronousEngine
        from repro.engine.program import Direction
        from repro.generators import powerlaw_graph
        from repro.algorithms.registry import create

        prog = create("cc")
        prog.__class__ = type("CCBoth", (type(prog),),
                              {"gather_dir": Direction.BOTH})
        with pytest.raises(ValidationError):
            AsynchronousEngine().run(prog, powerlaw_graph(100, 2.5, seed=1))


class TestEdgeCentricGatherDirection:
    def test_rejects_out_gather(self):
        from repro.engine.edge_centric import EdgeCentricEngine
        from repro.engine.program import Direction
        from repro.generators import powerlaw_graph
        from repro.algorithms.registry import create

        prog = create("sssp")
        prog.__class__ = type("SsspOut", (type(prog),),
                              {"gather_dir": Direction.OUT})
        with pytest.raises(ValidationError):
            EdgeCentricEngine().run(prog, powerlaw_graph(100, 2.5, seed=1))

    def test_rejects_wide_gather(self):
        from repro.engine.edge_centric import EdgeCentricEngine
        from repro.generators import powerlaw_graph
        from repro.algorithms.registry import create

        prog = create("sssp")
        prog.__class__ = type("SsspWide", (type(prog),),
                              {"gather_width": 3})
        with pytest.raises(ValidationError):
            EdgeCentricEngine().run(prog, powerlaw_graph(100, 2.5, seed=1))


class TestRegistryErrors:
    def test_duplicate_registration_rejected(self):
        from repro.algorithms.registry import AlgorithmInfo, register
        from repro.algorithms.analytics.cc import ConnectedComponents

        with pytest.raises(ValidationError):
            register(AlgorithmInfo(name="cc", cls=ConnectedComponents,
                                   domain="ga"))

    def test_unknown_lookup(self):
        from repro.algorithms.registry import info

        with pytest.raises(ValidationError):
            info("quantumrank")

    def test_lazy_names_protocol(self):
        from repro.algorithms.registry import ALGORITHM_NAMES

        assert "pagerank" in ALGORITHM_NAMES
        assert len(ALGORITHM_NAMES) == 14
        assert ALGORITHM_NAMES[0] == "als"
        assert "cc" in list(iter(ALGORITHM_NAMES))


class TestCliCorpusCommand:
    def test_corpus_command(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        from repro.cli import main

        code = main(["corpus"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Behavior corpus [smoke]: 215 runs, 5 failed" in out

    def test_corpus_command_cached_second_call(self, capsys, monkeypatch,
                                               tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        from repro.cli import main

        assert main(["corpus"]) == 0
        capsys.readouterr()
        import time

        t0 = time.perf_counter()
        assert main(["corpus"]) == 0
        assert time.perf_counter() - t0 < 30  # cache hit path
        assert "215 runs" in capsys.readouterr().out
