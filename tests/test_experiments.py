"""Tests for the experiment configuration, result store, and reporting."""

import numpy as np
import pytest

from repro._util.errors import ValidationError
from repro.behavior.trace import IterationRecord, RunTrace
from repro.experiments.config import (
    ALPHAS,
    CORPUS_ALGORITHMS,
    FIXED_STRUCTURE_ALGORITHMS,
    PROFILES,
    ExperimentMatrix,
    GraphSpec,
    get_profile,
)
from repro.experiments.priorwork import PRIOR_STUDIES, table1_rows
from repro.experiments.reporting import (
    correlation_sign,
    format_curve_block,
    format_series,
    format_table,
    sparkline,
)
from repro.experiments.failures import RunFailure
from repro.experiments.results import ResultStore


class TestGraphSpec:
    def test_constructors_set_domain(self):
        assert GraphSpec.ga(100, 2.5).domain == "ga"
        assert GraphSpec.clustering(100, 2.5).domain == "clustering"
        assert GraphSpec.cf(100, 2.5).domain == "cf"
        assert GraphSpec.matrix(10).domain == "matrix"
        assert GraphSpec.grid(5).domain == "grid"
        assert GraphSpec.mrf(50).domain == "mrf"

    def test_generate_dispatch(self):
        prob = GraphSpec.ga(200, 2.5, seed=1).generate()
        assert prob.domain == "ga"
        prob = GraphSpec.matrix(20, seed=1).generate()
        assert prob.domain == "matrix"

    def test_for_domain_rejects_unknown(self):
        with pytest.raises(ValidationError):
            GraphSpec.for_domain("quantum", nedges=10)

    def test_labels_and_keys(self):
        spec = GraphSpec.ga(1000, 2.25, seed=3)
        assert "α=2.25" in spec.label
        assert spec.cache_key() == "ga-ne1000-a2.25-nrNone-s3"
        assert spec.structure_key == (1000, 2.25, None)

    def test_hashable_and_frozen(self):
        a = GraphSpec.ga(100, 2.5)
        b = GraphSpec.ga(100, 2.5)
        assert a == b and hash(a) == hash(b)


class TestProfiles:
    def test_registry(self):
        assert set(PROFILES) == {"smoke", "paper"}
        assert get_profile("smoke").name == "smoke"

    def test_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        assert get_profile().name == "smoke"
        monkeypatch.setenv("REPRO_PROFILE", "paper")
        assert get_profile().name == "paper"

    def test_unknown_profile(self):
        with pytest.raises(ValidationError):
            get_profile("cluster")

    def test_size_ratios_match_paper(self):
        # The paper steps sizes by ×10 across four values.
        p = get_profile("paper")
        ratios = np.diff(np.log10(np.asarray(p.ga_sizes)))
        np.testing.assert_allclose(ratios, 1.0)
        assert p.alphas == ALPHAS


class TestExperimentMatrix:
    def test_corpus_plan_is_11x20(self):
        matrix = ExperimentMatrix(get_profile("smoke"))
        plan = matrix.corpus_runs()
        assert len(plan) == 11 * 20
        assert {p.algorithm for p in plan} == set(CORPUS_ALGORITHMS)

    def test_fixed_structure_plans(self):
        matrix = ExperimentMatrix(get_profile("smoke"))
        for alg in FIXED_STRUCTURE_ALGORITHMS:
            assert len(matrix.runs_for_algorithm(alg)) == 4

    def test_all_runs_count(self):
        matrix = ExperimentMatrix(get_profile("smoke"))
        assert len(matrix.all_runs()) == 220 + 12
        assert len(list(iter(matrix))) == 232

    def test_cf_uses_cf_sizes(self):
        matrix = ExperimentMatrix(get_profile("smoke"))
        sizes = {p.spec.nedges for p in matrix.runs_for_algorithm("als")}
        assert sizes == set(get_profile("smoke").cf_sizes)


class TestResultStore:
    def _trace(self):
        return RunTrace(
            algorithm="toy", graph_params={"nedges": 10}, domain="ga",
            n_vertices=4, n_edges=10,
            iterations=[IterationRecord(0, 4, 4, 10, 2, 0.5)],
            converged=True, stop_reason="converged",
        )

    def test_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save("k1", self._trace())
        assert store.contains("k1")
        assert store.load("k1") == self._trace()

    def test_missing(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.load("nope") is None
        assert store.load_failure("nope") is None

    def test_failure_marker(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save_failure("f1", RunFailure(kind="memory",
                                            message="out of memory"))
        assert store.load("f1") is None
        failure = store.load_failure("f1")
        assert failure.kind == "memory"
        assert failure.message == "out of memory"

    def test_failure_roundtrip_preserves_taxonomy(self, tmp_path):
        store = ResultStore(tmp_path)
        failure = RunFailure(kind="crash", message="boom",
                             traceback="Traceback ...", attempts=3)
        store.save_failure("f2", failure)
        assert store.load_failure("f2") == failure

    def test_legacy_failure_format_still_loads(self, tmp_path):
        # Pre-taxonomy stores recorded {"reason": ...}; those were only
        # ever memory-budget failures.
        store = ResultStore(tmp_path)
        store._write_atomic(store._path("old"),
                            '{"__failed__": true, "reason": "too big"}')
        failure = store.load_failure("old")
        assert failure.kind == "memory" and failure.message == "too big"

    def test_corrupt_file_quarantined_and_reported_missing(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save("k1", self._trace())
        store._path("k1").write_text("{not json")
        assert store.load("k1") is None
        # The corrupt entry was moved aside, not left to poison reloads.
        assert not store.contains("k1")
        assert store.n_quarantined() == 1

    def test_corrupt_failure_record_quarantined(self, tmp_path):
        store = ResultStore(tmp_path)
        store._write_atomic(store._path("bad"),
                            '{"__failed__": true, "kind": "not-a-kind"}')
        assert store.load_failure("bad") is None
        assert store.n_quarantined() == 1

    def test_sanitization_collisions_get_distinct_paths(self, tmp_path):
        # Regression: '@' and '#' both sanitize to '_'; without the raw-
        # key hash suffix these two keys shared one file.
        store = ResultStore(tmp_path)
        assert store._path("a@b") != store._path("a#b")
        store.save("a@b", self._trace())
        assert store.load("a#b") is None
        assert store.load("a@b") == self._trace()

    def test_temp_names_are_writer_unique(self, tmp_path):
        # Regression: save() used a shared path.with_suffix(".tmp"), so
        # two processes writing one key could tear each other's bytes.
        store = ResultStore(tmp_path)
        # Concurrent same-key writers never corrupt the published entry
        # and leave no staging litter behind.
        import threading

        trace = self._trace()
        threads = [threading.Thread(target=store.save, args=("k1", trace))
                   for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert store.load("k1") == trace
        assert not list(tmp_path.glob("*.tmp"))

    def test_discard(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save("k1", self._trace())
        assert store.discard("k1")
        assert not store.contains("k1")
        assert not store.discard("k1")

    def test_clear(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save("a", self._trace())
        store.save("b", self._trace())
        assert store.clear() == 2
        assert not store.contains("a")

    def test_clear_empties_quarantine(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save("a", self._trace())
        store._path("a").write_text("garbage")
        assert store.load("a") is None
        assert store.n_quarantined() == 1
        store.clear()
        assert store.n_quarantined() == 0

    def test_empty_key_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(ValidationError):
            store.save("", self._trace())


class TestReporting:
    def test_format_table(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["x", 0.0001]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "0.0001" in text

    def test_format_table_rejects_ragged(self):
        with pytest.raises(ValidationError):
            format_table(["a"], [[1, 2]])

    def test_sparkline(self):
        s = sparkline([0, 0.5, 1.0])
        assert len(s) == 3
        assert s[0] == "▁" and s[-1] == "█"
        assert sparkline([]) == ""

    def test_format_series(self):
        line = format_series("pr", ["2.0", "3.0"], [0.5, 1.0])
        assert "pr" in line and "2.0=0.5" in line

    def test_format_series_rejects_misaligned(self):
        with pytest.raises(ValidationError):
            format_series("x", [1], [1.0, 2.0])

    def test_format_curve_block(self):
        block = format_curve_block("Fig", {"s": ([1, 2], [0.1, 0.2])})
        assert block.startswith("Fig")
        assert "s" in block

    def test_correlation_sign(self):
        assert correlation_sign([1, 2, 3], [2, 4, 6]) == "+"
        assert correlation_sign([1, 2, 3], [6, 4, 2]) == "-"
        assert correlation_sign([1, 2, 3, 4], [1, -1, -1, 1]) == "0"
        assert correlation_sign([1, 1, 1], [1, 2, 3]) == "0"
        with pytest.raises(ValidationError):
            correlation_sign([1], [1])


class TestPriorWork:
    def test_three_studies(self):
        assert len(PRIOR_STUDIES) == 3
        assert len(table1_rows()) == 3

    def test_mapped_algorithms_exist(self):
        from repro.algorithms.registry import ALGORITHM_NAMES

        for study in PRIOR_STUDIES:
            for alg in study.mapped_algorithms():
                assert alg in ALGORITHM_NAMES
