"""Tests for the run-health subsystem: numeric guards, convergence
watchdogs, fault injection, trace validation, and corpus accounting."""

import numpy as np
import pytest

from repro._util.errors import (
    NonConvergenceError,
    NumericError,
    TraceInvariantError,
    ValidationError,
)
from repro.behavior.run import INJECT_ENGINE_FAULT_ENV, run_computation
from repro.behavior.trace import IterationRecord, RunTrace
from repro.behavior.validate import validate_trace
from repro.engine import (
    AsyncEngineOptions,
    AsynchronousEngine,
    Context,
    Direction,
    EdgeCentricEngine,
    EdgeCentricOptions,
    EngineOptions,
    FaultPlan,
    GraphCentricEngine,
    GraphCentricOptions,
    HealthMonitor,
    SynchronousEngine,
    VertexProgram,
)
from repro.experiments.config import ExperimentMatrix, GraphSpec
from repro.experiments.corpus import build_corpus, execute_planned_run
from repro.experiments.failures import classify_exception
from repro.experiments.results import ResultStore
from repro.generators import powerlaw_graph
from tests.test_resilience import TINY_PROFILE

ENGINE_NAMES = ("synchronous", "asynchronous", "edge-centric",
                "graph-centric")


class PathologicalProgram(VertexProgram):
    """Min-relaxation-shaped program whose dynamics are chosen per test.

    ``stall``
        State never changes and every out-edge signals, so the
        (frontier, state) signature recurs with period 1 forever.
    ``oscillation``
        State toggles between two values each iteration end — an exact
        period-2 recurrence.
    ``divergence``
        State magnitude grows 100× per iteration.
    ``healthy``
        Same always-signaling dynamics as ``stall``; used with fault
        injection, where the *injected* corruption must fire before any
        genuine watchdog does.
    """

    name = "pathological"
    domain = "ga"
    gather_dir = Direction.IN
    scatter_dir = Direction.OUT
    gather_op = "min"
    supports_async = True
    supports_edge_centric = True

    def __init__(self, mode: str = "stall") -> None:
        self.mode = mode
        self._ticks = 0

    def init(self, ctx: Context) -> np.ndarray:
        self.values = np.ones(ctx.n_vertices, dtype=np.float64)
        return ctx.all_vertices()

    def gather_edge(self, ctx, nbr, center, eid):
        return self.values[nbr]

    def apply(self, ctx, vids, acc):
        pass

    def scatter_edges(self, ctx, center, nbr, eid):
        return np.ones(center.shape[0], dtype=bool)

    def on_iteration_end(self, ctx):
        self._ticks += 1
        if self.mode == "oscillation":
            self.values[:] = float(self._ticks % 2)
        elif self.mode == "divergence":
            self.values *= 100.0


@pytest.fixture(scope="module")
def problem():
    return powerlaw_graph(300, 2.5, seed=5)


def run_engine(engine_name: str, program, problem, **health):
    """Build the named engine with fast-failing health defaults."""
    health.setdefault("health_window", 4)
    if engine_name == "synchronous":
        return SynchronousEngine(
            EngineOptions(max_iterations=60, **health)).run(program, problem)
    if engine_name == "asynchronous":
        return AsynchronousEngine(
            AsyncEngineOptions(max_steps=200_000, **health)).run(
                program, problem)
    if engine_name == "edge-centric":
        return EdgeCentricEngine(
            EdgeCentricOptions(max_iterations=60, **health)).run(
                program, problem)
    return GraphCentricEngine(
        GraphCentricOptions(max_supersteps=60, max_inner_sweeps=3,
                            **health)).run(program, problem)


class TestWatchdogsAcrossEngines:
    @pytest.mark.parametrize("engine", ENGINE_NAMES)
    @pytest.mark.parametrize("condition",
                             ["stall", "oscillation", "divergence"])
    def test_strict_raises(self, engine, condition, problem):
        program = PathologicalProgram(condition)
        with pytest.raises(NonConvergenceError) as excinfo:
            run_engine(engine, program, problem, health_policy="strict")
        assert excinfo.value.condition == condition
        assert classify_exception(excinfo.value) == "nonconvergence"

    @pytest.mark.parametrize("engine", ENGINE_NAMES)
    @pytest.mark.parametrize("condition",
                             ["stall", "oscillation", "divergence"])
    def test_degrade_flags_partial_trace(self, engine, condition, problem):
        program = PathologicalProgram(condition)
        trace = run_engine(engine, program, problem,
                           health_policy="degrade")
        assert trace.degraded
        assert not trace.converged
        assert trace.health["condition"] == condition
        assert trace.health["policy"] == "degrade"
        assert trace.stop_reason == f"degraded-{condition}"
        assert trace.engine == engine
        assert trace.iterations  # partial, not empty
        validate_trace(trace)  # a degraded trace is still well-formed
        assert "DEGRADED" in trace.summary()

    @pytest.mark.parametrize("engine", ENGINE_NAMES)
    def test_off_lets_pathology_run_to_cap(self, engine, problem):
        trace = run_engine(engine, PathologicalProgram("stall"), problem,
                           health_policy="off")
        assert not trace.degraded
        assert trace.stop_reason in ("max-iterations", "max-steps",
                                     "max-supersteps")


class TestNaNInjectionAcrossEngines:
    @pytest.mark.parametrize("engine", ENGINE_NAMES)
    def test_strict_raises_numeric(self, engine, problem):
        program = PathologicalProgram("healthy")
        with pytest.raises(NumericError) as excinfo:
            run_engine(engine, program, problem,
                       inject_fault="nan@1", health_policy="strict")
        assert excinfo.value.iteration == 1
        assert classify_exception(excinfo.value) == "numeric"

    @pytest.mark.parametrize("engine", ENGINE_NAMES)
    def test_degrade_flags_numeric(self, engine, problem):
        program = PathologicalProgram("healthy")
        trace = run_engine(engine, program, problem,
                           inject_fault="nan@1", health_policy="degrade")
        assert trace.degraded
        assert trace.health["condition"] == "numeric"
        validate_trace(trace)

    @pytest.mark.parametrize("engine", ENGINE_NAMES)
    def test_counter_fault_caught_by_validator_not_guard(self, engine,
                                                         problem):
        # The in-engine guard does not check counter signs; the run
        # completes and only validate_trace rejects the trace.
        program = PathologicalProgram("divergence")
        trace = run_engine(engine, program, problem,
                           inject_fault="counter@0", health_policy="off")
        with pytest.raises(TraceInvariantError) as excinfo:
            validate_trace(trace)
        assert "edge_reads" in str(excinfo.value)
        assert classify_exception(excinfo.value) == "numeric"


class TestHealthMonitor:
    def test_policy_validation(self):
        with pytest.raises(ValidationError):
            HealthMonitor(policy="lenient")
        with pytest.raises(ValidationError):
            HealthMonitor(check_every=0)
        with pytest.raises(ValidationError):
            HealthMonitor(window=3)
        with pytest.raises(ValidationError):
            HealthMonitor(divergence_factor=1.0)

    def test_engine_options_validate_health_knobs(self):
        for Options in (EngineOptions, AsyncEngineOptions,
                        EdgeCentricOptions, GraphCentricOptions):
            with pytest.raises(ValidationError):
                Options(health_policy="bogus")
            with pytest.raises(ValidationError):
                Options(health_check_every=0)
            with pytest.raises(ValidationError):
                Options(wall_clock_budget_s=-1.0)

    def test_check_cadence_skips_iterations(self, problem):
        # With checks every 5 iterations and a NaN at iteration 1, the
        # guard only sees the NaN at the next on-cadence iteration (5).
        program = PathologicalProgram("healthy")
        with pytest.raises(NumericError) as excinfo:
            run_engine("synchronous", program, problem,
                       inject_fault="nan@1", health_check_every=5)
        assert excinfo.value.iteration == 5

    def test_nonfinite_work_counter_is_numeric(self):
        monitor = HealthMonitor()
        program = PathologicalProgram("healthy")
        program.values = np.ones(4)
        with pytest.raises(NumericError):
            monitor.observe(program, iteration=0,
                            frontier=np.arange(4), work=float("inf"))

    def test_inf_state_is_legal(self):
        # SSSP keeps unreached distances at +inf; only NaN is a fault.
        monitor = HealthMonitor(window=4)
        program = PathologicalProgram("healthy")
        program.values = np.array([0.0, np.inf, np.inf])
        assert monitor.observe(program, iteration=0,
                               frontier=np.arange(3), work=1.0) is None

    def test_off_policy_observes_nothing(self):
        monitor = HealthMonitor(policy="off")
        program = PathologicalProgram("healthy")
        program.values = np.array([np.nan])
        assert not monitor.enabled
        assert monitor.observe(program, iteration=0, frontier=None,
                               work=1.0) is None


class TestFaultPlan:
    def test_parse_roundtrip(self):
        plan = FaultPlan.parse("diverge@7")
        assert plan == FaultPlan(kind="diverge", iteration=7)
        assert FaultPlan.parse(None) is None
        assert FaultPlan.parse("") is None
        assert FaultPlan.parse(plan) is plan

    @pytest.mark.parametrize("spec", ["nan", "@3", "meteor@1", "nan@x",
                                      "nan@-1"])
    def test_parse_rejects_bad_specs(self, spec):
        with pytest.raises(ValidationError):
            FaultPlan.parse(spec)

    def test_counter_fault_only_at_target_iteration(self):
        plan = FaultPlan(kind="counter", iteration=2)
        assert plan.corrupt_edge_reads(10, 1) == 10
        assert plan.corrupt_edge_reads(10, 2) == -11


class TestValidateTrace:
    def _trace(self, **overrides) -> RunTrace:
        trace = RunTrace(algorithm="pagerank", graph_params={},
                         domain="ga", n_vertices=10, n_edges=20,
                         work_model="unit", stop_reason="converged",
                         converged=True)
        trace.iterations = [
            IterationRecord(iteration=0, active=10, updates=10,
                            edge_reads=20, messages=5, work=1.0),
            IterationRecord(iteration=1, active=5, updates=5,
                            edge_reads=10, messages=0, work=0.5),
        ]
        for key, value in overrides.items():
            setattr(trace, key, value)
        return trace

    def test_accepts_well_formed(self):
        assert validate_trace(self._trace()) is not None

    def test_rejects_unknown_engine(self):
        with pytest.raises(TraceInvariantError):
            validate_trace(self._trace(engine="quantum"))

    def test_rejects_noncontiguous_iterations(self):
        trace = self._trace()
        trace.iterations[1] = IterationRecord(
            iteration=5, active=5, updates=5, edge_reads=10,
            messages=0, work=0.5)
        with pytest.raises(TraceInvariantError):
            validate_trace(trace)

    def test_rejects_active_above_nvertices(self):
        trace = self._trace()
        trace.iterations[0] = IterationRecord(
            iteration=0, active=11, updates=10, edge_reads=20,
            messages=5, work=1.0)
        with pytest.raises(TraceInvariantError):
            validate_trace(trace)

    def test_graph_centric_may_exceed_nvertices(self):
        # Inner sweeps re-apply vertices within one superstep.
        trace = self._trace(engine="graph-centric")
        trace.iterations[0] = IterationRecord(
            iteration=0, active=25, updates=25, edge_reads=30,
            messages=5, work=1.0)
        validate_trace(trace)

    def test_rejects_nonfinite_work(self):
        trace = self._trace()
        trace.iterations[0] = IterationRecord(
            iteration=0, active=10, updates=10, edge_reads=20,
            messages=5, work=float("nan"))
        with pytest.raises(TraceInvariantError):
            validate_trace(trace)

    def test_rejects_degraded_without_health(self):
        with pytest.raises(TraceInvariantError):
            validate_trace(self._trace(degraded=True, converged=False))

    def test_rejects_degraded_marked_converged(self):
        with pytest.raises(TraceInvariantError):
            validate_trace(self._trace(
                degraded=True, converged=True,
                health={"condition": "stall", "iteration": 1,
                        "detail": "x", "policy": "degrade"}))


class TestCorpusHealthAccounting:
    TARGET = "cc-ga-ne200-a2.0"

    def _planned(self, algorithm="cc"):
        matrix = ExperimentMatrix(TINY_PROFILE)
        return [p for p in matrix.corpus_runs()
                if p.algorithm == algorithm][0]

    def test_numeric_failure_recorded_never_retried(self, tmp_path,
                                                    monkeypatch):
        monkeypatch.setenv(INJECT_ENGINE_FAULT_ENV, f"{self.TARGET}:nan@1")
        run = execute_planned_run(self._planned(), TINY_PROFILE,
                                  ResultStore(tmp_path), retries=3)
        assert not run.ok
        assert run.failure.kind == "numeric"
        assert run.failure.attempts == 1  # deterministic: no retries
        assert not run.failure.expected
        assert "NaN" in run.failure.message

    def test_faulty_cell_does_not_abort_build(self, tmp_path, monkeypatch):
        monkeypatch.setenv(INJECT_ENGINE_FAULT_ENV,
                           f"{self.TARGET}:diverge@0")
        corpus = build_corpus(TINY_PROFILE, store=ResultStore(tmp_path))
        total = len(ExperimentMatrix(TINY_PROFILE).corpus_runs())
        assert corpus.n_runs == total - 1  # every other cell completed
        [failed] = corpus.failures
        assert failed.failure.kind == "nonconvergence"
        assert corpus.unexpected_failures == [failed]

    def test_degrade_policy_keeps_flagged_run_out_of_vectors(
            self, tmp_path, monkeypatch):
        monkeypatch.setenv(INJECT_ENGINE_FAULT_ENV, f"{self.TARGET}:nan@1")
        corpus = build_corpus(TINY_PROFILE, store=ResultStore(tmp_path),
                              health_policy="degrade")
        total = len(ExperimentMatrix(TINY_PROFILE).corpus_runs())
        assert corpus.n_runs == total  # the degraded run still completed
        assert corpus.failures == []
        [degraded] = corpus.degraded_runs
        assert degraded.algorithm == "cc"
        assert degraded.trace.health["condition"] == "numeric"
        assert len(corpus.vectors()) == total - 1  # excluded from search
        assert "DEGRADED cc@" in corpus.summary()

    def test_progress_line_reports_health(self, tmp_path, monkeypatch):
        monkeypatch.setenv(INJECT_ENGINE_FAULT_ENV, f"{self.TARGET}:nan@1")
        lines: list = []
        build_corpus(TINY_PROFILE, store=ResultStore(tmp_path),
                     health_policy="degrade", progress=lines.append)
        flagged = [l for l in lines if "health=" in l]
        assert len(flagged) == 1
        assert "status=degraded health=numeric" in flagged[0]

    def test_run_computation_translates_env_fault(self, monkeypatch):
        monkeypatch.setenv(INJECT_ENGINE_FAULT_ENV, f"{self.TARGET}:nan@1")
        spec = GraphSpec.for_domain("ga", nedges=200, alpha=2.0,
                                    seed=TINY_PROFILE.seed)
        with pytest.raises(NumericError):
            run_computation("cc", spec)
        # Non-matching runs are untouched.
        trace = run_computation("sssp", spec)
        assert not trace.degraded
