"""Tests for the spread and coverage ensemble metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util.errors import ValidationError
from repro.behavior.space import BehaviorSpace, BehaviorVector
from repro.ensemble.ensemble import Ensemble
from repro.ensemble.metrics import coverage, mean_min_distance, spread


def vec(*coords, tag=None):
    return BehaviorVector(*coords, tag=tag)


def ens(*points):
    return Ensemble.of([vec(*p) for p in points])


class TestSpread:
    def test_two_points_is_their_distance(self):
        e = ens((0, 0, 0, 0), (1, 1, 1, 1))
        assert spread(e) == pytest.approx(2.0)

    def test_hand_computed_three_points(self):
        e = ens((0, 0, 0, 0), (1, 0, 0, 0), (0, 1, 0, 0))
        expected = (1 + 1 + np.sqrt(2)) / 3
        assert spread(e) == pytest.approx(expected)

    def test_singleton_and_empty(self):
        assert spread(ens((0.5, 0.5, 0.5, 0.5))) == 0.0
        assert spread(ens()) == 0.0

    def test_clustered_below_dispersed(self):
        clustered = ens(*[(0.5 + d, 0.5, 0.5, 0.5) for d in
                          (-0.01, 0.0, 0.01)])
        dispersed = ens((0, 0, 0, 0), (1, 1, 1, 1), (1, 0, 1, 0))
        assert spread(clustered) < spread(dispersed)

    def test_accepts_raw_matrix(self):
        mat = np.array([[0, 0, 0, 0], [1, 1, 1, 1.0]])
        assert spread(mat) == pytest.approx(2.0)

    def test_duplicate_points_lower_spread(self):
        base = ens((0, 0, 0, 0), (1, 1, 1, 1))
        padded = ens((0, 0, 0, 0), (1, 1, 1, 1), (1, 1, 1, 1))
        assert spread(padded) < spread(base)


class TestCoverage:
    def test_more_members_never_hurt(self):
        space = BehaviorSpace()
        samples = space.sample(5000, seed=1)
        e1 = ens((0.5, 0.5, 0.5, 0.5))
        e2 = e1.with_member(vec(0.1, 0.1, 0.1, 0.1))
        c1 = coverage(e1, samples=samples)
        c2 = coverage(e2, samples=samples)
        assert c2 >= c1

    def test_center_beats_corner(self):
        space = BehaviorSpace()
        samples = space.sample(5000, seed=1)
        center = coverage(ens((0.5, 0.5, 0.5, 0.5)), samples=samples)
        corner = coverage(ens((0.0, 0.0, 0.0, 0.0)), samples=samples)
        assert center > corner

    def test_bounded_by_diameter(self):
        space = BehaviorSpace()
        samples = space.sample(2000, seed=2)
        c = coverage(ens((0.2, 0.8, 0.5, 0.1)), samples=samples)
        assert 0.0 < c < space.diameter

    def test_mean_min_distance_zero_on_samples(self):
        # An ensemble containing every sample point has mmd 0.
        space = BehaviorSpace()
        samples = space.sample(50, seed=3)
        mmd = mean_min_distance(samples, samples=samples)
        assert mmd == pytest.approx(0.0, abs=1e-12)

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            mean_min_distance(np.empty((0, 4)))

    def test_monte_carlo_stability(self):
        e = ens((0.3, 0.3, 0.7, 0.7), (0.8, 0.2, 0.1, 0.9))
        a = coverage(e, n_samples=20_000, seed=1)
        b = coverage(e, n_samples=20_000, seed=2)
        assert a == pytest.approx(b, abs=0.01)

    def test_dim_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            spread(np.ones((3, 5)))


class TestEnsembleClass:
    def test_subset_and_with_member(self):
        e = ens((0, 0, 0, 0), (1, 1, 1, 1), (0.5, 0.5, 0.5, 0.5))
        sub = e.subset([0, 2])
        assert sub.size == 2
        grown = sub.with_member(vec(1, 0, 1, 0))
        assert grown.size == 3

    def test_subset_range_check(self):
        with pytest.raises(ValidationError):
            ens((0, 0, 0, 0)).subset([4])

    def test_algorithms_from_tags(self):
        e = Ensemble.of([
            vec(0, 0, 0, 0, tag=("pagerank", 100, 2.0)),
            vec(1, 1, 1, 1, tag=("als", 100, 2.5)),
        ])
        assert e.algorithms() == ["pagerank", "als"]

    def test_describe(self):
        e = Ensemble.of([vec(0.1, 0.2, 0.3, 0.4, tag=("cc", 10, 2.0))],
                        name="demo")
        text = e.describe()
        assert "demo" in text and "cc" in text

    def test_iteration_and_len(self):
        e = ens((0, 0, 0, 0), (1, 1, 1, 1))
        assert len(list(e)) == len(e) == 2


@given(st.lists(
    st.tuples(*[st.floats(0, 1, allow_nan=False) for _ in range(4)]),
    min_size=2, max_size=12))
@settings(max_examples=40, deadline=None)
def test_spread_bounded_by_diameter(points):
    """Property: 0 <= spread <= diameter of the unit cube."""
    s = spread(ens(*points))
    assert 0.0 <= s <= BehaviorSpace().diameter + 1e-9


@given(st.lists(
    st.tuples(*[st.floats(0, 1, allow_nan=False) for _ in range(4)]),
    min_size=1, max_size=8))
@settings(max_examples=20, deadline=None)
def test_coverage_monotone_under_union(points):
    """Property: adding a member never decreases coverage."""
    space = BehaviorSpace()
    samples = space.sample(1500, seed=9)
    e = ens(*points)
    c_full = coverage(e, samples=samples)
    c_partial = coverage(e.subset(range(len(points) - 1)), samples=samples) \
        if len(points) > 1 else -np.inf
    assert c_full >= c_partial - 1e-12
