"""Distributed work-queue protocol tests.

Covers the filesystem protocol primitives (content-addressed task
records, atomic rename claims, epoch fences, done markers, node
beats), the fence-checked publish gate, and two end-to-end
coordinator builds: a clean one that must be bit-identical with an
inline build, and a ghost-node build where a fake peer's abandoned
claim must be fenced, requeued, and completed by someone else.

The full chaos matrix (SIGKILLed agent + frozen-then-woken zombie
across real processes) lives in ``scripts/distributed_smoke.py``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.experiments.config import GraphSpec, PlannedRun, Profile
from repro.experiments.corpus import build_corpus
from repro.experiments.distqueue import (
    Claim,
    DistributedQueue,
    NodeBeat,
    TaskRecord,
    profile_from_dict,
    profile_to_dict,
    publish_result,
)
from repro.experiments.failures import RunFailure
from repro.experiments.results import ResultStore

DQ_PROFILE = Profile(
    name="dq-test",
    ga_sizes=(200,),
    cf_sizes=(80,),
    matrix_rows=(16,),
    grid_sides=(8,),
    mrf_edges=(40,),
    alphas=(2.0,),
    ad_n_hashes=16,
    coverage_samples=100,
    seed=5,
)


def _record(key: str = "cell-a", algorithm: str = "bfs") -> TaskRecord:
    return TaskRecord(cell_key=key, algorithm=algorithm,
                      spec=GraphSpec(domain="ga", nedges=200, alpha=2.0,
                                     nrows=None, seed=5))


def _queue(tmp_path) -> DistributedQueue:
    queue = DistributedQueue(tmp_path / "queue")
    queue.ensure_layout()
    return queue


class _FakeRun:
    def __init__(self, trace=None, failure=None):
        self.trace = trace
        self.failure = failure
        self.ok = failure is None


class _FakeStore:
    def __init__(self):
        self.saved = []
        self.failures = []

    def save(self, key, trace):
        self.saved.append(key)

    def save_failure(self, key, failure):
        self.failures.append(key)


class TestTaskRecord:
    def test_roundtrip(self):
        record = _record()
        again = TaskRecord.from_dict(record.to_dict())
        assert again == record
        assert again.task_id == record.task_id

    def test_task_id_is_content_addressed(self):
        a, b = _record(), _record()
        assert a.task_id == b.task_id
        assert _record(algorithm="dfs").task_id != a.task_id
        assert _record(key="cell-b").task_id != a.task_id

    def test_task_id_is_filesystem_safe(self):
        record = _record(key="ga/bfs α=2.0:n=200")
        assert "/" not in record.task_id
        assert "@" not in record.task_id

    def test_planned_roundtrip(self):
        planned = PlannedRun("bfs", GraphSpec(domain="ga", nedges=200,
                                              alpha=2.0, nrows=None,
                                              seed=5))
        record = TaskRecord.for_planned(planned, DQ_PROFILE)
        assert record.planned == planned


class TestProfileTransport:
    def test_roundtrip(self):
        again = profile_from_dict(profile_to_dict(DQ_PROFILE))
        assert again == DQ_PROFILE

    def test_roundtrip_through_json(self):
        wire = json.loads(json.dumps(profile_to_dict(DQ_PROFILE)))
        assert profile_from_dict(wire) == DQ_PROFILE


class TestQueueBasics:
    def test_publish_and_pending(self, tmp_path):
        queue = _queue(tmp_path)
        record = _record()
        assert queue.publish(record)
        assert queue.pending() == [record.task_id]
        assert queue.read_task(record.task_id) == record

    def test_publish_deduplicates_across_pipeline_stages(self, tmp_path):
        queue = _queue(tmp_path)
        record = _record()
        assert queue.publish(record)
        assert not queue.publish(record)  # pending
        assert queue.claim(record.task_id, "n1", 1) is not None
        assert not queue.publish(record)  # claimed
        queue.mark_done(record.task_id, {"status": "ok", "node": "n1",
                                         "epoch": 1})
        for claim in queue.claims():
            queue.drop_claim(claim)
        assert not queue.publish(record)  # done

    def test_pending_is_sorted(self, tmp_path):
        queue = _queue(tmp_path)
        ids = []
        for key in ("zz", "aa", "mm"):
            record = _record(key=key)
            queue.publish(record)
            ids.append(record.task_id)
        assert queue.pending() == sorted(ids)


class TestClaims:
    def test_claim_returns_record_and_parses_back(self, tmp_path):
        queue = _queue(tmp_path)
        record = _record()
        queue.publish(record)
        got = queue.claim(record.task_id, "node-1", 3)
        assert got == record
        assert queue.pending() == []
        (claim,) = queue.claims()
        assert (claim.task_id, claim.node, claim.epoch) == (
            record.task_id, "node-1", 3)

    def test_concurrent_claimants_get_exactly_one_winner(self, tmp_path):
        queue = _queue(tmp_path)
        record = _record()
        queue.publish(record)
        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(
                lambda i: queue.claim(record.task_id, f"node-{i}", 1),
                range(8)))
        assert sum(r is not None for r in results) == 1
        assert len(queue.claims()) == 1

    def test_release_requeues_and_reports_races(self, tmp_path):
        queue = _queue(tmp_path)
        record = _record()
        queue.publish(record)
        queue.claim(record.task_id, "n1", 1)
        (claim,) = queue.claims()
        assert queue.release(claim)
        assert queue.pending() == [record.task_id]
        assert not queue.release(claim)  # already released

    def test_drop_claim_is_idempotent(self, tmp_path):
        queue = _queue(tmp_path)
        record = _record()
        queue.publish(record)
        queue.claim(record.task_id, "n1", 1)
        (claim,) = queue.claims()
        queue.drop_claim(claim)
        queue.drop_claim(claim)
        assert queue.claims() == []


class TestFences:
    def test_fence_floor_is_monotonic(self, tmp_path):
        queue = _queue(tmp_path)
        assert queue.fence_epoch("n1") == 0
        assert queue.raise_fence("n1", 5) == 5
        assert queue.raise_fence("n1", 3) == 5  # cannot lower
        assert queue.raise_fence("n1", 9) == 9

    def test_check_fence_boundary(self, tmp_path):
        queue = _queue(tmp_path)
        queue.raise_fence("n1", 4)
        assert not queue.check_fence("n1", 3)
        assert not queue.check_fence("n1", 4)  # at the floor == revoked
        assert queue.check_fence("n1", 5)
        assert queue.check_fence("other-node", 1)

    def test_check_fence_fails_closed_without_layout(self, tmp_path):
        # Never laid out, or already swept: no lease can be live. This
        # is what stops a zombie that slept past the whole build.
        queue = DistributedQueue(tmp_path / "never-created")
        assert not queue.check_fence("n1", 99)
        swept = _queue(tmp_path / "swept")
        swept.raise_fence("n1", 1)
        swept.sweep()
        assert not swept.check_fence("n1", 99)


class TestDoneMarkers:
    def test_mark_read_drop(self, tmp_path):
        queue = _queue(tmp_path)
        assert not queue.is_done("t1")
        queue.mark_done("t1", {"status": "ok", "node": "n1", "epoch": 2})
        assert queue.is_done("t1")
        marker = queue.read_done("t1")
        assert marker["status"] == "ok" and marker["epoch"] == 2
        queue.drop_done("t1")
        assert not queue.is_done("t1")


class TestBeats:
    def test_roundtrip_with_host_and_stale_count(self, tmp_path):
        queue = _queue(tmp_path)
        queue.write_beat("n1", {"epoch": 7, "tasks": ["t1"],
                                "stale_rejections": 2,
                                "segments": ["repro-shm-x"],
                                "done": False})
        beat = queue.read_beats()["n1"]
        assert beat.epoch == 7
        assert beat.stale_rejections == 2
        assert beat.segments == ("repro-shm-x",)
        assert beat.host  # stamped by write_beat
        assert not beat.done
        assert beat.age_s < 5.0

    def test_provably_dead_only_for_local_dead_pids(self, tmp_path):
        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        proc.wait()
        import socket

        dead = NodeBeat(node="n1", pid=proc.pid, ts=time.time(),
                        epoch=1, tasks=(), stale_rejections=0,
                        segments=(), done=False,
                        host=socket.gethostname())
        alive = NodeBeat(node="n2", pid=os.getpid(), ts=time.time(),
                         epoch=1, tasks=(), stale_rejections=0,
                         segments=(), done=False,
                         host=socket.gethostname())
        remote = NodeBeat(node="n3", pid=proc.pid, ts=time.time(),
                          epoch=1, tasks=(), stale_rejections=0,
                          segments=(), done=False, host="elsewhere")
        assert dead.provably_dead()
        assert not alive.provably_dead()
        assert not remote.provably_dead()  # partition-indistinguishable

    def test_drop_beat(self, tmp_path):
        queue = _queue(tmp_path)
        queue.write_beat("n1", {"epoch": 1})
        queue.drop_beat("n1")
        assert queue.read_beats() == {}


class TestPublishResult:
    def test_live_epoch_publishes_trace_and_marker(self, tmp_path):
        queue = _queue(tmp_path)
        record = _record()
        store = _FakeStore()

        class _Trace:
            degraded = False

        assert publish_result(queue, store, "n1", 1, record,
                              _FakeRun(trace=_Trace()))
        assert store.saved == [record.cell_key]
        marker = queue.read_done(record.task_id)
        assert marker["status"] == "ok"
        assert marker["node"] == "n1" and marker["epoch"] == 1

    def test_failure_publishes_failure_and_marker(self, tmp_path):
        queue = _queue(tmp_path)
        record = _record()
        store = _FakeStore()
        failure = RunFailure(kind="crash", message="boom")
        assert publish_result(queue, store, "n1", 1, record,
                              _FakeRun(failure=failure))
        assert store.failures == [record.cell_key]
        assert queue.read_done(record.task_id)["status"] == "failed"

    def test_fenced_epoch_is_rejected_and_writes_nothing(self, tmp_path):
        queue = _queue(tmp_path)
        record = _record()
        store = _FakeStore()
        queue.raise_fence("n1", 2)

        class _Trace:
            degraded = False

        assert not publish_result(queue, store, "n1", 2, record,
                                  _FakeRun(trace=_Trace()))
        assert store.saved == [] and store.failures == []
        assert not queue.is_done(record.task_id)

    def test_swept_queue_rejects_even_without_fence_file(self, tmp_path):
        queue = _queue(tmp_path)
        record = _record()
        store = _FakeStore()
        queue.sweep()

        class _Trace:
            degraded = False

        assert not publish_result(queue, store, "zombie", 99, record,
                                  _FakeRun(trace=_Trace()))
        assert store.saved == []


class TestSweep:
    def test_sweep_removes_everything(self, tmp_path):
        queue = _queue(tmp_path)
        queue.publish(_record())
        queue.write_beat("n1", {"epoch": 1})
        queue.raise_fence("n1", 1)
        queue.mark_done("t-x", {"status": "ok", "node": "n1", "epoch": 1})
        queue.write_manifest({"store_root": "x"})
        queue.mark_complete()
        (queue.node_workdir("n1")).mkdir(parents=True)
        assert queue.sweep() == 0
        assert not queue.root.exists()


class TestCoordinatorEndToEnd:
    def _vectors(self, corpus):
        return [(v.tag, v.as_array().tobytes()) for v in corpus.vectors()]

    def test_distributed_build_matches_inline(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        inline = build_corpus(DQ_PROFILE,
                              store=ResultStore(tmp_path / "s-inline"),
                              workers=1)
        assert not inline.failures
        dist = build_corpus(DQ_PROFILE,
                            store=ResultStore(tmp_path / "s-dist"),
                            workers=1,
                            distributed=tmp_path / "queue")
        assert not dist.failures
        assert dist.distributed
        assert dist.nodes_seen >= 1
        assert dist.stale_epoch_rejections == 0  # clean run
        assert dist.stale_done_markers == 0
        assert dist.queue_leftovers == 0
        assert not (tmp_path / "queue").exists()
        assert self._vectors(dist) == self._vectors(inline)

    def test_ghost_node_claim_is_fenced_and_requeued(self, tmp_path,
                                                     monkeypatch):
        """A peer that claimed a task and vanished without ever
        heartbeating: the coordinator must fence it once the claim
        outlives the lease timeout, requeue the cell, and still
        converge bit-identically."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        inline = build_corpus(DQ_PROFILE,
                              store=ResultStore(tmp_path / "s-inline"),
                              workers=1)
        queue = DistributedQueue(tmp_path / "queue")
        queue.ensure_layout()
        from repro.experiments.corpus import ExperimentMatrix

        planned = ExperimentMatrix(DQ_PROFILE).corpus_runs()[0]
        record = TaskRecord.for_planned(planned, DQ_PROFILE)
        ghost_claim = (queue.claims_dir
                       / f"{record.task_id}@ghost-node@1.json")
        ghost_claim.write_text(json.dumps(record.to_dict()),
                               encoding="utf-8")
        dist = build_corpus(DQ_PROFILE,
                            store=ResultStore(tmp_path / "s-dist"),
                            workers=1,
                            distributed=tmp_path / "queue",
                            lease_timeout_s=0.5)
        assert not dist.failures
        assert dist.nodes_lost >= 1
        assert dist.queue_requeues >= 1
        assert dist.queue_leftovers == 0
        assert not (tmp_path / "queue").exists()
        assert self._vectors(dist) == self._vectors(inline)
