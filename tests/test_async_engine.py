"""Tests for the asynchronous GAS engine."""

import networkx as nx
import numpy as np
import pytest

from repro._util.errors import ValidationError
from repro.algorithms.registry import create
from repro.engine.async_engine import AsynchronousEngine, AsyncEngineOptions
from repro.engine.engine import SynchronousEngine
from repro.behavior.run import build_engine_options
from repro.generators import powerlaw_graph


def run_async(name, problem, scheduler="fifo", **params):
    program = create(name, **params)
    engine = AsynchronousEngine(AsyncEngineOptions(scheduler=scheduler))
    return engine.run(program, problem), program


def run_sync(name, problem, **params):
    program = create(name, **params)
    engine = SynchronousEngine(build_engine_options(name))
    return engine.run(program, problem), program


@pytest.fixture(scope="module")
def problem():
    return powerlaw_graph(1_200, 2.5, seed=31)


class TestCorrectness:
    @pytest.mark.parametrize("scheduler", ["fifo", "priority"])
    def test_cc_matches_sync(self, problem, scheduler):
        async_trace, async_prog = run_async("cc", problem,
                                            scheduler=scheduler)
        _sync_trace, sync_prog = run_sync("cc", problem)
        assert async_trace.converged
        np.testing.assert_array_equal(async_prog.component,
                                      sync_prog.component)

    @pytest.mark.parametrize("scheduler", ["fifo", "priority"])
    def test_sssp_matches_sync(self, problem, scheduler):
        async_trace, async_prog = run_async("sssp", problem,
                                            scheduler=scheduler)
        _sync_trace, sync_prog = run_sync("sssp", problem)
        assert async_trace.converged
        np.testing.assert_array_equal(async_prog.dist, sync_prog.dist)

    def test_sssp_matches_networkx(self, problem):
        trace, prog = run_async("sssp", problem, scheduler="priority")
        src, dst = problem.graph.edge_endpoints()
        G = nx.Graph()
        G.add_nodes_from(range(problem.graph.n_vertices))
        G.add_edges_from(zip(src.tolist(), dst.tolist()))
        expected = nx.single_source_shortest_path_length(
            G, trace.result["source"])
        for v, d in expected.items():
            assert prog.dist[v] == d

    def test_pagerank_close_to_sync(self, problem):
        _async_trace, async_prog = run_async("pagerank", problem,
                                             tol=1e-6)
        _sync_trace, sync_prog = run_sync("pagerank", problem,
                                          tol=1e-6)
        a = async_prog.rank / async_prog.rank.sum()
        b = sync_prog.rank / sync_prog.rank.sum()
        assert np.corrcoef(a, b)[0, 1] > 0.999


class TestSemantics:
    def test_deterministic(self, problem):
        a, _p1 = run_async("cc", problem)
        b, _p2 = run_async("cc", problem)
        assert a.to_dict()["iterations"] == b.to_dict()["iterations"]

    def test_rejects_non_async_program(self, problem):
        with pytest.raises(ValidationError):
            run_async("diameter", problem)

    def test_rounds_bounded_by_vertex_count(self, problem):
        trace, _prog = run_async("cc", problem)
        n = problem.graph.n_vertices
        assert all(rec.active <= n for rec in trace.iterations)
        assert trace.stop_reason == "scheduler-drained"

    def test_max_steps_cap(self, problem):
        program = create("pagerank", tol=1e-12)
        engine = AsynchronousEngine(AsyncEngineOptions(max_steps=50))
        trace = engine.run(program, problem)
        assert sum(rec.updates for rec in trace.iterations) == 50
        assert not trace.converged

    def test_counters_positive(self, problem):
        trace, _prog = run_async("sssp", problem)
        assert sum(r.edge_reads for r in trace.iterations) > 0
        assert sum(r.messages for r in trace.iterations) > 0
        assert all(r.work >= 0 for r in trace.iterations)

    def test_options_validation(self):
        with pytest.raises(ValidationError):
            AsyncEngineOptions(scheduler="random")
        with pytest.raises(ValidationError):
            AsyncEngineOptions(max_steps=0)
        with pytest.raises(ValidationError):
            AsyncEngineOptions(work_model="guess")


class TestPrioritySchedulingEffect:
    def test_priority_reduces_sssp_updates(self, problem):
        """Dijkstra-like ordering should waste fewer relaxations than
        FIFO (allow equality on easy instances)."""
        fifo, _ = run_async("sssp", problem, scheduler="fifo")
        prio, _ = run_async("sssp", problem, scheduler="priority")
        fifo_updates = sum(r.updates for r in fifo.iterations)
        prio_updates = sum(r.updates for r in prio.iterations)
        assert prio_updates <= fifo_updates

    def test_priority_scheduler_promotion(self):
        from repro.engine.async_engine import _PriorityScheduler

        sched = _PriorityScheduler(4)
        sched.push(1, priority=1.0)
        sched.push(2, priority=5.0)
        sched.push(1, priority=9.0)  # promotion
        assert len(sched) == 2
        assert sched.pop() == 1
        assert sched.pop() == 2
        with pytest.raises(IndexError):
            sched.pop()
