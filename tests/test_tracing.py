"""Causal tracing, critical-path decomposition, and the bench-compare
gate: deterministic id derivation, span-tree reconstruction with orphan
detection, exact wall attribution on synthetic logs, threshold
semantics of ``repro bench compare``, and trace propagation through a
chaos (SIGKILLed-worker) corpus build."""

import json

import pytest

from repro.experiments.config import ExperimentMatrix, Profile
from repro.experiments.corpus import build_corpus
from repro.experiments.results import ResultStore
from repro.obs.benchdiff import compare_artifacts, render_bench_compare
from repro.obs.critpath import CATEGORIES, critical_path
from repro.obs.events import read_all_events
from repro.obs.stats import stats_payload
from repro.obs.tracing import (
    TraceContext,
    build_span_tree,
    derive_id,
    derive_run_id,
    list_traces,
    render_trace,
)

TINY = Profile(
    name="tinytrace",
    ga_sizes=(200, 600),
    cf_sizes=(80, 200),
    matrix_rows=(30,),
    grid_sides=(8,),
    mrf_edges=(40,),
    memory_budget_bytes=1_400_000,
    ad_n_hashes=64,
    coverage_samples=1_000,
    seed=11,
    alphas=(2.0, 2.5),
)

N_CELLS = len(list(ExperimentMatrix(TINY).corpus_runs()))


class TestDeterministicIds:
    def test_derive_id_is_stable_and_keyed(self):
        assert derive_id("a", 1) == derive_id("a", 1)
        assert derive_id("a", 1) != derive_id("a", 2)
        # Separator-resistant: ("ab", "c") must differ from ("a", "bc").
        assert derive_id("ab", "c") != derive_id("a", "bc")
        assert len(derive_id("x")) == 12

    def test_run_and_build_ids_rederive_across_processes(self):
        """The re-link mechanism: same (profile, seed) -> same ids, so
        a resume attaches to the original build's spans."""
        assert derive_run_id("p", 7) == derive_run_id("p", 7)
        assert derive_run_id("p", 7) != derive_run_id("p", 8)
        a = TraceContext.for_build("p", 7)
        b = TraceContext.for_build("p", 7)
        assert (a.trace_id, a.span_id) == (b.trace_id, b.span_id)
        assert a.parent_span_id is None
        assert a.child("cell", "k").span_id == b.child("cell", "k").span_id

    def test_child_links_to_parent(self):
        root = TraceContext.for_build("p", 7)
        cell = root.child("cell", "key123")
        assert cell.trace_id == root.trace_id
        assert cell.parent_span_id == root.span_id
        assert cell.span_id != root.span_id

    def test_dict_round_trip(self):
        ctx = TraceContext.for_build("p", 7).child("cell", "k")
        assert TraceContext.from_dict(ctx.to_dict()) == ctx
        root = TraceContext.for_build("p", 7)
        out = root.to_dict()
        assert "parent" not in out
        assert TraceContext.from_dict(out) == root
        assert TraceContext.from_dict(None) is None
        assert TraceContext.from_dict({"trace": "t"}) is None


def _synthetic_events(t0=1000.0):
    """A two-cell build with retries, a lease grant, and known gaps."""
    build = TraceContext.for_build("p", 1)
    cell_a = build.child("cell", "keyA")
    cell_b = build.child("cell", "keyB")
    phase = cell_a.child("engine_run", 1)
    return [
        {"kind": "build_start", "ts": t0, "profile": "p",
         **build.to_dict()},
        {"kind": "task", "ts": t0 + 0.5, "to": "leased",
         "task": "run:keyA", **build.child("task", "run:keyA").to_dict()},
        {"kind": "cell_start", "ts": t0 + 1.0, "cell": "a", "key": "keyA",
         "attempt": 1, **cell_a.to_dict()},
        {"kind": "span", "name": "engine_run", "ts": t0 + 3.5,
         "seconds": 2.0, **phase.to_dict()},
        {"kind": "cell_end", "ts": t0 + 4.0, "cell": "a", "status": "ok",
         "source": "executed", "materialize_s": 0.5, "engine_s": 2.0,
         "store_s": 0.5, "attempts": 1, **cell_a.to_dict()},
        {"kind": "task", "ts": t0 + 4.2, "to": "leased",
         "task": "run:keyB", **build.child("task", "run:keyB").to_dict()},
        {"kind": "cell_start", "ts": t0 + 5.0, "cell": "b", "key": "keyB",
         "attempt": 1, **cell_b.to_dict()},
        {"kind": "retry", "ts": t0 + 6.0, "cell": "b", "backoff_s": 0.5,
         "attempt": 1, **cell_b.to_dict()},
        {"kind": "cell_end", "ts": t0 + 9.0, "cell": "b", "status": "ok",
         "source": "executed", "materialize_s": 1.0, "engine_s": 2.0,
         "store_s": 0.5, "attempts": 2, **cell_b.to_dict()},
        {"kind": "build_end", "ts": t0 + 10.0, "seconds": 10.0,
         "profile": "p", **build.to_dict()},
    ]


class TestSpanTree:
    def test_reconstructs_one_connected_tree(self):
        events = _synthetic_events()
        tree = build_span_tree(events)
        assert tree.connected and not tree.orphans
        assert len(tree.roots) == 1
        root = tree.roots[0]
        assert root.name == "build p"
        names = sorted(c.name for c in root.children)
        assert names == ["a", "b", "task run:keyA", "task run:keyB"]
        cell_a = next(c for c in root.children if c.name == "a")
        assert [g.name for g in cell_a.children] == ["engine_run"]
        # The span event back-dates its open edge by its duration.
        assert cell_a.children[0].seconds == pytest.approx(2.0)

    def test_lost_parent_events_surface_as_orphans(self):
        events = [e for e in _synthetic_events()
                  if not (e.get("cell") == "a"
                          and e["kind"] in ("cell_start", "cell_end"))]
        tree = build_span_tree(events)
        assert not tree.connected
        assert [n.name for n in tree.orphans] == ["engine_run"]

    def test_trace_filter_and_listing(self):
        first = _synthetic_events(t0=1000.0)
        second = [dict(e) for e in _synthetic_events(t0=2000.0)]
        for e in second:
            e["trace"] = "ffffffffffff"
        traces = list_traces(first + second)
        assert traces == [first[0]["trace"], "ffffffffffff"]
        # Default: first trace; explicit id: only that trace's events.
        assert build_span_tree(first + second).trace_id == traces[0]
        tree = build_span_tree(first + second, "ffffffffffff")
        assert tree.n_events == len(second)

    def test_render_trace_reports_orphans_and_filters_cells(self):
        events = _synthetic_events()
        out = render_trace(events)
        assert "orphan spans: 0" in out
        assert "build p" in out and "engine_run" in out
        only_a = render_trace(events, cell="a")
        assert "engine_run" in only_a and "task run:keyB" not in only_a
        broken = [e for e in events
                  if not (e.get("cell") == "a"
                          and e["kind"] in ("cell_start", "cell_end"))]
        assert "ORPHANED SPANS" in render_trace(broken)
        assert "no spans found" in render_trace([])


class TestCriticalPath:
    def test_decomposition_sums_exactly_to_window(self):
        report = critical_path(_synthetic_events())
        decomp = report["decomposition"]
        assert set(decomp) == set(CATEGORIES)
        assert sum(decomp.values()) == pytest.approx(report["window_s"])
        assert report["window_s"] == pytest.approx(10.0)
        assert report["reported_wall_s"] == pytest.approx(10.0)

    def test_known_attribution(self):
        """Hand-walked attribution of the synthetic log: cell b's
        phases fill [5,9], the [4,5] gap splits at keyB's lease grant
        (4.2), cell a's phases fill [1,4], and the [0,1] head plus the
        [9,10] tail are queue-wait."""
        decomp = critical_path(_synthetic_events())["decomposition"]
        assert decomp["engine"] == pytest.approx(4.0)
        assert decomp["materialize"] == pytest.approx(1.5)
        assert decomp["store"] == pytest.approx(1.0)
        assert decomp["retry-backoff"] == pytest.approx(0.5)
        assert decomp["lease-latency"] == pytest.approx(0.8)
        assert decomp["queue-wait"] == pytest.approx(2.2)

    def test_chain_is_chronological(self):
        chain = critical_path(_synthetic_events())["chain"]
        cells = [seg["cell"] for seg in chain if seg.get("cell")]
        assert cells == ["a", "b"]
        bounds = [(seg["start"], seg["end"]) for seg in chain]
        assert bounds == sorted(bounds)

    def test_overlapping_cells_attribute_once(self):
        """Two fully overlapping cells: only the path-bounding one is
        attributed; the window never double-counts."""
        t0 = 100.0
        events = [
            {"kind": "build_start", "ts": t0},
            {"kind": "cell_start", "ts": t0, "cell": "x"},
            {"kind": "cell_start", "ts": t0, "cell": "y"},
            {"kind": "cell_end", "ts": t0 + 4.0, "cell": "x",
             "engine_s": 4.0, "status": "ok"},
            {"kind": "cell_end", "ts": t0 + 4.0, "cell": "y",
             "engine_s": 4.0, "status": "ok"},
            {"kind": "build_end", "ts": t0 + 4.0, "seconds": 4.0},
        ]
        report = critical_path(events)
        assert sum(report["decomposition"].values()) == \
            pytest.approx(4.0)
        assert report["decomposition"]["engine"] == pytest.approx(4.0)

    def test_straggler_threshold_is_nearest_rank(self):
        report = critical_path(_synthetic_events())
        # Two cells (3s, 4s): nearest-rank p95 is the 4s cell, so
        # nothing sits strictly beyond it.
        assert report["straggler_threshold_s"] == pytest.approx(4.0)
        assert report["stragglers"] == []


def _write_bench(root, speedup, fast_wall=1.0):
    root.mkdir(parents=True, exist_ok=True)
    (root / "BENCH_corpus.json").write_text(json.dumps(
        {"speedup": speedup, "best_wall_s": {"fast": fast_wall},
         "label": "x"}), encoding="utf-8")


class TestBenchCompare:
    def test_ratio_regressions_warn_then_fail(self, tmp_path):
        _write_bench(tmp_path / "base", speedup=2.0)
        for new, status in ((1.9, "ok"), (1.7, "warn"), (1.4, "fail")):
            _write_bench(tmp_path / "cand", speedup=new)
            report = compare_artifacts(tmp_path / "base",
                                       tmp_path / "cand")
            entry = next(e for e in report["entries"]
                         if e["path"] == "speedup")
            assert entry["status"] == status, (new, entry)
            assert report["failed"] == (status == "fail")
        assert "RESULT: FAIL" in render_bench_compare(report)

    def test_improvements_never_flag(self, tmp_path):
        _write_bench(tmp_path / "base", speedup=2.0, fast_wall=1.0)
        _write_bench(tmp_path / "cand", speedup=4.0, fast_wall=0.1)
        report = compare_artifacts(tmp_path / "base", tmp_path / "cand",
                                   strict=True)
        assert not report["failed"]
        assert all(e["status"] == "ok" for e in report["entries"])

    def test_wall_metrics_gate_only_under_strict(self, tmp_path):
        _write_bench(tmp_path / "base", fast_wall=1.0, speedup=2.0)
        _write_bench(tmp_path / "cand", fast_wall=3.0, speedup=2.0)
        lax = compare_artifacts(tmp_path / "base", tmp_path / "cand")
        wall = next(e for e in lax["entries"]
                    if e["path"] == "best_wall_s.fast")
        assert wall["status"] == "info" and not lax["failed"]
        strict = compare_artifacts(tmp_path / "base", tmp_path / "cand",
                                   strict=True)
        wall = next(e for e in strict["entries"]
                    if e["path"] == "best_wall_s.fast")
        assert wall["status"] == "fail" and strict["failed"]

    def test_new_missing_and_skipped(self, tmp_path):
        base, cand = tmp_path / "base", tmp_path / "cand"
        _write_bench(base, speedup=2.0)
        cand.mkdir()
        (cand / "BENCH_corpus.json").write_text(json.dumps(
            {"best_wall_s": {"fast": 1.0, "slow": 9.0}}),
            encoding="utf-8")
        report = compare_artifacts(base, cand)
        by_path = {e["path"]: e["status"] for e in report["entries"]}
        assert by_path["speedup"] == "missing"
        assert by_path["best_wall_s.slow"] == "new"
        assert not report["failed"]
        # Artifacts absent on either side are skipped, not failed.
        assert "BENCH_engine.json" in report["skipped"]

    def test_cli_exit_codes(self, tmp_path, capsys):
        from repro.cli import main
        _write_bench(tmp_path / "base", speedup=2.0)
        _write_bench(tmp_path / "cand", speedup=1.0)
        assert main(["bench", "compare", str(tmp_path / "base"),
                     str(tmp_path / "cand")]) == 1
        assert main(["bench", "compare", str(tmp_path / "base"),
                     str(tmp_path / "base")]) == 0
        capsys.readouterr()


class TestChaosTracePropagation:
    """Satellite 4 acceptance: on a chaos build with SIGKILLed workers
    and resumed attempts, the trace is one connected tree per cell with
    zero orphans, and the critical path accounts for the wall."""

    def test_killed_and_resumed_build_stays_connected(
            self, tmp_path, monkeypatch):
        token_dir = tmp_path / "tokens"
        token_dir.mkdir()
        for i in range(2):
            (token_dir / f"token-{i}").touch()
        monkeypatch.setenv("REPRO_CHAOS_KILL", f"{token_dir}:1.0")

        store = ResultStore(tmp_path / "cache")
        obs_dir = tmp_path / "obs"
        corpus = None
        for _attempt in range(6):
            corpus = build_corpus(TINY, store=store, workers=2,
                                  resume=True, retries=0,
                                  checkpoint_dir=tmp_path / "snaps",
                                  checkpoint_every="1",
                                  obs="full", obs_dir=obs_dir)
            if not corpus.unexpected_failures:
                break
        assert corpus is not None and not corpus.unexpected_failures
        assert not list(token_dir.iterdir()), \
            "chaos kills never fired — the harness tested nothing"

        events = read_all_events(obs_dir)
        # Every build (crashed or resumed) derived the same ids, so
        # the whole log is one trace with one root and no orphans.
        assert len(list_traces(events)) == 1
        tree = build_span_tree(events)
        assert tree.connected, \
            [f"{n.name} missing {n.parent_id}" for n in tree.orphans]
        assert len(tree.roots) == 1
        root = tree.roots[0]
        assert root.span_id == \
            TraceContext.for_build(TINY.name, TINY.seed).span_id
        cell_spans = {c.name: c for c in root.children
                      if c.kind in ("cell_start", "cell_end")}
        assert len(cell_spans) == N_CELLS
        # Resumed attempts re-derived the original cell span: every
        # phase span parents straight to its cell, none dangle.
        for cell in cell_spans.values():
            for phase in cell.children:
                assert phase.parent_id == cell.span_id

        # Acceptance: decomposition within 10% of the reported wall.
        report = critical_path(events)
        total = sum(report["decomposition"].values())
        assert total == pytest.approx(report["window_s"])
        assert abs(total - report["reported_wall_s"]) <= \
            0.10 * report["reported_wall_s"] + 0.05

        # The JSON stats payload carries the same story end to end.
        payload = stats_payload(obs_dir)
        assert payload["meta"].get("profile") == TINY.name
        assert len(payload["cells"]) >= N_CELLS
        assert payload["n_events"] == len(events)
