"""Tests for temporal (variability-aware) behavior characterization."""

import numpy as np
import pytest

from repro._util.errors import ValidationError
from repro.behavior.temporal import (
    TEMPORAL_METRIC_NAMES,
    compute_temporal_behavior,
    normalize_temporal_corpus,
    temporal_corpus,
)
from tests.test_behavior import make_trace


class TestComputeTemporalBehavior:
    def test_constant_series_zero_cv(self):
        t = make_trace([(5, 5, 10, 3, 0.5)] * 8)
        tb = compute_temporal_behavior(t)
        assert tb.cvs == (0.0, 0.0, 0.0, 0.0)
        assert tb.means[0] == pytest.approx(5 / 20)

    def test_bursty_series_high_cv(self):
        steady = make_trace([(5, 5, 10, 10, 1.0)] * 10)
        bursty = make_trace([(5, 5, 10, 0, 1.0),
                             (5, 5, 10, 100, 1.0)] * 5)
        cv_steady = compute_temporal_behavior(steady).cvs[3]
        cv_bursty = compute_temporal_behavior(bursty).cvs[3]
        assert cv_steady == 0.0
        assert cv_bursty > 0.9

    def test_hand_computed_cv(self):
        t = make_trace([(1, 1, 2, 0, 0.0), (1, 1, 4, 0, 0.0)])
        tb = compute_temporal_behavior(t)
        # eread series per edge: [0.1, 0.2] → mean 0.15, std 0.05.
        assert tb["eread"] == pytest.approx(0.15)
        assert tb["cv_eread"] == pytest.approx(0.05 / 0.15)

    def test_zero_series_cv_zero(self):
        t = make_trace([(1, 1, 1, 0, 0.0)] * 4)
        assert compute_temporal_behavior(t).cvs[3] == 0.0

    def test_getitem_validation(self):
        tb = compute_temporal_behavior(make_trace([(1, 1, 1, 1, 1.0)]))
        with pytest.raises(ValidationError):
            tb["cv_latency"]

    def test_rejects_empty_trace(self):
        with pytest.raises(ValidationError):
            compute_temporal_behavior(make_trace([]))

    def test_name_order(self):
        assert TEMPORAL_METRIC_NAMES == (
            "updt", "work", "eread", "msg",
            "cv_updt", "cv_work", "cv_eread", "cv_msg")


class TestNormalizeTemporalCorpus:
    def _behaviors(self):
        return [compute_temporal_behavior(make_trace(rows)) for rows in (
            [(5, 5, 10, 3, 0.5)] * 4,
            [(1, 1, 2, 0, 0.1), (9, 9, 18, 6, 0.9)] * 3,
        )]

    def test_unit_cube(self):
        coords, tags = normalize_temporal_corpus(self._behaviors())
        assert coords.shape == (2, 8)
        assert coords.min() >= 0 and coords.max() <= 1.0

    def test_cv_separates_equal_means(self):
        coords, _tags = normalize_temporal_corpus(self._behaviors())
        # The two runs have identical mean metrics but different CVs.
        np.testing.assert_allclose(coords[0, :4], coords[1, :4])
        assert np.abs(coords[0, 4:] - coords[1, 4:]).max() > 0.05

    def test_cv_cap(self):
        wild = compute_temporal_behavior(
            make_trace([(1, 1, 1, 0, 0.0)] * 9 + [(1, 1, 1, 900, 0.0)]))
        coords, _ = normalize_temporal_corpus([wild], cv_cap=1.0)
        assert coords[0, 7] == 1.0  # clipped

    def test_tags_and_empty(self):
        coords, tags = normalize_temporal_corpus([], tags=None)
        assert coords.shape == (0, 8) and tags == []
        with pytest.raises(ValidationError):
            normalize_temporal_corpus(self._behaviors(), tags=[1])


class TestOnCorpus:
    def test_temporal_corpus_shape(self, mini_corpus):
        coords, tags = temporal_corpus(mini_corpus)
        assert coords.shape == (mini_corpus.n_runs, 8)
        assert len(tags) == mini_corpus.n_runs

    def test_always_active_have_low_updt_cv(self, mini_corpus):
        coords, tags = temporal_corpus(mini_corpus)
        by_alg = {}
        for row, tag in zip(coords, tags):
            by_alg.setdefault(tag[0], []).append(row[4])  # cv_updt
        # Always-active algorithms update everyone every iteration:
        # near-zero temporal variability in UPDT... (coordinates are
        # CV / cv_cap, so 0.02 ≈ raw CV 0.08)
        for alg in ("kmeans", "sgd", "svd", "nmf", "diameter"):
            assert np.mean(by_alg[alg]) < 0.02, alg
        # ...while frontier algorithms churn (raw CV well above 0.5).
        assert np.mean(by_alg["sssp"]) > 0.15
