"""Integration tests: build a tiny full corpus and run the whole
ensemble methodology over it (the paper's Section 5 pipeline)."""

import numpy as np
import pytest

from repro.behavior.space import BehaviorSpace
from repro.ensemble.bounds import UpperBounds
from repro.ensemble.constrained import limit_to_algorithms
from repro.ensemble.frequency import algorithm_frequencies
from repro.ensemble.metrics import coverage, spread
from repro.ensemble.search import best_ensemble, top_k_ensembles
from repro.experiments.config import CORPUS_ALGORITHMS
from repro.experiments.corpus import build_corpus, execute_planned_run
from repro.experiments.results import ResultStore
from tests.conftest import MINI_PROFILE


class TestCorpusShape:
    def test_reproduces_paper_run_counts(self, mini_corpus):
        # 220 planned, 5 AD runs at the largest size fail → 215.
        assert mini_corpus.n_runs == 215
        assert len(mini_corpus.failures) == 5
        assert all(f.algorithm == "diameter" for f in mini_corpus.failures)
        largest = max(MINI_PROFILE.ga_sizes)
        assert all(f.spec.nedges == largest for f in mini_corpus.failures)

    def test_all_algorithms_present(self, mini_corpus):
        assert set(mini_corpus.algorithms()) == set(CORPUS_ALGORITHMS)

    def test_run_counts_per_algorithm(self, mini_corpus):
        for alg in CORPUS_ALGORITHMS:
            expected = 15 if alg == "diameter" else 20
            assert len(mini_corpus.by_algorithm(alg)) == expected

    def test_vectors_normalized_and_tagged(self, mini_corpus):
        vecs = mini_corpus.vectors()
        assert len(vecs) == 215
        mat = np.vstack([v.as_array() for v in vecs])
        assert mat.min() >= 0 and mat.max() <= 1.0
        assert mat.max() == pytest.approx(1.0)  # max normalization
        algs = {v.tag[0] for v in vecs}
        assert algs == set(CORPUS_ALGORITHMS)

    def test_structures(self, mini_corpus):
        structs = mini_corpus.structures()
        assert len(structs) == 4 * 5  # sizes × alphas
        by_struct = mini_corpus.by_structure(*structs[0])
        assert len(by_struct) >= 1

    def test_summary_text(self, mini_corpus):
        text = mini_corpus.summary()
        assert "215 runs" in text
        assert "FAILED diameter" in text


class TestParallelBuild:
    def test_workers_produce_identical_corpus(self, tmp_path, mini_corpus):
        """The process-pool path yields the same runs (order and
        content) as the inline path."""
        from repro.experiments.corpus import build_corpus

        parallel = build_corpus(MINI_PROFILE, use_cache=False, workers=2)
        assert parallel.n_runs == mini_corpus.n_runs
        assert len(parallel.failures) == len(mini_corpus.failures)
        for a, b in zip(parallel.runs, mini_corpus.runs):
            assert a.tag == b.tag
            assert a.trace.to_dict()["iterations"] \
                == b.trace.to_dict()["iterations"]

    def test_workers_share_the_store(self, tmp_path):
        from repro.experiments.config import ExperimentMatrix
        from repro.experiments.corpus import build_corpus

        store = ResultStore(tmp_path)
        first = build_corpus(MINI_PROFILE, store=store, workers=2)
        assert first.n_executed == 220 and first.n_cached == 0
        # Second build hits only the cache — and must agree.
        second = build_corpus(MINI_PROFILE, store=store, workers=1)
        assert second.n_runs == first.n_runs
        assert second.n_executed == 0 and second.n_cached == 220
        assert [r.tag for r in second.runs] == [r.tag for r in first.runs]


class TestCaching:
    def test_store_roundtrip_through_executor(self, tmp_path):
        from repro.experiments.config import ExperimentMatrix

        store = ResultStore(tmp_path)
        matrix = ExperimentMatrix(MINI_PROFILE)
        planned = matrix.runs_for_algorithm("cc")[0]
        first = execute_planned_run(planned, MINI_PROFILE, store)
        assert first.ok
        second = execute_planned_run(planned, MINI_PROFILE, store)
        assert second.ok
        assert second.trace.to_dict() == first.trace.to_dict()

    def test_failure_cached(self, tmp_path):
        from repro.experiments.config import ExperimentMatrix

        store = ResultStore(tmp_path)
        matrix = ExperimentMatrix(MINI_PROFILE)
        ad_runs = matrix.runs_for_algorithm("diameter")
        failing = [p for p in ad_runs
                   if p.spec.nedges == max(MINI_PROFILE.ga_sizes)][0]
        first = execute_planned_run(failing, MINI_PROFILE, store)
        assert not first.ok
        assert first.failure.kind == "memory"
        second = execute_planned_run(failing, MINI_PROFILE, store)
        assert not second.ok and second.failure.kind == "memory"
        assert second.source == "cache"
        # Expected (memory) failures are never re-executed, even under
        # --resume: the budget check is deterministic.
        resumed = execute_planned_run(failing, MINI_PROFILE, store,
                                      resume=True)
        assert resumed.source == "cache"


class TestEnsemblePipeline:
    """The paper's Section 5 findings, asserted qualitatively on the
    mini corpus (shape, not absolute values)."""

    def test_unrestricted_beats_single_algorithm_spread(self, mini_corpus):
        vecs = mini_corpus.vectors()
        unrestricted = best_ensemble(vecs, 8, "spread").score
        single_scores = []
        for alg in CORPUS_ALGORITHMS:
            sub = [v for v in vecs if v.tag[0] == alg]
            if len(sub) >= 8:
                single_scores.append(best_ensemble(sub, 8, "spread").score)
        assert unrestricted >= max(single_scores)
        # Paper finding (3): the gain is large (≥ 2× here vs ~3× at
        # cluster scale).
        assert unrestricted > 1.5 * np.median(single_scores)

    def test_unrestricted_beats_single_algorithm_coverage(self, mini_corpus):
        space = BehaviorSpace()
        samples = space.sample(MINI_PROFILE.coverage_samples, seed=0)
        vecs = mini_corpus.vectors()
        unrestricted = best_ensemble(vecs, 8, "coverage",
                                     samples=samples).score
        single = []
        for alg in CORPUS_ALGORITHMS:
            sub = [v for v in vecs if v.tag[0] == alg]
            if len(sub) >= 8:
                single.append(best_ensemble(sub, 8, "coverage",
                                            samples=samples).score)
        assert unrestricted >= max(single)

    def test_upper_bounds_dominate_everything(self, mini_corpus):
        space = BehaviorSpace()
        samples = space.sample(MINI_PROFILE.coverage_samples, seed=0)
        vecs = mini_corpus.vectors()
        ub = UpperBounds.compute([5, 10], samples=samples)
        for i, size in enumerate(ub.sizes):
            best_s = best_ensemble(vecs, size, "spread").score
            best_c = best_ensemble(vecs, size, "coverage",
                                   samples=samples).score
            assert best_s <= ub.spread_bound[i] + 1e-9
            assert best_c <= ub.coverage_bound[i] + 1e-9

    def test_top100_frequency_analysis(self, mini_corpus):
        vecs = mini_corpus.vectors()
        top = top_k_ensembles(vecs, 6, "spread", k=50)
        rep = algorithm_frequencies(top)
        assert sum(rep.slot_share.values()) == pytest.approx(1.0)
        # Some algorithms contribute much more than others (paper §5.5):
        # the best-contributing algorithm takes far more than a fair
        # share of slots, and several of the 11 never appear at all.
        shares = rep.ranked()
        assert shares[0][1] > 2.0 / len(CORPUS_ALGORITHMS)
        assert len(shares) < len(CORPUS_ALGORITHMS)

    def test_limited_algorithms_keep_most_spread(self, mini_corpus):
        vecs = mini_corpus.vectors()
        full = best_ensemble(vecs, 6, "spread")
        rep = algorithm_frequencies(
            top_k_ensembles(vecs, 6, "spread", k=50))
        top3 = tuple(rep.top_algorithms(3))
        limited_pool = limit_to_algorithms(vecs, top3)
        limited = best_ensemble(limited_pool, 6, "spread")
        # Paper finding (5): the 3-algorithm suite keeps a high spread —
        # at least matching the best any *single* algorithm achieves.
        best_single = max(
            best_ensemble([v for v in vecs if v.tag[0] == alg], 6,
                          "spread").score
            for alg in CORPUS_ALGORITHMS
            if len([v for v in vecs if v.tag[0] == alg]) >= 6)
        assert limited.score >= 0.95 * best_single
        assert limited.score <= full.score + 1e-9

    def test_scores_recompute(self, mini_corpus):
        vecs = mini_corpus.vectors()
        res = best_ensemble(vecs, 5, "spread")
        assert res.score == pytest.approx(spread(res.ensemble), rel=1e-9)
