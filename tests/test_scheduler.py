"""Supervised DAG scheduler tests: the task-board state machine
(unit + hypothesis property), lease expiry / re-dispatch, poison-cell
quarantine, the circuit breaker's inline fallback, speculative
re-execution, quarantine GC, and the scheduler CLI flags.

The board tests are pure (injected clocks, no processes); the
integration tests spawn a real worker crew and drive the hung-worker
failure mode through ``REPRO_INJECT_STALL``.
"""

import json
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util.errors import RunTimeoutError
from repro.behavior.run import INJECT_SLEEP_ENV, run_computation
from repro.experiments.config import ExperimentMatrix, Profile
from repro.experiments.corpus import (
    BehaviorCorpus,
    build_corpus,
    execute_planned_run,
    run_cache_key,
)
from repro.experiments.failures import RunFailure, full_jitter_backoff
from repro.experiments.results import ResultStore
from repro.experiments.scheduler import (
    _ALLOWED_TRANSITIONS,
    SUPERVISOR_WORKER,
    CircuitBreaker,
    SchedulerConfig,
    SchedulerError,
    Supervisor,
    Task,
    TaskBoard,
)
from repro.experiments.worksite import (
    INJECT_STALL_ENV,
    INJECT_STALL_TOKENS_ENV,
    HeartbeatWriter,
    WorkerContext,
    Worksite,
)

#: Tiny profile so supervised builds finish in seconds.
SCHED_PROFILE = Profile(
    name="sched",
    ga_sizes=(200, 600),
    cf_sizes=(80, 200),
    matrix_rows=(30,),
    grid_sides=(8,),
    mrf_edges=(40,),
    memory_budget_bytes=1_400_000,
    ad_n_hashes=64,
    coverage_samples=1_000,
    seed=11,
    alphas=(2.0, 2.5),
)

#: Substring of one cell's task id (``run:<profile>-<alg>-<spec key>``)
#: that matches neither that spec's materialize task nor other cells.
STALL_TARGET = "cc-ga-ne200-a2.0"


def _board(**kwargs) -> TaskBoard:
    kwargs.setdefault("lease_timeout_s", 1.0)
    kwargs.setdefault("backoff_base_s", 0.0)
    return TaskBoard(**kwargs)


def _plan_for(algorithms) -> list:
    matrix = ExperimentMatrix(SCHED_PROFILE)
    return [p for p in matrix.corpus_runs() if p.algorithm in algorithms]


def _worker_ctx(store) -> WorkerContext:
    return WorkerContext(
        store_root=str(store.root) if store is not None else None,
        profile=SCHED_PROFILE, timeout_s=None, retries=0, resume=False,
        health_policy=None, health_check_every=None, checkpoint_dir=None,
        checkpoint_every=None, graph_cache_bytes=None, obs_level="off",
        obs_dir=None, run_id=None)


# ----------------------------------------------------------------------
# TaskBoard: the pure state machine
# ----------------------------------------------------------------------
class TestTaskBoard:
    def test_duplicate_and_unknown_dep_rejected(self):
        board = _board()
        board.add(Task("a", "run"))
        with pytest.raises(SchedulerError):
            board.add(Task("a", "run"))
        with pytest.raises(SchedulerError):
            board.add(Task("b", "run", deps=("missing",)))

    def test_ready_gates_on_deps_and_backoff(self):
        board = _board()
        board.add(Task("mat", "materialize"))
        board.add(Task("r1", "run", deps=("mat",)))
        late = board.add(Task("r2", "run"))
        late.not_before = 5.0
        assert [t.id for t in board.ready(0.0)] == ["mat"]
        epoch = board.lease("mat", 0, 0.0)
        board.complete("mat", None)
        assert epoch == 1
        # Dep terminal -> r1 dispatchable; r2 still behind its backoff.
        assert [t.id for t in board.ready(1.0)] == ["r1"]
        assert [t.id for t in board.ready(5.0)] == ["r1", "r2"]

    def test_deps_are_ordering_not_success_edges(self):
        board = _board()
        board.add(Task("mat", "materialize"))
        board.add(Task("r", "run", deps=("mat",)))
        epoch = board.lease("mat", 0, 0.0)
        board.fail("mat", epoch, RunFailure(kind="crash", message="boom"))
        # A failed materialize leaves its cells runnable.
        assert [t.id for t in board.ready(1.0)] == ["r"]

    def test_lease_complete_lifecycle(self):
        board = _board()
        task = board.add(Task("r", "run"))
        epoch = board.lease("r", 3, 10.0)
        assert task.status == "leased"
        assert task.find_lease(3, epoch).deadline == pytest.approx(11.0)
        assert board.complete("r", "payload")
        assert task.status == "done" and task.result == "payload"
        assert not task.leases
        with pytest.raises(SchedulerError):
            board.lease("r", 0, 12.0)  # terminal states are final

    def test_complete_is_first_wins(self):
        board = _board()
        board.add(Task("r", "run"))
        board.lease("r", 0, 0.0)
        assert board.complete("r", "first")
        assert not board.complete("r", "second")
        assert board.get("r").result == "first"

    def test_late_completion_of_requeued_task_is_accepted(self):
        """A revoked lease's worker finishing late is still a valid
        answer (byte-identical store write), so a pending task may be
        completed — through a supervisor re-own, never pending->done."""
        board = _board()
        task = board.add(Task("r", "run"))
        epoch = board.lease("r", 0, 0.0)
        lease = task.find_lease(0, epoch)
        assert board.revoke_lease(task, lease, 2.0) == "requeued"
        assert task.status == "pending"
        assert board.complete("r", "late-but-right")
        assert task.status == "done"

    def test_renew_pushes_deadline_stale_beats_ignored(self):
        board = _board(lease_timeout_s=2.0)
        task = board.add(Task("r", "run"))
        epoch = board.lease("r", 1, 0.0)
        assert board.renew(1, "r", epoch, ts=1.5)
        assert task.find_lease(1).deadline == pytest.approx(3.5)
        # A renewal can only extend, never shorten.
        assert board.renew(1, "r", epoch, ts=0.1)
        assert task.find_lease(1).deadline == pytest.approx(3.5)
        assert not board.renew(1, "r", epoch + 7, ts=9.0)  # stale epoch
        assert not board.renew(2, "r", epoch, ts=9.0)      # wrong worker
        assert not board.renew(1, "missing", epoch, ts=9.0)

    def test_expiry_requeues_with_jitter_backoff(self):
        board = _board(backoff_base_s=0.5, backoff_cap_s=4.0)
        task = board.add(Task("r", "run"))
        epoch = board.lease("r", 0, 0.0)
        assert board.expired_leases(0.5) == []
        [(expired_task, lease)] = board.expired_leases(1.5)
        assert expired_task is task and lease.epoch == epoch
        assert board.revoke_lease(task, lease, 1.5) == "requeued"
        assert task.status == "pending"
        assert task.lease_expiries == 1
        assert task.failure.kind == "lease-expired"
        expected = full_jitter_backoff(0.5, 1, key="r", cap_s=4.0)
        assert task.not_before == pytest.approx(1.5 + expected)
        assert board.total_lease_expiries == 1

    def test_quarantine_after_exactly_k_expiries(self):
        board = _board(max_lease_expiries=2)
        task = board.add(Task("r", "run"))
        for attempt in range(2):
            epoch = board.lease("r", attempt, float(attempt))
            lease = task.find_lease(attempt, epoch)
            outcome = board.revoke_lease(task, lease, float(attempt) + 2)
        assert outcome == "quarantined"
        assert task.status == "quarantined"
        assert task.lease_expiries == 2
        assert task.failure.kind == "quarantined-poison"
        with pytest.raises(SchedulerError):
            board.lease("r", 9, 99.0)
        assert not board.complete("r", "too-late")

    def test_fail_requires_live_epoch(self):
        board = _board()
        task = board.add(Task("r", "run"))
        epoch = board.lease("r", 0, 0.0)
        lease = task.find_lease(0, epoch)
        board.revoke_lease(task, lease, 2.0)
        # The revoked attempt's failure report is stale: dropped.
        assert not board.fail("r", epoch, RunFailure(kind="crash",
                                                     message="stale"))
        assert task.status == "pending"
        epoch2 = board.lease("r", 1, 2.0)
        assert board.fail("r", epoch2, RunFailure(kind="crash",
                                                  message="live"))
        assert task.status == "failed"
        assert task.failure.message == "live"

    def test_speculative_twin_survives_primary_revocation(self):
        board = _board()
        task = board.add(Task("r", "run"))
        e1 = board.lease("r", 0, 0.0)
        board.lease("r", 1, 0.5, speculative=True)
        assert task.speculated and len(task.leases) == 2
        primary = task.find_lease(0, e1)
        assert board.revoke_lease(task, primary, 2.0) == "survived"
        assert task.status == "leased"  # the shadow still owns it
        assert board.complete("r", "shadow-wins")
        assert task.status == "done"

    def test_speculative_lease_requires_leased_task(self):
        board = _board()
        board.add(Task("r", "run"))
        with pytest.raises(SchedulerError):
            board.lease("r", 0, 0.0, speculative=True)

    def test_transitions_are_observable_and_legal(self):
        seen = []
        board = _board(
            on_transition=lambda t, old, new, info: seen.append((old, new)))
        task = board.add(Task("r", "run"))
        epoch = board.lease("r", 0, 0.0)
        board.revoke_lease(task, task.find_lease(0, epoch), 2.0)
        board.lease("r", 1, 2.0)
        board.complete("r", "v")
        assert seen == [("pending", "leased"), ("leased", "pending"),
                        ("pending", "leased"), ("leased", "done")]
        for old, new in seen:
            assert new in _ALLOWED_TRANSITIONS[old]

    def test_counts(self):
        board = _board()
        board.add(Task("a", "run"))
        board.add(Task("b", "run"))
        board.lease("a", 0, 0.0)
        board.complete("a", None)
        counts = board.counts()
        assert counts["done"] == 1 and counts["pending"] == 1
        assert not board.all_terminal()


# ----------------------------------------------------------------------
# Property test: every task terminates under random kills/stalls
# ----------------------------------------------------------------------
class TestTaskBoardProperty:
    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_every_task_reaches_a_terminal_state(self, data):
        """Drive a random DAG through a random schedule of leases,
        completions, failures, renewals, and worker kills (revocations),
        then let a draining supervisor loop run: every task must land
        in a terminal state, via legal transitions only, with the
        poison budget exactly enforced."""
        k = data.draw(st.integers(1, 3), label="max_lease_expiries")
        transitions = []
        board = TaskBoard(
            lease_timeout_s=10.0, max_lease_expiries=k,
            backoff_base_s=0.0,
            on_transition=lambda t, old, new, info:
                transitions.append((t.id, old, new)))
        ids = []
        for i in range(data.draw(st.integers(1, 6), label="n_tasks")):
            deps = (tuple(data.draw(
                st.sets(st.sampled_from(ids), max_size=2), label="deps"))
                if ids else ())
            board.add(Task(f"t{i}", "run", deps=deps))
            ids.append(f"t{i}")

        now = 0.0
        for _ in range(data.draw(st.integers(0, 30), label="n_events")):
            now += 1.0
            action = data.draw(st.sampled_from(
                ["lease", "complete", "fail", "kill", "renew"]),
                label="action")
            leased = board.leased()
            if action == "lease":
                ready = board.ready(now)
                if ready:
                    task = data.draw(st.sampled_from(ready))
                    board.lease(task.id,
                                data.draw(st.integers(0, 3)), now)
            elif action == "complete" and leased:
                board.complete(data.draw(st.sampled_from(leased)).id, "v")
            elif action == "fail" and leased:
                task = data.draw(st.sampled_from(leased))
                board.fail(task.id, task.leases[-1].epoch,
                           RunFailure(kind="crash", message="x"))
            elif action == "kill" and leased:
                # SIGKILL / hard stall: the lease is lost, the task is
                # requeued or quarantined.
                task = data.draw(st.sampled_from(leased))
                board.revoke_lease(task, task.leases[-1], now,
                                   reason="worker-died")
            elif action == "renew" and leased:
                task = data.draw(st.sampled_from(leased))
                board.renew(task.leases[-1].worker, task.id,
                            task.leases[-1].epoch, now)

        # Drain: what the supervisor's main loop guarantees — expired
        # leases are revoked, ready tasks are dispatched and finished.
        for _round in range(200):
            if board.all_terminal():
                break
            now += 1_000.0
            for task, lease in board.expired_leases(now):
                board.revoke_lease(task, lease, now)
            for task in board.ready(now):
                board.lease(task.id, 0, now)
                board.complete(task.id, "v")
        assert board.all_terminal()

        for task in board.tasks.values():
            assert task.lease_expiries <= k
            if task.status == "quarantined":
                assert task.lease_expiries == k
                assert task.failure.kind == "quarantined-poison"
        for _task_id, old, new in transitions:
            assert new in _ALLOWED_TRANSITIONS[old]


# ----------------------------------------------------------------------
# Circuit breaker + backoff
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def test_stays_closed_below_min_events(self):
        breaker = CircuitBreaker(window=8, min_events=4, threshold=0.5)
        for _ in range(3):
            breaker.record(True)
        assert not breaker.open

    def test_opens_on_failure_fraction(self):
        breaker = CircuitBreaker(window=8, min_events=4, threshold=0.5)
        for outcome in (True, False, True, True, True):
            breaker.record(outcome)
        assert breaker.open
        assert breaker.state == "open"
        assert breaker.trips == 1

    def test_open_latches_against_stale_successes(self):
        """Once tripped, results from pre-trip dispatches trickling in
        must not silently close the breaker mid-degrade."""
        breaker = CircuitBreaker(window=4, min_events=4, threshold=0.5)
        for _ in range(4):
            breaker.record(True)
        assert breaker.state == "open"
        for _ in range(8):
            breaker.record(False)
        assert breaker.state == "open"

    def test_trip_halfopen_close(self):
        breaker = CircuitBreaker(window=8, min_events=2, threshold=0.5,
                                 cooldown_s=10.0)
        breaker.record(True, now=0.0)
        breaker.record(True, now=1.0)
        assert breaker.state == "open"
        # Cooldown not elapsed: still open, no probe.
        assert not breaker.probe_due(5.0)
        assert breaker.state == "open"
        # Cooldown elapsed: exactly one transition to half-open.
        assert breaker.probe_due(11.0)
        assert breaker.state == "half-open"
        assert not breaker.probe_due(12.0)  # probe already granted
        # Probe success closes the breaker and resets the window.
        breaker.record(False, now=12.0)
        assert breaker.state == "closed"
        assert not breaker.open
        assert breaker.failures == 0

    def test_trip_halfopen_retrip(self):
        breaker = CircuitBreaker(window=8, min_events=2, threshold=0.5,
                                 cooldown_s=10.0)
        breaker.record(True, now=0.0)
        breaker.record(True, now=0.0)
        assert breaker.probe_due(10.5)
        # Probe failure re-trips for another full cooldown from *now*.
        breaker.record(True, now=11.0)
        assert breaker.state == "open"
        assert breaker.trips == 2
        assert not breaker.probe_due(20.0)  # 9s into the new cooldown
        assert breaker.probe_due(21.5)
        breaker.record(False, now=22.0)
        assert breaker.state == "closed"


class TestFullJitterBackoff:
    def test_deterministic_per_key_and_attempt(self):
        a = full_jitter_backoff(0.1, 3, key="run:cc")
        assert a == full_jitter_backoff(0.1, 3, key="run:cc")
        draws = {full_jitter_backoff(0.1, 3, key=f"run:{i}")
                 for i in range(16)}
        assert len(draws) > 1  # jitter actually varies across keys

    def test_bounded_by_exponential_ceiling_and_cap(self):
        for attempt in range(1, 8):
            value = full_jitter_backoff(0.2, attempt, key="x", cap_s=1.5)
            assert 0.0 <= value <= min(1.5, 0.2 * 2 ** (attempt - 1))

    def test_disabled_cases(self):
        assert full_jitter_backoff(0.0, 3, key="x") == 0.0
        assert full_jitter_backoff(0.5, 0, key="x") == 0.0


# ----------------------------------------------------------------------
# Worksite heartbeats
# ----------------------------------------------------------------------
class TestWorksite:
    def test_heartbeat_roundtrip_and_task_tagging(self, tmp_path):
        site = Worksite(tmp_path / "site")
        writer = HeartbeatWriter(site.heartbeat_path(2), 2, every_s=0.05)
        writer.beat()
        beat = site.read_heartbeats()[2]
        assert beat.worker == 2 and beat.task_id is None
        writer.set_task("run:abc", epoch=7)
        beat = site.read_heartbeats()[2]
        assert beat.task_id == "run:abc" and beat.epoch == 7
        site.remove_heartbeat(2)
        assert site.read_heartbeats() == {}

    def test_torn_beat_files_are_skipped(self, tmp_path):
        site = Worksite(tmp_path / "site")
        site.heartbeat_path(0).write_text('{"worker": 0, "pid"',
                                          encoding="utf-8")
        site.heartbeat_path(1).write_text(
            json.dumps({"worker": 1, "pid": 42, "ts": 1.0,
                        "task_id": None, "epoch": 0}),
            encoding="utf-8")
        beats = site.read_heartbeats()
        assert set(beats) == {1}

    def test_suspend_models_a_hang(self, tmp_path):
        site = Worksite(tmp_path / "site")
        writer = HeartbeatWriter(site.heartbeat_path(0), 0, every_s=0.05)
        writer.start()
        try:
            writer.suspend()
            stale = site.read_heartbeats()[0].ts
            time.sleep(0.2)
            assert site.read_heartbeats()[0].ts == stale
            writer.resume()
            assert site.read_heartbeats()[0].ts > stale
        finally:
            writer.stop()

    def test_cleanup_removes_beats_and_directory(self, tmp_path):
        root = tmp_path / "site"
        site = Worksite(root)
        HeartbeatWriter(site.heartbeat_path(0), 0).beat()
        site.cleanup()
        assert not root.exists()


# ----------------------------------------------------------------------
# Quarantine GC (satellite: bounded retention, oldest-first sweep)
# ----------------------------------------------------------------------
class TestQuarantineGC:
    def _populate(self, qdir, n):
        qdir.mkdir(parents=True, exist_ok=True)
        import os

        for i in range(n):
            path = qdir / f"entry-{i}.json"
            path.write_text("{}", encoding="utf-8")
            os.utime(path, (i, i))  # strictly increasing mtimes

    def test_result_store_sweeps_oldest_first(self, tmp_path):
        store = ResultStore(tmp_path)
        self._populate(store.quarantine_dir, 6)
        assert store.gc_quarantine(2) == 4
        survivors = sorted(p.name for p in
                           store.quarantine_dir.glob("*.json"))
        assert survivors == ["entry-4.json", "entry-5.json"]
        assert store.gc_quarantine(2) == 0  # idempotent

    def test_result_store_gc_edge_cases(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.gc_quarantine(5) == 0  # no quarantine dir yet
        self._populate(store.quarantine_dir, 2)
        assert store.gc_quarantine(-1) == 0  # negative keep: no-op
        assert store.gc_quarantine(0) == 2  # keep nothing

    def test_quarantine_call_auto_sweeps(self, tmp_path, monkeypatch):
        import repro.experiments.results as results_mod

        monkeypatch.setattr(results_mod, "QUARANTINE_MAX_ENTRIES", 3)
        store = ResultStore(tmp_path)
        self._populate(store.quarantine_dir, 5)
        (tmp_path / "bad.json").write_text("not json", encoding="utf-8")
        assert store.quarantine(tmp_path / "bad.json") is not None
        assert store.n_quarantined() == 3

    def test_snapshot_store_gc(self, tmp_path):
        from repro.engine import SnapshotStore

        snaps = SnapshotStore(tmp_path)
        qdir = tmp_path / "quarantine"
        qdir.mkdir()
        import os

        for i in range(4):
            path = qdir / f"old-{i}.snap"
            path.write_bytes(b"x")
            os.utime(path, (i, i))
        assert snaps.gc_quarantine(1) == 3
        assert [p.name for p in qdir.glob("*.snap")] == ["old-3.snap"]

    def test_build_corpus_gc_flag_records_sweep(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        self._populate(store.quarantine_dir, 4)
        corpus = build_corpus(SCHED_PROFILE, store=store, workers=1,
                              gc_quarantine=1)
        assert corpus.quarantine_swept["results"] == 3
        assert "quarantine sweep" in corpus.summary()


# ----------------------------------------------------------------------
# Materialize-phase wall-clock budget (satellite 1)
# ----------------------------------------------------------------------
class TestMaterializePhaseBudget:
    @staticmethod
    def _target_planned():
        return next(p for p in _plan_for({"cc"})
                    if STALL_TARGET in f"cc-{p.spec.cache_key()}")

    def test_sigalrm_timeout_names_the_materialize_phase(self, monkeypatch):
        planned = self._target_planned()
        monkeypatch.setenv(INJECT_SLEEP_ENV, f"{STALL_TARGET}:5")
        with pytest.raises(RunTimeoutError) as err:
            run_computation("cc", planned.spec, timeout_s=0.3)
        assert "(phase: materialize)" in str(err.value)

    def test_cooperative_fallback_also_covers_materialize(self, monkeypatch):
        """Off the main thread SIGALRM is unavailable; the cooperative
        deadline must still bound materialization (not grant the engine
        a fresh full budget afterwards)."""
        import warnings

        planned = self._target_planned()
        monkeypatch.setenv(INJECT_SLEEP_ENV, f"{STALL_TARGET}:5")
        caught = []

        def body():
            try:
                with warnings.catch_warnings():
                    warnings.simplefilter("ignore")
                    run_computation("cc", planned.spec, timeout_s=0.3)
            except RunTimeoutError as exc:
                caught.append(exc)
            except Exception:  # pragma: no cover - diagnosis aid
                pass

        thread = threading.Thread(target=body)
        thread.start()
        thread.join(timeout=30)
        assert caught, "cooperative deadline never fired"
        message = str(caught[0])
        assert "(phase: materialize)" in message
        assert "cooperative" in message


# ----------------------------------------------------------------------
# Integration: real crews, injected stalls
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def clean_corpus():
    """Undisturbed inline build of the module profile, for vector
    comparisons."""
    return build_corpus(SCHED_PROFILE, use_cache=False, workers=1)


class TestLeaseExpiryIntegration:
    def test_stalled_worker_is_revoked_and_build_is_bit_identical(
            self, tmp_path, monkeypatch, clean_corpus):
        """A worker that hangs (stops heartbeating) on one cell loses
        its lease; the cell is re-dispatched and the finished corpus is
        bit-identical to an undisturbed build, with the expiry visible
        in telemetry."""
        token_dir = tmp_path / "stall-tokens"
        token_dir.mkdir()
        (token_dir / "token-0").touch()
        monkeypatch.setenv(INJECT_STALL_ENV, f"{STALL_TARGET}:30")
        monkeypatch.setenv(INJECT_STALL_TOKENS_ENV, str(token_dir))
        obs_dir = tmp_path / "obs"
        corpus = build_corpus(
            SCHED_PROFILE, store=ResultStore(tmp_path / "cache"),
            workers=2, lease_timeout_s=1.5, heartbeat_every_s=0.2,
            obs="basic", obs_dir=obs_dir)
        assert not list(token_dir.iterdir()), \
            "the stall never fired — the harness tested nothing"
        assert corpus.lease_expiries >= 1
        assert corpus.workers_replaced >= 1
        assert not corpus.unexpected_failures, \
            [str(f.failure) for f in corpus.failures]
        assert not corpus.degraded_to_inline

        expected = [(v.tag, v.as_array().tolist())
                    for v in clean_corpus.vectors()]
        actual = [(v.tag, v.as_array().tolist()) for v in corpus.vectors()]
        assert actual == expected  # order and content

        events = "".join(p.read_text(encoding="utf-8")
                         for p in obs_dir.rglob("*.jsonl"))
        assert '"lease-expired"' in events
        assert '"task"' in events  # per-transition events present

    def test_no_heartbeat_litter_after_build(self, tmp_path):
        import glob

        before = set(glob.glob("/tmp/repro-worksite-*"))
        build_corpus(SCHED_PROFILE, store=ResultStore(tmp_path / "cache"),
                     workers=2)
        leaked = set(glob.glob("/tmp/repro-worksite-*")) - before
        assert not leaked, f"leaked worksites: {leaked}"


class TestPoisonQuarantine:
    def test_poison_cell_quarantined_after_k_expiries(self, tmp_path,
                                                      monkeypatch):
        """A cell that hangs every worker that touches it (unbounded
        stall injection) is quarantined after K lost leases instead of
        hanging or aborting the build; the verdict is persisted as a
        non-retryable failure."""
        monkeypatch.setenv(INJECT_STALL_ENV, f"{STALL_TARGET}:60")
        monkeypatch.delenv(INJECT_STALL_TOKENS_ENV, raising=False)
        store = ResultStore(tmp_path / "cache")
        plan = _plan_for({"cc"})
        corpus = BehaviorCorpus(profile=SCHED_PROFILE)
        config = SchedulerConfig(
            lease_timeout_s=0.8, heartbeat_every_s=0.2,
            max_lease_expiries=2, breaker_min_events=1_000)
        started = time.perf_counter()
        Supervisor(plan=plan, profile=SCHED_PROFILE, store=store,
                   corpus=corpus, workers=2, ctx=_worker_ctx(store),
                   config=config, use_shm=False).run()
        elapsed = time.perf_counter() - started
        assert elapsed < 60, "the poison cell hung the build"

        poisoned = [f for f in corpus.failures
                    if f.failure.kind == "quarantined-poison"]
        assert len(poisoned) == 1
        assert STALL_TARGET in run_cache_key(
            next(p for p in plan
                 if p.algorithm == poisoned[0].algorithm
                 and p.spec == poisoned[0].spec), SCHED_PROFILE)
        assert corpus.lease_expiries >= 2
        # The healthy siblings completed despite the poison.
        assert len(corpus.runs) == len(plan) - 1
        # quarantined-poison exits 3 through the unexpected-failure
        # path: it is neither expected nor retryable.
        assert poisoned[0] in corpus.unexpected_failures
        assert not poisoned[0].failure.retryable

        # The verdict is persisted: a replayed build consumes it from
        # the cache instead of feeding the cell to a fresh crew.
        target = next(p for p in plan
                      if STALL_TARGET in run_cache_key(p, SCHED_PROFILE))
        key = run_cache_key(target, SCHED_PROFILE)
        assert store.load_failure(key).kind == "quarantined-poison"
        monkeypatch.delenv(INJECT_STALL_ENV)
        replayed = execute_planned_run(target, SCHED_PROFILE, store)
        assert replayed.source == "cache"
        assert replayed.failure.kind == "quarantined-poison"


class TestCircuitBreaker_Integration:
    def test_unhealthy_crew_degrades_to_inline_execution(self, tmp_path,
                                                         monkeypatch):
        """When every worker stalls (systemic infra failure), the
        breaker opens and the supervisor finishes the build inline —
        complete and correct, just not parallel."""
        monkeypatch.setenv(INJECT_STALL_ENV, "run:sched:60")
        monkeypatch.delenv(INJECT_STALL_TOKENS_ENV, raising=False)
        store = ResultStore(tmp_path / "cache")
        plan = _plan_for({"cc"})
        corpus = BehaviorCorpus(profile=SCHED_PROFILE)
        config = SchedulerConfig(
            lease_timeout_s=0.6, heartbeat_every_s=0.2,
            max_lease_expiries=100,  # requeue, don't quarantine
            breaker_window=8, breaker_min_events=2,
            breaker_threshold=0.5)
        Supervisor(plan=plan, profile=SCHED_PROFILE, store=store,
                   corpus=corpus, workers=2, ctx=_worker_ctx(store),
                   config=config, use_shm=False).run()
        assert corpus.degraded_to_inline
        assert len(corpus.runs) == len(plan)
        assert not corpus.failures
        assert "degraded to inline" in corpus.summary()


class TestSpeculativeExecution:
    def test_straggler_is_shadowed_and_first_completion_wins(
            self, tmp_path, monkeypatch):
        """With speculation on, an idle worker shadows a straggling
        cell; the shadow's completion lands first and the build does
        not wait out the straggler's stall."""
        token_dir = tmp_path / "stall-tokens"
        token_dir.mkdir()
        (token_dir / "token-0").touch()
        monkeypatch.setenv(INJECT_STALL_ENV, f"{STALL_TARGET}:25")
        monkeypatch.setenv(INJECT_STALL_TOKENS_ENV, str(token_dir))
        store = ResultStore(tmp_path / "cache")
        plan = _plan_for({"cc"})
        corpus = BehaviorCorpus(profile=SCHED_PROFILE)
        config = SchedulerConfig(
            lease_timeout_s=120.0,  # no expiry: speculation must save us
            heartbeat_every_s=0.2, speculative=True)
        started = time.perf_counter()
        Supervisor(plan=plan, profile=SCHED_PROFILE, store=store,
                   corpus=corpus, workers=3, ctx=_worker_ctx(store),
                   config=config, use_shm=False).run()
        elapsed = time.perf_counter() - started
        assert corpus.speculative_runs >= 1
        assert len(corpus.runs) == len(plan)
        assert not corpus.failures
        assert elapsed < 25, "the build waited out the straggler"
        assert "speculative" in corpus.summary()


# ----------------------------------------------------------------------
# CLI wiring
# ----------------------------------------------------------------------
class TestCliFlags:
    def test_scheduler_flags_forward_to_build_corpus(self, capsys,
                                                     monkeypatch):
        import repro.experiments.corpus as corpus_mod
        from repro.cli import main

        captured = {}

        def fake_build(profile=None, **kwargs):
            captured.update(kwargs)
            return BehaviorCorpus(profile=SCHED_PROFILE)

        monkeypatch.setattr(corpus_mod, "build_corpus", fake_build)
        code = main(["corpus", "--workers", "4",
                     "--lease-timeout", "2.5", "--heartbeat-every", "0.5",
                     "--max-lease-expiries", "5", "--speculative",
                     "--gc-quarantine", "64"])
        capsys.readouterr()
        assert code == 0
        assert captured["workers"] == 4
        assert captured["lease_timeout_s"] == 2.5
        assert captured["heartbeat_every_s"] == 0.5
        assert captured["max_lease_expiries"] == 5
        assert captured["speculative"] is True
        assert captured["gc_quarantine"] == 64

    def test_scheduler_flags_default_to_none(self, capsys, monkeypatch):
        import repro.experiments.corpus as corpus_mod
        from repro.cli import main

        captured = {}

        def fake_build(profile=None, **kwargs):
            captured.update(kwargs)
            return BehaviorCorpus(profile=SCHED_PROFILE)

        monkeypatch.setattr(corpus_mod, "build_corpus", fake_build)
        assert main(["corpus"]) == 0
        capsys.readouterr()
        assert captured["lease_timeout_s"] is None
        assert captured["heartbeat_every_s"] is None
        assert captured["max_lease_expiries"] is None
        assert captured["speculative"] is False
        assert captured["gc_quarantine"] is None
