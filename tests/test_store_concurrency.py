"""Cross-process concurrency tests for the on-disk stores.

The distributed queue's first-completion-wins story rests on one
claim: :class:`~repro.experiments.results.ResultStore` and
:class:`~repro.engine.checkpoint.SnapshotStore` stay consistent under
concurrent writers from *different processes* — atomic publishes
never tear, duplicate writers of the same content are harmless, a
writer killed mid-stage leaves only ignorable ``.tmp`` litter, and a
quarantine sweep can race a live writer without either crashing.

These tests exercise exactly that, with real forked processes.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import os

import pytest

from repro.behavior.trace import IterationRecord, RunTrace
from repro.engine.checkpoint import Snapshot, SnapshotStore
from repro.experiments.failures import RunFailure
from repro.experiments.results import ResultStore

N_PROCS = 4
N_ROUNDS = 20


def _trace_for(key: str) -> RunTrace:
    """Deterministic per-key trace: duplicate writers of one key write
    byte-identical JSON, exactly like duplicate executions of one
    corpus cell."""
    n = sum(key.encode()) % 7 + 2
    return RunTrace(
        algorithm=f"algo-{key}", graph_params={"nedges": n, "seed": 1},
        domain="ga", n_vertices=n * 5, n_edges=n * 10,
        iterations=[IterationRecord(i, n, n, 2 * n, n, 0.25)
                    for i in range(n)])


def _snapshot_for(key: str, iteration: int) -> Snapshot:
    return Snapshot(
        engine="synchronous", algorithm=f"algo-{key}",
        n_vertices=10, n_edges=20, iteration=iteration,
        trace=RunTrace(algorithm=f"algo-{key}", graph_params={},
                       domain="ga", n_vertices=10, n_edges=20),
        payload={"round": iteration})


def _run_procs(target, argslist) -> None:
    ctx = mp.get_context("fork")
    procs = [ctx.Process(target=target, args=args) for args in argslist]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=60)
    codes = [p.exitcode for p in procs]
    assert all(code == 0 for code in codes), f"child exit codes: {codes}"


# ----------------------------------------------------------------------
# Child bodies (module-level so fork + join report clean exit codes)
# ----------------------------------------------------------------------
def _result_writer(root, keys, rounds) -> None:
    store = ResultStore(root)
    for r in range(rounds):
        for key in keys:
            store.save(key, _trace_for(key))


def _result_reader(root, keys, rounds) -> None:
    store = ResultStore(root)
    for r in range(rounds * 2):
        for key in keys:
            trace = store.load(key)
            # Absent (not yet written) is fine; torn/corrupt is not —
            # load() would quarantine, which the parent asserts on.
            if trace is not None:
                assert trace.algorithm == f"algo-{key}"


def _result_flip_flopper(root, key, rounds, as_failure) -> None:
    store = ResultStore(root)
    for r in range(rounds):
        if as_failure:
            store.save_failure(key, RunFailure(kind="crash", message="x"))
        else:
            store.save(key, _trace_for(key))


def _result_corrupt_and_load(root, keys, rounds) -> None:
    store = ResultStore(root)
    for r in range(rounds):
        for key in keys:
            path = store._path(key)
            path.write_text("{torn json", encoding="utf-8")
            assert store.load(key) is None  # quarantined, not crashed


def _result_gc(root, rounds) -> None:
    store = ResultStore(root)
    for r in range(rounds):
        store.gc_quarantine(keep=2)


def _snap_writer(root, key, rounds, stride) -> None:
    store = SnapshotStore(root)
    for i in range(rounds):
        store.save(key, _snapshot_for(key, i * stride + 1))


def _snap_corrupt_and_load(root, key, rounds) -> None:
    store = SnapshotStore(root)
    for r in range(rounds):
        store._latest_path(key).write_bytes(b"\x00 torn snapshot \x00")
        snap = store.load_latest(key)  # falls back or cold-starts
        if snap is not None:
            assert snap.algorithm == f"algo-{key}"


def _snap_gc(root, rounds) -> None:
    store = SnapshotStore(root)
    for r in range(rounds):
        store.gc_quarantine(keep=2)


# ----------------------------------------------------------------------
# ResultStore
# ----------------------------------------------------------------------
class TestResultStoreConcurrency:
    def test_concurrent_same_key_writers_never_tear(self, tmp_path):
        keys = [f"cell-{i}" for i in range(6)]
        _run_procs(_result_writer,
                   [(tmp_path, keys, N_ROUNDS)] * N_PROCS)
        store = ResultStore(tmp_path)
        for key in keys:
            trace = store.load(key)
            assert trace is not None
            assert trace.to_json() == _trace_for(key).to_json()
        assert store.n_quarantined() == 0
        assert not list(tmp_path.glob("*.tmp"))

    def test_readers_race_writers_without_torn_reads(self, tmp_path):
        keys = [f"cell-{i}" for i in range(4)]
        args = ([(tmp_path, keys, N_ROUNDS)] * (N_PROCS - 1))
        ctx = mp.get_context("fork")
        writers = [ctx.Process(target=_result_writer, args=a)
                   for a in args]
        reader = ctx.Process(target=_result_reader,
                             args=(tmp_path, keys, N_ROUNDS))
        for p in writers + [reader]:
            p.start()
        for p in writers + [reader]:
            p.join(timeout=60)
        assert all(p.exitcode == 0 for p in writers + [reader])
        # A torn publish would have been quarantined by a reader.
        assert ResultStore(tmp_path).n_quarantined() == 0

    def test_trace_vs_failure_race_leaves_one_valid_entry(self, tmp_path):
        key = "contested"
        _run_procs(_result_flip_flopper,
                   [(tmp_path, key, N_ROUNDS, i % 2 == 0)
                    for i in range(N_PROCS)])
        store = ResultStore(tmp_path)
        trace, failure = store.load(key), store.load_failure(key)
        assert (trace is None) != (failure is None)  # exactly one form
        assert store.n_quarantined() == 0

    def test_torn_tmp_litter_is_ignored(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save("good", _trace_for("good"))
        litter = store._path("good").with_name(
            store._path("good").name + ".9999.deadbeef.tmp")
        litter.write_text("{half a js", encoding="utf-8")
        assert store.load("good") is not None
        assert sum(1 for _ in store.iter_traces()) == 1
        store.save("good", _trace_for("good"))  # still writable
        assert store.load("good") is not None

    def test_quarantine_sweep_races_live_writer(self, tmp_path):
        keys = [f"cell-{i}" for i in range(3)]
        ctx = mp.get_context("fork")
        procs = [
            ctx.Process(target=_result_corrupt_and_load,
                        args=(tmp_path, keys, N_ROUNDS)),
            ctx.Process(target=_result_gc, args=(tmp_path, N_ROUNDS * 3)),
            ctx.Process(target=_result_writer,
                        args=(tmp_path, ["healthy"], N_ROUNDS)),
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
        assert all(p.exitcode == 0 for p in procs)
        store = ResultStore(tmp_path)
        assert store.load("healthy") is not None
        store.gc_quarantine(keep=2)
        assert store.n_quarantined() <= 2


# ----------------------------------------------------------------------
# SnapshotStore
# ----------------------------------------------------------------------
class TestSnapshotStoreConcurrency:
    def test_concurrent_writers_always_leave_a_whole_generation(
            self, tmp_path):
        key = "run-1"
        _run_procs(_snap_writer,
                   [(tmp_path, key, N_ROUNDS, stride)
                    for stride in range(1, N_PROCS + 1)])
        store = SnapshotStore(tmp_path)
        snap = store.load_latest(key)
        assert snap is not None  # checksum verified
        assert snap.algorithm == "algo-run-1"
        assert snap.payload["round"] == snap.iteration
        assert not list(tmp_path.glob("*.tmp"))

    def test_corrupt_latest_falls_back_to_prev_generation(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.save("k", _snapshot_for("k", 1))
        store.save("k", _snapshot_for("k", 2))  # demotes 1 to .prev
        store._latest_path("k").write_bytes(b"garbage")
        snap = store.load_latest("k")
        assert snap is not None and snap.iteration == 1
        assert store.n_quarantined() == 1

    def test_quarantine_sweep_races_snapshot_writer(self, tmp_path):
        ctx = mp.get_context("fork")
        procs = [
            ctx.Process(target=_snap_writer,
                        args=(tmp_path, "victim", N_ROUNDS, 1)),
            ctx.Process(target=_snap_corrupt_and_load,
                        args=(tmp_path, "victim", N_ROUNDS)),
            ctx.Process(target=_snap_gc, args=(tmp_path, N_ROUNDS * 3)),
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
        assert all(p.exitcode == 0 for p in procs)
        store = SnapshotStore(tmp_path)
        store.save("victim", _snapshot_for("victim", 99))
        snap = store.load_latest("victim")
        assert snap is not None and snap.iteration == 99
