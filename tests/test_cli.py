"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestAlgorithms:
    def test_lists_all(self, capsys):
        code, out, _err = run_cli(capsys, "algorithms")
        assert code == 0
        for name in ("pagerank", "als", "dd", "kmeans"):
            assert name in out


class TestRun:
    def test_run_pagerank(self, capsys):
        code, out, _err = run_cli(
            capsys, "run", "pagerank", "--nedges", "500", "--alpha", "2.5")
        assert code == 0
        assert "pagerank@ga" in out
        assert "behavior:" in out
        assert "activity shape:" in out

    def test_run_fixed_structure_domain(self, capsys):
        code, out, _err = run_cli(capsys, "run", "jacobi", "--nrows", "30")
        assert code == 0
        assert "jacobi@matrix" in out

    def test_run_reference_mode(self, capsys):
        code, out, _err = run_cli(
            capsys, "run", "cc", "--nedges", "200", "--mode", "reference")
        assert code == 0

    def test_run_writes_json(self, capsys, tmp_path):
        path = tmp_path / "trace.json"
        code, out, _err = run_cli(
            capsys, "run", "sssp", "--nedges", "300", "--json", str(path))
        assert code == 0
        data = json.loads(path.read_text())
        assert data["algorithm"] == "sssp"

    def test_unknown_algorithm_fails_cleanly(self, capsys):
        code, _out, err = run_cli(capsys, "run", "quantumrank")
        assert code == 1
        assert "unknown algorithm" in err

    def test_max_iterations_flag(self, capsys):
        code, out, _err = run_cli(
            capsys, "run", "kmeans", "--nedges", "400",
            "--max-iterations", "3")
        assert code == 0
        assert "iterations=3" in out

    def test_injected_fault_strict_fails(self, capsys):
        code, _out, err = run_cli(
            capsys, "run", "pagerank", "--nedges", "300",
            "--inject-fault", "nan@2")
        assert code == 1
        assert "numeric guard" in err

    def test_injected_fault_degrade_flags_trace(self, capsys):
        code, out, _err = run_cli(
            capsys, "run", "pagerank", "--nedges", "300",
            "--inject-fault", "nan@2", "--health-policy", "degrade")
        assert code == 0
        assert "DEGRADED" in out
        assert "numeric" in out

    def test_health_check_every_flag(self, capsys):
        code, _out, _err = run_cli(
            capsys, "run", "cc", "--nedges", "200",
            "--health-check-every", "3")
        assert code == 0


class TestCharacterize:
    def test_table(self, capsys):
        code, out, _err = run_cli(
            capsys, "characterize", "cc",
            "--sizes", "300", "600", "--alphas", "2.0", "3.0")
        assert code == 0
        assert "behavior across structures" in out
        assert out.count("\n") > 4

    def test_rejects_fixed_structure(self, capsys):
        code, _out, err = run_cli(capsys, "characterize", "jacobi")
        assert code == 2
        assert "fixed graph structure" in err


class TestReport:
    def test_assembles_artifacts(self, capsys, tmp_path):
        (tmp_path / "fig01.txt").write_text("series A\n")
        (tmp_path / "table2.txt").write_text("rows\n")
        out_file = tmp_path / "report.md"
        code, out, _err = run_cli(
            capsys, "report", "--artifacts", str(tmp_path),
            "--out", str(out_file))
        assert code == 0
        text = out_file.read_text()
        assert "## fig01" in text and "series A" in text
        assert "## table2" in text

    def test_stdout_mode(self, capsys, tmp_path):
        (tmp_path / "x.txt").write_text("hello\n")
        code, out, _err = run_cli(capsys, "report", "--artifacts",
                                  str(tmp_path))
        assert code == 0
        assert "hello" in out

    def test_missing_directory(self, capsys, tmp_path):
        code, _out, err = run_cli(
            capsys, "report", "--artifacts", str(tmp_path / "nope"))
        assert code == 1
        assert "no artifact directory" in err

    def test_store_metadata_section(self, capsys, tmp_path):
        from repro.behavior.trace import RunTrace
        from repro.experiments.results import ResultStore

        trace_path = tmp_path / "trace.json"
        code, _out, _err = run_cli(
            capsys, "run", "sssp", "--nedges", "300",
            "--json", str(trace_path))
        assert code == 0
        trace = RunTrace.from_dict(json.loads(trace_path.read_text()))
        store = ResultStore(tmp_path / "store")
        store.save("sssp-test", trace)

        artifacts = tmp_path / "artifacts"
        artifacts.mkdir()
        (artifacts / "fig.txt").write_text("data\n")
        code, out, _err = run_cli(
            capsys, "report", "--artifacts", str(artifacts),
            "--store", str(tmp_path / "store"))
        assert code == 0
        assert "## run-metadata" in out
        assert "1 cached traces" in out
        assert "timeout enforced" in out

    def test_empty_store_omits_metadata(self, capsys, tmp_path):
        artifacts = tmp_path / "artifacts"
        artifacts.mkdir()
        (artifacts / "fig.txt").write_text("data\n")
        code, out, _err = run_cli(
            capsys, "report", "--artifacts", str(artifacts),
            "--store", str(tmp_path / "empty-store"))
        assert code == 0
        assert "run-metadata" not in out


class TestObsCommands:
    def test_run_with_obs_then_stats_and_tail(self, capsys, tmp_path):
        obs_dir = tmp_path / "obs"
        code, out, _err = run_cli(
            capsys, "run", "cc", "--nedges", "200",
            "--obs", "full", "--obs-dir", str(obs_dir))
        assert code == 0
        assert "harness: graph_source=" in out
        assert "timeout_enforced=" in out
        assert f"telemetry: {obs_dir}" in out
        assert (obs_dir / "events.jsonl").exists()
        assert (obs_dir / "telemetry.json").exists()
        assert (obs_dir / "metrics.prom").exists()

        code, out, _err = run_cli(capsys, "stats", str(obs_dir))
        assert code == 0
        assert "telemetry:" in out
        assert "Iteration latency (sampled)" in out

        code, out, _err = run_cli(capsys, "tail", str(obs_dir))
        assert code == 0
        assert "run_start" in out and "run_end" in out

        code, out, _err = run_cli(
            capsys, "tail", str(obs_dir), "--raw", "-n", "2")
        assert code == 0
        lines = [ln for ln in out.splitlines() if ln.strip()]
        assert len(lines) == 2
        for line in lines:
            assert json.loads(line)["kind"]

    def test_run_obs_off_is_silent(self, capsys, tmp_path):
        obs_dir = tmp_path / "obs"
        code, out, _err = run_cli(
            capsys, "run", "cc", "--nedges", "200",
            "--obs", "off", "--obs-dir", str(obs_dir))
        assert code == 0
        assert "telemetry:" not in out
        assert not obs_dir.exists()

    def test_stats_without_telemetry_fails(self, capsys, tmp_path):
        code, _out, err = run_cli(capsys, "stats", str(tmp_path))
        assert code == 1
        assert "no telemetry" in err

    def test_invalid_obs_level_rejected(self, capsys):
        with pytest.raises(SystemExit):
            run_cli(capsys, "run", "cc", "--obs", "loud")


class TestCorpusAndDesign:
    @pytest.fixture()
    def tiny_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        return tmp_path

    def test_corpus_smoke_roundtrip_workers2(self, capsys, tiny_cache):
        """Cold multi-process build, then a resumed build that performs
        zero re-executions — the full checkpoint/resume path."""
        code, out, _err = run_cli(
            capsys, "corpus", "--profile", "smoke", "--workers", "2",
            "--progress")
        assert code == 0  # only by-design memory failures
        assert "status=ok source=run" in out
        assert "kind=memory" in out  # AD over budget, structured line
        assert "executed 220, cached 0" in out

        code, out, _err = run_cli(
            capsys, "corpus", "--profile", "smoke", "--workers", "2",
            "--progress", "--resume")
        assert code == 0
        assert "executed 0, cached 220" in out
        assert "source=run" not in out  # zero re-executions

    def test_corpus_crash_exits_nonzero_then_resume_repairs(
            self, capsys, tiny_cache, monkeypatch):
        """Acceptance: an injected arbitrary exception in one cell is
        recorded as kind=crash, the other cells complete, the summary
        still prints, the exit code is nonzero — and --resume
        re-executes only the failed cell."""
        monkeypatch.setenv("REPRO_INJECT_CRASH", "cc-ga-ne300-a2.0")
        code, out, err = run_cli(
            capsys, "corpus", "--profile", "smoke", "--progress")
        assert code == 3
        assert "215 runs" not in out  # one extra failure: 214 ok
        assert "status=failed kind=crash" in out
        assert "FAILED cc@" in out  # summary still printed
        assert "failed unexpectedly" in err
        assert "--resume" in err

        monkeypatch.delenv("REPRO_INJECT_CRASH")
        code, out, _err = run_cli(
            capsys, "corpus", "--profile", "smoke", "--progress",
            "--resume")
        assert code == 0
        assert "executed 1, cached 219" in out
        assert out.count("source=run") == 1  # only the crashed cell

    def test_corpus_engine_fault_exits_3_and_is_not_retried(
            self, capsys, tiny_cache, monkeypatch):
        """Acceptance: an injected engine-level NaN classifies as the
        non-retryable kind=numeric (never a generic crash), the other
        cells complete, and the build exits 3."""
        monkeypatch.setenv("REPRO_INJECT_ENGINE_FAULT",
                           "cc-ga-ne300-a2.0:nan@1")
        code, out, err = run_cli(
            capsys, "corpus", "--profile", "smoke", "--progress",
            "--retries", "2")
        assert code == 3
        assert "status=failed kind=numeric" in out
        assert "attempts=1" in out  # deterministic: retries not spent
        assert "kind=crash" not in out
        assert "FAILED cc@" in out
        assert "failed unexpectedly" in err
        # numeric is deterministic, so the hint must not suggest
        # --resume (which only re-executes retryable kinds)
        assert "--resume" not in err
        assert "--no-cache" in err

    def test_corpus_timeout_and_retries_flags_parse(self, capsys,
                                                    tiny_cache):
        # The flags thread through; a generous timeout changes nothing.
        code, out, _err = run_cli(
            capsys, "corpus", "--profile", "smoke", "--timeout", "300",
            "--retries", "1")
        assert code == 0
        assert "215 runs" in out

    def test_design_on_smoke_subset(self, capsys, tiny_cache, monkeypatch):
        # Keep this cheap: design over two algorithms only; the corpus
        # itself is built at the smoke profile through the cache.
        code, out, _err = run_cli(
            capsys, "design", "--size", "4", "--metric", "spread",
            "--algorithms", "triangle", "sssp", "--samples", "2000")
        assert code == 0
        assert "best spread ensemble of size 4" in out
        assert "spread   =" in out
