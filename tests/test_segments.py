"""Unit and property tests for the CSR segment kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util.errors import ValidationError
from repro._util.segments import (
    REDUCE_IDENTITY,
    concat_ranges,
    segment_offsets,
    segmented_reduce,
)


class TestConcatRanges:
    def test_simple(self):
        out = concat_ranges(np.array([0, 5]), np.array([3, 7]))
        assert out.tolist() == [0, 1, 2, 5, 6]

    def test_empty_ranges_interleaved(self):
        out = concat_ranges(np.array([2, 4, 4, 9]), np.array([2, 6, 4, 10]))
        assert out.tolist() == [4, 5, 9]

    def test_all_empty(self):
        out = concat_ranges(np.array([1, 2]), np.array([1, 2]))
        assert out.size == 0
        assert out.dtype == np.int64

    def test_no_ranges(self):
        assert concat_ranges(np.array([], dtype=int),
                             np.array([], dtype=int)).size == 0

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ValidationError):
            concat_ranges(np.array([0]), np.array([1, 2]))

    def test_rejects_negative_ranges(self):
        with pytest.raises(ValidationError):
            concat_ranges(np.array([5]), np.array([3]))

    @given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 20)),
                    max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_matches_naive(self, ranges):
        starts = np.array([s for s, _l in ranges], dtype=np.int64)
        ends = np.array([s + l for s, l in ranges], dtype=np.int64)
        expected = [i for s, l in ranges for i in range(s, s + l)]
        got = concat_ranges(starts, ends)
        assert got.tolist() == expected


class TestSegmentOffsets:
    def test_basic(self):
        assert segment_offsets(np.array([2, 0, 3])).tolist() == [0, 2, 2]

    def test_empty(self):
        assert segment_offsets(np.array([], dtype=int)).size == 0

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            segment_offsets(np.array([1, -1]))


class TestSegmentedReduce:
    def test_sum_1d(self):
        vals = np.array([1.0, 2.0, 3.0, 4.0])
        out = segmented_reduce(vals, np.array([2, 2]), "sum")
        assert out.tolist() == [3.0, 7.0]

    def test_min_with_empty_segment(self):
        vals = np.array([5.0, 1.0])
        out = segmented_reduce(vals, np.array([1, 0, 1]), "min")
        assert out[0] == 5.0
        assert out[1] == np.inf  # identity, NOT a stray element
        assert out[2] == 1.0

    def test_max_with_leading_empty(self):
        vals = np.array([2.0, 9.0])
        out = segmented_reduce(vals, np.array([0, 2]), "max")
        assert out[0] == -np.inf
        assert out[1] == 9.0

    def test_2d_sum(self):
        vals = np.arange(8, dtype=float).reshape(4, 2)
        out = segmented_reduce(vals, np.array([3, 1]), "sum")
        np.testing.assert_allclose(out, [[6.0, 9.0], [6.0, 7.0]])

    def test_2d_empty_segment(self):
        vals = np.ones((2, 3))
        out = segmented_reduce(vals, np.array([0, 2]), "sum")
        np.testing.assert_allclose(out[0], 0.0)
        np.testing.assert_allclose(out[1], 2.0)

    def test_bitwise_or(self):
        vals = np.array([0b001, 0b010, 0b100], dtype=np.uint64)
        out = segmented_reduce(vals, np.array([2, 0, 1]), "or")
        assert out[0] == 0b011
        assert out[1] == 0
        assert out[2] == 0b100

    def test_custom_identity(self):
        out = segmented_reduce(np.array([1.0]), np.array([0, 1]), "min",
                               identity=-1.0)
        assert out[0] == -1.0

    def test_all_segments_empty(self):
        out = segmented_reduce(np.empty(0), np.array([0, 0]), "sum")
        assert out.tolist() == [0.0, 0.0]

    def test_no_segments(self):
        assert segmented_reduce(np.empty(0), np.array([], dtype=int)).size == 0

    def test_rejects_bad_op(self):
        with pytest.raises(ValidationError):
            segmented_reduce(np.array([1.0]), np.array([1]), "mean")

    def test_rejects_count_mismatch(self):
        with pytest.raises(ValidationError):
            segmented_reduce(np.array([1.0, 2.0]), np.array([3]))

    @given(
        st.lists(st.integers(0, 6), min_size=1, max_size=20),
        st.sampled_from(["sum", "min", "max"]),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_naive_1d(self, counts, op, rand):
        counts = np.asarray(counts)
        total = int(counts.sum())
        vals = np.asarray([rand.uniform(-10, 10) for _ in range(total)])
        got = segmented_reduce(vals, counts, op)
        fn = {"sum": np.sum, "min": np.min, "max": np.max}[op]
        pos = 0
        for i, c in enumerate(counts):
            if c == 0:
                assert got[i] == REDUCE_IDENTITY[op]
            else:
                # atol scaled to the summands: reduceat sums
                # sequentially, np.sum pairwise, so a nearly-cancelling
                # segment leaves a roundoff-sized difference that no
                # pure rtol on the tiny result can absorb.
                np.testing.assert_allclose(got[i], fn(vals[pos:pos + c]),
                                           rtol=1e-12, atol=1e-12 * 10 * c)
            pos += c
