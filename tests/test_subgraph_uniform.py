"""Tests for subgraph extraction and the uniform-degree generators."""

import networkx as nx
import numpy as np
import pytest

from repro._util.errors import GraphConstructionError, ValidationError
from repro.generators import powerlaw_graph
from repro.generators.uniform import erdos_renyi_graph, regular_graph
from repro.graph.csr import Graph
from repro.graph.subgraph import (
    component_sizes,
    connected_component_labels,
    induced_subgraph,
    largest_component,
)


class TestInducedSubgraph:
    def test_triangle_extraction(self):
        g = Graph.from_edges(5, np.array([0, 0, 1, 3]),
                             np.array([1, 2, 2, 4]))
        sub, mapping = induced_subgraph(g, np.array([0, 1, 2]))
        assert sub.n_vertices == 3
        assert sub.n_edges == 3
        assert mapping.tolist() == [0, 1, 2]

    def test_weights_follow(self):
        g = Graph.from_edges(4, np.array([0, 1, 2]), np.array([1, 2, 3]),
                             weight=np.array([1.0, 2.0, 3.0]))
        sub, mapping = induced_subgraph(g, np.array([1, 2, 3]))
        assert sorted(sub.edge_weight.tolist()) == [2.0, 3.0]

    def test_validation(self):
        g = Graph.from_edges(3, np.array([0]), np.array([1]))
        with pytest.raises(ValidationError):
            induced_subgraph(g, np.array([], dtype=int))
        with pytest.raises(ValidationError):
            induced_subgraph(g, np.array([7]))

    def test_matches_networkx(self, rng):
        prob = powerlaw_graph(600, 2.5, seed=6)
        g = prob.graph
        pick = rng.choice(g.n_vertices, size=g.n_vertices // 3,
                          replace=False)
        sub, mapping = induced_subgraph(g, pick)
        src, dst = g.edge_endpoints()
        G = nx.Graph()
        G.add_nodes_from(range(g.n_vertices))
        G.add_edges_from(zip(src.tolist(), dst.tolist()))
        expected = G.subgraph(pick.tolist())
        assert sub.n_edges == expected.number_of_edges()


class TestComponents:
    def test_labels_two_components(self):
        g = Graph.from_edges(5, np.array([0, 3]), np.array([1, 4]))
        labels = connected_component_labels(g)
        assert labels[0] == labels[1]
        assert labels[3] == labels[4]
        assert len(set(labels.tolist())) == 3  # {0,1}, {2}, {3,4}

    def test_sizes_sorted(self):
        g = Graph.from_edges(6, np.array([0, 1, 4]), np.array([1, 2, 5]))
        assert component_sizes(g).tolist() == [3, 2, 1]

    def test_largest_component_matches_networkx(self):
        prob = powerlaw_graph(500, 2.5, seed=9)
        sub, ids = largest_component(prob.graph)
        src, dst = prob.graph.edge_endpoints()
        G = nx.Graph()
        G.add_nodes_from(range(prob.graph.n_vertices))
        G.add_edges_from(zip(src.tolist(), dst.tolist()))
        giant = max(nx.connected_components(G), key=len)
        assert set(ids.tolist()) == giant
        assert nx.is_connected(G.subgraph(giant))

    def test_directed_connectivity_is_undirected(self):
        # 0 -> 1, 2 -> 1: weakly connected as one component.
        g = Graph.from_edges(3, np.array([0, 2]), np.array([1, 1]),
                             directed=True)
        labels = connected_component_labels(g)
        assert len(set(labels.tolist())) == 1


class TestErdosRenyi:
    def test_edge_count_and_concentrated_degrees(self):
        prob = erdos_renyi_graph(5_000, mean_degree=10, seed=4)
        g = prob.graph
        assert abs(g.n_edges - 5_000) <= 100
        deg = g.degree
        # Binomial concentration: relative std far below a power law's.
        assert deg.std() / deg.mean() < 0.5
        assert abs(deg.mean() - 10) < 1.0

    def test_validation(self):
        with pytest.raises(ValidationError):
            erdos_renyi_graph(0)
        with pytest.raises(ValidationError):
            erdos_renyi_graph(100, mean_degree=0)

    def test_runs_under_ga_algorithms(self):
        from repro.behavior.run import run_computation

        prob = erdos_renyi_graph(800, seed=2)
        trace = run_computation("cc", prob)
        assert trace.converged


class TestRegular:
    def test_degrees_nearly_uniform(self):
        prob = regular_graph(500, 6, seed=3)
        deg = prob.graph.degree
        # Configuration-model repair drops few edges: ≥ 95% exact.
        assert (deg == 6).mean() > 0.95
        assert deg.max() <= 6

    def test_validation(self):
        with pytest.raises(ValidationError):
            regular_graph(3, 2)
        with pytest.raises(ValidationError):
            regular_graph(10, 0)
        with pytest.raises(ValidationError):
            regular_graph(9, 3)  # odd stub count

    def test_deterministic(self):
        a = regular_graph(100, 4, seed=8)
        b = regular_graph(100, 4, seed=8)
        np.testing.assert_array_equal(a.graph.out_dst, b.graph.out_dst)

    def test_contrast_with_power_law(self):
        """The uniform extreme really is the structural opposite of the
        α sweep: far lower degree variance at matched size."""
        uniform = regular_graph(1_000, 8, seed=1).graph.degree
        heavy = powerlaw_graph(4_000, 2.0, seed=1).graph.degree
        assert uniform.std() < 0.3 * heavy.std()
