"""Shared-memory graph plane: publish/attach fidelity, the per-process
graph cache, materialize-once corpus builds, and segment lifecycle
(nothing may outlive the builder in ``/dev/shm``)."""

import glob
import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.behavior.run import INJECT_SLEEP_ENV
from repro.experiments.config import ExperimentMatrix, GraphSpec, Profile
from repro.experiments.corpus import build_corpus
from repro.experiments.graph_cache import (
    COUNT_MATERIALIZE_ENV,
    GraphCache,
    materialize_problem,
    problem_nbytes,
)
from repro.experiments.results import ResultStore
from repro.graph import shm

#: Tiny profile so a full multi-process build finishes in seconds.
TINY_PROFILE = Profile(
    name="tiny-shm",
    ga_sizes=(120, 240),
    cf_sizes=(60, 120),
    matrix_rows=(20,),
    grid_sides=(6,),
    mrf_edges=(24,),
    memory_budget_bytes=1_400_000,
    ad_n_hashes=64,
    coverage_samples=1_000,
    seed=11,
    alphas=(2.0, 2.5),
)


def _shm_segments() -> set:
    return set(glob.glob(f"/dev/shm/{shm.SEGMENT_PREFIX}*"))


@pytest.fixture
def clean_plane_state():
    """Isolate the module-level attach/install state and prove the test
    leaked no segments."""
    pre = _shm_segments()
    yield
    shm._close_attachments()
    shm._INSTALLED_MANIFESTS.clear()
    shm._LOCAL_PROBLEMS.clear()
    assert _shm_segments() - pre == set()


# ----------------------------------------------------------------------
# Publish / attach fidelity
# ----------------------------------------------------------------------
class TestPublishAttach:
    def test_roundtrip_is_bit_identical_and_read_only(self,
                                                      clean_plane_state):
        spec = GraphSpec.clustering(nedges=300, alpha=2.5, seed=3)
        original = spec.generate()
        plane = shm.GraphPlane()
        try:
            manifest = plane.publish(spec.cache_key(), original)
            attached = shm.attach(manifest)

            g0, g1 = original.graph, attached.graph
            assert (g0.n_vertices, g0.n_edges, g0.directed) == \
                (g1.n_vertices, g1.n_edges, g1.directed)
            for name in ("out_ptr", "out_dst", "out_eid",
                         "in_ptr", "in_src", "in_eid"):
                arr0, arr1 = getattr(g0, name), getattr(g1, name)
                assert arr0.dtype == arr1.dtype
                assert np.array_equal(arr0, arr1)
                assert not arr1.flags.writeable
            assert set(original.inputs) == set(attached.inputs)
            for key, value in original.inputs.items():
                got = attached.inputs[key]
                if isinstance(value, np.ndarray):
                    assert np.array_equal(value, got)
                    assert not got.flags.writeable
                else:
                    assert value == got
            assert attached.params == original.params
        finally:
            plane.close()

    def test_publish_is_idempotent_per_key(self, clean_plane_state):
        spec = GraphSpec.ga(nedges=200, alpha=2.0, seed=1)
        plane = shm.GraphPlane()
        try:
            first = plane.publish(spec.cache_key(), spec.generate())
            second = plane.publish(spec.cache_key(), spec.generate())
            assert first is second
            assert len(plane) == 1
        finally:
            plane.close()

    def test_close_unlinks_and_resolve_falls_back(self, clean_plane_state):
        spec = GraphSpec.ga(nedges=200, alpha=2.5, seed=2)
        key = spec.cache_key()
        plane = shm.GraphPlane()
        manifest = plane.publish(key, spec.generate())
        assert f"/dev/shm/{manifest.segment}" in _shm_segments()
        assert materialize_problem(spec)[1] == "shm"

        plane.close()
        plane.close()  # idempotent
        assert f"/dev/shm/{manifest.segment}" not in _shm_segments()
        # The parent-side problem is discarded with the plane, so the
        # next resolution regenerates (or hits the LRU) instead of
        # touching an unmapped buffer.
        assert materialize_problem(spec)[1] in ("cache", "generated")

    def test_stale_manifest_is_dropped(self, clean_plane_state):
        spec = GraphSpec.ga(nedges=200, alpha=3.0, seed=4)
        key = spec.cache_key()
        plane = shm.GraphPlane()
        manifest = plane.publish(key, spec.generate())
        plane.close()
        # Simulate the worker side: only a manifest, no local problem —
        # and its segment is already gone.
        shm.install_manifest(manifest)
        assert shm.resolve(key) is None
        assert key not in shm._INSTALLED_MANIFESTS

    def test_publishable_rejects_object_inputs(self):
        spec = GraphSpec.mrf(nedges=40, seed=1)
        problem = spec.generate()
        assert not shm.publishable(problem)  # carries a PairwiseMRF
        assert shm.publishable(GraphSpec.ga(nedges=100, alpha=2.0,
                                            seed=1).generate())


# ----------------------------------------------------------------------
# Per-process graph cache
# ----------------------------------------------------------------------
class TestGraphCache:
    def _problem(self, nedges, seed=0):
        return GraphSpec.ga(nedges=nedges, alpha=2.5, seed=seed).generate()

    def test_lru_is_byte_bounded(self):
        a = self._problem(100, seed=1)
        b = self._problem(100, seed=2)
        c = self._problem(100, seed=3)
        size = problem_nbytes(a)
        cache = GraphCache(capacity_bytes=int(size * 2.5))
        cache.put("a", a)
        cache.put("b", b)
        assert cache.get("a") is a  # refresh a; b is now LRU
        cache.put("c", c)
        assert len(cache) == 2
        assert cache.get("b") is None
        assert cache.get("a") is a
        assert cache.get("c") is c
        assert cache.used_bytes <= cache.capacity_bytes

    def test_zero_capacity_disables_caching(self):
        cache = GraphCache(capacity_bytes=0)
        cache.put("a", self._problem(100))
        assert len(cache) == 0
        assert cache.get("a") is None

    def test_oversized_problem_is_never_admitted(self):
        problem = self._problem(200)
        cache = GraphCache(capacity_bytes=problem_nbytes(problem) - 1)
        cache.put("big", problem)
        assert len(cache) == 0

    def test_materialize_problem_hits_cache_second_time(
            self, clean_plane_state, monkeypatch):
        monkeypatch.delenv(COUNT_MATERIALIZE_ENV, raising=False)
        spec = GraphSpec.ga(nedges=150, alpha=2.25, seed=9)
        first, _source = materialize_problem(spec)
        second, source = materialize_problem(spec)
        assert source == "cache"
        assert second is first
        for value in second.inputs.values():
            if isinstance(value, np.ndarray):
                assert not value.flags.writeable


# ----------------------------------------------------------------------
# Materialize-once corpus builds
# ----------------------------------------------------------------------
class TestCorpusGraphPlane:
    def test_parallel_build_materializes_each_graph_once(
            self, tmp_path, monkeypatch, clean_plane_state):
        count_dir = tmp_path / "tokens"
        monkeypatch.setenv(COUNT_MATERIALIZE_ENV, str(count_dir))
        lines = []
        corpus = build_corpus(TINY_PROFILE,
                              store=ResultStore(tmp_path / "plane"),
                              workers=2, progress=lines.append)
        monkeypatch.delenv(COUNT_MATERIALIZE_ENV)

        assert corpus.graph_plane
        counts = {}
        for token in count_dir.glob("*.token"):
            key = token.read_text(encoding="utf-8").strip()
            counts[key] = counts.get(key, 0) + 1
        distinct = {p.spec.cache_key()
                    for p in ExperimentMatrix(TINY_PROFILE).corpus_runs()}
        assert set(counts) == distinct
        assert max(counts.values()) == 1, \
            "a graph was materialized more than once"
        assert corpus.premat_graphs == len(distinct)

        # Per-cell timing decomposition reaches traces and progress.
        executed = [r for r in corpus.runs if r.trace is not None]
        assert executed
        for run in executed:
            assert "materialize_s" in run.trace.meta
            assert "engine_s" in run.trace.meta
            assert run.trace.meta["graph_source"] in ("shm", "cache",
                                                      "generated")
        timing = corpus.timing_decomposition()
        assert timing is not None and timing["cells"] == len(executed)
        assert any(" mat=" in line and " graph=" in line for line in lines)
        assert "graph plane on" in corpus.summary()

        # And the no-shm build produces bit-identical vectors.
        plain = build_corpus(TINY_PROFILE,
                             store=ResultStore(tmp_path / "plain"),
                             workers=2, use_shm=False)
        assert not plain.graph_plane

        def vec(c):
            return [(v.tag, v.as_array().tolist()) for v in c.vectors()]

        assert vec(corpus) == vec(plain)

    def test_shm_unavailable_falls_back_cleanly(self, tmp_path,
                                                monkeypatch,
                                                clean_plane_state):
        monkeypatch.setattr(shm, "shm_available", lambda: False)
        corpus = build_corpus(TINY_PROFILE,
                              store=ResultStore(tmp_path / "fallback"),
                              workers=2)
        assert not corpus.graph_plane
        assert corpus.premat_graphs == 0
        total = len(ExperimentMatrix(TINY_PROFILE).corpus_runs())
        assert len(corpus.runs) + len(corpus.failures) == total


# ----------------------------------------------------------------------
# Lifecycle under SIGINT (the CLI's first-^C graceful stop)
# ----------------------------------------------------------------------
class TestSigintLifecycle:
    def test_first_sigint_stops_build_without_leaking_segments(
            self, tmp_path):
        pre = _shm_segments()
        env = dict(os.environ)
        env["PYTHONPATH"] = "/root/repo/src"
        env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
        env["REPRO_PROFILE"] = "smoke"
        # Slow every clustering cell down so the SIGINT lands mid-build
        # (the sleep fires inside run_computation, after the plane's
        # pre-materialization phase).
        env[INJECT_SLEEP_ENV] = "clustering-:0.4"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "corpus", "--workers", "2",
             "--progress"],
            cwd=str(tmp_path), env=env, stdout=subprocess.PIPE,
            stderr=subprocess.PIPE, text=True)
        try:
            time.sleep(4.0)
            proc.send_signal(signal.SIGINT)
            stdout, stderr = proc.communicate(timeout=120)
        except Exception:
            proc.kill()
            proc.communicate()
            raise
        assert proc.returncode == 130, (stdout, stderr)
        assert "interrupted" in stdout + stderr
        leaked = _shm_segments() - pre
        assert not leaked, f"SIGINT exit leaked shm segments: {leaked}"
