"""Cross-cutting property-based tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.behavior.trace import IterationRecord, RunTrace
from repro.generators import mrf_problem, powerlaw_graph
from repro.generators.rng import make_rng


class TestPowerlawProperties:
    @given(st.integers(50, 2_000),
           st.floats(2.0, 3.0),
           st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_structural_invariants(self, nedges, alpha, seed):
        prob = powerlaw_graph(nedges, alpha, seed=seed)
        g = prob.graph
        # Edge count within generator tolerance.
        assert abs(g.n_edges - nedges) <= max(1, 0.02 * nedges)
        # Symmetric storage, no self loops, no duplicates.
        assert g.n_arcs == 2 * g.n_edges
        src, dst = g.edge_endpoints()
        assert np.all(src != dst)
        keys = np.minimum(src, dst) * g.n_vertices + np.maximum(src, dst)
        assert np.unique(keys).size == keys.size
        # Degree sum identity.
        assert int(g.degree.sum()) == 2 * g.n_edges

    @given(st.integers(100, 1_000), st.floats(2.0, 3.0))
    @settings(max_examples=10, deadline=None)
    def test_reproducibility(self, nedges, alpha):
        a = powerlaw_graph(nedges, alpha, seed=3)
        b = powerlaw_graph(nedges, alpha, seed=3)
        np.testing.assert_array_equal(a.graph.out_dst, b.graph.out_dst)
        np.testing.assert_array_equal(a.graph.out_ptr, b.graph.out_ptr)


class TestMRFProperties:
    @given(st.integers(12, 400), st.integers(2, 4), st.integers(0, 100))
    @settings(max_examples=15, deadline=None)
    def test_exact_edges_and_valid_tables(self, nedges, n_states, seed):
        prob = mrf_problem(nedges, n_states=n_states, seed=seed)
        mrf = prob.inputs["mrf"]
        assert prob.graph.n_edges == nedges
        mrf.validate()  # raises on any shape violation
        assert all(t.shape == (n_states, n_states) for t in mrf.pair_tables)


class TestTraceProperties:
    @given(st.lists(
        st.tuples(st.integers(0, 1_000), st.integers(0, 1_000),
                  st.integers(0, 10_000), st.integers(0, 10_000),
                  st.floats(0, 1e3, allow_nan=False)),
        max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_json_roundtrip(self, rows):
        trace = RunTrace(
            algorithm="prop", graph_params={"nedges": 10, "alpha": 2.0},
            domain="ga", n_vertices=1_000, n_edges=10,
            iterations=[IterationRecord(i, *row)
                        for i, row in enumerate(rows)],
            converged=bool(len(rows) % 2), stop_reason="x",
            result={"v": 1.5},
        )
        assert RunTrace.from_json(trace.to_json()) == trace

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=50))
    @settings(max_examples=30, deadline=None)
    def test_active_fraction_bounds(self, actives):
        n = max(actives) if max(actives) > 0 else 1
        trace = RunTrace(
            algorithm="prop", graph_params={}, domain="ga",
            n_vertices=n, n_edges=5,
            iterations=[IterationRecord(i, a, a, 0, 0, 0.0)
                        for i, a in enumerate(actives)],
        )
        af = trace.active_fraction()
        assert np.all(af >= 0) and np.all(af <= 1.0)


class TestRngProperties:
    @given(st.integers(0, 2**31 - 1), st.text(max_size=12))
    @settings(max_examples=40, deadline=None)
    def test_streams_are_stable_and_distinct(self, seed, context):
        a = make_rng(seed, context).random(3)
        b = make_rng(seed, context).random(3)
        np.testing.assert_array_equal(a, b)
        other = make_rng(seed, context + "x").random(3)
        assert not np.array_equal(a, other)


class TestEnginePropertyOnRandomGraphs:
    """Engine invariants over random structures, not just fixtures."""

    @given(st.integers(0, 2**31 - 1), st.integers(20, 300))
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_cc_counter_invariants(self, seed, nedges):
        from repro.behavior.run import run_computation
        from repro.experiments.config import GraphSpec

        spec = GraphSpec.ga(nedges=nedges, alpha=2.5, seed=seed)
        trace = run_computation("cc", spec)
        m = trace.n_edges
        n = trace.n_vertices
        for rec in trace.iterations:
            # No phase can touch more than the structure allows.
            assert 0 <= rec.active <= n
            assert rec.updates == rec.active
            assert 0 <= rec.edge_reads <= 2 * m
            assert 0 <= rec.messages <= 2 * m
        # Label propagation converges on every input.
        assert trace.converged


def _counters_strategy():
    """Counter blocks with integer-valued fields.

    ``work`` is drawn from integers (then cast to float) so that
    addition is *exactly* associative — float rounding would make the
    associativity assertion flaky for free-form floats without
    reflecting any real merge bug.
    """
    from repro.engine.instrumentation import Counters

    nonneg = st.integers(0, 10**9)
    return st.builds(Counters, active=nonneg, updates=nonneg,
                     edge_reads=nonneg, messages=nonneg,
                     work=nonneg.map(float))


class TestCountersMergeProperties:
    """The counter merge rule behind both sub-sweep folding and the
    telemetry worker->parent fold: ``active`` max-merges (population
    gauge), everything else sums (flow). See docs/metrics.md."""

    @given(_counters_strategy(), _counters_strategy(),
           _counters_strategy())
    @settings(max_examples=80, deadline=None)
    def test_merge_is_associative(self, a, b, c):
        from dataclasses import replace

        left = replace(a)
        left_inner = replace(b)
        left_inner.merge(c)
        left.merge(left_inner)       # a . (b . c)

        right = replace(a)
        right.merge(b)
        right.merge(c)               # (a . b) . c

        assert left == right

    @given(_counters_strategy(), _counters_strategy())
    @settings(max_examples=80, deadline=None)
    def test_active_is_max_merged_others_sum(self, a, b):
        from dataclasses import replace

        merged = replace(a)
        merged.merge(b)
        assert merged.active == max(a.active, b.active)
        assert merged.updates == a.updates + b.updates
        assert merged.edge_reads == a.edge_reads + b.edge_reads
        assert merged.messages == a.messages + b.messages
        assert merged.work == a.work + b.work

    @given(_counters_strategy(), _counters_strategy())
    @settings(max_examples=40, deadline=None)
    def test_merge_is_commutative(self, a, b):
        from dataclasses import replace

        ab = replace(a)
        ab.merge(b)
        ba = replace(b)
        ba.merge(a)
        assert ab == ba
