"""Tests for the centralized RNG construction."""

import numpy as np
import pytest

from repro._util.errors import ValidationError
from repro.generators.rng import hash_str, make_rng, spawn_rngs


class TestMakeRng:
    def test_deterministic(self):
        a = make_rng(5, "x").random(4)
        b = make_rng(5, "x").random(4)
        np.testing.assert_array_equal(a, b)

    def test_context_separates_streams(self):
        a = make_rng(5, "x").random(4)
        b = make_rng(5, "y").random(4)
        assert not np.array_equal(a, b)

    def test_seed_separates_streams(self):
        a = make_rng(5, "x").random(4)
        b = make_rng(6, "x").random(4)
        assert not np.array_equal(a, b)

    def test_int_context(self):
        a = make_rng(5, 1).random(2)
        b = make_rng(5, 2).random(2)
        assert not np.array_equal(a, b)

    def test_passthrough_generator(self):
        gen = np.random.default_rng(0)
        assert make_rng(gen) is gen

    def test_passthrough_rejects_context(self):
        with pytest.raises(ValidationError):
            make_rng(np.random.default_rng(0), "ctx")


class TestSpawnRngs:
    def test_count_and_independence(self):
        rngs = spawn_rngs(7, 3, "workers")
        assert len(rngs) == 3
        draws = [r.random(3).tolist() for r in rngs]
        assert draws[0] != draws[1] != draws[2]

    def test_zero(self):
        assert spawn_rngs(7, 0) == []

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            spawn_rngs(7, -1)


class TestHashStr:
    def test_stable_known_value(self):
        # FNV-1a is a fixed function: pin a value so accidental changes
        # to the hash (which would silently reshuffle every stream) fail.
        assert hash_str("") == 0x811C9DC5
        assert hash_str("a") == 0xE40C292C

    def test_distinct(self):
        assert hash_str("powerlaw") != hash_str("bipartite")
