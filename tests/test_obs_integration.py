"""End-to-end telemetry-plane tests: corpus builds under every obs
level, worker-kill crash consistency of the event log, and the
bit-identity guarantee (telemetry never changes behavior vectors)."""

import json

import pytest

from repro.experiments.config import ExperimentMatrix, Profile
from repro.experiments.corpus import build_corpus
from repro.experiments.results import ResultStore
from repro.obs.events import read_all_events
from repro.obs.export import load_telemetry
from repro.obs.stats import render_stats

#: Tiny two-size profile; same shape as the resilience/checkpoint ones.
TINY = Profile(
    name="tinyobs",
    ga_sizes=(200, 600),
    cf_sizes=(80, 200),
    matrix_rows=(30,),
    grid_sides=(8,),
    mrf_edges=(40,),
    memory_budget_bytes=1_400_000,
    ad_n_hashes=64,
    coverage_samples=1_000,
    seed=11,
    alphas=(2.0, 2.5),
)

N_CELLS = len(list(ExperimentMatrix(TINY).corpus_runs()))


def _vector_fingerprint(corpus):
    return sorted((v.tag, v.as_array().tolist()) for v in corpus.vectors())


class TestFullObsBuild:
    def test_build_writes_inspectable_telemetry(self, tmp_path):
        obs_dir = tmp_path / "obs"
        corpus = build_corpus(TINY, store=ResultStore(tmp_path / "cache"),
                              workers=1, obs="full", obs_dir=obs_dir)
        assert corpus.obs_dir == str(obs_dir)
        assert corpus.run_id
        assert "telemetry:" in corpus.summary()

        # Exporters landed next to the store.
        assert (obs_dir / "events.jsonl").exists()
        assert (obs_dir / "metrics.prom").exists()
        payload = load_telemetry(obs_dir)
        assert payload is not None and payload["level"] == "full"
        assert payload["profile"] == "tinyobs"

        # Every planned cell has lifecycle events and a cell counter.
        events = read_all_events(obs_dir)
        kinds = [e["kind"] for e in events]
        assert kinds.count("build_start") == 1
        assert kinds.count("build_end") == 1
        assert kinds.count("cell_start") == N_CELLS
        assert kinds.count("cell_end") == N_CELLS
        assert kinds.count("progress") == N_CELLS
        counters = payload["metrics"]["counters"]
        total_cells = sum(e["value"]
                          for e in counters["corpus_cells_total"])
        assert total_cells == N_CELLS

        # The stats report covers phases, failures, caches, latency,
        # and one row per cell.
        report = render_stats(obs_dir)
        for heading in ("Cell outcomes", "Cell phase time breakdown",
                        "Engine phase timing (sampled)",
                        "Graph resolution",
                        "Iteration latency (sampled)",
                        f"Cells ({N_CELLS})"):
            assert heading in report, f"missing section {heading!r}"

    def test_second_build_reports_cache_hits(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        build_corpus(TINY, store=store, workers=1)  # warm, no obs
        obs_dir = tmp_path / "obs"
        corpus = build_corpus(TINY, store=store, workers=1,
                              obs="basic", obs_dir=obs_dir)
        assert corpus.n_executed == 0
        payload = load_telemetry(obs_dir)
        by_source = {
            tuple(sorted(e["labels"].items())): e["value"]
            for e in payload["metrics"]["counters"]["corpus_cells_total"]
        }
        cached = sum(v for k, v in by_source.items()
                     if ("source", "cache") in k)
        assert cached == N_CELLS


class TestObsDoesNotPerturbBehavior:
    def test_vectors_bit_identical_across_levels(self, tmp_path):
        """The acceptance bar: under the unit work model the behavior
        corpus is byte-for-byte identical at obs off/basic/full."""
        fingerprints = {}
        for level in ("off", "basic", "full"):
            corpus = build_corpus(
                TINY, store=ResultStore(tmp_path / f"cache-{level}"),
                workers=1, obs=level, obs_dir=tmp_path / f"obs-{level}")
            assert not corpus.unexpected_failures
            fingerprints[level] = _vector_fingerprint(corpus)
        assert fingerprints["off"] == fingerprints["basic"]
        assert fingerprints["off"] == fingerprints["full"]

    def test_off_level_writes_nothing(self, tmp_path):
        obs_dir = tmp_path / "obs"
        corpus = build_corpus(TINY,
                              store=ResultStore(tmp_path / "cache"),
                              workers=1, obs="off", obs_dir=obs_dir)
        assert corpus.obs_dir is None
        assert not obs_dir.exists()


class TestWorkerKillCrashConsistency:
    @pytest.mark.parametrize("workers", [2])
    def test_sigkilled_worker_leaves_clean_merged_log(
            self, tmp_path, monkeypatch, workers):
        """A pool worker SIGKILLed mid-build may die mid-line in its
        sink; after the (resumed) builds the merged main log must
        contain only valid JSON lines, the sinks must be gone, and the
        telemetry exporters must exist even for the failed build."""
        token_dir = tmp_path / "tokens"
        token_dir.mkdir()
        for i in range(2):
            (token_dir / f"token-{i}").touch()
        monkeypatch.setenv("REPRO_CHAOS_KILL", f"{token_dir}:1.0")

        store = ResultStore(tmp_path / "cache")
        obs_dir = tmp_path / "obs"
        corpus = None
        for _attempt in range(6):
            corpus = build_corpus(TINY, store=store, workers=workers,
                                  resume=True, retries=0,
                                  checkpoint_dir=tmp_path / "snaps",
                                  checkpoint_every="1",
                                  obs="full", obs_dir=obs_dir)
            # Telemetry must be written even when the build had
            # failures (exporters run in the finally path).
            assert load_telemetry(obs_dir) is not None
            if not corpus.unexpected_failures:
                break
        assert corpus is not None and not corpus.unexpected_failures
        assert not list(token_dir.iterdir()), \
            "chaos kills never fired — the harness tested nothing"

        # No worker sink survives a merge; the merged log parses
        # line-by-line with zero torn entries.
        assert not (obs_dir / "sinks").exists() or \
            not list((obs_dir / "sinks").iterdir())
        for log in [obs_dir / "events.jsonl",
                    *obs_dir.glob("events.jsonl.*")]:
            for n, line in enumerate(
                    log.read_text(encoding="utf-8").splitlines(), 1):
                if line.strip():
                    json.loads(line)  # raises on a corrupt merge

        # The surviving telemetry still accounts for completed cells.
        payload = load_telemetry(obs_dir)
        counters = payload["metrics"]["counters"]
        total_cells = sum(e["value"]
                          for e in counters["corpus_cells_total"])
        assert total_cells > 0
