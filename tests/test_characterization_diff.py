"""Tests for corpus characterization and trace diffing."""

import numpy as np
import pytest

from repro.behavior.diff import TraceDiff, diff_traces
from repro.behavior.run import run_computation
from repro.behavior.shapes import ActivityShape
from repro.experiments.characterization import characterize_corpus
from repro.experiments.config import GraphSpec
from tests.test_behavior import make_trace


class TestCharacterizeCorpus:
    def test_structure(self, mini_corpus):
        chz = characterize_corpus(mini_corpus)
        assert chz.n_runs == 215
        assert chz.n_failures == 5
        assert len(chz.algorithms) == 11
        assert set(chz.dimension_ranges) == {"updt", "work", "eread", "msg"}

    def test_shapes_match_paper_vocabulary(self, mini_corpus):
        chz = characterize_corpus(mini_corpus)
        by_name = {a.algorithm: a for a in chz.algorithms}
        assert by_name["diameter"].shape == ActivityShape.ALWAYS_ACTIVE
        assert by_name["kmeans"].shape == ActivityShape.ALWAYS_ACTIVE
        assert by_name["sssp"].shape in (ActivityShape.GROW_PEAK_DRAIN,
                                         ActivityShape.BURSTY)

    def test_fold_ranges_positive(self, mini_corpus):
        chz = characterize_corpus(mini_corpus)
        for metric, (lo, hi, fold) in chz.dimension_ranges.items():
            assert 0 <= lo <= hi
            assert fold >= 1.0

    def test_report_renders(self, mini_corpus):
        text = characterize_corpus(mini_corpus).report()
        assert "Corpus characterization" in text
        assert "activity shape" in text
        assert "fold range" in text
        assert "sssp" in text

    def test_iteration_ranges(self, mini_corpus):
        chz = characterize_corpus(mini_corpus)
        for a in chz.algorithms:
            lo, hi = a.iteration_range
            assert 1 <= lo <= hi


class TestDiffTraces:
    def test_identical(self):
        t = make_trace([(5, 5, 10, 3, 0.5)] * 3)
        diff = diff_traces(t, t)
        assert diff.identical
        assert diff.counters_conserved
        assert "identical" in diff.summary()

    def test_counter_mismatch_located(self):
        a = make_trace([(5, 5, 10, 3, 0.5), (4, 4, 8, 2, 0.25)])
        b = make_trace([(5, 5, 10, 3, 0.5), (4, 4, 8, 7, 0.25)])
        diff = diff_traces(a, b)
        assert not diff.identical
        assert diff.mismatches == ((1, "messages", 2, 7),)
        assert "iter 1: messages" in diff.summary()

    def test_work_tolerance(self):
        a = make_trace([(1, 1, 1, 1, 1.0)])
        b = make_trace([(1, 1, 1, 1, 1.5)])
        diff = diff_traces(a, b)
        assert diff.counters_conserved
        assert not diff.identical
        assert diff.max_work_rel_diff == pytest.approx(0.5 / 1.5)

    def test_length_mismatch(self):
        a = make_trace([(1, 1, 1, 1, 1.0)] * 3)
        b = make_trace([(1, 1, 1, 1, 1.0)] * 5)
        diff = diff_traces(a, b)
        assert diff.counters_conserved  # common prefix matches
        assert not diff.identical
        assert diff.n_iterations == (3, 5)

    def test_on_real_engine_modes(self):
        spec = GraphSpec.ga(nedges=400, alpha=2.5, seed=12)
        a = run_computation("cc", spec)
        b = run_computation("cc", spec, options={"mode": "reference"})
        assert diff_traces(a, b).identical

    def test_summary_truncates(self):
        rows_a = [(i, 1, 1, 1, 0.0) for i in range(30)]
        rows_b = [(i, 1, 1, 2, 0.0) for i in range(30)]
        a = make_trace(rows_a)
        b = make_trace(rows_b)
        diff = diff_traces(a, b)
        assert len(diff.mismatches) == 30
        assert "more" in diff.summary()


class TestCLICharacterizeCorpus:
    def test_command(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        from repro.cli import main

        code = main(["characterize-corpus"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Corpus characterization [smoke]" in out
