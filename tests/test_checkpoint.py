"""Checkpoint/restore: crash-consistent snapshots, kill/resume
equivalence for all four engines, and the corpus chaos harness.

The headline guarantee under test: a run killed at iteration *k* and
resumed from its snapshot produces a **bit-identical** final vertex
state and an identical behavior vector to an uninterrupted run — for
every engine, at every kill point.
"""

import os
import signal
import subprocess
import sys

import numpy as np
import pytest

from repro._util.errors import ValidationError
from repro.algorithms.registry import create
from repro.behavior.metrics import compute_metrics
from repro.behavior.run import run_computation
from repro.engine import (
    AsyncEngineOptions,
    AsynchronousEngine,
    CheckpointConfig,
    CheckpointPolicy,
    CheckpointSession,
    EdgeCentricEngine,
    EdgeCentricOptions,
    EngineOptions,
    GraphCentricEngine,
    GraphCentricOptions,
    SimulatedKillError,
    Snapshot,
    SnapshotStore,
    SynchronousEngine,
)
from repro.engine.checkpoint import INJECT_KILL_ENV
from repro.experiments.config import GraphSpec, Profile
from repro.experiments.corpus import (
    build_corpus,
    execute_planned_run,
    run_cache_key,
)
from repro.experiments.results import ResultStore
from repro.generators import powerlaw_graph

ENGINES = ("synchronous", "asynchronous", "edge-centric", "graph-centric")


# ----------------------------------------------------------------------
# Policy parsing
# ----------------------------------------------------------------------
class TestCheckpointPolicy:
    def test_parse_iterations(self):
        policy = CheckpointPolicy.parse("5")
        assert policy.every_iterations == 5
        assert policy.every_seconds is None

    def test_parse_seconds(self):
        policy = CheckpointPolicy.parse("2.5s")
        assert policy.every_iterations is None
        assert policy.every_seconds == 2.5

    def test_parse_combined(self):
        policy = CheckpointPolicy.parse("5,30s")
        assert policy.every_iterations == 5
        assert policy.every_seconds == 30.0

    def test_parse_int(self):
        assert CheckpointPolicy.parse(3).every_iterations == 3

    @pytest.mark.parametrize("bad", ["", "x", "3x,4", "-1", "0", "0s"])
    def test_rejects_bad_specs(self, bad):
        with pytest.raises(ValidationError):
            CheckpointPolicy.parse(bad)

    def test_str_roundtrips(self):
        assert str(CheckpointPolicy.parse("5,30s")) == "5,30s"


# ----------------------------------------------------------------------
# SnapshotStore: crash-consistent persistence
# ----------------------------------------------------------------------
def _dummy_snapshot(iteration: int) -> Snapshot:
    from repro.behavior.trace import RunTrace

    return Snapshot(
        engine="synchronous", algorithm="pagerank",
        n_vertices=10, n_edges=20, iteration=iteration,
        trace=RunTrace(algorithm="pagerank", graph_params={}, domain="ga",
                       n_vertices=10, n_edges=20),
        payload={"frontier": np.arange(3)},
    )


class TestSnapshotStore:
    def test_roundtrip(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.save("key", _dummy_snapshot(7))
        loaded = store.load_latest("key")
        assert loaded is not None
        assert loaded.iteration == 7
        np.testing.assert_array_equal(loaded.payload["frontier"],
                                      np.arange(3))

    def test_missing_key_is_cold_start(self, tmp_path):
        assert SnapshotStore(tmp_path).load_latest("nope") is None

    def test_keeps_two_generations(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.save("key", _dummy_snapshot(3))
        store.save("key", _dummy_snapshot(6))
        assert store._latest_path("key").exists()
        assert store._prev_path("key").exists()
        assert store.latest_iteration("key") == 6

    def test_bit_flip_detected_falls_back_to_prev(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.save("key", _dummy_snapshot(3))
        store.save("key", _dummy_snapshot(6))
        path = store._latest_path("key")
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))

        loaded = store.load_latest("key")
        assert loaded is not None and loaded.iteration == 3  # prev gen
        assert store.n_quarantined() == 1
        assert not path.exists()

    def test_truncation_detected_cold_start(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.save("key", _dummy_snapshot(3))
        store.save("key", _dummy_snapshot(6))
        for path in (store._latest_path("key"), store._prev_path("key")):
            path.write_bytes(path.read_bytes()[:30])
        assert store.load_latest("key") is None  # never crashes
        assert store.n_quarantined() == 2

    def test_garbage_file_quarantined(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.save("key", _dummy_snapshot(3))
        store._latest_path("key").write_bytes(b"not a snapshot at all")
        assert store.load_latest("key") is None
        assert store.n_quarantined() == 1

    def test_discard_removes_generations(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.save("key", _dummy_snapshot(3))
        store.save("key", _dummy_snapshot(6))
        assert store.discard("key") == 2
        assert store.load_latest("key") is None

    def test_distinct_keys_do_not_collide(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.save("a@b", _dummy_snapshot(1))
        store.save("a#b", _dummy_snapshot(2))
        assert store.load_latest("a@b").iteration == 1
        assert store.load_latest("a#b").iteration == 2


class TestSessionIdentity:
    def test_refuses_mismatched_snapshot(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.save("key", _dummy_snapshot(4))
        config = CheckpointConfig(store=store,
                                  policy=CheckpointPolicy.parse("1"),
                                  key="key")
        session = CheckpointSession.begin(config)
        problem = powerlaw_graph(100, 2.5, seed=1)
        with pytest.raises(ValidationError, match="refusing to resume"):
            session.load(engine="synchronous", program=create("cc"),
                         problem=problem)


# ----------------------------------------------------------------------
# Kill-at-k + resume equivalence, all four engines
# ----------------------------------------------------------------------
def _make_engine(name: str, checkpoint: "CheckpointConfig | None" = None):
    if name == "synchronous":
        return SynchronousEngine(EngineOptions(checkpoint=checkpoint))
    if name == "asynchronous":
        return AsynchronousEngine(AsyncEngineOptions(checkpoint=checkpoint))
    if name == "edge-centric":
        return EdgeCentricEngine(EdgeCentricOptions(checkpoint=checkpoint))
    return GraphCentricEngine(GraphCentricOptions(checkpoint=checkpoint))


@pytest.fixture(scope="module")
def kill_problem():
    return powerlaw_graph(600, 2.5, seed=9)


@pytest.fixture(scope="module")
def baselines(kill_problem):
    """Uninterrupted (trace, program) per engine — the equivalence
    oracle. CC runs on every engine and takes multiple iterations
    (rounds, supersteps) on all of them."""
    out = {}
    for engine in ENGINES:
        program = create("cc")
        out[engine] = (_make_engine(engine).run(program, kill_problem),
                       program)
    return out


def _assert_traces_identical(expected, actual):
    assert len(actual.iterations) == len(expected.iterations)
    assert actual.stop_reason == expected.stop_reason
    assert actual.converged == expected.converged
    for a, b in zip(expected.iterations, actual.iterations):
        assert (a.iteration, a.active, a.updates, a.edge_reads,
                a.messages, a.work) == \
               (b.iteration, b.active, b.updates, b.edge_reads,
                b.messages, b.work)


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("position", ["early", "middle", "late"])
def test_kill_and_resume_is_bit_identical(engine, position, kill_problem,
                                          baselines, tmp_path, monkeypatch):
    base_trace, base_program = baselines[engine]
    n = len(base_trace.iterations)
    assert n >= 3, "problem too small to place three kill points"
    k = {"early": 0, "middle": n // 2, "late": n - 2}[position]

    store = SnapshotStore(tmp_path)
    key = f"kill-{engine}-{position}"

    # Phase 1: run with per-iteration snapshots, die right after the
    # snapshot covering iteration k is published.
    monkeypatch.setenv(INJECT_KILL_ENV, f"{key}:{k}")
    config = CheckpointConfig(store=store,
                              policy=CheckpointPolicy.parse("1"), key=key)
    with pytest.raises(SimulatedKillError):
        _make_engine(engine, config).run(create("cc"), kill_problem)
    assert store.latest_iteration(key) == k + 1

    # Phase 2: resume and run to completion.
    monkeypatch.delenv(INJECT_KILL_ENV)
    resumed_program = create("cc")
    config = CheckpointConfig(store=SnapshotStore(tmp_path),
                              policy=CheckpointPolicy.parse("1"), key=key)
    trace = _make_engine(engine, config).run(resumed_program, kill_problem)

    assert trace.meta["resumed_from_iteration"] == k + 1
    _assert_traces_identical(base_trace, trace)

    # Final vertex state: bit-identical, not approximately equal.
    for name, arr in vars(base_program).items():
        if isinstance(arr, np.ndarray):
            np.testing.assert_array_equal(getattr(resumed_program, name),
                                          arr, err_msg=name)

    # Behavior vector inputs are identical too.
    m_base, m_resumed = compute_metrics(base_trace), compute_metrics(trace)
    assert (m_base.updt, m_base.work, m_base.eread, m_base.msg) == \
           (m_resumed.updt, m_resumed.work, m_resumed.eread, m_resumed.msg)

    # Completed run cleans up its snapshots.
    assert store.load_latest(key) is None


@pytest.mark.parametrize("engine", ENGINES)
def test_resume_after_corrupt_latest_falls_back(engine, kill_problem,
                                                baselines, tmp_path,
                                                monkeypatch):
    """Corrupting the newest snapshot must not break resume: the store
    falls back to the previous generation and the run still finishes
    bit-identically."""
    base_trace, base_program = baselines[engine]
    n = len(base_trace.iterations)
    k = n // 2
    store = SnapshotStore(tmp_path)
    key = f"corrupt-{engine}"

    monkeypatch.setenv(INJECT_KILL_ENV, f"{key}:{k}")
    config = CheckpointConfig(store=store,
                              policy=CheckpointPolicy.parse("1"), key=key)
    with pytest.raises(SimulatedKillError):
        _make_engine(engine, config).run(create("cc"), kill_problem)
    monkeypatch.delenv(INJECT_KILL_ENV)

    latest = store._latest_path(key)
    blob = bytearray(latest.read_bytes())
    blob[-10] ^= 0xFF
    latest.write_bytes(bytes(blob))

    resumed_program = create("cc")
    config = CheckpointConfig(store=SnapshotStore(tmp_path),
                              policy=CheckpointPolicy.parse("1"), key=key)
    trace = _make_engine(engine, config).run(resumed_program, kill_problem)

    assert SnapshotStore(tmp_path).n_quarantined() == 1
    assert trace.meta["resumed_from_iteration"] == k  # prev generation
    _assert_traces_identical(base_trace, trace)
    np.testing.assert_array_equal(resumed_program.component,
                                  base_program.component)


def test_degrade_stop_flushes_final_snapshot(tmp_path):
    """A health `degrade` stop must leave a post-mortem snapshot on
    disk (normal completions discard theirs)."""
    problem = powerlaw_graph(300, 2.5, seed=5)
    store = SnapshotStore(tmp_path)
    config = CheckpointConfig(store=store,
                              policy=CheckpointPolicy.parse("1000"),
                              key="degraded-run")
    engine = SynchronousEngine(EngineOptions(
        health_policy="degrade", inject_fault="nan@3", checkpoint=config))
    trace = engine.run(create("pagerank"), problem)
    assert trace.degraded
    snapshot = store.load_latest("degraded-run")
    assert snapshot is not None
    assert snapshot.trace.degraded
    assert trace.meta["checkpoints_written"] >= 1


def test_checkpoint_policy_seconds_only(tmp_path):
    """A pure time-based policy snapshots without an iteration cadence
    (every iteration is 'due' once the clock budget elapsed — with a
    0-second budget, that is every iteration)."""
    problem = powerlaw_graph(300, 2.5, seed=5)
    store = SnapshotStore(tmp_path)
    config = CheckpointConfig(
        store=store, policy=CheckpointPolicy(every_seconds=1e-9),
        key="timed", discard_on_success=False)
    trace = SynchronousEngine(EngineOptions(checkpoint=config)).run(
        create("cc"), problem)
    assert trace.meta["checkpoints_written"] >= 1
    assert store.load_latest("timed") is not None


# ----------------------------------------------------------------------
# Corpus integration: resume across attempts, forward-progress budget
# ----------------------------------------------------------------------
TINY = Profile(
    name="tinyckpt",
    ga_sizes=(200, 600),
    cf_sizes=(80, 200),
    matrix_rows=(30,),
    grid_sides=(8,),
    mrf_edges=(40,),
    memory_budget_bytes=1_400_000,
    ad_n_hashes=64,
    coverage_samples=2_000,
    seed=11,
    alphas=(2.0, 2.5),
)


def _planned_cc():
    from repro.experiments.config import PlannedRun

    spec = GraphSpec.ga(nedges=600, alpha=2.5, seed=TINY.seed)
    return PlannedRun(algorithm="cc", spec=spec)


class TestCorpusCheckpointing:
    def test_killed_cell_resumes_with_zero_retry_budget(self, tmp_path,
                                                        monkeypatch):
        """An attempt that advanced the cell's snapshot does not charge
        the retry budget: retries=0 still completes after a kill,
        because the failed attempt made forward progress."""
        planned = _planned_cc()
        key = run_cache_key(planned, TINY)
        monkeypatch.setenv(INJECT_KILL_ENV, f"{key}:1")

        baseline = execute_planned_run(planned, TINY, None)
        run = execute_planned_run(
            planned, TINY, None, retries=0,
            checkpoint_dir=tmp_path / "snaps", checkpoint_every="1")
        assert run.ok, run.failure
        assert run.trace.meta["resumed_from_iteration"] == 2
        _assert_traces_identical(baseline.trace, run.trace)

    def test_no_progress_exhausts_budget(self, tmp_path, monkeypatch):
        """A crash before any snapshot is charged against the budget
        exactly as before: retries=0 records the failure on the first
        stalled attempt."""
        planned = _planned_cc()
        # The crash hook matches run_computation's key (no profile
        # prefix), unlike the snapshot key.
        monkeypatch.setenv("REPRO_INJECT_CRASH",
                           f"cc-{planned.spec.cache_key()}")
        run = execute_planned_run(
            planned, TINY, None, retries=0,
            checkpoint_dir=tmp_path / "snaps", checkpoint_every="1")
        assert not run.ok
        assert run.failure.kind == "crash"
        assert run.failure.attempts == 1

    def test_successful_cell_discards_snapshots(self, tmp_path):
        planned = _planned_cc()
        key = run_cache_key(planned, TINY)
        snap_dir = tmp_path / "snaps"
        run = execute_planned_run(planned, TINY, None,
                                  checkpoint_dir=snap_dir,
                                  checkpoint_every="1")
        assert run.ok
        assert SnapshotStore(snap_dir).load_latest(key) is None


# ----------------------------------------------------------------------
# Chaos harness: random SIGKILLs mid-build, corpus still converges
# ----------------------------------------------------------------------
class TestChaosKills:
    def test_corpus_survives_random_worker_sigkills(self, tmp_path,
                                                    monkeypatch):
        """SIGKILL corpus workers at random iterations; repeated
        resumed builds must complete the corpus with vectors exactly
        matching an undisturbed build — and leak no shared-memory
        segments (workers only attach; the parent owns every name)."""
        import glob

        pre_segments = set(glob.glob("/dev/shm/repro-shm-*"))
        clean = build_corpus(TINY, store=ResultStore(tmp_path / "clean"),
                             workers=1)
        assert not clean.unexpected_failures
        expected = [(v.tag, v.as_array().tolist())
                    for v in clean.vectors()]

        # A finite kill budget: each SIGKILL consumes one token, so the
        # chaos loop is guaranteed to terminate.
        token_dir = tmp_path / "tokens"
        token_dir.mkdir()
        n_tokens = 3
        for i in range(n_tokens):
            (token_dir / f"token-{i}").touch()
        monkeypatch.setenv("REPRO_CHAOS_KILL", f"{token_dir}:1.0")

        store = ResultStore(tmp_path / "chaos")
        snap_dir = tmp_path / "chaos-snaps"
        corpus = None
        for _attempt in range(n_tokens + 3):
            corpus = build_corpus(TINY, store=store, workers=2,
                                  resume=True, retries=0,
                                  checkpoint_dir=snap_dir,
                                  checkpoint_every="1")
            if not corpus.unexpected_failures:
                break
        assert corpus is not None and not corpus.unexpected_failures, \
            [str(f.failure) for f in corpus.unexpected_failures]
        assert not list(token_dir.iterdir()), \
            "chaos kills never fired — the harness tested nothing"

        actual = [(v.tag, v.as_array().tolist()) for v in corpus.vectors()]
        assert sorted(actual) == sorted(expected)
        leaked = set(glob.glob("/dev/shm/repro-shm-*")) - pre_segments
        assert not leaked, f"chaos builds leaked shm segments: {leaked}"


# ----------------------------------------------------------------------
# CLI integration (run --checkpoint-*)
# ----------------------------------------------------------------------
class TestRunCheckpointCli:
    def test_kill_resume_via_cli(self, tmp_path):
        """`repro run --checkpoint-every` + `--from-checkpoint` resumes
        across real process deaths (the injected kill aborts the first
        process with a traceback; the second resumes and completes)."""
        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        spec_args = ["run", "cc", "--nedges", "500", "--seed", "4",
                     "--checkpoint-every", "1",
                     "--checkpoint-dir", str(tmp_path)]
        env[INJECT_KILL_ENV] = "cc-:2"
        first = subprocess.run(
            [sys.executable, "-m", "repro", *spec_args],
            cwd="/root/repo", env=env, capture_output=True, text=True)
        assert first.returncode != 0
        assert "SimulatedKillError" in first.stderr

        env.pop(INJECT_KILL_ENV)
        second = subprocess.run(
            [sys.executable, "-m", "repro", *spec_args,
             "--from-checkpoint"],
            cwd="/root/repo", env=env, capture_output=True, text=True)
        assert second.returncode == 0, second.stderr
        assert "resumed from checkpoint at iteration 3" in second.stdout

        # And the resumed trace equals an uninterrupted run's.
        base = run_computation("cc", GraphSpec.ga(nedges=500, alpha=2.5,
                                                  seed=4))
        assert f"iterations={base.n_iterations} " in second.stdout


# ----------------------------------------------------------------------
# Graceful SIGINT for `repro corpus`
# ----------------------------------------------------------------------
class TestCorpusSigint:
    def test_first_sigint_stops_cleanly_exit_130(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
        # Slow every cell down a touch so the build is still mid-flight
        # when the signal arrives.
        env["REPRO_INJECT_SLEEP"] = "-:0.05"
        proc = subprocess.Popen(
            [sys.executable, "-u", "-m", "repro", "corpus",
             "--profile", "smoke", "--progress", "--workers", "2"],
            cwd="/root/repo", env=env, stdout=subprocess.PIPE,
            stderr=subprocess.PIPE, text=True)
        # Wait for the first progress line so the pool is actually up.
        line = proc.stdout.readline()
        assert line, "corpus produced no output"
        proc.send_signal(signal.SIGINT)
        out, err = proc.communicate(timeout=120)
        assert proc.returncode == 130, (out, err)
        assert "interrupted" in err
        assert "rerun the same command" in err
