"""Tests for the resilient corpus execution subsystem: the failure
taxonomy, crash isolation, timeouts, retries, quarantine, and resume."""

import time

import pytest

from repro._util.errors import (
    CacheCorruptError,
    ResourceLimitError,
    RunTimeoutError,
    ValidationError,
)
from repro._util.timing import wall_clock_limit
from repro.behavior.run import INJECT_CRASH_ENV, INJECT_SLEEP_ENV
from repro.experiments.config import ExperimentMatrix, Profile
from repro.experiments.corpus import (
    build_corpus,
    execute_planned_run,
    run_cache_key,
)
from repro.experiments.failures import (
    EXPECTED_KINDS,
    FAILURE_KINDS,
    RETRYABLE_KINDS,
    RunFailure,
    classify_exception,
)
from repro.experiments.results import ResultStore

#: Tiny two-size profile so resilience builds finish in a few seconds.
TINY_PROFILE = Profile(
    name="tiny",
    ga_sizes=(200, 600),
    cf_sizes=(80, 200),
    matrix_rows=(30,),
    grid_sides=(8,),
    mrf_edges=(40,),
    memory_budget_bytes=1_400_000,
    ad_n_hashes=64,
    coverage_samples=1_000,
    seed=11,
    alphas=(2.0, 2.5),
)

#: Substring of the injected cell's run key (<alg>-<spec cache key>).
CRASH_TARGET = "cc-ga-ne200-a2.0"


def _planned(algorithm: str):
    matrix = ExperimentMatrix(TINY_PROFILE)
    return [p for p in matrix.corpus_runs() if p.algorithm == algorithm][0]


class TestRunFailure:
    def test_kinds_are_closed(self):
        assert set(FAILURE_KINDS) == {"memory", "timeout", "numeric",
                                      "nonconvergence", "crash",
                                      "cache-corrupt", "lease-expired",
                                      "quarantined-poison", "disk-io"}
        with pytest.raises(ValidationError):
            RunFailure(kind="cosmic-ray", message="bit flip")

    def test_classification(self):
        assert classify_exception(ResourceLimitError("x")) == "memory"
        assert classify_exception(RunTimeoutError("x")) == "timeout"
        assert classify_exception(CacheCorruptError("x")) == "cache-corrupt"
        assert classify_exception(ZeroDivisionError()) == "crash"

    def test_from_exception_captures_traceback(self):
        try:
            raise ValueError("boom")
        except ValueError as exc:
            failure = RunFailure.from_exception(exc, attempts=2)
        assert failure.kind == "crash"
        assert failure.message == "boom"
        assert "ValueError: boom" in failure.traceback
        assert failure.attempts == 2

    def test_expected_vs_retryable_partition(self):
        assert EXPECTED_KINDS == {"memory"}
        assert RETRYABLE_KINDS == {"timeout", "crash", "cache-corrupt",
                                   "lease-expired", "disk-io"}
        assert RunFailure(kind="memory", message="m").expected
        assert not RunFailure(kind="crash", message="c").expected
        assert RunFailure(kind="timeout", message="t").retryable
        # The health kinds are deterministic: never retried, never
        # expected — they always drive a nonzero corpus exit. A poison
        # quarantine is the *decision* to stop retrying, so it is
        # terminal too.
        for kind in ("numeric", "nonconvergence", "quarantined-poison"):
            failure = RunFailure(kind=kind, message="x")
            assert not failure.retryable
            assert not failure.expected

    def test_dict_roundtrip(self):
        failure = RunFailure(kind="timeout", message="slow",
                             traceback="tb", attempts=4)
        assert RunFailure.from_dict(failure.to_dict()) == failure


class TestWallClockLimit:
    def test_interrupts_a_sleeping_body(self):
        with pytest.raises(RunTimeoutError):
            with wall_clock_limit(0.05):
                time.sleep(5)

    def test_disabled_when_none_or_nonpositive(self):
        with wall_clock_limit(None):
            pass
        with wall_clock_limit(0):
            pass

    def test_timer_cleared_after_fast_body(self):
        with wall_clock_limit(0.05):
            pass
        time.sleep(0.1)  # the alarm must not fire after the block

    def test_reports_enforcement(self):
        with wall_clock_limit(30.0) as enforcement:
            assert enforcement.enforced
            assert enforcement.requested_s == 30.0
        with wall_clock_limit(None) as enforcement:
            assert not enforcement.enforced


class TestWallClockFallback:
    """SIGALRM is main-thread-only; elsewhere the limit degrades to the
    engines' cooperative per-iteration deadline."""

    def _in_thread(self, fn):
        import threading

        box: dict = {}

        def target():
            try:
                box["result"] = fn()
            except BaseException as exc:  # noqa: BLE001 - test relay
                box["error"] = exc

        thread = threading.Thread(target=target)
        thread.start()
        thread.join()
        if "error" in box:
            raise box["error"]
        return box["result"]

    def test_warns_once_and_reports_unenforced(self, monkeypatch):
        import repro._util.timing as timing

        monkeypatch.setattr(timing, "_WARNED_UNENFORCEABLE", False)

        def body():
            import warnings

            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                with wall_clock_limit(5.0) as first:
                    pass
                with wall_clock_limit(5.0) as second:
                    pass
            return first, second, caught

        first, second, caught = self._in_thread(body)
        assert not first.enforced and not second.enforced
        relevant = [w for w in caught
                    if issubclass(w.category, RuntimeWarning)]
        assert len(relevant) == 1  # warned exactly once per process
        assert "cooperative" in str(relevant[0].message)

    def test_deadline_raises_after_budget(self):
        from repro._util.timing import Deadline

        deadline = Deadline(0.01)
        time.sleep(0.05)
        with pytest.raises(RunTimeoutError) as excinfo:
            deadline.check()
        assert "cooperative" in str(excinfo.value)
        Deadline(None).check()  # disabled: never raises

    def test_engine_cooperative_deadline(self):
        from repro.behavior.run import run_computation
        from repro.experiments.config import GraphSpec

        spec = GraphSpec.for_domain("ga", nedges=400, alpha=2.5, seed=3)
        with pytest.raises(RunTimeoutError):
            run_computation("pagerank", spec,
                            options={"wall_clock_budget_s": 1e-9})

    def test_trace_records_enforcement_metadata(self):
        from repro.behavior.run import run_computation
        from repro.experiments.config import GraphSpec

        spec = GraphSpec.for_domain("ga", nedges=200, alpha=2.5, seed=3)
        trace = run_computation("cc", spec, timeout_s=60.0)
        assert trace.meta["timeout_enforced"] is True
        assert trace.meta["timeout_requested_s"] == 60.0

    def test_thread_run_falls_back_and_records(self, monkeypatch):
        import repro._util.timing as timing
        from repro.behavior.run import run_computation
        from repro.experiments.config import GraphSpec

        monkeypatch.setattr(timing, "_WARNED_UNENFORCEABLE", True)
        spec = GraphSpec.for_domain("ga", nedges=200, alpha=2.5, seed=3)
        trace = self._in_thread(
            lambda: run_computation("cc", spec, timeout_s=60.0))
        assert trace.meta["timeout_enforced"] is False
        assert not trace.degraded  # generous budget: run completes


class TestParamsAliasing:
    def test_context_deep_copies_params(self):
        """A program mutating nested param containers must not leak the
        mutation back into the caller's (long-lived) options dict."""
        from repro.engine.context import Context
        from repro.generators import powerlaw_graph

        problem = powerlaw_graph(100, 2.5, seed=1)
        params = {"tolerance": 1e-3, "schedule": [1, 2, 3],
                  "nested": {"k": 5}}
        ctx = Context(problem, params=params)
        ctx.params["schedule"].append(99)
        ctx.params["nested"]["k"] = -1
        ctx.params["tolerance"] = 0.5
        assert params == {"tolerance": 1e-3, "schedule": [1, 2, 3],
                          "nested": {"k": 5}}

    def test_engine_options_params_survive_two_runs(self):
        """Two contexts built from one long-lived EngineOptions must not
        share nested param containers: the first run's mutations would
        otherwise leak into every retry and later run."""
        from repro.engine.context import Context
        from repro.engine.engine import EngineOptions
        from repro.generators import powerlaw_graph

        problem = powerlaw_graph(100, 2.5, seed=1)
        opts = EngineOptions(params={"nested": {"k": 1}, "seq": [1]})
        first = Context(problem, params=opts.params)
        first.params["nested"]["k"] = 99
        first.params["seq"].append(2)
        second = Context(problem, params=opts.params)
        assert second.params == {"nested": {"k": 1}, "seq": [1]}
        assert opts.params == {"nested": {"k": 1}, "seq": [1]}


class TestExhaustiveClassification:
    #: Expected kind for every exception class defined in
    #: repro._util.errors; the test fails if a new error type is added
    #: without an explicit entry here.
    EXPECTED = {
        "ReproError": "crash",
        "ValidationError": "crash",
        "GraphConstructionError": "crash",
        "ResourceLimitError": "memory",
        "ConvergenceError": "nonconvergence",
        "NumericError": "numeric",
        "NonConvergenceError": "nonconvergence",
        "TraceInvariantError": "numeric",
        "RunTimeoutError": "timeout",
        "CacheCorruptError": "cache-corrupt",
    }

    def test_every_library_error_type_is_classified(self):
        import inspect

        import repro._util.errors as errors_mod

        classes = {
            name: obj for name, obj in vars(errors_mod).items()
            if inspect.isclass(obj) and issubclass(obj, Exception)
            and obj.__module__ == errors_mod.__name__
        }
        assert set(classes) == set(self.EXPECTED), (
            "error type added/removed without updating the "
            "classification table")
        for name, cls in classes.items():
            exc = cls("synthetic")
            kind = classify_exception(exc)
            assert kind == self.EXPECTED[name], (
                f"{name} classified as {kind!r}, "
                f"expected {self.EXPECTED[name]!r}")
            assert kind in FAILURE_KINDS

    def test_builtin_exceptions_are_crashes(self):
        for exc in (RuntimeError("x"), OSError("x"), KeyError("x"),
                    ZeroDivisionError()):
            assert classify_exception(exc) == "crash"


class TestCrashIsolation:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_injected_crash_does_not_abort_build(self, tmp_path,
                                                 monkeypatch, workers):
        monkeypatch.setenv(INJECT_CRASH_ENV, CRASH_TARGET)
        store = ResultStore(tmp_path)
        corpus = build_corpus(TINY_PROFILE, store=store, workers=workers)
        # Every other cell completed.
        assert corpus.n_runs == len(
            ExperimentMatrix(TINY_PROFILE).corpus_runs()) - 1
        [failed] = corpus.failures
        assert failed.algorithm == "cc"
        assert failed.failure.kind == "crash"
        assert "injected crash" in failed.failure.message
        assert "RuntimeError" in failed.failure.traceback
        assert corpus.unexpected_failures == [failed]

    def test_memory_failures_are_expected(self, tmp_path):
        profile = Profile(name="tiny-oom", ga_sizes=(200, 4_000),
                          cf_sizes=(80,), matrix_rows=(30,),
                          grid_sides=(8,), mrf_edges=(40,),
                          memory_budget_bytes=1_400_000,
                          coverage_samples=1_000, seed=11,
                          alphas=(2.5,))
        corpus = build_corpus(profile, store=ResultStore(tmp_path))
        assert corpus.failures  # AD at the largest size goes over budget
        assert all(f.failure.kind == "memory" for f in corpus.failures)
        assert corpus.unexpected_failures == []


class TestTimeoutsAndRetries:
    def test_slow_run_records_timeout(self, tmp_path, monkeypatch):
        monkeypatch.setenv(INJECT_SLEEP_ENV, "sssp-ga-ne200-a2.0:5")
        run = execute_planned_run(_planned("sssp"), TINY_PROFILE,
                                  ResultStore(tmp_path), timeout_s=0.2)
        assert not run.ok
        assert run.failure.kind == "timeout"
        assert "wall-clock" in run.failure.message

    def test_persistent_crash_exhausts_retries(self, tmp_path, monkeypatch):
        monkeypatch.setenv(INJECT_CRASH_ENV, CRASH_TARGET)
        run = execute_planned_run(_planned("cc"), TINY_PROFILE,
                                  ResultStore(tmp_path), retries=2)
        assert run.failure.kind == "crash"
        assert run.failure.attempts == 3

    def test_transient_crash_succeeds_on_retry(self, tmp_path, monkeypatch):
        # Fail exactly once, then hand execution back to the real runner.
        import repro.experiments.corpus as corpus_mod
        from repro.behavior.run import run_computation as real_run

        calls = {"n": 0}

        def flaky(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise OSError("transient I/O blip")
            return real_run(*args, **kwargs)

        monkeypatch.setattr(corpus_mod, "run_computation", flaky)
        run = execute_planned_run(_planned("cc"), TINY_PROFILE,
                                  ResultStore(tmp_path), retries=1)
        assert run.ok
        assert calls["n"] == 2

    def test_memory_failure_is_never_retried(self, tmp_path, monkeypatch):
        import repro.experiments.corpus as corpus_mod

        calls = {"n": 0}

        def always_oom(*args, **kwargs):
            calls["n"] += 1
            raise ResourceLimitError("over budget")

        monkeypatch.setattr(corpus_mod, "run_computation", always_oom)
        run = execute_planned_run(_planned("cc"), TINY_PROFILE,
                                  ResultStore(tmp_path), retries=5)
        assert run.failure.kind == "memory"
        assert calls["n"] == 1


class TestQuarantineAndResume:
    def test_truncated_cache_entry_is_quarantined_and_reexecuted(
            self, tmp_path):
        store = ResultStore(tmp_path)
        planned = _planned("cc")
        first = execute_planned_run(planned, TINY_PROFILE, store)
        assert first.ok and first.source == "run"
        key = run_cache_key(planned, TINY_PROFILE)
        store._path(key).write_text('{"algorithm": "cc", "trunc')
        second = execute_planned_run(planned, TINY_PROFILE, store)
        assert second.ok and second.source == "run"
        assert store.n_quarantined() == 1
        # The re-executed trace was re-cached and now loads cleanly.
        third = execute_planned_run(planned, TINY_PROFILE, store)
        assert third.ok and third.source == "cache"

    def test_resume_skips_completed_cells(self, tmp_path):
        store = ResultStore(tmp_path)
        cold = build_corpus(TINY_PROFILE, store=store)
        assert cold.n_executed == len(
            ExperimentMatrix(TINY_PROFILE).corpus_runs())
        resumed = build_corpus(TINY_PROFILE, store=store, resume=True)
        assert resumed.n_executed == 0
        assert resumed.n_cached == cold.n_executed
        assert [r.tag for r in resumed.runs] == [r.tag for r in cold.runs]

    def test_resume_reexecutes_only_the_failed_cell(self, tmp_path,
                                                    monkeypatch):
        store = ResultStore(tmp_path)
        monkeypatch.setenv(INJECT_CRASH_ENV, CRASH_TARGET)
        cold = build_corpus(TINY_PROFILE, store=store)
        assert len(cold.unexpected_failures) == 1
        monkeypatch.delenv(INJECT_CRASH_ENV)
        resumed = build_corpus(TINY_PROFILE, store=store, resume=True)
        assert resumed.n_executed == 1  # only the crashed cell
        assert resumed.failures == []
        assert resumed.n_runs == cold.n_runs + 1

    def test_without_resume_cached_crash_is_replayed(self, tmp_path,
                                                     monkeypatch):
        store = ResultStore(tmp_path)
        planned = _planned("cc")
        monkeypatch.setenv(INJECT_CRASH_ENV, CRASH_TARGET)
        execute_planned_run(planned, TINY_PROFILE, store)
        monkeypatch.delenv(INJECT_CRASH_ENV)
        replayed = execute_planned_run(planned, TINY_PROFILE, store)
        assert not replayed.ok
        assert replayed.source == "cache"
        assert replayed.failure.kind == "crash"


class TestProgressLines:
    def test_structured_progress(self, tmp_path, monkeypatch):
        monkeypatch.setenv(INJECT_CRASH_ENV, CRASH_TARGET)
        lines: list = []
        build_corpus(TINY_PROFILE, store=ResultStore(tmp_path),
                     progress=lines.append)
        total = len(ExperimentMatrix(TINY_PROFILE).corpus_runs())
        assert len(lines) == total
        assert lines[0].startswith("[1/")
        failed = [l for l in lines if "status=failed" in l]
        assert len(failed) == 1
        assert "kind=crash" in failed[0] and "attempts=1" in failed[0]
        ok = [l for l in lines if "status=ok" in l]
        assert all("source=run" in l for l in ok)


class TestEngineOptionValidation:
    def test_workmodel_has_no_unit_scale(self):
        from repro.engine.instrumentation import WorkModel

        assert not hasattr(WorkModel(), "unit_scale")

    def test_engine_options_validate_unit_scale(self):
        from repro.engine.engine import EngineOptions

        with pytest.raises(ValidationError):
            EngineOptions(unit_scale=0.0)
        with pytest.raises(ValidationError):
            EngineOptions(unit_scale=-1e-9)
        with pytest.raises(ValidationError):
            EngineOptions(memory_budget_bytes=0)
        EngineOptions(unit_scale=1e-6)  # valid

    def test_profile_validates_resilience_knobs(self):
        with pytest.raises(ValidationError):
            Profile(name="bad", ga_sizes=(1,), cf_sizes=(1,),
                    matrix_rows=(1,), grid_sides=(1,), mrf_edges=(1,),
                    run_timeout_s=0.0)
        with pytest.raises(ValidationError):
            Profile(name="bad", ga_sizes=(1,), cf_sizes=(1,),
                    matrix_rows=(1,), grid_sides=(1,), mrf_edges=(1,),
                    max_retries=-1)
        with pytest.raises(ValidationError):
            Profile(name="bad", ga_sizes=(1,), cf_sizes=(1,),
                    matrix_rows=(1,), grid_sides=(1,), mrf_edges=(1,),
                    retry_backoff_s=-0.1)


# ----------------------------------------------------------------------
# ResultStore quarantine under concurrent readers
# ----------------------------------------------------------------------
def _load_is_miss(payload) -> bool:
    """Module-level pool worker: load one key, report cache miss."""
    root, key = payload
    return ResultStore(root).load(key) is None


class TestConcurrentQuarantine:
    def test_corrupt_entry_quarantined_once_under_concurrency(
            self, tmp_path):
        """Many processes racing to load one corrupt cache entry: every
        load reports a miss (never a crash, never a half-read trace),
        and exactly one racer wins the quarantine move — the entry is
        preserved once, not duplicated or lost."""
        import concurrent.futures

        planned = _planned("cc")
        key = run_cache_key(planned, TINY_PROFILE)
        store = ResultStore(tmp_path)
        assert execute_planned_run(planned, TINY_PROFILE, store).ok
        path = store._path(key)
        blob = path.read_text(encoding="utf-8")
        path.write_text(blob[: len(blob) // 2], encoding="utf-8")

        with concurrent.futures.ProcessPoolExecutor(max_workers=4) as pool:
            misses = list(pool.map(_load_is_miss,
                                   [(store.root, key)] * 8))
        assert all(misses)
        assert not path.exists()
        assert sum(1 for _ in store.quarantine_dir.iterdir()) == 1


# ----------------------------------------------------------------------
# Cooperative stop (the CLI's SIGINT hook)
# ----------------------------------------------------------------------
class TestStopRequested:
    def test_stop_requested_interrupts_inline_build(self, tmp_path):
        polls = []

        def stop() -> bool:
            polls.append(1)
            return len(polls) > 3

        corpus = build_corpus(TINY_PROFILE, store=ResultStore(tmp_path),
                              workers=1, stop_requested=stop)
        assert corpus.interrupted
        total = len(ExperimentMatrix(TINY_PROFILE).corpus_runs())
        done = len(corpus.runs) + len(corpus.failures)
        assert 0 < done < total

    def test_interrupted_build_resumes_from_cache(self, tmp_path):
        store = ResultStore(tmp_path)
        polls = []

        def stop() -> bool:
            polls.append(1)
            return len(polls) > 3

        first = build_corpus(TINY_PROFILE, store=store, workers=1,
                             stop_requested=stop)
        assert first.interrupted
        second = build_corpus(TINY_PROFILE, store=store, workers=1)
        assert not second.interrupted
        assert second.n_cached >= len(first.runs)
        total = len(ExperimentMatrix(TINY_PROFILE).corpus_runs())
        assert len(second.runs) + len(second.failures) == total

    def test_sigint_governor_two_stage(self, capsys):
        import signal as _signal

        from repro.cli import _SigintGovernor

        with _SigintGovernor() as governor:
            assert not governor.stop_requested()
            handler = _signal.getsignal(_signal.SIGINT)
            handler(_signal.SIGINT, None)
            assert governor.stop_requested()
            with pytest.raises(KeyboardInterrupt):
                handler(_signal.SIGINT, None)
