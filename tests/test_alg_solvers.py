"""Correctness tests for Jacobi, Loopy BP, and Dual Decomposition."""

import numpy as np
import pytest

from repro.engine.engine import SynchronousEngine
from repro.generators import grid_problem, matrix_problem, mrf_problem


def run_program(name, problem, params=None, options=None):
    from repro.algorithms.registry import create
    from repro.behavior.run import build_engine_options

    program = create(name, **(params or {}))
    engine = SynchronousEngine(build_engine_options(name, options))
    return engine.run(program, problem), program


class TestJacobi:
    def test_solves_the_system(self):
        prob = matrix_problem(80, seed=2)
        trace, prog = run_program("jacobi", prob)
        assert trace.converged
        np.testing.assert_allclose(prog.x, prob.inputs["x_true"], atol=1e-6)
        assert trace.result["solution_error"] < 1e-6

    def test_matches_scipy_dense_solve(self):
        prob = matrix_problem(40, seed=7)
        trace, prog = run_program("jacobi", prob)
        g = prob.graph
        A = np.zeros((g.n_vertices, g.n_vertices))
        src, dst = g.edge_endpoints()
        A[dst, src] = g.edge_weight
        A[np.arange(g.n_vertices), np.arange(g.n_vertices)] = prob.inputs["diag"]
        x_direct = np.linalg.solve(A, prob.inputs["b"])
        np.testing.assert_allclose(prog.x, x_direct, atol=1e-6)

    def test_always_fully_active(self):
        prob = matrix_problem(50, seed=2)
        trace, _ = run_program("jacobi", prob)
        np.testing.assert_allclose(trace.active_fraction(), 1.0)

    def test_eread_constant(self):
        # Paper Fig 12: EREAD is Jacobi's only scale-insensitive metric.
        prob = matrix_problem(50, seed=2)
        trace, _ = run_program("jacobi", prob)
        reads = trace.series("edge_reads")
        assert np.all(reads == reads[0])

    def test_tol_validation(self):
        from repro._util.errors import ValidationError
        from repro.algorithms.registry import create
        with pytest.raises(ValidationError):
            create("jacobi", tol=0)


class TestLBP:
    def test_denoising_beats_observation(self):
        prob = grid_problem(28, seed=5)
        observed = np.argmax(prob.inputs["priors"], axis=1)
        observed_acc = (observed == prob.inputs["truth"]).mean()
        trace, _ = run_program("lbp", prob)
        assert trace.result["accuracy"] > observed_acc

    def test_sharp_active_drop(self):
        # Paper Fig 11: active fraction drops sharply.
        prob = grid_problem(24, seed=5)
        trace, _ = run_program("lbp", prob)
        af = trace.active_fraction()
        assert af[0] == 1.0
        assert af[min(5, af.size - 1)] < 0.7

    def test_size_independent_shape(self):
        # Paper: "graph size has no effect on the shape of active
        # fraction" — both sizes drop below half by the same fraction of
        # their lifecycle.
        from repro.behavior.metrics import resample_series

        shapes = []
        for side in (16, 32):
            trace, _ = run_program("lbp", grid_problem(side, seed=5))
            shapes.append(resample_series(trace.active_fraction(), 20))
        # The resampled curves correlate strongly.
        corr = np.corrcoef(shapes[0], shapes[1])[0, 1]
        assert corr > 0.7

    def test_labels_valid(self):
        prob = grid_problem(12, seed=5)
        _trace, prog = run_program("lbp", prob)
        labels = prog.labels()
        assert labels.min() >= 0
        assert labels.max() < prob.inputs["n_states"]

    def test_tol_validation(self):
        from repro._util.errors import ValidationError
        from repro.algorithms.registry import create
        with pytest.raises(ValidationError):
            create("lbp", tol=-1)


class TestDD:
    def test_converges_to_agreement(self):
        prob = mrf_problem(112, seed=4)
        trace, _ = run_program("dd", prob)
        assert trace.result["final_disagreements"] == 0
        assert trace.converged

    def test_energy_not_worse_than_unary_only(self):
        # The DD labeling must beat the naive per-variable argmin once
        # couplings matter (here: compare total energies).
        prob = mrf_problem(112, seed=4)
        trace, prog = run_program("dd", prob)
        mrf = prob.inputs["mrf"]
        naive = np.array([int(np.argmin(u)) for u in mrf.unary])
        tables = np.stack(mrf.pair_tables)
        naive_energy = (
            sum(mrf.unary[i][naive[i]] for i in range(mrf.n_variables))
            + tables[np.arange(mrf.n_pairwise),
                     naive[mrf.pair_vars[:, 0]],
                     naive[mrf.pair_vars[:, 1]]].sum()
        )
        assert trace.result["primal_energy"] <= naive_energy + 1e-9

    def test_always_fully_active(self):
        prob = mrf_problem(84, seed=4)
        trace, _ = run_program("dd", prob)
        np.testing.assert_allclose(trace.active_fraction(), 1.0)

    def test_slowest_convergence_vs_tc(self):
        # Paper Section 4.5: convergence rate differs by orders of
        # magnitude across domains (TC vs DD).
        from repro.behavior.run import run_computation
        from repro.experiments.config import GraphSpec

        dd_trace, _ = run_program("dd", mrf_problem(1056, seed=3))
        tc_trace = run_computation(
            "triangle", GraphSpec.ga(nedges=1000, alpha=2.5, seed=3))
        assert dd_trace.n_iterations > 30 * tc_trace.n_iterations

    def test_step_validation(self):
        from repro._util.errors import ValidationError
        from repro.algorithms.registry import create
        with pytest.raises(ValidationError):
            create("dd", step0=0)
