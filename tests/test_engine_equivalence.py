"""Vectorized vs reference engine equivalence — the library's core
correctness guarantee: both drive modes of every algorithm must produce
identical synchronous traces, counter for counter.
"""

import numpy as np
import pytest

from repro.algorithms.registry import iter_algorithms
from repro.behavior.run import run_computation
from repro.experiments.config import GraphSpec

SPEC_BY_DOMAIN = {
    "ga": GraphSpec.ga(nedges=300, alpha=2.5, seed=21),
    "clustering": GraphSpec.clustering(nedges=300, alpha=2.5, seed=21),
    "cf": GraphSpec.cf(nedges=200, alpha=2.5, seed=21),
    "matrix": GraphSpec.matrix(25, seed=21),
    "grid": GraphSpec.grid(8, seed=21),
    "mrf": GraphSpec.mrf(48, seed=21),
}

ALGORITHMS = [rec.name for rec in iter_algorithms()]


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_modes_produce_identical_traces(algorithm):
    from repro.algorithms.registry import info

    spec = SPEC_BY_DOMAIN[info(algorithm).domain]
    vec = run_computation(algorithm, spec)
    ref = run_computation(algorithm, spec, options={"mode": "reference"})

    assert vec.n_iterations == ref.n_iterations, "iteration counts differ"
    assert vec.stop_reason == ref.stop_reason
    for a, b in zip(vec.iterations, ref.iterations):
        assert a.active == b.active, f"active differs at iter {a.iteration}"
        assert a.updates == b.updates, f"updates differ at iter {a.iteration}"
        assert a.edge_reads == b.edge_reads, \
            f"edge_reads differ at iter {a.iteration}"
        assert a.messages == b.messages, \
            f"messages differ at iter {a.iteration}"
        assert a.work == pytest.approx(b.work, rel=1e-12), \
            f"unit work differs at iter {a.iteration}"


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_modes_produce_identical_results(algorithm):
    """Algorithm outputs (not just counters) must match across modes."""
    from repro.algorithms.registry import info

    spec = SPEC_BY_DOMAIN[info(algorithm).domain]
    vec = run_computation(algorithm, spec)
    ref = run_computation(algorithm, spec, options={"mode": "reference"})
    assert set(vec.result) == set(ref.result)
    for key, value in vec.result.items():
        other = ref.result[key]
        if isinstance(value, float):
            assert value == pytest.approx(other, rel=1e-9), key
        elif isinstance(value, list):
            np.testing.assert_allclose(value, other, rtol=1e-9)
        else:
            assert value == other, key


def test_runs_are_deterministic():
    """Same spec + seed → bit-identical traces (modulo wall-clock
    provenance: timings and where the graph came from — the second run
    resolves through the per-process graph cache)."""
    spec = SPEC_BY_DOMAIN["ga"]
    a = run_computation("pagerank", spec).to_dict()
    b = run_computation("pagerank", spec).to_dict()
    for d in (a, b):
        d.pop("wall_time_s")
        for key in ("materialize_s", "engine_s", "graph_source"):
            d["meta"].pop(key, None)
    assert a == b
