"""Tests for degree-distribution analysis and power-law fitting."""

import numpy as np
import pytest

from repro._util.errors import ValidationError
from repro.generators import powerlaw_graph
from repro.graph.csr import Graph
from repro.graph.properties import (
    degree_distribution,
    fit_power_law_alpha,
    summarize,
)


class TestDegreeDistribution:
    def test_sums_to_one(self, ga_problem):
        ks, frac = degree_distribution(ga_problem.graph)
        assert frac.sum() == pytest.approx(1.0)
        assert np.all(np.diff(ks) > 0)

    def test_small_graph_exact(self):
        g = Graph.from_edges(4, np.array([0, 0, 1, 2]),
                             np.array([1, 2, 2, 3]))
        ks, frac = degree_distribution(g)
        assert ks.tolist() == [1, 2, 3]
        np.testing.assert_allclose(frac, [0.25, 0.5, 0.25])


class TestPowerLawFit:
    def test_recovers_known_exponent(self, rng):
        # Sample degrees from an exact discrete power law and fit. The
        # continuous-approximation MLE carries a known small-k_min bias,
        # so use a deep tail and a generous absolute tolerance.
        alpha = 2.5
        ks = np.arange(6, 20_000)
        pmf = ks ** (-alpha)
        pmf /= pmf.sum()
        sample = rng.choice(ks, size=40_000, p=pmf)
        fitted = fit_power_law_alpha(sample, k_min=6)
        assert fitted == pytest.approx(alpha, abs=0.15)

    def test_monotone_in_generator_alpha(self):
        # Heavier tails (smaller α) must fit smaller exponents.
        fits = []
        for alpha in (2.0, 2.5, 3.0):
            prob = powerlaw_graph(20_000, alpha, seed=9)
            fits.append(fit_power_law_alpha(prob.graph.degree, k_min=2))
        assert fits[0] < fits[1] < fits[2]

    def test_rejects_tiny_samples(self):
        with pytest.raises(ValidationError):
            fit_power_law_alpha(np.array([3]), k_min=2)

    def test_rejects_all_below_kmin(self):
        with pytest.raises(ValidationError):
            fit_power_law_alpha(np.array([1, 1, 1, 1]), k_min=3)


class TestSummarize:
    def test_fields(self, ga_problem):
        s = summarize(ga_problem.graph)
        assert s.n_vertices == ga_problem.graph.n_vertices
        assert s.n_edges == ga_problem.graph.n_edges
        assert s.min_degree <= s.mean_degree <= s.max_degree
        assert s.alpha_mle is not None
        assert "|V|" in s.as_row()

    def test_no_alpha_on_degenerate(self):
        g = Graph.from_edges(2, np.array([0]), np.array([1]))
        s = summarize(g, k_min=2)
        assert s.alpha_mle is None
        assert "n/a" in s.as_row()
