"""Tests for best-ensemble search, bounds, frequency, and constraints."""

import numpy as np
import pytest

from repro._util.errors import ValidationError
from repro.behavior.space import BehaviorSpace, BehaviorVector
from repro.ensemble.bounds import (
    UpperBounds,
    max_coverage_points,
    max_spread_points,
)
from repro.ensemble.constrained import (
    limit_to_algorithms,
    limit_to_structures,
    truncate_trace,
)
from repro.ensemble.frequency import algorithm_frequencies
from repro.ensemble.metrics import coverage, spread
from repro.ensemble.search import (
    best_ensemble,
    best_ensemble_curve,
    exhaustive_best,
    top_k_ensembles,
)
from repro.generators.rng import make_rng


def random_pool(n=24, seed=0, tag_algorithms=("a", "b", "c")):
    rng = make_rng(seed, "test-pool")
    pool = []
    for i in range(n):
        coords = rng.random(4)
        tag = (tag_algorithms[i % len(tag_algorithms)], 10 ** (i % 3), 2.0)
        pool.append(BehaviorVector(*coords, tag=tag))
    return pool


class TestBestEnsemble:
    def test_matches_exhaustive_spread(self):
        pool = random_pool(14, seed=3)
        beam = best_ensemble(pool, 4, "spread", beam_width=64)
        exact = exhaustive_best(pool, 4, "spread")
        assert beam.score == pytest.approx(exact.score, rel=1e-9)

    def test_matches_exhaustive_coverage(self):
        space = BehaviorSpace()
        samples = space.sample(1500, seed=4)
        pool = random_pool(12, seed=5)
        beam = best_ensemble(pool, 3, "coverage", samples=samples,
                             beam_width=64)
        exact = exhaustive_best(pool, 3, "coverage", samples=samples)
        assert beam.score == pytest.approx(exact.score, rel=1e-6)

    def test_score_equals_metric_recompute(self):
        pool = random_pool(18, seed=6)
        res = best_ensemble(pool, 5, "spread")
        assert res.score == pytest.approx(spread(res.ensemble), rel=1e-9)

    def test_coverage_score_recompute(self):
        space = BehaviorSpace()
        samples = space.sample(2000, seed=7)
        pool = random_pool(18, seed=7)
        res = best_ensemble(pool, 4, "coverage", samples=samples)
        assert res.score == pytest.approx(
            coverage(res.ensemble, samples=samples), rel=1e-9)

    def test_distinct_members(self):
        pool = random_pool(20, seed=8)
        res = best_ensemble(pool, 6, "spread")
        assert len(set(res.indices)) == 6

    def test_validation(self):
        pool = random_pool(5)
        with pytest.raises(ValidationError):
            best_ensemble(pool, 9, "spread")
        with pytest.raises(ValidationError):
            best_ensemble(pool, 0, "spread")
        with pytest.raises(ValidationError):
            best_ensemble(pool, 2, "entropy")

    def test_curve_keys(self):
        pool = random_pool(15, seed=9)
        curve = best_ensemble_curve(pool, [2, 4, 6], "spread")
        assert sorted(curve) == [2, 4, 6]
        # Best spread is non-increasing with ensemble size (adding
        # members can only pull the mean pairwise distance down once
        # the two farthest points are in).
        assert curve[2].score >= curve[4].score >= curve[6].score

    @pytest.mark.parametrize("engine,cls_name", [
        ("fast", "FastEngine"), ("legacy", "_Evaluator")])
    def test_curve_builds_engine_once(self, monkeypatch, engine, cls_name):
        from repro.ensemble import fast as fast_mod
        from repro.ensemble import search as search_mod

        mod = fast_mod if engine == "fast" else search_mod
        calls = []
        original = getattr(mod, cls_name).__init__

        def counting(self, *args, **kwargs):
            calls.append(1)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(getattr(mod, cls_name), "__init__", counting)
        pool = random_pool(15, seed=9)
        curve = best_ensemble_curve(pool, [2, 3, 4, 5], "spread",
                                    engine=engine)
        assert len(calls) == 1, "curve must share one engine"
        # Sharing the engine changes nothing about the results.
        for size in (2, 5):
            solo = best_ensemble(pool, size, "spread", engine=engine)
            assert curve[size].indices == solo.indices
            assert curve[size].score == pytest.approx(solo.score,
                                                      rel=1e-12)


class TestTieStability:
    """On equal scores the search prefers the lexicographically
    smallest index tuple (Figs 20-21 determinism)."""

    def grid_pool(self):
        # The 8 corners of a cube embedded in the 4-d space: every
        # size-2 ensemble of adjacent corners ties exactly, as do many
        # larger subsets — maximal tie pressure.
        corners = [(x, y, z, 0.5) for x in (0.1, 0.9)
                   for y in (0.1, 0.9) for z in (0.1, 0.9)]
        return [BehaviorVector(*c, tag=("a", 1, 2.0)) for c in corners]

    @pytest.mark.parametrize("engine", ["fast", "legacy"])
    @pytest.mark.parametrize("metric", ["spread", "coverage"])
    def test_beam_prefers_smallest_tuple(self, engine, metric):
        pool = self.grid_pool()
        samples = BehaviorSpace().sample(500, seed=0)
        res = best_ensemble(pool, 2, metric, samples=samples,
                            refine=False, engine=engine)
        peers = [r for r in top_k_ensembles(pool, 2, metric, k=30,
                                            samples=samples, engine=engine)
                 if abs(r.score - res.score) <= 1e-9]
        assert res.indices == min(p.indices for p in peers)

    @pytest.mark.parametrize("metric", ["spread", "coverage"])
    def test_engines_agree_under_ties(self, metric):
        pool = self.grid_pool()
        samples = BehaviorSpace().sample(500, seed=0)
        for size in (2, 3, 4):
            fast = best_ensemble(pool, size, metric, samples=samples,
                                 engine="fast")
            legacy = best_ensemble(pool, size, metric, samples=samples,
                                   engine="legacy")
            assert fast.indices == legacy.indices
            assert fast.score == pytest.approx(legacy.score, abs=1e-9)

    def test_exhaustive_prefers_smallest_tuple(self):
        pool = self.grid_pool()
        exact = exhaustive_best(pool, 2, "spread")
        # All 12 cube edges tie at the edge length; (0, 1) is the
        # lexicographically smallest of them — but the face and body
        # diagonals score higher, so the winner is the smallest tuple
        # among the 4 tying body diagonals: (0, 7).
        assert exact.indices == (0, 7)

    def test_top_k_deterministic(self):
        pool = self.grid_pool()
        a = top_k_ensembles(pool, 3, "spread", k=12)
        b = top_k_ensembles(pool, 3, "spread", k=12)
        assert [r.indices for r in a] == [r.indices for r in b]
        # ties inside the list are ordered by index tuple
        for first, second in zip(a, a[1:]):
            if abs(first.score - second.score) <= 1e-12:
                assert first.indices < second.indices


class TestTopK:
    def test_sorted_unique(self):
        pool = random_pool(20, seed=10)
        top = top_k_ensembles(pool, 4, "spread", k=10)
        scores = [r.score for r in top]
        assert scores == sorted(scores, reverse=True)
        assert len({r.indices for r in top}) == len(top)

    def test_first_equals_best(self):
        pool = random_pool(16, seed=11)
        top = top_k_ensembles(pool, 4, "spread", k=5, beam_width=600)
        best = exhaustive_best(pool, 4, "spread")
        assert top[0].score == pytest.approx(best.score, rel=1e-9)

    def test_k_validation(self):
        with pytest.raises(ValidationError):
            top_k_ensembles(random_pool(8), 2, "spread", k=0)


class TestBounds:
    def test_spread_bound_includes_antipodal_pair(self):
        pts = max_spread_points(2)
        assert spread(pts) == pytest.approx(BehaviorSpace().diameter)

    def test_bounds_dominate_random_ensembles(self):
        space = BehaviorSpace()
        samples = space.sample(4000, seed=12)
        ub = UpperBounds.compute([3, 6, 10], samples=samples)
        rng = make_rng(1, "rand-ens")
        for i, size in enumerate(ub.sizes):
            for trial in range(5):
                pts = rng.random((size, 4))
                assert spread(pts) <= ub.spread_bound[i] + 1e-9
                assert coverage(pts, samples=samples) \
                    <= ub.coverage_bound[i] + 1e-9

    def test_coverage_bound_monotone(self):
        samples = BehaviorSpace().sample(4000, seed=13)
        ub = UpperBounds.compute([2, 5, 10, 15], samples=samples)
        assert list(ub.coverage_bound) == sorted(ub.coverage_bound)

    def test_deterministic(self):
        a = max_coverage_points(5, seed=3)
        b = max_coverage_points(5, seed=3)
        np.testing.assert_array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValidationError):
            max_spread_points(0)
        with pytest.raises(ValidationError):
            max_coverage_points(-1)


class TestFrequency:
    def test_slot_share_sums_to_one(self):
        pool = random_pool(20, seed=14)
        top = top_k_ensembles(pool, 5, "spread", k=20)
        rep = algorithm_frequencies(top)
        assert sum(rep.slot_share.values()) == pytest.approx(1.0)
        assert all(0 <= p <= 1 for p in rep.presence.values())
        assert rep.n_ensembles == len(top)

    def test_ranked_and_top(self):
        pool = random_pool(20, seed=15)
        top = top_k_ensembles(pool, 5, "spread", k=10)
        rep = algorithm_frequencies(top)
        ranked = rep.ranked()
        assert ranked[0][1] >= ranked[-1][1]
        assert rep.top_algorithms(2) == [name for name, _ in ranked[:2]]

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            algorithm_frequencies([])

    def test_rejects_untagged(self):
        from repro.ensemble.ensemble import Ensemble
        from repro.ensemble.search import SearchResult

        e = Ensemble.of([BehaviorVector(0, 0, 0, 0)])
        res = SearchResult(ensemble=e, score=0.0, indices=(0,),
                           metric="spread")
        with pytest.raises(ValidationError):
            algorithm_frequencies([res])


class TestConstrained:
    def test_limit_to_algorithms(self):
        pool = random_pool(12, seed=16)
        kept = limit_to_algorithms(pool, ("a",))
        assert kept and all(v.tag[0] == "a" for v in kept)

    def test_limit_to_algorithms_missing(self):
        with pytest.raises(ValidationError):
            limit_to_algorithms(random_pool(6), ("zz",))

    def test_limit_to_structures(self):
        pool = random_pool(12, seed=17)
        kept = limit_to_structures(pool, [(1, 2.0)])
        assert kept and all(v.tag[1:] == (1, 2.0) for v in kept)

    def test_truncate_trace(self):
        from tests.test_behavior import make_trace

        t = make_trace([(1, 1, 2, 3, 0.5)] * 10)
        short = truncate_trace(t, 4)
        assert short.n_iterations == 4
        assert not short.converged
        assert short.stop_reason == "truncated@4"
        # Constant behavior ⇒ identical mean metrics after truncation.
        from repro.behavior.metrics import compute_metrics

        np.testing.assert_allclose(compute_metrics(short).as_array(),
                                   compute_metrics(t).as_array())

    def test_truncate_noop_when_short(self):
        from tests.test_behavior import make_trace

        t = make_trace([(1, 1, 2, 3, 0.5)] * 3)
        assert truncate_trace(t, 10) is t

    def test_truncate_validation(self):
        from tests.test_behavior import make_trace

        with pytest.raises(ValidationError):
            truncate_trace(make_trace([]), 0)
