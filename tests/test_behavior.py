"""Tests for traces, the five metrics, and the behavior space."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util.errors import ValidationError
from repro.behavior.metrics import (
    METRIC_NAMES,
    BehaviorMetrics,
    compute_metrics,
    resample_series,
)
from repro.behavior.space import BehaviorSpace, BehaviorVector, normalize_corpus
from repro.behavior.trace import IterationRecord, RunTrace


def make_trace(records, n_vertices=10, n_edges=20, **kw):
    return RunTrace(
        algorithm=kw.pop("algorithm", "toy"),
        graph_params=kw.pop("graph_params", {"nedges": n_edges, "alpha": 2.5}),
        domain="ga",
        n_vertices=n_vertices,
        n_edges=n_edges,
        iterations=[IterationRecord(i, *rec) for i, rec in enumerate(records)],
        **kw,
    )


class TestRunTrace:
    def test_series_and_means(self):
        t = make_trace([(5, 5, 10, 3, 0.5), (2, 2, 4, 1, 0.1)])
        assert t.series("active").tolist() == [5.0, 2.0]
        assert t.mean("messages") == 2.0
        assert t.n_iterations == 2

    def test_active_fraction(self):
        t = make_trace([(5, 5, 0, 0, 0.0)], n_vertices=10)
        assert t.active_fraction().tolist() == [0.5]

    def test_unknown_series_rejected(self):
        t = make_trace([(1, 1, 1, 1, 1.0)])
        with pytest.raises(ValidationError):
            t.series("latency")

    def test_empty_trace(self):
        t = make_trace([])
        assert t.mean("work") == 0.0
        assert t.active_fraction().size == 0

    def test_json_roundtrip(self, tmp_path):
        t = make_trace([(5, 5, 10, 3, 0.5)], converged=True,
                       stop_reason="converged", result={"x": 1.5})
        path = tmp_path / "trace.json"
        t.to_json(path)
        back = RunTrace.from_json(path)
        assert back == t

    def test_json_string_roundtrip(self):
        t = make_trace([(1, 1, 2, 3, 0.25)])
        assert RunTrace.from_json(t.to_json()) == t

    def test_label_and_summary(self):
        t = make_trace([(1, 1, 1, 1, 1.0)])
        assert "toy@ga" in t.label
        assert "α=2.5" in t.label
        assert "iterations=1" in t.summary()


class TestComputeMetrics:
    def test_hand_computed(self):
        t = make_trace([(10, 10, 40, 20, 2.0), (2, 2, 8, 0, 1.0)],
                       n_vertices=10, n_edges=20)
        m = compute_metrics(t)
        assert m.updt == pytest.approx(6.0 / 20)
        assert m.work == pytest.approx(1.5 / 20)
        assert m.eread == pytest.approx(24.0 / 20)
        assert m.msg == pytest.approx(10.0 / 20)
        assert m.active_fraction_mean == pytest.approx(0.6)
        assert m.n_iterations == 2

    def test_as_array_order(self):
        m = BehaviorMetrics(1, 2, 3, 4, 0.5, 7)
        assert m.as_array().tolist() == [1, 2, 3, 4]
        assert m["updt"] == 1 and m["msg"] == 4

    def test_getitem_rejects_unknown(self):
        m = BehaviorMetrics(1, 2, 3, 4, 0.5, 7)
        with pytest.raises(ValidationError):
            m["latency"]

    def test_rejects_zero_edges(self):
        t = make_trace([(1, 1, 1, 1, 1.0)], n_edges=0)
        with pytest.raises(ValidationError):
            compute_metrics(t)


class TestResampleSeries:
    def test_endpoints_preserved(self):
        out = resample_series(np.array([1.0, 0.5, 0.0]), 7)
        assert out[0] == 1.0 and out[-1] == 0.0
        assert out.size == 7

    def test_constant(self):
        out = resample_series(np.array([2.0]), 5)
        assert np.all(out == 2.0)

    def test_empty(self):
        assert resample_series(np.array([]), 4).tolist() == [0, 0, 0, 0]

    def test_rejects_tiny_target(self):
        with pytest.raises(ValidationError):
            resample_series(np.array([1.0]), 1)


class TestNormalizeCorpus:
    def _metrics(self, rows):
        return [BehaviorMetrics(*row, 0.5, 3) for row in rows]

    def test_max_scheme(self):
        vecs = normalize_corpus(self._metrics([(1, 2, 4, 8), (2, 4, 8, 16)]),
                                scheme="max")
        assert vecs[0].as_array().tolist() == [0.5, 0.5, 0.5, 0.5]
        assert vecs[1].as_array().tolist() == [1.0, 1.0, 1.0, 1.0]

    def test_max_scheme_upper_bound(self):
        vecs = normalize_corpus(self._metrics([(3, 1, 7, 2), (1, 5, 2, 9)]))
        for v in vecs:
            assert v.as_array().max() <= 1.0
            assert v.as_array().min() >= 0.0

    def test_log_scheme_spans_unit_interval(self):
        vecs = normalize_corpus(
            self._metrics([(1e-3, 1e-3, 1e-3, 1e-3), (1.0, 1.0, 1.0, 1.0)]),
            scheme="log")
        np.testing.assert_allclose(vecs[0].as_array(), 0.0)
        np.testing.assert_allclose(vecs[1].as_array(), 1.0)

    def test_zero_dimension_handled(self):
        vecs = normalize_corpus(self._metrics([(0, 1, 1, 1), (0, 2, 2, 2)]))
        assert vecs[0].updt == 0.0

    def test_tags_carried(self):
        vecs = normalize_corpus(self._metrics([(1, 1, 1, 1)]),
                                tags=[("pagerank", 100, 2.5)])
        assert vecs[0].tag == ("pagerank", 100, 2.5)

    def test_rejects_bad_scheme(self):
        with pytest.raises(ValidationError):
            normalize_corpus(self._metrics([(1, 1, 1, 1)]), scheme="sqrt")

    def test_rejects_misaligned_tags(self):
        with pytest.raises(ValidationError):
            normalize_corpus(self._metrics([(1, 1, 1, 1)]), tags=[1, 2])

    def test_empty(self):
        assert normalize_corpus([]) == []


class TestBehaviorSpace:
    def test_diameter(self):
        assert BehaviorSpace().diameter == pytest.approx(2.0)
        assert BehaviorSpace(dims=1).diameter == 1.0

    def test_sample_bounds_and_determinism(self):
        space = BehaviorSpace()
        a = space.sample(100, seed=5)
        b = space.sample(100, seed=5)
        np.testing.assert_array_equal(a, b)
        assert space.contains(a)
        assert a.shape == (100, 4)

    def test_contains(self):
        space = BehaviorSpace()
        assert not space.contains(np.array([[0.5, 0.5, 0.5, 1.5]]))

    def test_to_matrix_dim_check(self):
        space = BehaviorSpace(dims=3)
        v = BehaviorVector(0.1, 0.2, 0.3, 0.4)
        with pytest.raises(ValidationError):
            space.to_matrix([v])

    def test_vector_distance(self):
        a = BehaviorVector(0, 0, 0, 0)
        b = BehaviorVector(1, 1, 1, 1)
        assert a.distance(b) == pytest.approx(2.0)
        assert a["updt"] == 0.0
        with pytest.raises(ValidationError):
            a["nope"]


@given(st.lists(
    st.tuples(*[st.floats(0, 1e6, allow_nan=False) for _ in range(4)]),
    min_size=1, max_size=30))
@settings(max_examples=50, deadline=None)
def test_normalization_property(rows):
    """Every scheme maps any non-negative corpus into [0, 1]^4."""
    metrics = [BehaviorMetrics(*r, 0.5, 2) for r in rows]
    for scheme in ("max", "log"):
        vecs = normalize_corpus(metrics, scheme=scheme)
        mat = np.vstack([v.as_array() for v in vecs])
        assert mat.min() >= -1e-12
        assert mat.max() <= 1 + 1e-12
