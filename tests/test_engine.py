"""Tests for the synchronous GAS engine using purpose-built toy programs."""

import numpy as np
import pytest

from repro._util.errors import ResourceLimitError, ValidationError
from repro.engine.context import Context
from repro.engine.engine import EngineOptions, SynchronousEngine
from repro.engine.program import Direction, VertexProgram
from repro.generators.problem import ProblemInstance
from repro.graph.csr import Graph


def line_graph(n=5) -> ProblemInstance:
    """0 - 1 - 2 - ... - (n-1)."""
    src = np.arange(n - 1)
    dst = np.arange(1, n)
    return ProblemInstance(
        graph=Graph.from_edges(n, src, dst),
        domain="ga",
        params={"nedges": n - 1},
    )


class Flood(VertexProgram):
    """BFS-style flood from vertex 0; counts hops."""

    name = "flood"
    domain = "ga"
    gather_dir = Direction.IN
    scatter_dir = Direction.OUT
    gather_op = "min"
    apply_flops_per_vertex = 1.0

    def init(self, ctx):
        self.level = np.full(ctx.n_vertices, np.inf)
        self.level[0] = 0
        self._changed = np.zeros(ctx.n_vertices, dtype=bool)
        return np.array([0])

    def gather_edge(self, ctx, nbr, center, eid):
        return self.level[nbr] + 1.0

    def apply(self, ctx, vids, acc):
        acc = acc.ravel()
        better = acc < self.level[vids]
        self.level[vids] = np.where(better, acc, self.level[vids])
        self._changed[vids] = better | (vids == 0) & (ctx.iteration == 0)

    def scatter_edges(self, ctx, center, nbr, eid):
        return self._changed[center] & (self.level[center] + 1
                                        < self.level[nbr])

    def on_iteration_end(self, ctx):
        self._changed[:] = False


class NoGather(VertexProgram):
    """Gather-less program; apply gets acc=None; stops after 3 rounds."""

    name = "nogather"
    domain = "ga"
    gather_dir = Direction.NONE
    scatter_dir = Direction.OUT

    def init(self, ctx):
        self.rounds = 0
        return ctx.all_vertices()

    def apply(self, ctx, vids, acc):
        assert acc is None

    def scatter_edges(self, ctx, center, nbr, eid):
        return np.ones(center.size, dtype=bool)

    def on_iteration_end(self, ctx):
        self.rounds += 1

    def converged(self, ctx):
        return self.rounds >= 3


class Hungry(VertexProgram):
    """Declares enormous state to trip the memory budget."""

    name = "hungry"
    domain = "ga"
    gather_dir = Direction.NONE
    scatter_dir = Direction.NONE

    def init(self, ctx):
        return ctx.all_vertices()

    def state_bytes(self, ctx):
        return 10**15

    def apply(self, ctx, vids, acc):
        pass


class BadGatherShape(VertexProgram):
    name = "badshape"
    domain = "ga"
    gather_dir = Direction.IN
    scatter_dir = Direction.NONE

    def init(self, ctx):
        return ctx.all_vertices()

    def gather_edge(self, ctx, nbr, center, eid):
        return np.zeros((nbr.size, 3))  # width mismatch

    def apply(self, ctx, vids, acc):
        pass


class TestEngineBasics:
    def test_flood_levels_and_convergence(self):
        prob = line_graph(6)
        trace = SynchronousEngine().run(Flood(), prob)
        assert trace.converged
        assert trace.stop_reason == "frontier-empty"
        # Each iteration advances the frontier one hop down the line.
        assert trace.iterations[0].active == 1

    def test_flood_counters_on_line(self):
        prob = line_graph(4)  # 0-1-2-3
        trace = SynchronousEngine().run(Flood(), prob)
        # iter0: {0} gathers its 1 edge, updates 1 vertex, signals 1.
        it0 = trace.iterations[0]
        assert (it0.active, it0.updates, it0.edge_reads) == (1, 1, 1)
        assert it0.messages == 1
        # iter1: {1} has 2 edges.
        it1 = trace.iterations[1]
        assert (it1.active, it1.edge_reads, it1.messages) == (1, 2, 1)

    def test_acc_none_when_no_gather(self):
        trace = SynchronousEngine().run(NoGather(), line_graph(4))
        assert trace.stop_reason == "converged"
        assert all(rec.edge_reads == 0 for rec in trace.iterations)
        assert trace.n_iterations == 3

    def test_max_iterations_cap(self):
        opts = EngineOptions(max_iterations=2)
        trace = SynchronousEngine(opts).run(NoGather(), line_graph(4))
        assert trace.n_iterations == 2
        assert not trace.converged
        assert trace.stop_reason == "max-iterations"

    def test_memory_budget(self):
        with pytest.raises(ResourceLimitError) as exc:
            SynchronousEngine().run(Hungry(), line_graph(4))
        assert exc.value.required_bytes > exc.value.budget_bytes

    def test_bad_gather_shape_rejected(self):
        with pytest.raises(ValidationError):
            SynchronousEngine().run(BadGatherShape(), line_graph(4))

    def test_frontier_out_of_range_rejected(self):
        class BadInit(NoGather):
            def init(self, ctx):
                return np.array([99])

        with pytest.raises(ValidationError):
            SynchronousEngine().run(BadInit(), line_graph(4))

    def test_trace_identity_fields(self):
        prob = line_graph(5)
        trace = SynchronousEngine().run(Flood(), prob)
        assert trace.algorithm == "flood"
        assert trace.n_vertices == 5
        assert trace.n_edges == 4
        assert trace.wall_time_s > 0


class TestWorkModels:
    def test_unit_work_deterministic(self):
        prob = line_graph(6)
        a = SynchronousEngine(EngineOptions(work_model="unit")).run(Flood(), prob)
        b = SynchronousEngine(EngineOptions(work_model="unit")).run(Flood(), prob)
        assert [r.work for r in a.iterations] == [r.work for r in b.iterations]
        assert a.iterations[0].work == pytest.approx(1e-9)  # 1 vertex × 1 flop

    def test_measured_work_positive(self):
        prob = line_graph(6)
        trace = SynchronousEngine(
            EngineOptions(work_model="measured")).run(Flood(), prob)
        assert all(r.work > 0 for r in trace.iterations)
        assert trace.work_model == "measured"

    def test_add_work_counted(self):
        class Reporting(NoGather):
            def apply(self, ctx, vids, acc):
                ctx.add_work(100.0)

        trace = SynchronousEngine().run(Reporting(), line_graph(4))
        # 4 vertices × 1 flop + 100 (vectorized: one apply call).
        assert trace.iterations[0].work == pytest.approx(104e-9)

    def test_add_work_rejects_negative(self):
        prob = line_graph(3)
        ctx = Context(prob)
        with pytest.raises(ValidationError):
            ctx.add_work(-1)


class TestEngineOptions:
    def test_rejects_bad_mode(self):
        with pytest.raises(ValidationError):
            EngineOptions(mode="async")

    def test_rejects_bad_work_model(self):
        with pytest.raises(ValueError):
            EngineOptions(work_model="guess")

    def test_rejects_bad_max_iterations(self):
        with pytest.raises(ValidationError):
            EngineOptions(max_iterations=0)


class TestDirections:
    def test_both_rejected_on_undirected(self):
        class BothWays(Flood):
            gather_dir = Direction.BOTH

        with pytest.raises(ValidationError):
            SynchronousEngine().run(BothWays(), line_graph(4))

    def test_directed_in_vs_out(self):
        # Directed line 0->1->2: gather over IN sees the predecessor.
        src = np.array([0, 1])
        dst = np.array([1, 2])
        prob = ProblemInstance(
            graph=Graph.from_edges(3, src, dst, directed=True),
            domain="ga",
        )
        trace = SynchronousEngine().run(Flood(), prob)
        assert trace.converged

    def test_context_properties(self):
        prob = line_graph(7)
        ctx = Context(prob, params={"p": 1})
        assert ctx.n_vertices == 7
        assert ctx.n_edges == 6
        assert ctx.param("p") == 1
        assert ctx.param("missing", 5) == 5
        with pytest.raises(ValidationError):
            ctx.require_param("absent")
        assert ctx.all_vertices().tolist() == list(range(7))
