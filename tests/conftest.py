"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.config import Profile
from repro.experiments.corpus import BehaviorCorpus, build_corpus
from repro.generators import (
    bipartite_rating_graph,
    grid_problem,
    matrix_problem,
    mrf_problem,
    powerlaw_graph,
)

#: A very small profile so integration tests build a corpus in seconds.
MINI_PROFILE = Profile(
    name="mini",
    ga_sizes=(200, 600, 1_500, 4_000),
    cf_sizes=(80, 200, 600, 1_500),
    matrix_rows=(30, 50, 70, 90),
    grid_sides=(8, 10, 12, 16),
    mrf_edges=(40, 84, 112, 144),
    memory_budget_bytes=1_400_000,
    ad_n_hashes=64,
    coverage_samples=5_000,
    seed=11,
)


@pytest.fixture(scope="session")
def mini_corpus() -> BehaviorCorpus:
    """A full 11-algorithm corpus at tiny scale, built once per session."""
    return build_corpus(MINI_PROFILE, use_cache=False)


@pytest.fixture()
def ga_problem():
    return powerlaw_graph(800, 2.5, seed=3)


@pytest.fixture()
def clustering_problem():
    return powerlaw_graph(800, 2.5, seed=3, with_points=True)


@pytest.fixture()
def cf_problem():
    return bipartite_rating_graph(400, 2.5, seed=3)


@pytest.fixture()
def matrix_problem_small():
    return matrix_problem(40, seed=3)


@pytest.fixture()
def grid_problem_small():
    return grid_problem(10, seed=3)


@pytest.fixture()
def mrf_problem_small():
    return mrf_problem(60, seed=3)


@pytest.fixture()
def rng():
    return np.random.default_rng(12345)
