#!/usr/bin/env python
"""Why narrow benchmarks mislead: comparing systems over ensembles.

The paper's Table 1 shows three published studies reaching conflicting
conclusions about Giraph vs GraphLab. This example makes the mechanism
visible: two system *cost models* (a communication-bound distributed
engine vs a compute-bound shared-memory engine) are compared over

1. single-algorithm ensembles — where the verdict flips with the
   algorithm chosen (the paper's finding (1)), and
2. a high-coverage designed ensemble — where the comparison is stable
   and decomposable by behavior region.

Run::

    python examples/compare_systems.py
"""

from collections import Counter

from repro.ensemble.search import best_ensemble
from repro.experiments.corpus import build_corpus
from repro.prediction import compare_systems
from repro.prediction.cost_model import ARCHETYPES


def main() -> None:
    print("Building the behavior corpus (smoke profile, cached)...\n")
    corpus = build_corpus("smoke")
    model_a = ARCHETYPES["shared-memory"]
    model_b = ARCHETYPES["sync-distributed"]

    print(f"== Single-algorithm studies: {model_a.name} vs {model_b.name} ==")
    verdicts = Counter()
    for alg in corpus.algorithms():
        runs = corpus.by_algorithm(alg)
        report = compare_systems(model_a, model_b,
                                 [r.metrics for r in runs],
                                 tags=[r.tag for r in runs])
        verdicts[report.overall_winner] += 1
        print(f"  a study using only {alg:<10}  →  winner: "
              f"{report.overall_winner:<16} "
              f"({report.wins_a}-{report.wins_b} by runs)")
    print(f"\nverdict distribution across single-algorithm studies: "
          f"{dict(verdicts)}")
    if len(verdicts) > 1:
        print("→ the published conclusion depends on the ensemble — the "
              "paper's finding (1).")

    print("\n== A designed high-coverage ensemble ==")
    vectors = corpus.vectors(scheme="max")
    designed = best_ensemble(vectors, 10, "coverage", n_samples=4000)
    chosen = {(v.tag[0], v.tag[1], v.tag[2]) for v in designed.ensemble}
    runs = [r for r in corpus.runs if r.tag in chosen]
    report = compare_systems(model_a, model_b,
                             [r.metrics for r in runs],
                             tags=[r.tag for r in runs])
    print(report.summary())
    print("\n→ a behavior-diverse ensemble shows *where* each system "
          "wins instead of a single misleading aggregate.")


if __name__ == "__main__":
    main()
