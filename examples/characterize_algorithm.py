#!/usr/bin/env python
"""Characterize one algorithm's behavior across graph structures.

Reproduces the paper's Section 4 methodology for a single algorithm:
sweep graph size and power-law exponent α, record the five behavior
metrics per run, and print the active-fraction curves and metric trends
— the raw material of the paper's Figures 1-10.

Run::

    python examples/characterize_algorithm.py [algorithm]

(default: pagerank; try ``als`` for the paper's favorite benchmark.)
"""

import sys

from repro import GraphSpec, run_computation
from repro.algorithms.registry import info
from repro.behavior.metrics import METRIC_NAMES, compute_metrics
from repro.experiments.reporting import (
    correlation_sign,
    format_table,
    sparkline,
)

SIZES = (1_000, 3_000, 10_000)
ALPHAS = (2.0, 2.5, 3.0)


def spec_for(domain: str, nedges: int, alpha: float) -> GraphSpec:
    if domain not in ("ga", "clustering", "cf"):
        raise SystemExit(
            f"this example sweeps (nedges, α); algorithm domain {domain!r} "
            "has fixed structure — try cc/kcore/triangle/sssp/pagerank/"
            "diameter/kmeans/als/nmf/sgd/svd"
        )
    return GraphSpec.for_domain(domain, nedges=nedges, alpha=alpha, seed=7)


def main() -> None:
    algorithm = sys.argv[1] if len(sys.argv) > 1 else "pagerank"
    domain = info(algorithm).domain
    print(f"Characterizing {algorithm!r} (domain: {domain})\n")

    rows = []
    trends_alpha = []
    trends_vals: dict[str, list[float]] = {m: [] for m in METRIC_NAMES}
    print("active fraction over the run lifecycle:")
    for nedges in SIZES:
        for alpha in ALPHAS:
            trace = run_computation(algorithm,
                                    spec_for(domain, nedges, alpha))
            m = compute_metrics(trace)
            rows.append((f"{nedges:g}", alpha, trace.n_iterations,
                         m.updt, m.work, m.eread, m.msg))
            trends_alpha.append(alpha)
            for name in METRIC_NAMES:
                trends_vals[name].append(m[name])
            print(f"  nedges={nedges:<7g} α={alpha}: "
                  f"{sparkline(trace.active_fraction())}")

    print()
    print(format_table(
        ["nedges", "α", "iters", *METRIC_NAMES], rows,
        title=f"{algorithm}: per-edge behavior metrics"))

    print("\ncorrelation with α (pooled over sizes):")
    for name in METRIC_NAMES:
        sign = correlation_sign(trends_alpha, trends_vals[name])
        print(f"  {name:<6} {sign}")


if __name__ == "__main__":
    main()
