#!/usr/bin/env python
"""One algorithm, three execution models.

The paper measures behavior under synchronous GAS (GraphLab's
synchronous mode). The library also executes the same vertex programs
asynchronously (FIFO or priority scheduling) and edge-centrically
(X-Stream-style full-edge streaming). This example runs SSSP under all
three and shows what the paper's §3.3 remark — "the basic behavior of
graph computation is conserved" across computation models — means in
numbers: identical results, conserved update/message volume for the
edge-centric model, and a policy-dependent schedule for the
asynchronous one.

Run::

    python examples/execution_models.py
"""

import numpy as np

from repro.algorithms.registry import create
from repro.behavior.run import build_engine_options
from repro.engine.async_engine import AsynchronousEngine, AsyncEngineOptions
from repro.engine.edge_centric import EdgeCentricEngine
from repro.engine.engine import SynchronousEngine
from repro.engine.graph_centric import GraphCentricEngine
from repro.generators import powerlaw_graph


def main() -> None:
    problem = powerlaw_graph(20_000, 2.4, seed=9)
    print(f"graph: |V|={problem.graph.n_vertices:,} "
          f"|E|={problem.graph.n_edges:,}\n")

    runs = {}
    runs["sync (vertex-centric)"] = SynchronousEngine(
        build_engine_options("sssp")).run(create("sssp"), problem)
    runs["edge-centric (X-Stream)"] = EdgeCentricEngine().run(
        create("sssp"), problem)
    runs["graph-centric (Giraph++)"] = GraphCentricEngine().run(
        create("sssp"), problem)
    runs["async (FIFO)"] = AsynchronousEngine(
        AsyncEngineOptions(scheduler="fifo")).run(create("sssp"), problem)
    runs["async (priority)"] = AsynchronousEngine(
        AsyncEngineOptions(scheduler="priority")).run(
        create("sssp"), problem)

    print(f"{'executor':<26} {'iters':>6} {'updates':>9} "
          f"{'edge reads':>11} {'messages':>9}  result")
    reference = None
    for label, trace in runs.items():
        updates = sum(r.updates for r in trace.iterations)
        reads = sum(r.edge_reads for r in trace.iterations)
        msgs = sum(r.messages for r in trace.iterations)
        print(f"{label:<26} {trace.n_iterations:>6} {updates:>9,} "
              f"{reads:>11,} {msgs:>9,}  reached={trace.result['reached']}")
        if reference is None:
            reference = trace.result["reached"]
        assert trace.result["reached"] == reference

    print("\n→ all executors reach the same distances; what changes is")
    print("  *how much behavior* each spends getting there — execution")
    print("  policy is a benchmarking dimension of its own.")


if __name__ == "__main__":
    main()
