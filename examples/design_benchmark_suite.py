#!/usr/bin/env python
"""Design a benchmark suite with the spread/coverage methodology.

The paper's headline use case: given a corpus of instrumented runs,
choose a small ensemble of (algorithm, graph) pairs that explores the
behavior space efficiently — a principled benchmark suite instead of an
ad-hoc one. This example:

1. builds the behavior corpus at a small profile (cached on disk);
2. searches for the best ensembles of several sizes, for spread and
   for coverage;
3. selects a 3-algorithm suite that jointly conserves both metrics
   (the paper's complexity-limited design);
4. prints the resulting suite with its quality relative to the
   unrestricted optimum and the empirical upper bound.

Run::

    python examples/design_benchmark_suite.py [suite_size]
"""

import sys

from repro.behavior.space import BehaviorSpace
from repro.ensemble.bounds import UpperBounds
from repro.ensemble.constrained import (
    limit_to_algorithms,
    select_algorithm_suite,
)
from repro.ensemble.search import best_ensemble
from repro.experiments.corpus import build_corpus


def main() -> None:
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 8

    print("Building the behavior corpus (smoke profile, cached)...")
    corpus = build_corpus("smoke")
    print(f"  {corpus.n_runs} runs, {len(corpus.failures)} failed "
          f"(AD at the largest size)\n")

    vectors = corpus.vectors(scheme="max")
    space = BehaviorSpace()
    samples = space.sample(20_000, seed=0)

    print(f"== Best unrestricted ensembles of size {size} ==")
    results = {}
    for metric in ("spread", "coverage"):
        res = best_ensemble(vectors, size, metric, samples=samples)
        results[metric] = res
        print(f"\nbest {metric}: {res.score:.3f}")
        for member in res.ensemble:
            alg, nedges, alpha = member.tag
            print(f"  <{alg}, nedges={nedges:g}, α={alpha}>")

    bound = UpperBounds.compute([size], samples=samples)
    print(f"\nempirical upper bounds at size {size}: "
          f"spread {bound.spread_bound[0]:.3f}, "
          f"coverage {bound.coverage_bound[0]:.3f}")

    print("\n== Complexity-limited design: 3 algorithms ==")
    suite = select_algorithm_suite(vectors, 3, samples=samples[:2000])
    print(f"selected algorithms: {', '.join(suite)}")
    pool = limit_to_algorithms(vectors, suite)
    for metric in ("spread", "coverage"):
        res = best_ensemble(pool, size, metric, samples=samples)
        full = results[metric].score
        print(f"  {metric}: {res.score:.3f} "
              f"({res.score / full * 100:.0f}% of unrestricted)")
    print("\nRecommended suite (best spread members from the "
          "3-algorithm pool):")
    res = best_ensemble(pool, size, "spread", samples=samples)
    from repro.algorithms.registry import info

    graph_kind = {"ga": "power-law graph", "clustering": "point graph",
                  "cf": "rating graph"}
    for member in res.ensemble:
        alg, nedges, alpha = member.tag
        kind = graph_kind.get(info(alg).domain, "graph")
        print(f"  run {alg} on a {kind} with nedges={nedges:g}, α={alpha}")


if __name__ == "__main__":
    main()
