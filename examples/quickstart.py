#!/usr/bin/env python
"""Quickstart: run an instrumented graph computation and read its behavior.

This is the 60-second tour of the library:

1. describe a synthetic input graph with a :class:`GraphSpec`;
2. run a vertex program on the synchronous GAS engine;
3. inspect the run trace (the paper's five behavior metrics);
4. project runs into the 4-D behavior space and score an ensemble.

Run::

    python examples/quickstart.py
"""

from repro import GraphSpec, run_computation
from repro.behavior.metrics import compute_metrics
from repro.behavior.space import normalize_corpus
from repro.ensemble.metrics import coverage, spread


def main() -> None:
    # --- 1+2: run PageRank on a scale-free graph --------------------
    spec = GraphSpec.ga(nedges=20_000, alpha=2.5, seed=1)
    trace = run_computation("pagerank", spec)
    print("== PageRank run ==")
    print(trace.summary())

    # --- 3: the five behavior metrics -------------------------------
    metrics = compute_metrics(trace)
    print("\nper-edge behavior metrics:")
    print(f"  UPDT  = {metrics.updt:.4f}   (vertex updates / iter / edge)")
    print(f"  WORK  = {metrics.work:.3g}   (apply cost / iter / edge)")
    print(f"  EREAD = {metrics.eread:.4f}   (edge reads / iter / edge)")
    print(f"  MSG   = {metrics.msg:.4f}   (messages / iter / edge)")
    print(f"  mean active fraction = {metrics.active_fraction_mean:.3f}")

    # --- 4: a small ensemble in the behavior space ------------------
    print("\n== A 4-run ensemble ==")
    runs = [
        ("pagerank", GraphSpec.ga(nedges=20_000, alpha=2.5, seed=1)),
        ("sssp", GraphSpec.ga(nedges=20_000, alpha=2.5, seed=1)),
        ("kmeans", GraphSpec.clustering(nedges=20_000, alpha=2.5, seed=1)),
        ("als", GraphSpec.cf(nedges=5_000, alpha=2.5, seed=1)),
    ]
    corpus = []
    tags = []
    for name, run_spec in runs:
        t = run_computation(name, run_spec)
        corpus.append(compute_metrics(t))
        tags.append((name, run_spec.nedges, run_spec.alpha))
        print(f"  {name:<9} {t.n_iterations:>4} iterations "
              f"({t.stop_reason})")

    vectors = normalize_corpus(corpus, scheme="max", tags=tags)
    print(f"\nspread   = {spread(vectors):.3f}  "
          f"(mean pairwise behavior distance)")
    print(f"coverage = {coverage(vectors, n_samples=20_000):.3f}  "
          f"(space diameter − mean min distance)")


if __name__ == "__main__":
    main()
