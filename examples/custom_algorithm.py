#!/usr/bin/env python
"""Write your own vertex program and characterize it.

The engine's algorithm surface is open: subclass
:class:`~repro.engine.program.VertexProgram`, implement the three GAS
phases as array-level callbacks, and every library facility —
instrumentation, the behavior space, ensemble scoring — works on your
algorithm for free.

This example implements *degree-weighted label propagation* (a simple
community-detection heuristic), runs it under both engine modes to
demonstrate they agree, and places it in the behavior space next to the
built-in algorithms.

Run::

    python examples/custom_algorithm.py
"""

import numpy as np

from repro import GraphSpec
from repro.behavior.metrics import compute_metrics
from repro.behavior.space import normalize_corpus
from repro.behavior.run import run_computation
from repro.engine.engine import EngineOptions, SynchronousEngine
from repro.engine.program import Direction, VertexProgram


class LabelPropagation(VertexProgram):
    """Synchronous degree-weighted label propagation.

    Each vertex adopts the label carrying the most degree-weighted
    votes among its neighbors; vertices whose label changed signal
    their neighbors. Converges when labels stabilize.
    """

    name = "labelprop"
    domain = "ga"
    gather_dir = Direction.IN
    scatter_dir = Direction.OUT
    gather_op = "max"
    gather_width = 1
    apply_flops_per_vertex = 2.0

    def init(self, ctx):
        n = ctx.n_vertices
        self.label = np.arange(n, dtype=np.float64)
        self._weight = ctx.graph.degree.astype(np.float64)
        self._changed = np.zeros(n, dtype=bool)
        return ctx.all_vertices()

    def gather_edge(self, ctx, nbr, center, eid):
        # Encode (weight, label) into one comparable float: the max
        # reduce then picks the heaviest neighbor's label.
        n = ctx.n_vertices
        return self._weight[nbr] * n + self.label[nbr]

    def apply(self, ctx, vids, acc):
        acc = acc.ravel()
        n = ctx.n_vertices
        has_nbr = np.isfinite(acc) & (acc >= 0)
        new_label = np.where(has_nbr, np.mod(acc, n), self.label[vids])
        changed = new_label != self.label[vids]
        self.label[vids] = new_label
        self._changed[vids] = changed

    def scatter_edges(self, ctx, center, nbr, eid):
        return self._changed[center]

    def on_iteration_end(self, ctx):
        self._changed[:] = False

    def result(self, ctx):
        return {"n_labels": int(np.unique(self.label).size)}


def main() -> None:
    spec = GraphSpec.ga(nedges=5_000, alpha=2.5, seed=3)
    problem = spec.generate()

    print("== Running the custom program under both engine modes ==")
    traces = {}
    for mode in ("vectorized", "reference"):
        engine = SynchronousEngine(EngineOptions(mode=mode,
                                                 max_iterations=100))
        traces[mode] = engine.run(LabelPropagation(), problem)
        t = traces[mode]
        print(f"  {mode:<11} iters={t.n_iterations} "
              f"labels={t.result['n_labels']}")
    identical = all(
        (a.active, a.updates, a.edge_reads, a.messages)
        == (b.active, b.updates, b.edge_reads, b.messages)
        for a, b in zip(traces["vectorized"].iterations,
                        traces["reference"].iterations))
    print(f"  traces identical: {identical}")

    print("\n== Where does it sit in the behavior space? ==")
    metrics = [compute_metrics(traces["vectorized"])]
    tags = [("labelprop", spec.nedges, spec.alpha)]
    for name in ("cc", "pagerank", "triangle", "sssp"):
        t = run_computation(name, spec)
        metrics.append(compute_metrics(t))
        tags.append((name, spec.nedges, spec.alpha))
    for v in normalize_corpus(metrics, scheme="max", tags=tags):
        print(f"  {v.tag[0]:<10} <updt={v.updt:.2f}, work={v.work:.2f}, "
              f"eread={v.eread:.2f}, msg={v.msg:.2f}>")


if __name__ == "__main__":
    main()
