#!/usr/bin/env python
"""Score published comparative studies with spread and coverage.

The paper's Table 1 motivates the whole methodology: three published
comparisons of graph-processing systems used incomparable ensembles and
reached conflicting conclusions. With a formal behavior space, those
study designs can be *scored*: how much of the space does each actually
explore?

This example models each prior study's benchmark set as an ensemble
over the library's corpus (matching the study's algorithms) and ranks
the studies by exploration quality — then shows how a same-size
designed ensemble beats all of them.

Run::

    python examples/score_prior_studies.py
"""

from repro.behavior.space import BehaviorSpace
from repro.ensemble.metrics import coverage, spread
from repro.ensemble.search import best_ensemble
from repro.experiments.corpus import build_corpus
from repro.experiments.priorwork import PRIOR_STUDIES
from repro.experiments.reporting import format_table


def main() -> None:
    print("Building the behavior corpus (smoke profile, cached)...")
    corpus = build_corpus("smoke")
    vectors = corpus.vectors(scheme="max")
    samples = BehaviorSpace().sample(50_000, seed=0)

    rows = []
    smallest_pool = None
    for study in PRIOR_STUDIES:
        algs = set(study.mapped_algorithms())
        pool = [v for v in vectors if v.tag[0] in algs]
        if not pool:
            continue
        s = spread(pool)
        c = coverage(pool, samples=samples)
        rows.append((study.authors, ", ".join(sorted(algs)),
                     len(pool), s, c))
        if smallest_pool is None or len(pool) < smallest_pool[1]:
            smallest_pool = (study.authors, len(pool))

    print()
    print(format_table(
        ["study", "algorithms (mapped)", "runs", "spread", "coverage"],
        rows, title="Prior studies as ensembles over this corpus"))

    # A designed ensemble a fraction of the size beats every study.
    designed = best_ensemble(vectors, 8, "spread", samples=samples[:4000])
    designed_cov = coverage(designed.ensemble, samples=samples)
    print(f"\ndesigned 8-run ensemble: spread={designed.score:.3f} "
          f"coverage={designed_cov:.3f}")
    print("members:")
    for member in designed.ensemble:
        alg, nedges, alpha = member.tag
        print(f"  <{alg}, nedges={nedges:g}, α={alpha}>")

    worst = min(rows, key=lambda r: r[3])
    print(f"\n→ every study above is dominated; the narrowest "
          f"({worst[0]}, spread {worst[3]:.3f}) explores "
          f"{worst[3] / designed.score * 100:.0f}% of the designed "
          f"ensemble's spread with {worst[2]}÷8 = "
          f"{worst[2] / 8:.1f}× the runs.")


if __name__ == "__main__":
    main()
