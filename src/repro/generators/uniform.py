"""Uniform-degree-regime generators: the paper's non-scale-free contrast.

Section 1: "in a graph derived from a linear solver, vertices have a
low, nearly uniform degree" — the opposite structural extreme from the
power-law sweep. Two generators cover that regime for Graph Analytics
experiments beyond the paper's matrix:

- :func:`erdos_renyi_graph` — G(n, m): every vertex's degree
  concentrates around the mean (binomial), the classic null model;
- :func:`regular_graph` — every vertex has exactly degree ``d``
  (configuration-model pairing with repair), the uniform limit.

Both return GA-domain problem instances, so every analytics algorithm
runs on them unmodified — letting users place *degree-distribution
extremes* into the behavior space next to the α sweep.
"""

from __future__ import annotations

import numpy as np

from repro._util.errors import GraphConstructionError, ValidationError
from repro.generators.problem import ProblemInstance
from repro.generators.rng import make_rng
from repro.graph.csr import Graph

_MAX_REDRAW_ROUNDS = 60


def erdos_renyi_graph(
    nedges: int,
    *,
    mean_degree: float = 8.0,
    seed: int = 0,
    edge_tolerance: float = 0.02,
) -> ProblemInstance:
    """G(n, m) with ``n`` derived from the requested mean degree."""
    if nedges < 1:
        raise ValidationError("nedges must be >= 1")
    if mean_degree <= 0:
        raise ValidationError("mean_degree must be positive")
    n = max(2, int(round(2.0 * nedges / mean_degree)))
    rng = make_rng(seed, "uniform", "er")

    seen: set[int] = set()
    srcs: list[np.ndarray] = []
    dsts: list[np.ndarray] = []
    collected = 0
    for _ in range(_MAX_REDRAW_ROUNDS):
        need = nedges - collected
        if need <= 0:
            break
        batch = max(1024, int(need * 1.2))
        u = rng.integers(0, n, size=batch)
        v = rng.integers(0, n, size=batch)
        keep = u != v
        u, v = u[keep], v[keep]
        lo = np.minimum(u, v)
        hi = np.maximum(u, v)
        key = lo * np.int64(n) + hi
        _, first = np.unique(key, return_index=True)
        first.sort()
        lo, hi, key = lo[first], hi[first], key[first]
        fresh = np.fromiter((k not in seen for k in key.tolist()),
                            dtype=bool, count=key.size)
        lo, hi, key = lo[fresh], hi[fresh], key[fresh]
        if lo.size > need:
            lo, hi, key = lo[:need], hi[:need], key[:need]
        seen.update(key.tolist())
        srcs.append(lo)
        dsts.append(hi)
        collected += lo.size
    if abs(collected - nedges) > edge_tolerance * nedges:
        raise GraphConstructionError(
            f"could not reach {nedges} edges (got {collected})"
        )
    graph = Graph.from_edges(
        n, np.concatenate(srcs), np.concatenate(dsts),
        directed=False, dedup=False, drop_self_loops=False,
        meta={"generator": "erdos-renyi", "nedges": nedges, "seed": seed},
    )
    return ProblemInstance(
        graph=graph, domain="ga",
        params={"nedges": nedges, "mean_degree": mean_degree, "seed": seed},
    )


def regular_graph(
    n_vertices: int,
    degree: int,
    *,
    seed: int = 0,
) -> ProblemInstance:
    """A (near-)``degree``-regular graph via configuration-model pairing.

    Stubs are shuffled and paired; self-loops and duplicate edges are
    dropped, so a few vertices may end slightly below ``degree`` (the
    deficit is bounded and asserted by tests). ``n_vertices × degree``
    must be even.
    """
    if n_vertices < 4:
        raise ValidationError("n_vertices must be >= 4")
    if not 1 <= degree < n_vertices:
        raise ValidationError("degree must be in [1, n_vertices)")
    if (n_vertices * degree) % 2:
        raise ValidationError("n_vertices × degree must be even")
    rng = make_rng(seed, "uniform", "regular")

    stubs = np.repeat(np.arange(n_vertices, dtype=np.int64), degree)
    best: tuple[int, np.ndarray, np.ndarray] | None = None
    for _ in range(8):
        rng.shuffle(stubs)
        u = stubs[0::2]
        v = stubs[1::2]
        keep = u != v
        lo = np.minimum(u[keep], v[keep])
        hi = np.maximum(u[keep], v[keep])
        key = lo * np.int64(n_vertices) + hi
        _, first = np.unique(key, return_index=True)
        if best is None or first.size > best[0]:
            first.sort()
            best = (first.size, lo[first], hi[first])
        if best[0] == stubs.size // 2:
            break
    _count, lo, hi = best
    graph = Graph.from_edges(
        n_vertices, lo, hi,
        directed=False, dedup=False, drop_self_loops=False,
        meta={"generator": "regular", "degree": degree, "seed": seed},
    )
    return ProblemInstance(
        graph=graph, domain="ga",
        params={"n_vertices": n_vertices, "degree": degree, "seed": seed},
    )
