"""Scale-free graph generator (Chung-Lu model).

Reproduces the paper's synthetic graphs for Graph Analytics and
Clustering: parameterized by the number of edges ``nedges`` and the
power-law exponent ``α`` of the degree distribution ``P(k) ~ k^-α``
(Equation 1), with the vertex count derived so the expected degree
matches — "accepting slight variation in the number of vertices"
(Section 3.2).

Algorithm
---------
1. Choose a truncated discrete power law ``P(k) ∝ k^-α`` on
   ``k ∈ [1, k_max]`` with the natural cutoff ``k_max ≈ √(2·nedges)``.
2. Derive ``n = 2·nedges / E[k]`` and sample an expected-degree weight
   per vertex from ``P``.
3. Draw ``2·nedges`` edge endpoints with probability proportional to the
   weights and pair consecutive draws (fast Chung-Lu). Self-loops and
   duplicates are dropped, then edges are re-drawn in batches until the
   target count is met (or provably unreachable).

The resulting degree distribution's MLE exponent tracks the requested α
(verified by tests within generator tolerance).
"""

from __future__ import annotations

import numpy as np

from repro._util.errors import GraphConstructionError, ValidationError
from repro.generators.problem import ProblemInstance
from repro.generators.rng import make_rng
from repro.graph.csr import Graph

#: Range of α seen in real-world scale-free graphs (paper Section 2.2).
ALPHA_REAL_WORLD = (2.0, 3.0)

_MAX_REDRAW_ROUNDS = 60


def _truncated_power_law(alpha: float, k_max: int) -> tuple[np.ndarray, np.ndarray]:
    """Support ``1..k_max`` and probabilities of ``P(k) ∝ k^-α``."""
    ks = np.arange(1, k_max + 1, dtype=np.float64)
    pmf = ks ** (-alpha)
    pmf /= pmf.sum()
    return ks.astype(np.int64), pmf


def powerlaw_graph(
    nedges: int,
    alpha: float,
    *,
    seed: int = 0,
    directed: bool = False,
    with_points: bool = False,
    with_weights: bool = False,
    edge_tolerance: float = 0.02,
) -> ProblemInstance:
    """Generate a scale-free graph with ``~nedges`` edges and exponent ``α``.

    Parameters
    ----------
    nedges:
        Target number of (logical) edges. The achieved count is within
        ``edge_tolerance`` of the target or a
        :class:`GraphConstructionError` is raised.
    alpha:
        Power-law exponent; the paper sweeps 2.0–3.0.
    seed:
        Root seed; all internal streams derive from it.
    directed:
        The paper's GA graphs are undirected; directed is provided for
        library users.
    with_points:
        Attach Gaussian 2-D data points per vertex (Clustering domain).
    with_weights:
        Attach Gaussian edge weights.
    edge_tolerance:
        Acceptable relative deviation of the final edge count.

    Returns
    -------
    ProblemInstance
        Domain ``"clustering"`` if ``with_points`` else ``"ga"``.
    """
    if nedges < 1:
        raise ValidationError("nedges must be >= 1")
    if alpha <= 1.0:
        raise ValidationError("power-law exponent must exceed 1.0 for a "
                              "normalizable degree distribution")

    k_max = max(2, int(round((2.0 * nedges) ** 0.5)))
    ks, pmf = _truncated_power_law(alpha, k_max)
    mean_k = float((ks * pmf).sum())
    n = max(2, int(round(2.0 * nedges / mean_k)))

    rng_deg = make_rng(seed, "powerlaw", "degrees")
    rng_pair = make_rng(seed, "powerlaw", "pairing")

    weights = rng_deg.choice(ks, size=n, p=pmf).astype(np.float64)
    endpoint_p = weights / weights.sum()

    target = nedges
    seen: set[tuple[int, int]] = set()
    srcs: list[np.ndarray] = []
    dsts: list[np.ndarray] = []
    collected = 0
    for _ in range(_MAX_REDRAW_ROUNDS):
        need = target - collected
        if need <= 0:
            break
        # Oversample to absorb self-loop/duplicate losses.
        batch = max(1024, int(need * 1.25))
        draws = rng_pair.choice(n, size=2 * batch, p=endpoint_p)
        u = draws[:batch].astype(np.int64)
        v = draws[batch:].astype(np.int64)
        keep = u != v
        u, v = u[keep], v[keep]
        if not directed:
            lo = np.minimum(u, v)
            hi = np.maximum(u, v)
            u, v = lo, hi
        # In-batch dedup, then dedup against earlier batches.
        key = u * np.int64(n) + v
        _, first = np.unique(key, return_index=True)
        first.sort()
        u, v, key = u[first], v[first], key[first]
        fresh = np.fromiter((k not in seen for k in key.tolist()),
                            dtype=bool, count=key.size)
        u, v, key = u[fresh], v[fresh], key[fresh]
        if u.size > need:
            u, v, key = u[:need], v[:need], key[:need]
        seen.update(key.tolist())
        srcs.append(u)
        dsts.append(v)
        collected += u.size
    achieved = collected
    if abs(achieved - target) > edge_tolerance * target:
        raise GraphConstructionError(
            f"could not reach {target} edges (got {achieved}) for "
            f"nedges={nedges}, alpha={alpha}; the weight distribution may "
            f"be too concentrated"
        )

    src = np.concatenate(srcs) if srcs else np.empty(0, dtype=np.int64)
    dst = np.concatenate(dsts) if dsts else np.empty(0, dtype=np.int64)

    edge_weight = None
    if with_weights:
        rng_w = make_rng(seed, "powerlaw", "weights")
        edge_weight = np.abs(rng_w.normal(1.0, 0.25, size=src.size)) + 1e-6

    graph = Graph.from_edges(
        n, src, dst,
        weight=edge_weight,
        directed=directed,
        dedup=False,  # already deduped above
        drop_self_loops=False,
        meta={"generator": "powerlaw", "nedges": nedges, "alpha": alpha,
              "seed": seed},
    )

    inputs: dict = {}
    domain = "ga"
    if with_points:
        rng_pts = make_rng(seed, "powerlaw", "points")
        inputs["points"] = rng_pts.normal(0.0, 1.0, size=(n, 2))
        domain = "clustering"

    return ProblemInstance(
        graph=graph,
        domain=domain,
        inputs=inputs,
        params={"nedges": nedges, "alpha": alpha, "seed": seed,
                "directed": directed},
    )
