"""Pixel-lattice denoising problems for Loopy Belief Propagation.

Paper Section 3.2: "Inputs of LBP include a pixel matrix and vertex
data, which are prior estimates for each pixel color."

We synthesize a ground-truth image of ``side × side`` pixels with
``n_states`` color labels arranged in smooth blobs, corrupt it with
i.i.d. label noise, and emit the noisy *prior* beliefs per pixel. The
structural graph is the 4-neighbor lattice. LBP with a Potts smoothness
potential then denoises it — converged interior regions deactivate
quickly, producing the paper's sharp active-fraction drop (Figure 11).
"""

from __future__ import annotations

import numpy as np

from repro._util.errors import ValidationError
from repro.generators.problem import ProblemInstance
from repro.generators.rng import make_rng
from repro.graph.csr import Graph

#: Probability a pixel's observed label is wrong.
NOISE_RATE = 0.2
#: Confidence mass the prior puts on the observed label.
PRIOR_CONFIDENCE = 0.7
#: Blur radius (pixels) of the ground-truth label field.
BLOB_SIGMA_PX = 3.0


def lattice_edges(side: int) -> tuple[np.ndarray, np.ndarray]:
    """Undirected 4-neighbor lattice edges of a ``side × side`` grid.

    Vertex ``(r, c)`` has id ``r * side + c``. Returns each edge once.
    """
    ids = np.arange(side * side, dtype=np.int64).reshape(side, side)
    right_src = ids[:, :-1].ravel()
    right_dst = ids[:, 1:].ravel()
    down_src = ids[:-1, :].ravel()
    down_dst = ids[1:, :].ravel()
    return (np.concatenate([right_src, down_src]),
            np.concatenate([right_dst, down_dst]))


def grid_problem(
    side: int,
    *,
    n_states: int = 4,
    seed: int = 0,
) -> ProblemInstance:
    """Generate an LBP denoising instance on a ``side × side`` lattice.

    Returns a :class:`ProblemInstance` with domain ``"grid"`` and inputs:

    - ``priors`` — ``(n, n_states)`` prior belief per pixel (rows sum to 1);
    - ``truth`` — ``(n,)`` ground-truth labels (for accuracy checks);
    - ``side``, ``n_states``.
    """
    if side < 2:
        raise ValidationError("side must be >= 2")
    if n_states < 2:
        raise ValidationError("n_states must be >= 2")

    rng_img = make_rng(seed, "grid", "image")
    rng_noise = make_rng(seed, "grid", "noise")

    # Smooth ground truth: threshold a blurred white-noise field into
    # n_states bands. The blur radius is fixed *in pixels*, so blob size
    # — and therefore the boundary fraction driving LBP activity — is
    # independent of the grid side (paper Fig 11: "graph size has no
    # effect on the shape of active fraction").
    from scipy.ndimage import gaussian_filter

    field = gaussian_filter(rng_img.normal(0.0, 1.0, size=(side, side)),
                            sigma=BLOB_SIGMA_PX, mode="reflect")
    quantiles = np.quantile(field, np.linspace(0, 1, n_states + 1)[1:-1])
    truth = np.digitize(field, quantiles).ravel().astype(np.int64)

    n = side * side
    observed = truth.copy()
    flip = rng_noise.random(n) < NOISE_RATE
    observed[flip] = rng_noise.integers(0, n_states, size=int(flip.sum()))

    priors = np.full((n, n_states), (1.0 - PRIOR_CONFIDENCE) / (n_states - 1))
    priors[np.arange(n), observed] = PRIOR_CONFIDENCE

    src, dst = lattice_edges(side)
    graph = Graph.from_edges(
        n, src, dst,
        directed=False,
        dedup=False,
        drop_self_loops=False,
        meta={"generator": "grid", "side": side, "n_states": n_states,
              "seed": seed},
    )
    return ProblemInstance(
        graph=graph,
        domain="grid",
        inputs={"priors": priors, "truth": truth, "side": side,
                "n_states": n_states},
        params={"nrows": side, "n_states": n_states, "seed": seed},
    )
