"""Sparse diagonally-dominant linear systems for the Jacobi solver.

Paper Section 3.2: "Inputs of Jacobi include a matrix (also a weighted
graph with uniform degree for all vertices) and a vector ... we only
generate square matrices."

The matrix ``A`` is ``nrows × nrows`` with exactly ``row_degree``
off-diagonal entries per row (uniform degree, as in a stencil from a
linear solver), Gaussian values, and a diagonal inflated above the
row's absolute off-diagonal sum so Jacobi provably converges.

Graph encoding: edge ``j -> i`` with weight ``A[i, j]`` — vertex ``i``
gathers ``A[i, j] * x[j]`` over its in-edges, exactly the Jacobi sweep.
"""

from __future__ import annotations

import numpy as np

from repro._util.errors import ValidationError
from repro.generators.problem import ProblemInstance
from repro.generators.rng import make_rng
from repro.graph.csr import Graph

#: Dominance margin: diag = (1 + margin) * sum(|offdiag|) + epsilon.
DOMINANCE_MARGIN = 0.1


def matrix_problem(
    nrows: int,
    *,
    row_degree: int | None = None,
    seed: int = 0,
) -> ProblemInstance:
    """Generate a diagonally dominant system ``A x = b``.

    Returns a :class:`ProblemInstance` with domain ``"matrix"`` and
    inputs ``b`` (right-hand side), ``diag`` (the diagonal of ``A``),
    and ``x_true`` (the solution used to manufacture ``b``, for
    validation).

    ``row_degree`` defaults to ``max(4, nrows // 25)``: the matrix keeps
    a constant *fill fraction* as it scales (like the paper's
    solver-derived matrices), which is what makes Jacobi's per-edge
    behavior scale-sensitive everywhere except EREAD (Figure 12).
    """
    if nrows < 2:
        raise ValidationError("nrows must be >= 2")
    if row_degree is None:
        row_degree = min(max(4, nrows // 25), nrows - 1)
    if not 1 <= row_degree < nrows:
        raise ValidationError("row_degree must be in [1, nrows)")

    rng_cols = make_rng(seed, "matrix", "columns")
    rng_vals = make_rng(seed, "matrix", "values")
    rng_x = make_rng(seed, "matrix", "solution")

    # Uniform degree: every row i picks row_degree distinct columns != i.
    # Vectorized distinct sampling: draw from [0, nrows-1) per row via
    # argpartition of random keys would be O(n * nrows); instead draw with
    # replacement + per-row dedup repair, cheap because row_degree << nrows.
    cols = rng_cols.integers(0, nrows - 1, size=(nrows, row_degree))
    rows = np.repeat(np.arange(nrows, dtype=np.int64), row_degree)
    # Shift draws >= row index up by one to exclude the diagonal.
    cols = cols + (cols >= np.arange(nrows)[:, None])
    # Repair duplicate columns within a row by linear probing.
    for i in np.flatnonzero(
        (np.sort(cols, axis=1)[:, 1:] == np.sort(cols, axis=1)[:, :-1]).any(axis=1)
    ):
        chosen: set[int] = set()
        for j in range(row_degree):
            c = int(cols[i, j])
            while c in chosen or c == i:
                c = (c + 1) % nrows
                if c == i:
                    c = (c + 1) % nrows
            chosen.add(c)
            cols[i, j] = c
    cols_flat = cols.ravel().astype(np.int64)

    values = rng_vals.normal(0.0, 1.0, size=cols_flat.size)
    abs_rowsum = np.abs(values).reshape(nrows, row_degree).sum(axis=1)
    diag = (1.0 + DOMINANCE_MARGIN) * abs_rowsum + 1e-3

    x_true = rng_x.normal(0.0, 1.0, size=nrows)
    # b = A @ x_true computed from the sparse structure.
    b = diag * x_true
    np.add.at(b, rows, values * x_true[cols_flat])

    graph = Graph.from_edges(
        nrows,
        src=cols_flat,   # j -> i so i gathers A[i, j] * x[j] over in-edges
        dst=rows,
        weight=values,
        directed=True,
        dedup=False,     # (i, j) pairs are distinct by construction
        drop_self_loops=False,
        meta={"generator": "matrix", "nrows": nrows,
              "row_degree": row_degree, "seed": seed},
    )
    return ProblemInstance(
        graph=graph,
        domain="matrix",
        inputs={"b": b, "diag": diag, "x_true": x_true},
        params={"nrows": nrows, "row_degree": row_degree, "seed": seed},
    )
