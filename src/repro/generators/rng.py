"""Centralized random-number-generator construction.

Nothing in repro touches NumPy's global RNG: every stochastic component
takes an explicit seed and builds a ``np.random.Generator`` here. Streams
for sub-components are derived with ``spawn_rngs`` so that, e.g., the
degree sequence and the endpoint pairing of a generator draw from
independent, reproducible streams.
"""

from __future__ import annotations

import numpy as np

from repro._util.errors import ValidationError


def make_rng(seed: int | np.random.Generator, *context: int | str) -> np.random.Generator:
    """Build a deterministic Generator from a seed and a context path.

    ``context`` elements (ints or strings) namespace the stream so two
    call sites with the same root seed get independent streams::

        rng_deg = make_rng(seed, "powerlaw", "degrees")
        rng_pair = make_rng(seed, "powerlaw", "pairing")
    """
    if isinstance(seed, np.random.Generator):
        if context:
            raise ValidationError(
                "cannot re-namespace an existing Generator; pass the root seed"
            )
        return seed
    entropy: list[int] = [int(seed) & 0xFFFFFFFF]
    for item in context:
        if isinstance(item, str):
            entropy.append(hash_str(item))
        else:
            entropy.append(int(item) & 0xFFFFFFFF)
    return np.random.Generator(np.random.Philox(np.random.SeedSequence(entropy)))


def spawn_rngs(seed: int, count: int, *context: int | str) -> list[np.random.Generator]:
    """Derive ``count`` independent generators from one seed + context."""
    if count < 0:
        raise ValidationError("count must be non-negative")
    return [make_rng(seed, *context, i) for i in range(count)]


def hash_str(text: str) -> int:
    """Stable 32-bit FNV-1a hash of a string (``hash()`` is salted per run)."""
    value = 0x811C9DC5
    for byte in text.encode("utf-8"):
        value ^= byte
        value = (value * 0x01000193) & 0xFFFFFFFF
    return value
