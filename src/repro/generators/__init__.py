"""Synthetic workload generators for every domain in the experiment matrix.

One generator per application domain of the paper (Section 3.2):

- :func:`powerlaw_graph` — scale-free graphs for Graph Analytics and
  Clustering, parameterized by ``nedges`` and the power-law exponent ``α``;
- :func:`bipartite_rating_graph` — user-item rating graphs for
  Collaborative Filtering;
- :func:`matrix_problem` — diagonally dominant sparse linear systems for
  Jacobi;
- :func:`grid_problem` — pixel-lattice denoising problems for Loopy BP;
- :func:`mrf_problem` — pairwise Markov Random Fields for Dual
  Decomposition.

All generators are deterministic given a seed.
"""

from repro.generators.bipartite import bipartite_rating_graph
from repro.generators.grid import grid_problem
from repro.generators.matrix import matrix_problem
from repro.generators.mrf import mrf_problem
from repro.generators.powerlaw import powerlaw_graph
from repro.generators.problem import ProblemInstance
from repro.generators.rng import make_rng, spawn_rngs
from repro.generators.uniform import erdos_renyi_graph, regular_graph

__all__ = [
    "ProblemInstance",
    "bipartite_rating_graph",
    "erdos_renyi_graph",
    "grid_problem",
    "make_rng",
    "matrix_problem",
    "mrf_problem",
    "powerlaw_graph",
    "regular_graph",
    "spawn_rngs",
]
