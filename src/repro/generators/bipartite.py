"""Bipartite user-item rating graphs for Collaborative Filtering.

Paper Section 3.2: "Inputs for Collaborative Filtering are weighted
graphs, where source vertices of edges are users, target vertices are
items ... the weight of an edge represents the rating ... we assume the
number of items is equal to the number of users."

Vertices ``0..n_users-1`` are users and ``n_users..n_users+n_items-1``
are items. Both the user activity (ratings per user) and the item
popularity follow the same power-law exponent ``α`` so CF structure
reacts to the α sweep like the GA graphs do. Ratings are Gaussian
(paper: "edge weights are generated randomly in Gaussian distribution"),
clipped to the conventional 1–5 star range.
"""

from __future__ import annotations

import numpy as np

from repro._util.errors import GraphConstructionError, ValidationError
from repro.generators.powerlaw import _truncated_power_law
from repro.generators.problem import ProblemInstance
from repro.generators.rng import make_rng
from repro.graph.csr import Graph

_MAX_REDRAW_ROUNDS = 60

#: Gaussian rating parameters (mean star rating and spread).
RATING_MEAN = 3.5
RATING_STD = 1.0
RATING_RANGE = (1.0, 5.0)


def bipartite_rating_graph(
    nedges: int,
    alpha: float,
    *,
    seed: int = 0,
    edge_tolerance: float = 0.02,
) -> ProblemInstance:
    """Generate a user-item rating graph with ``~nedges`` ratings.

    Returns a :class:`ProblemInstance` with domain ``"cf"`` and inputs:

    - ``n_users``, ``n_items`` — the bipartition sizes (equal);
    - ``is_user`` — boolean mask over vertices;
    - ratings are the graph's ``edge_weight``.
    """
    if nedges < 1:
        raise ValidationError("nedges must be >= 1")
    if alpha <= 1.0:
        raise ValidationError("alpha must exceed 1.0")

    k_max = max(2, int(round(nedges ** 0.5)))
    ks, pmf = _truncated_power_law(alpha, k_max)
    mean_k = float((ks * pmf).sum())
    # Each rating contributes degree 1 to one user and one item.
    n_users = max(2, int(round(nedges / mean_k)))
    n_items = n_users
    n = n_users + n_items

    rng_u = make_rng(seed, "bipartite", "user-weights")
    rng_i = make_rng(seed, "bipartite", "item-weights")
    rng_pair = make_rng(seed, "bipartite", "pairing")
    rng_rate = make_rng(seed, "bipartite", "ratings")

    user_w = rng_u.choice(ks, size=n_users, p=pmf).astype(np.float64)
    item_w = rng_i.choice(ks, size=n_items, p=pmf).astype(np.float64)
    user_p = user_w / user_w.sum()
    item_p = item_w / item_w.sum()

    target = nedges
    seen: set[int] = set()
    users: list[np.ndarray] = []
    items: list[np.ndarray] = []
    collected = 0
    for _ in range(_MAX_REDRAW_ROUNDS):
        need = target - collected
        if need <= 0:
            break
        batch = max(1024, int(need * 1.25))
        u = rng_pair.choice(n_users, size=batch, p=user_p).astype(np.int64)
        it = rng_pair.choice(n_items, size=batch, p=item_p).astype(np.int64)
        key = u * np.int64(n_items) + it
        _, first = np.unique(key, return_index=True)
        first.sort()
        u, it, key = u[first], it[first], key[first]
        fresh = np.fromiter((k not in seen for k in key.tolist()),
                            dtype=bool, count=key.size)
        u, it, key = u[fresh], it[fresh], key[fresh]
        if u.size > need:
            u, it, key = u[:need], it[:need], key[:need]
        seen.update(key.tolist())
        users.append(u)
        items.append(it)
        collected += u.size
    if abs(collected - target) > edge_tolerance * target:
        raise GraphConstructionError(
            f"could not reach {target} ratings (got {collected}) for "
            f"nedges={nedges}, alpha={alpha}"
        )

    src = np.concatenate(users) if users else np.empty(0, dtype=np.int64)
    dst = (np.concatenate(items) if items else np.empty(0, dtype=np.int64)) + n_users
    ratings = np.clip(
        rng_rate.normal(RATING_MEAN, RATING_STD, size=src.size),
        *RATING_RANGE,
    )

    # CF algorithms traverse ratings in both directions (users gather
    # from items and vice versa), so the rating graph is undirected.
    graph = Graph.from_edges(
        n, src, dst,
        weight=ratings,
        directed=False,
        dedup=False,
        drop_self_loops=False,
        meta={"generator": "bipartite", "nedges": nedges, "alpha": alpha,
              "seed": seed, "n_users": n_users, "n_items": n_items},
    )
    is_user = np.zeros(n, dtype=bool)
    is_user[:n_users] = True
    return ProblemInstance(
        graph=graph,
        domain="cf",
        inputs={"n_users": n_users, "n_items": n_items, "is_user": is_user},
        params={"nedges": nedges, "alpha": alpha, "seed": seed},
    )
