"""Synthetic pairwise Markov Random Fields for Dual Decomposition.

The paper downloads real MRF instances (PIC2011, UAI format) with edge
counts {1056, 1190, 1406, 1560}. Those files are not redistributable
here, so we generate synthetic pairwise MRFs with the *same* edge
counts and the structural character of the PIC2011 vision instances: a
lattice backbone (loopy, locally connected) plus random chords, binary
to small-cardinality variables, and random Potts-like potentials. DD's
behavior signature — every variable active every iteration, slow
subgradient convergence, WORK the only size-sensitive metric — is a
property of that class, which this generator exercises.

Instances round-trip through :mod:`repro.graph.io`'s UAI reader/writer,
so the DD program consumes exactly the format the paper used.
"""

from __future__ import annotations

import numpy as np

from repro._util.errors import ValidationError
from repro.generators.grid import lattice_edges
from repro.generators.problem import ProblemInstance
from repro.generators.rng import make_rng
from repro.graph.io import PairwiseMRF

#: Edge counts of the paper's four DD inputs (Table 2).
PAPER_MRF_EDGE_COUNTS = (1056, 1190, 1406, 1560)


def mrf_problem(
    nedges: int,
    *,
    n_states: int = 2,
    coupling: float = 2.0,
    seed: int = 0,
) -> ProblemInstance:
    """Generate a loopy pairwise MRF with exactly ``nedges`` factors.

    The interaction graph is the largest square lattice whose edge count
    does not exceed ``nedges``, completed with random non-lattice chords
    up to the exact target.

    Returns a :class:`ProblemInstance` with domain ``"mrf"`` and inputs
    ``mrf`` (a :class:`~repro.graph.io.PairwiseMRF`).
    """
    if nedges < 4:
        raise ValidationError("nedges must be >= 4")
    if n_states < 2:
        raise ValidationError("n_states must be >= 2")

    # Lattice with 2*side*(side-1) edges <= nedges.
    side = 2
    while 2 * (side + 1) * side <= nedges:
        side += 1
    src, dst = lattice_edges(side)
    n = side * side

    rng_chords = make_rng(seed, "mrf", "chords")
    rng_pots = make_rng(seed, "mrf", "potentials")

    existing = set((int(u) * n + int(v)) for u, v in zip(src, dst))
    chords_u: list[int] = []
    chords_v: list[int] = []
    while len(chords_u) < nedges - src.size:
        u = int(rng_chords.integers(0, n))
        v = int(rng_chords.integers(0, n))
        if u == v:
            continue
        lo, hi = (u, v) if u < v else (v, u)
        key = lo * n + hi
        if key in existing:
            continue
        existing.add(key)
        chords_u.append(lo)
        chords_v.append(hi)

    pair_vars = np.column_stack([
        np.concatenate([src, np.asarray(chords_u, dtype=np.int64)]),
        np.concatenate([dst, np.asarray(chords_v, dtype=np.int64)]),
    ])

    cards = np.full(n, n_states, dtype=np.int64)
    unary = [rng_pots.normal(0.0, 1.0, size=n_states) for _ in range(n)]
    pair_tables = []
    for _ in range(pair_vars.shape[0]):
        # Potts-like: agreement bonus with random strength and sign, the
        # frustrated mixed-sign regime where DD is actually needed.
        strength = coupling * rng_pots.normal(0.0, 1.0)
        table = np.full((n_states, n_states), 0.0)
        np.fill_diagonal(table, strength)
        table += 0.1 * rng_pots.normal(0.0, 1.0, size=(n_states, n_states))
        pair_tables.append(table)

    mrf = PairwiseMRF(
        cardinalities=cards,
        unary=unary,
        pair_vars=pair_vars,
        pair_tables=pair_tables,
    )
    mrf.validate()
    graph = mrf.to_graph()
    graph.meta.update({"generator": "mrf", "nedges": nedges,
                       "n_states": n_states, "seed": seed})
    return ProblemInstance(
        graph=graph,
        domain="mrf",
        inputs={"mrf": mrf},
        params={"nedges": nedges, "n_states": n_states, "seed": seed},
    )
