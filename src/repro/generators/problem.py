"""Problem instances: a graph plus its domain-specific inputs.

The paper's domains attach different payloads to the same structural
graph (Section 2.2): Graph Analytics uses bare graphs, Clustering adds
2-D data points per vertex, Collaborative Filtering adds edge ratings
and a user/item split, the linear solver adds a right-hand-side vector,
LBP adds per-pixel priors, and DD carries a full MRF. A
:class:`ProblemInstance` bundles all of that so vertex programs receive
one object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro._util.errors import ValidationError
from repro.graph.csr import Graph

#: Domains recognized by the experiment matrix (paper Table 2).
DOMAINS = ("ga", "clustering", "cf", "matrix", "grid", "mrf")


@dataclass
class ProblemInstance:
    """A generated workload: structural graph + domain inputs.

    Attributes
    ----------
    graph:
        The structural graph the GAS engine iterates over.
    domain:
        One of :data:`DOMAINS`.
    inputs:
        Domain payload, e.g. ``{"points": (n, 2) array}`` for
        clustering or ``{"b": (n,) array, "diag": (n,) array}`` for the
        linear solver. Keys are documented by each generator.
    params:
        The generator parameters that produced this instance (nedges,
        alpha, nrows, seed, ...), for provenance and cache keys.
    """

    graph: Graph
    domain: str
    inputs: dict[str, Any] = field(default_factory=dict)
    params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.domain not in DOMAINS:
            raise ValidationError(
                f"unknown domain {self.domain!r}; expected one of {DOMAINS}"
            )

    def require_input(self, key: str) -> Any:
        """Fetch a domain input, raising a helpful error if missing."""
        if key not in self.inputs:
            raise ValidationError(
                f"problem instance for domain {self.domain!r} lacks input "
                f"{key!r}; available: {sorted(self.inputs)}"
            )
        return self.inputs[key]

    @property
    def label(self) -> str:
        """Short human-readable identity, e.g. ``ga(nedges=1e4, α=2.5)``."""
        bits = []
        for key in ("nedges", "alpha", "nrows"):
            if key in self.params:
                value = self.params[key]
                if key == "nedges":
                    bits.append(f"nedges={value:g}")
                elif key == "alpha":
                    bits.append(f"α={value}")
                else:
                    bits.append(f"{key}={value}")
        return f"{self.domain}({', '.join(bits)})"
