"""repro — reproduction of Yang & Chien, "Understanding Graph Computation
Behavior to Enable Robust Benchmarking" (HPDC 2015).

The package provides four layers:

``repro.graph`` / ``repro.generators``
    An immutable CSR graph substrate and the synthetic workload
    generators (power-law, bipartite rating, matrix, grid, MRF graphs)
    used throughout the paper's experiment matrix.

``repro.engine``
    A from-scratch synchronous Gather-Apply-Scatter (GAS) engine in the
    style of GraphLab v2.2, with exact per-iteration behavior
    instrumentation (active vertices, vertex updates, edge reads,
    messages, apply work).

``repro.algorithms``
    The paper's fourteen vertex programs: CC, K-Core, Triangle Counting,
    SSSP, PageRank, Approximate Diameter, K-Means, ALS, NMF, SGD, SVD,
    Jacobi, Loopy Belief Propagation, and Dual Decomposition.

``repro.behavior`` / ``repro.ensemble`` / ``repro.experiments``
    The paper's primary contribution: the 4-D behavior space
    ``<UPDT, WORK, EREAD, MSG>``, the *spread* and *coverage* ensemble
    metrics, best-ensemble search, and the experiment harness that
    regenerates every table and figure of the evaluation.

Quickstart::

    from repro import run_computation, GraphSpec
    trace = run_computation("pagerank", GraphSpec.ga(nedges=10_000, alpha=2.5))
    print(trace.summary())
"""

from repro.behavior.run import GraphComputation, run_computation
from repro.behavior.space import BehaviorSpace, BehaviorVector
from repro.behavior.trace import IterationRecord, RunTrace
from repro.engine.engine import EngineOptions, SynchronousEngine
from repro.engine.program import Direction, VertexProgram
from repro.ensemble.ensemble import Ensemble
from repro.ensemble.metrics import coverage, mean_min_distance, spread
from repro.experiments.config import ExperimentMatrix, GraphSpec, Profile
from repro.experiments.failures import RunFailure
from repro.graph.csr import Graph

__version__ = "1.0.0"

__all__ = [
    "BehaviorSpace",
    "BehaviorVector",
    "Direction",
    "EngineOptions",
    "Ensemble",
    "ExperimentMatrix",
    "Graph",
    "GraphComputation",
    "GraphSpec",
    "IterationRecord",
    "Profile",
    "RunFailure",
    "RunTrace",
    "SynchronousEngine",
    "VertexProgram",
    "__version__",
    "coverage",
    "mean_min_distance",
    "run_computation",
    "spread",
]
