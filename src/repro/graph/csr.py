"""Immutable CSR (compressed sparse row) graph.

The :class:`Graph` is the single graph representation used by the whole
library. It stores a directed adjacency in both orientations (out-edges
and in-edges) so the GAS engine can gather over either direction with
contiguous slices, plus an *edge id* per adjacency slot so that the two
orientations (and, for undirected graphs, the two arcs of one logical
edge) share one weight/state slot.

Terminology
-----------
arc
    One directed adjacency slot. An undirected graph stores each logical
    edge as two arcs.
edge
    One logical edge: what generators count, what weights attach to, and
    what the paper's per-edge metric normalization divides by.
"""

from __future__ import annotations

from functools import cached_property

import numpy as np

from repro._util.errors import GraphConstructionError, ValidationError

try:  # scipy accelerates the fused indicator SpMV; pure NumPy works too.
    from scipy import sparse as _sparse
except ImportError:  # pragma: no cover - scipy is a standard dependency
    _sparse = None


class Graph:
    """Immutable graph in dual-CSR form.

    Build instances with :meth:`Graph.from_edges`; the raw constructor
    expects already-validated CSR arrays and is intended for internal
    use and tests.

    Attributes
    ----------
    n_vertices:
        Number of vertices ``n``; vertex ids are ``0..n-1``.
    n_edges:
        Number of *logical* edges (undirected edges count once).
    n_arcs:
        Number of directed adjacency slots (``2 * n_edges`` when
        undirected).
    directed:
        Whether the graph is directed.
    out_ptr, out_dst, out_eid:
        CSR of out-edges: vertex ``v``'s out-neighbors are
        ``out_dst[out_ptr[v]:out_ptr[v+1]]`` and the corresponding
        logical edge ids ``out_eid[...]``. Neighbors are sorted per
        vertex.
    in_ptr, in_src, in_eid:
        CSR of in-edges, same layout.
    edge_weight:
        Optional float64 array of shape ``(n_edges,)``.
    """

    __slots__ = (
        "n_vertices", "n_edges", "n_arcs", "directed",
        "out_ptr", "out_dst", "out_eid",
        "in_ptr", "in_src", "in_eid",
        "edge_weight", "meta", "__dict__",
    )

    def __init__(
        self,
        *,
        n_vertices: int,
        n_edges: int,
        directed: bool,
        out_ptr: np.ndarray,
        out_dst: np.ndarray,
        out_eid: np.ndarray,
        in_ptr: np.ndarray,
        in_src: np.ndarray,
        in_eid: np.ndarray,
        edge_weight: np.ndarray | None = None,
        meta: dict | None = None,
    ) -> None:
        self.n_vertices = int(n_vertices)
        self.n_edges = int(n_edges)
        self.n_arcs = int(out_dst.shape[0])
        self.directed = bool(directed)
        self.out_ptr = out_ptr
        self.out_dst = out_dst
        self.out_eid = out_eid
        self.in_ptr = in_ptr
        self.in_src = in_src
        self.in_eid = in_eid
        self.edge_weight = edge_weight
        #: Free-form provenance (generator name, parameters, seed).
        self.meta = dict(meta or {})
        for arr in (out_ptr, out_dst, out_eid, in_ptr, in_src, in_eid):
            arr.setflags(write=False)
        if edge_weight is not None:
            edge_weight.setflags(write=False)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        n_vertices: int,
        src: np.ndarray,
        dst: np.ndarray,
        *,
        weight: np.ndarray | None = None,
        directed: bool = False,
        dedup: bool = True,
        drop_self_loops: bool = True,
        meta: dict | None = None,
    ) -> "Graph":
        """Build a graph from parallel edge arrays.

        Parameters
        ----------
        n_vertices:
            Vertex-id domain size; all of ``src``/``dst`` must be in
            ``[0, n_vertices)``.
        src, dst:
            Integer endpoint arrays of equal length.
        weight:
            Optional per-edge weights, aligned with ``src``/``dst``
            *before* dedup (the first occurrence's weight wins).
        directed:
            If False (default), the edge set is symmetrized: arcs exist
            in both directions and share the logical edge's weight slot.
        dedup:
            Drop duplicate edges (and, for undirected graphs, treat
            ``(u, v)`` and ``(v, u)`` as the same edge).
        drop_self_loops:
            Drop ``(v, v)`` edges (the synthetic generators can emit
            them; none of the paper's algorithms use them).
        """
        src = np.asarray(src, dtype=np.int64).ravel()
        dst = np.asarray(dst, dtype=np.int64).ravel()
        if src.shape != dst.shape:
            raise ValidationError("src and dst must have the same length")
        if n_vertices <= 0:
            raise GraphConstructionError("graph must have at least one vertex")
        if src.size and (src.min() < 0 or dst.min() < 0
                         or src.max() >= n_vertices or dst.max() >= n_vertices):
            raise GraphConstructionError(
                f"edge endpoints out of range [0, {n_vertices})"
            )
        w = None
        if weight is not None:
            w = np.asarray(weight, dtype=np.float64).ravel()
            if w.shape != src.shape:
                raise ValidationError("weight must align with src/dst")

        if drop_self_loops and src.size:
            keep = src != dst
            src, dst = src[keep], dst[keep]
            if w is not None:
                w = w[keep]

        if not directed and src.size:
            # Canonicalize so (u, v) and (v, u) collapse under dedup.
            lo = np.minimum(src, dst)
            hi = np.maximum(src, dst)
            src, dst = lo, hi

        if dedup and src.size:
            key = src * np.int64(n_vertices) + dst
            _, first = np.unique(key, return_index=True)
            first.sort()
            src, dst = src[first], dst[first]
            if w is not None:
                w = w[first]

        m = src.size
        eid = np.arange(m, dtype=np.int64)
        if directed:
            a_src, a_dst, a_eid = src, dst, eid
        else:
            a_src = np.concatenate([src, dst])
            a_dst = np.concatenate([dst, src])
            a_eid = np.concatenate([eid, eid])

        out_ptr, out_dst, out_eid = _build_csr(n_vertices, a_src, a_dst, a_eid)
        in_ptr, in_src, in_eid = _build_csr(n_vertices, a_dst, a_src, a_eid)

        return cls(
            n_vertices=n_vertices,
            n_edges=m,
            directed=directed,
            out_ptr=out_ptr, out_dst=out_dst, out_eid=out_eid,
            in_ptr=in_ptr, in_src=in_src, in_eid=in_eid,
            edge_weight=w,
            meta=meta,
        )

    # ------------------------------------------------------------------
    # Degrees and adjacency
    # ------------------------------------------------------------------
    @cached_property
    def out_degree(self) -> np.ndarray:
        """Out-degree of every vertex (undirected: total degree).

        Computed once and cached read-only on the immutable graph, so
        engine frontier paths can use it every superstep for free.
        """
        deg = np.diff(self.out_ptr)
        deg.setflags(write=False)
        return deg

    @cached_property
    def in_degree(self) -> np.ndarray:
        """In-degree of every vertex (undirected: total degree);
        cached read-only like :attr:`out_degree`."""
        deg = np.diff(self.in_ptr)
        deg.setflags(write=False)
        return deg

    @cached_property
    def degree(self) -> np.ndarray:
        """Undirected degree; for directed graphs, in + out. Cached
        read-only like :attr:`out_degree`."""
        if not self.directed:
            return self.out_degree
        deg = self.out_degree + self.in_degree
        deg.setflags(write=False)
        return deg

    @cached_property
    def inv_out_degree(self) -> np.ndarray:
        """``1 / out_degree`` with isolated vertices mapped to ``0.0``.

        The guarded form (mask, then divide by ``max(deg, 1)``) never
        evaluates ``1/0``, so no NaN/Inf ever enters a normalization —
        degree-zero vertices simply contribute nothing. Cached read-only
        like :attr:`out_degree`.
        """
        deg = self.out_degree.astype(np.float64)
        inv = np.where(deg > 0, 1.0 / np.maximum(deg, 1.0), 0.0)
        inv.setflags(write=False)
        return inv

    @cached_property
    def inv_in_degree(self) -> np.ndarray:
        """``1 / in_degree`` with isolated vertices mapped to ``0.0``;
        guarded and cached like :attr:`inv_out_degree`."""
        deg = self.in_degree.astype(np.float64)
        inv = np.where(deg > 0, 1.0 / np.maximum(deg, 1.0), 0.0)
        inv.setflags(write=False)
        return inv

    def _csr_arrays(self, orientation: str):
        if orientation == "in":
            return self.in_ptr, self.in_src
        if orientation == "out":
            return self.out_ptr, self.out_dst
        raise ValidationError(
            f"orientation must be 'in' or 'out', got {orientation!r}")

    def ones_adjacency_csr(self, orientation: str = "in"):
        """``scipy.sparse`` CSR of one adjacency with unit data, cached.

        Row ``v`` holds a ``1.0`` per adjacency slot, so ``M @ x`` is
        the per-vertex sum of neighbor values. Returns ``None`` when
        scipy is unavailable (callers fall back to the segment-reduce
        path). The matrix is built once per orientation and cached on
        the immutable graph.
        """
        if _sparse is None:
            return None
        cache = self.__dict__.setdefault("_ones_csr_cache", {})
        mat = cache.get(orientation)
        if mat is None:
            ptr, idx = self._csr_arrays(orientation)
            mat = _sparse.csr_matrix(
                (np.ones(idx.size, dtype=np.float64),
                 idx.astype(np.int64, copy=True),
                 ptr.astype(np.int64, copy=True)),
                shape=(self.n_vertices, self.n_vertices),
            )
            cache[orientation] = mat
        return mat

    def spmv_ones(self, orientation: str, x: np.ndarray) -> np.ndarray:
        """``y[v] = Σ x[u]`` over ``v``'s neighbors in one adjacency.

        scipy-backed when available, else a pure-NumPy segment reduce.
        The two backends sum in different orders, so this is only used
        where every order gives the same float64 result — integer-valued
        ``x`` (indicator/count vectors) whose per-row sums stay below
        2**53, as in the fused scatter's "who got signaled" SpMV.
        """
        mat = self.ones_adjacency_csr(orientation)
        if mat is not None:
            return mat.dot(x)
        from repro._util.segments import segmented_reduce

        ptr, idx = self._csr_arrays(orientation)
        return segmented_reduce(x[idx], np.diff(ptr), "sum")

    def out_neighbors(self, v: int) -> np.ndarray:
        """Sorted out-neighbor ids of ``v`` (a read-only view)."""
        return self.out_dst[self.out_ptr[v]:self.out_ptr[v + 1]]

    def in_neighbors(self, v: int) -> np.ndarray:
        """Sorted in-neighbor ids of ``v`` (a read-only view)."""
        return self.in_src[self.in_ptr[v]:self.in_ptr[v + 1]]

    def neighbors(self, v: int) -> np.ndarray:
        """Neighbors of ``v``; undirected graphs only."""
        if self.directed:
            raise ValidationError(
                "neighbors() is only defined for undirected graphs; use "
                "out_neighbors()/in_neighbors()"
            )
        return self.out_neighbors(v)

    def has_edge(self, u: int, v: int) -> bool:
        """Whether arc ``u -> v`` exists (either direction if undirected)."""
        nbrs = self.out_neighbors(u)
        i = np.searchsorted(nbrs, v)
        return bool(i < nbrs.size and nbrs[i] == v)

    def edge_endpoints(self) -> tuple[np.ndarray, np.ndarray]:
        """Return (src, dst) arrays of the *logical* edges, by edge id."""
        srcs = np.empty(self.n_edges, dtype=np.int64)
        dsts = np.empty(self.n_edges, dtype=np.int64)
        # Each logical edge appears at least once in the out-CSR; take
        # the first slot per eid. Undirected graphs store (lo, hi) and
        # (hi, lo); the scatter below keeps whichever slot writes last,
        # and tests only rely on the endpoint *set*, so fix a canonical
        # orientation by preferring the slot with src <= dst.
        slot_src = np.repeat(np.arange(self.n_vertices, dtype=np.int64),
                             self.out_degree)
        order = np.argsort(self.out_eid, kind="stable")
        eids = self.out_eid[order]
        s = slot_src[order]
        d = self.out_dst[order]
        if not self.directed:
            canonical = s <= d
            eids, s, d = eids[canonical], s[canonical], d[canonical]
        srcs[eids] = s
        dsts[eids] = d
        return srcs, dsts

    # ------------------------------------------------------------------
    # Dunder / misc
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "directed" if self.directed else "undirected"
        return (f"Graph({kind}, n_vertices={self.n_vertices}, "
                f"n_edges={self.n_edges})")

    def memory_bytes(self) -> int:
        """Approximate resident size of the CSR arrays."""
        total = 0
        for name in ("out_ptr", "out_dst", "out_eid",
                     "in_ptr", "in_src", "in_eid"):
            total += getattr(self, name).nbytes
        if self.edge_weight is not None:
            total += self.edge_weight.nbytes
        return total


def _build_csr(
    n: int, src: np.ndarray, dst: np.ndarray, eid: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sort arcs by (src, dst) and compress into (ptr, dst, eid)."""
    order = np.lexsort((dst, src))
    s = src[order]
    d = dst[order]
    e = eid[order]
    counts = np.bincount(s, minlength=n).astype(np.int64)
    ptr = np.empty(n + 1, dtype=np.int64)
    ptr[0] = 0
    np.cumsum(counts, out=ptr[1:])
    return ptr, d, e
