"""Graph file I/O: whitespace edge lists and the UAI MRF format.

The paper's Dual Decomposition inputs are Markov Random Field graphs in
the standard UAI file format (Section 3.2, downloaded from PIC2011). We
implement a reader/writer for the pairwise-MRF subset of UAI so the
synthetic MRF generator round-trips through the same on-disk format the
paper consumed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro._util.errors import ValidationError
from repro.graph.csr import Graph


# ----------------------------------------------------------------------
# Edge lists
# ----------------------------------------------------------------------

def write_edge_list(graph: Graph, path: str | Path, *, header: bool = True) -> None:
    """Write a graph as ``src dst [weight]`` lines.

    Undirected edges are written once (canonical ``lo hi`` orientation).
    """
    path = Path(path)
    src, dst = graph.edge_endpoints()
    with path.open("w", encoding="utf-8") as fh:
        if header:
            kind = "directed" if graph.directed else "undirected"
            fh.write(f"# repro edge list: {kind} "
                     f"n_vertices={graph.n_vertices} n_edges={graph.n_edges}\n")
        if graph.edge_weight is None:
            for u, v in zip(src.tolist(), dst.tolist()):
                fh.write(f"{u} {v}\n")
        else:
            for u, v, w in zip(src.tolist(), dst.tolist(),
                               graph.edge_weight.tolist()):
                fh.write(f"{u} {v} {w!r}\n")


def read_edge_list(
    path: str | Path,
    *,
    n_vertices: int | None = None,
    directed: bool = False,
) -> Graph:
    """Read a ``src dst [weight]`` edge list written by :func:`write_edge_list`.

    Lines starting with ``#`` are comments; the header comment's
    ``n_vertices`` is honored unless overridden by the argument.

    The header's declared ``n_vertices``/``n_edges`` are validated
    against what was actually parsed: a truncated copy (fewer edge
    lines than declared) or an out-of-range vertex id raises
    :class:`ValidationError` instead of silently yielding a smaller
    graph.
    """
    path = Path(path)
    srcs: list[int] = []
    dsts: list[int] = []
    weights: list[float] = []
    header_n: int | None = None
    header_m: int | None = None
    header_directed: bool | None = None
    with path.open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                for token in line[1:].split():
                    if token.startswith("n_vertices="):
                        header_n = int(token.partition("=")[2])
                    elif token.startswith("n_edges="):
                        header_m = int(token.partition("=")[2])
                    elif token in ("directed", "undirected"):
                        header_directed = token == "directed"
                continue
            parts = line.split()
            if len(parts) not in (2, 3):
                raise ValidationError(
                    f"{path}:{lineno}: expected 'src dst [weight]', got {line!r}"
                )
            srcs.append(int(parts[0]))
            dsts.append(int(parts[1]))
            if len(parts) == 3:
                weights.append(float(parts[2]))
    if weights and len(weights) != len(srcs):
        raise ValidationError(f"{path}: mixed weighted and unweighted lines")
    if header_m is not None and header_m != len(srcs):
        raise ValidationError(
            f"{path}: header declares n_edges={header_m} but {len(srcs)} "
            f"edge line(s) were parsed — truncated or corrupted file")
    n = n_vertices if n_vertices is not None else header_n
    if n is None:
        n = (max(max(srcs, default=-1), max(dsts, default=-1)) + 1) or 1
    else:
        peak = max(max(srcs, default=-1), max(dsts, default=-1))
        low = min(min(srcs, default=0), min(dsts, default=0))
        if peak >= n or low < 0:
            raise ValidationError(
                f"{path}: vertex id range [{low}, {peak}] outside the "
                f"declared n_vertices={n}")
    if header_directed is not None and n_vertices is None:
        directed = header_directed
    return Graph.from_edges(
        n,
        np.asarray(srcs, dtype=np.int64),
        np.asarray(dsts, dtype=np.int64),
        weight=np.asarray(weights) if weights else None,
        directed=directed,
        meta={"source": str(path)},
    )


# ----------------------------------------------------------------------
# UAI pairwise Markov Random Fields
# ----------------------------------------------------------------------

@dataclass
class PairwiseMRF:
    """A pairwise Markov Random Field as stored in UAI files.

    Attributes
    ----------
    cardinalities:
        Number of states of each variable (all equal for our generator,
        but arbitrary UAI files are supported).
    unary:
        ``unary[i]`` — potential table of variable ``i``, shape ``(card_i,)``.
    pair_vars:
        ``(n_pair, 2)`` int array of variable index pairs, one per
        pairwise factor.
    pair_tables:
        List of ``(card_u, card_v)`` potential tables aligned with
        ``pair_vars``.
    """

    cardinalities: np.ndarray
    unary: list[np.ndarray]
    pair_vars: np.ndarray
    pair_tables: list[np.ndarray] = field(repr=False)

    @property
    def n_variables(self) -> int:
        return int(self.cardinalities.size)

    @property
    def n_pairwise(self) -> int:
        return int(self.pair_vars.shape[0])

    def to_graph(self) -> Graph:
        """The MRF's variable-interaction graph (undirected, unweighted)."""
        return Graph.from_edges(
            self.n_variables,
            self.pair_vars[:, 0],
            self.pair_vars[:, 1],
            directed=False,
            meta={"source": "mrf", "n_pairwise": self.n_pairwise},
        )

    def validate(self) -> None:
        """Check table shapes; raise :class:`ValidationError` on mismatch."""
        if len(self.unary) != self.n_variables:
            raise ValidationError("one unary table per variable required")
        for i, table in enumerate(self.unary):
            if table.shape != (self.cardinalities[i],):
                raise ValidationError(f"unary table {i} has shape "
                                      f"{table.shape}, expected "
                                      f"({self.cardinalities[i]},)")
        if self.pair_vars.shape != (len(self.pair_tables), 2):
            raise ValidationError("pair_vars must align with pair_tables")
        for k, (u, v) in enumerate(self.pair_vars):
            expect = (self.cardinalities[u], self.cardinalities[v])
            if self.pair_tables[k].shape != tuple(expect):
                raise ValidationError(
                    f"pairwise table {k} has shape "
                    f"{self.pair_tables[k].shape}, expected {expect}"
                )


def write_uai(mrf: PairwiseMRF, path: str | Path) -> None:
    """Write a pairwise MRF in UAI format (MARKOV preamble)."""
    mrf.validate()
    path = Path(path)
    lines: list[str] = ["MARKOV"]
    lines.append(str(mrf.n_variables))
    lines.append(" ".join(str(int(c)) for c in mrf.cardinalities))
    n_factors = mrf.n_variables + mrf.n_pairwise
    lines.append(str(n_factors))
    for i in range(mrf.n_variables):
        lines.append(f"1 {i}")
    for u, v in mrf.pair_vars:
        lines.append(f"2 {u} {v}")
    for i in range(mrf.n_variables):
        table = mrf.unary[i]
        lines.append(str(table.size))
        lines.append(" ".join(f"{x:.10g}" for x in table.ravel()))
    for table in mrf.pair_tables:
        lines.append(str(table.size))
        lines.append(" ".join(f"{x:.10g}" for x in table.ravel()))
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


def read_uai(path: str | Path) -> PairwiseMRF:
    """Read a pairwise MRF from a UAI file.

    Only unary and pairwise factors are supported (the subset Dual
    Decomposition consumes); higher-order factors raise
    :class:`ValidationError`. Truncated files (fewer tokens than the
    declared variable/factor/table counts require), out-of-range
    variable indices, and trailing garbage all raise
    :class:`ValidationError` rather than yielding a smaller MRF.
    """
    path = Path(path)
    tokens = path.read_text(encoding="utf-8").split()
    pos = 0

    def take(count: int = 1) -> list[str]:
        nonlocal pos
        if pos + count > len(tokens):
            raise ValidationError(f"{path}: truncated UAI file")
        out = tokens[pos:pos + count]
        pos += count
        return out

    kind = take()[0].upper()
    if kind != "MARKOV":
        raise ValidationError(f"{path}: expected MARKOV preamble, got {kind!r}")
    n_vars = int(take()[0])
    cards = np.asarray([int(t) for t in take(n_vars)], dtype=np.int64)
    n_factors = int(take()[0])
    scopes: list[list[int]] = []
    for _ in range(n_factors):
        arity = int(take()[0])
        if arity not in (1, 2):
            raise ValidationError(
                f"{path}: only pairwise MRFs supported, got factor arity {arity}"
            )
        scope = [int(t) for t in take(arity)]
        if any(i < 0 or i >= n_vars for i in scope):
            raise ValidationError(
                f"{path}: factor scope {scope} references a variable "
                f"outside the declared {n_vars} variables")
        scopes.append(scope)

    unary: dict[int, np.ndarray] = {}
    pair_vars: list[tuple[int, int]] = []
    pair_tables: list[np.ndarray] = []
    for scope in scopes:
        size = int(take()[0])
        values = np.asarray([float(t) for t in take(size)])
        if len(scope) == 1:
            (i,) = scope
            if size != cards[i]:
                raise ValidationError(f"{path}: unary table size mismatch for "
                                      f"variable {i}")
            unary[i] = values
        else:
            u, v = scope
            if size != cards[u] * cards[v]:
                raise ValidationError(f"{path}: pairwise table size mismatch "
                                      f"for ({u}, {v})")
            pair_vars.append((u, v))
            pair_tables.append(values.reshape(cards[u], cards[v]))

    if pos != len(tokens):
        raise ValidationError(
            f"{path}: {len(tokens) - pos} unexpected trailing token(s) "
            f"after the last declared factor table — factor count and "
            f"content disagree")
    for i in range(n_vars):
        unary.setdefault(i, np.zeros(cards[i]))
    mrf = PairwiseMRF(
        cardinalities=cards,
        unary=[unary[i] for i in range(n_vars)],
        pair_vars=np.asarray(pair_vars, dtype=np.int64).reshape(-1, 2),
        pair_tables=pair_tables,
    )
    mrf.validate()
    return mrf
