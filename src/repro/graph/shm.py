"""Shared-memory graph plane: materialize once, attach everywhere.

The corpus plan re-uses each distinct :class:`GraphSpec` across ~11
algorithms, and every pool worker used to regenerate the graph for each
cell it executed. This module lets the corpus builder *publish* a
materialized :class:`~repro.generators.problem.ProblemInstance` into
POSIX shared memory exactly once, and lets every worker *attach* a
read-only zero-copy view of it.

Layout
------
One ``multiprocessing.shared_memory`` segment per published problem,
named ``repro-shm-<hex>``. The segment packs the graph's CSR arrays
(``out_ptr/out_dst/out_eid/in_ptr/in_src/in_eid``, plus ``edge_weight``
when present) followed by every array-valued domain input
(``points``, ``is_user``, ...), each at a 64-byte-aligned offset. A
small picklable :class:`ShmManifest` carries the segment name, per-array
``(name, dtype, shape, offset)`` records, and the problem's scalar
inputs/params — workers receive the manifest in their task payload and
rebuild a :class:`~repro.graph.csr.Graph` over read-only views.

Ownership and cleanup
---------------------
The *publishing* process (the corpus builder) owns every segment through
a :class:`GraphPlane` and is the only one that unlinks:

- ``GraphPlane.close()`` — idempotent; called from ``build_corpus``'s
  ``finally`` (covers clean exit, exceptions, and the first-^C stop
  path) and registered with ``atexit`` as a second line of defense;
- the parent keeps its ``resource_tracker`` registration, so even a
  SIGKILLed builder gets its segments reclaimed when the tracker
  process exits;
- workers only ever ``close()`` their attachments (on interpreter
  exit); a SIGKILLed worker drops its mapping with the process and
  leaks nothing, because the name is owned by the parent.

Attaching never registers with the resource tracker (see
:func:`_attach_segment`): registration belongs to the owner alone.
See DESIGN.md §11.
"""

from __future__ import annotations

import atexit
import uuid
from dataclasses import dataclass

import numpy as np

from repro.generators.problem import ProblemInstance
from repro.graph.csr import Graph

#: Prefix of every segment name created here; lifecycle tests glob
#: ``/dev/shm/<prefix>*`` to prove nothing leaks.
SEGMENT_PREFIX = "repro-shm-"

#: Per-array alignment inside a segment.
_ALIGNMENT = 64

#: CSR arrays published for every graph, in layout order.
_GRAPH_ARRAYS = ("out_ptr", "out_dst", "out_eid",
                 "in_ptr", "in_src", "in_eid")

#: Scalar input types that travel in the manifest instead of the segment.
_SCALAR_TYPES = (bool, int, float, str, np.bool_, np.integer, np.floating)


@dataclass(frozen=True)
class ArraySpec:
    """Location of one array inside a segment."""

    name: str
    dtype: str
    shape: tuple
    offset: int

    @property
    def nbytes(self) -> int:
        count = int(np.prod(self.shape, dtype=np.int64))
        return int(np.dtype(self.dtype).itemsize) * count


@dataclass(frozen=True)
class ShmManifest:
    """Picklable recipe for rebuilding a problem from a segment."""

    key: str
    segment: str
    domain: str
    n_vertices: int
    n_edges: int
    directed: bool
    arrays: tuple  # of ArraySpec; names "graph.<csr>" / "input.<key>"
    scalars: tuple  # ((input name, value), ...) for non-array inputs
    graph_meta: tuple  # ((k, v), ...) snapshot of Graph.meta
    params: tuple  # ((k, v), ...) snapshot of ProblemInstance.params


def publishable(problem: ProblemInstance) -> bool:
    """Whether every domain input is an array or a plain scalar.

    The DD domain carries a whole ``PairwiseMRF`` object and falls back
    to per-process materialization; the corpus domains (ga, clustering,
    cf) are all publishable.
    """
    return all(isinstance(v, (np.ndarray, *_SCALAR_TYPES))
               for v in problem.inputs.values())


def unlink_segment(name: str) -> bool:
    """Unlink a segment owned by a process that will never clean up.

    Used by the distributed-build coordinator to reap the graph-plane
    segments of a dead or partitioned node agent (their names travel
    in the node's heartbeats precisely for this). Attaching without a
    resource-tracker registration and unlinking directly is safe: the
    owner is gone, and if a zombie worker of that node is still mapped
    the kernel keeps the memory until the last detach while the name
    disappears immediately. Returns True when the name existed.
    """
    if not name.startswith(SEGMENT_PREFIX):
        return False  # never unlink names we did not create
    try:
        seg = _attach_segment(name)
    except FileNotFoundError:
        return False
    except Exception:
        return False
    try:
        seg.unlink()
    except FileNotFoundError:  # pragma: no cover - lost a race
        pass
    finally:
        seg.close()
    return True


def shm_available() -> bool:
    """Probe for a working shared-memory implementation."""
    try:
        from multiprocessing import shared_memory

        seg = shared_memory.SharedMemory(create=True, size=16)
        seg.close()
        seg.unlink()
        return True
    except Exception:
        return False


def _aligned(offset: int) -> int:
    return (offset + _ALIGNMENT - 1) // _ALIGNMENT * _ALIGNMENT


def _layout(problem: ProblemInstance) -> tuple[list, list, int]:
    """Plan the segment: (array entries, scalar inputs, total bytes)."""
    graph = problem.graph
    pairs: list[tuple[str, np.ndarray]] = [
        (f"graph.{name}", getattr(graph, name)) for name in _GRAPH_ARRAYS
    ]
    if graph.edge_weight is not None:
        pairs.append(("graph.edge_weight", graph.edge_weight))
    scalars: list[tuple[str, object]] = []
    for key in sorted(problem.inputs):
        value = problem.inputs[key]
        if isinstance(value, np.ndarray):
            pairs.append((f"input.{key}", value))
        else:
            scalars.append((key, value))
    specs: list[tuple[ArraySpec, np.ndarray]] = []
    offset = 0
    for name, arr in pairs:
        offset = _aligned(offset)
        spec = ArraySpec(name=name, dtype=arr.dtype.str,
                         shape=tuple(arr.shape), offset=offset)
        specs.append((spec, arr))
        offset += arr.nbytes
    return specs, scalars, max(offset, 1)


def _attach_segment(name: str):
    """Open an existing segment without a resource-tracker registration.

    ``SharedMemory(name=...)`` registers the name with the resource
    tracker even for plain attachments (``track=False`` exists only on
    Python 3.13+). Registering an attachment is wrong either way: a
    pool worker shares the parent's tracker process, so a later
    unregister would erase the *owner's* registration (losing the
    SIGKILL safety net and making the owner's unlink error), while an
    independent process's tracker would unlink a segment it does not
    own at exit. So on older Pythons the registration hook is silenced
    for the duration of the attach.
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        pass
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def _problem_from_segment(manifest: ShmManifest, seg) -> ProblemInstance:
    """Rebuild a problem over read-only views of one open segment."""
    views: dict[str, np.ndarray] = {}
    for spec in manifest.arrays:
        arr = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype),
                         buffer=seg.buf, offset=spec.offset)
        arr.setflags(write=False)
        views[spec.name] = arr
    graph = Graph(
        n_vertices=manifest.n_vertices,
        n_edges=manifest.n_edges,
        directed=manifest.directed,
        out_ptr=views["graph.out_ptr"],
        out_dst=views["graph.out_dst"],
        out_eid=views["graph.out_eid"],
        in_ptr=views["graph.in_ptr"],
        in_src=views["graph.in_src"],
        in_eid=views["graph.in_eid"],
        edge_weight=views.get("graph.edge_weight"),
        meta=dict(manifest.graph_meta),
    )
    inputs: dict[str, object] = dict(manifest.scalars)
    for name, arr in views.items():
        if name.startswith("input."):
            inputs[name[len("input."):]] = arr
    return ProblemInstance(graph=graph, domain=manifest.domain,
                           inputs=inputs, params=dict(manifest.params))


# ----------------------------------------------------------------------
# Attach side (workers)
# ----------------------------------------------------------------------
#: Open attachments, keyed by segment name. Keeping the SharedMemory
#: object alive keeps the mapping (and every numpy view over it) valid
#: for the life of the process; entries are closed at interpreter exit.
_ATTACHED_SEGMENTS: dict[str, object] = {}
#: Attached problems memoized by segment name, so a worker executing
#: many cells of one graph rebuilds the view once.
_ATTACHED_PROBLEMS: dict[str, ProblemInstance] = {}
#: Manifests installed into this process (worker payloads), by key.
_INSTALLED_MANIFESTS: dict[str, ShmManifest] = {}
#: Problems registered directly in this process (the publishing parent
#: and the no-shm inline path), by key.
_LOCAL_PROBLEMS: dict[str, ProblemInstance] = {}


def attach(manifest: ShmManifest) -> ProblemInstance:
    """Attach a published problem read-only (zero-copy, memoized)."""
    problem = _ATTACHED_PROBLEMS.get(manifest.segment)
    if problem is not None:
        return problem
    seg = _ATTACHED_SEGMENTS.get(manifest.segment)
    if seg is None:
        seg = _attach_segment(manifest.segment)
        _ATTACHED_SEGMENTS[manifest.segment] = seg
    problem = _problem_from_segment(manifest, seg)
    _ATTACHED_PROBLEMS[manifest.segment] = problem
    return problem


def _close_attachments() -> None:
    """Close (never unlink) every attachment held by this process."""
    _ATTACHED_PROBLEMS.clear()
    for seg in _ATTACHED_SEGMENTS.values():
        try:
            seg.close()
        except Exception:
            pass
    _ATTACHED_SEGMENTS.clear()


atexit.register(_close_attachments)


def install_manifest(manifest: ShmManifest) -> None:
    """Make a manifest resolvable by key in this process."""
    _INSTALLED_MANIFESTS[manifest.key] = manifest


def install_problem(key: str, problem: ProblemInstance) -> None:
    """Register an already-materialized problem by key (parent side)."""
    _LOCAL_PROBLEMS[key] = problem


def discard_problem(key: str) -> None:
    _LOCAL_PROBLEMS.pop(key, None)


def resolve(key: str) -> "ProblemInstance | None":
    """Resolve a spec cache key to a published problem, if any.

    Checks locally registered problems first (the publisher's own
    views), then installed manifests (worker side). A manifest whose
    segment has vanished — the plane was closed under us — is dropped
    and the caller falls back to regenerating.
    """
    problem = _LOCAL_PROBLEMS.get(key)
    if problem is not None:
        return problem
    manifest = _INSTALLED_MANIFESTS.get(key)
    if manifest is None:
        return None
    try:
        return attach(manifest)
    except Exception:
        _INSTALLED_MANIFESTS.pop(key, None)
        from repro.obs.telemetry import get_telemetry

        tel = get_telemetry()
        if tel.enabled:
            tel.inc("shm_attach_failures_total")
            tel.emit("shm", action="attach-failed", key=key)
        return None


# ----------------------------------------------------------------------
# Publish side (the corpus builder)
# ----------------------------------------------------------------------
class GraphPlane:
    """Owner of all published segments for one corpus build.

    ``publish`` copies a problem into a fresh segment and registers the
    parent-side view under the key, so inline resolution in the parent
    is zero-copy too. ``close`` unlinks everything and is idempotent —
    it runs from ``build_corpus``'s ``finally`` *and* ``atexit``.
    """

    def __init__(self) -> None:
        self._segments: dict[str, object] = {}
        self._manifests: dict[str, ShmManifest] = {}
        self._closed = False
        atexit.register(self.close)

    def __len__(self) -> int:
        return len(self._manifests)

    @property
    def manifests(self) -> dict[str, ShmManifest]:
        return dict(self._manifests)

    def publish(self, key: str, problem: ProblemInstance) -> ShmManifest:
        """Copy ``problem`` into shared memory under ``key``."""
        if self._closed:
            raise RuntimeError("graph plane is closed")
        existing = self._manifests.get(key)
        if existing is not None:
            return existing
        from multiprocessing import shared_memory

        specs, scalars, total = _layout(problem)
        name = f"{SEGMENT_PREFIX}{uuid.uuid4().hex[:16]}"
        seg = shared_memory.SharedMemory(name=name, create=True, size=total)
        try:
            for spec, arr in specs:
                view = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype),
                                  buffer=seg.buf, offset=spec.offset)
                view[...] = np.ascontiguousarray(arr)
            graph = problem.graph
            manifest = ShmManifest(
                key=key,
                segment=name,
                domain=problem.domain,
                n_vertices=graph.n_vertices,
                n_edges=graph.n_edges,
                directed=graph.directed,
                arrays=tuple(spec for spec, _ in specs),
                scalars=tuple(scalars),
                graph_meta=tuple(sorted(graph.meta.items())),
                params=tuple(sorted(problem.params.items())),
            )
        except Exception:
            seg.close()
            try:
                seg.unlink()
            except Exception:
                pass
            raise
        self._segments[key] = seg
        self._manifests[key] = manifest
        # The parent resolves through its own view of the segment (not
        # the original problem) so parent and workers compute over the
        # same bytes; the original can be garbage-collected.
        install_problem(key, _problem_from_segment(manifest, seg))
        from repro.obs.telemetry import get_telemetry

        tel = get_telemetry()
        if tel.enabled:
            tel.inc("shm_publishes_total")
            tel.inc("shm_published_bytes_total", total)
            if tel.full:
                tel.emit("shm", action="publish", key=key, bytes=total)
        return manifest

    def close(self) -> None:
        """Unlink every published segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for key, seg in self._segments.items():
            # Views over the segment die with it: drop the parent-side
            # problem so later resolution regenerates instead of
            # touching an unmapped buffer.
            discard_problem(key)
            try:
                seg.close()
            except Exception:
                pass
            try:
                seg.unlink()
            except Exception:
                pass
        self._segments.clear()
        self._manifests.clear()
