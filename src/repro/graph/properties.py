"""Structural analysis of graphs: degree distributions and power-law fits.

The paper characterizes graphs by size (``nedges``) and the power-law
exponent ``α`` of the degree distribution ``P(k) ~ k^-α`` (Section 2.2).
This module computes the empirical distribution and a maximum-likelihood
estimate of ``α`` so that tests can verify the synthetic generators
actually produce the structures the experiment matrix claims.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util.errors import ValidationError
from repro.graph.csr import Graph


def degree_distribution(graph: Graph) -> tuple[np.ndarray, np.ndarray]:
    """Empirical degree distribution ``P(k)``.

    Returns
    -------
    (degrees, fraction):
        ``degrees`` — sorted unique degree values ``k`` present in the
        graph; ``fraction`` — fraction of vertices with each degree
        (``n_k / n``, summing to 1).
    """
    deg = graph.degree
    ks, counts = np.unique(deg, return_counts=True)
    return ks, counts / graph.n_vertices


def fit_power_law_alpha(degrees: np.ndarray, *, k_min: int = 1) -> float:
    """Maximum-likelihood estimate of the power-law exponent ``α``.

    Uses the standard continuous-approximation MLE (Clauset et al.):
    ``α = 1 + n / Σ ln(k_i / (k_min - 1/2))`` over degrees ``k_i >= k_min``.

    Parameters
    ----------
    degrees:
        Per-vertex degree array.
    k_min:
        Minimum degree included in the fit (small-degree saturation is
        not power-law in most generators).
    """
    degrees = np.asarray(degrees)
    tail = degrees[degrees >= k_min]
    if tail.size < 2:
        raise ValidationError(
            f"need at least 2 degrees >= k_min={k_min} to fit a power law"
        )
    logs = np.log(tail / (k_min - 0.5))
    total = logs.sum()
    if total <= 0:
        raise ValidationError("degenerate degree distribution; cannot fit α")
    return 1.0 + tail.size / total


@dataclass(frozen=True)
class GraphSummary:
    """Compact structural summary of a graph."""

    n_vertices: int
    n_edges: int
    directed: bool
    min_degree: int
    max_degree: int
    mean_degree: float
    alpha_mle: float | None

    def as_row(self) -> str:
        """One-line human-readable summary."""
        alpha = f"{self.alpha_mle:.2f}" if self.alpha_mle is not None else "n/a"
        return (f"|V|={self.n_vertices:>9,} |E|={self.n_edges:>10,} "
                f"deg[{self.min_degree},{self.max_degree}] "
                f"mean={self.mean_degree:.2f} α̂={alpha}")


def summarize(graph: Graph, *, fit_alpha: bool = True, k_min: int = 2) -> GraphSummary:
    """Compute a :class:`GraphSummary` for ``graph``."""
    deg = graph.degree
    alpha = None
    if fit_alpha:
        try:
            alpha = fit_power_law_alpha(deg, k_min=k_min)
        except ValidationError:
            alpha = None
    return GraphSummary(
        n_vertices=graph.n_vertices,
        n_edges=graph.n_edges,
        directed=graph.directed,
        min_degree=int(deg.min()) if deg.size else 0,
        max_degree=int(deg.max()) if deg.size else 0,
        mean_degree=float(deg.mean()) if deg.size else 0.0,
        alpha_mle=alpha,
    )
