"""Graph substrate: immutable CSR graphs, analysis, and file I/O."""

from repro.graph.csr import Graph
from repro.graph.properties import (
    GraphSummary,
    degree_distribution,
    fit_power_law_alpha,
    summarize,
)
from repro.graph.subgraph import (
    component_sizes,
    connected_component_labels,
    induced_subgraph,
    largest_component,
)

__all__ = [
    "Graph",
    "GraphSummary",
    "component_sizes",
    "connected_component_labels",
    "degree_distribution",
    "fit_power_law_alpha",
    "induced_subgraph",
    "largest_component",
    "summarize",
]
