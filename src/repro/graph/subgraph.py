"""Subgraph extraction: induced subgraphs and connected components.

Utilities a benchmark practitioner needs around the corpus: cutting the
giant component out of a synthetic graph (diameter and distance
measures are only meaningful there), sampling induced subgraphs, and
relabeling vertex ids compactly. All pure functions over the immutable
:class:`~repro.graph.csr.Graph`.
"""

from __future__ import annotations

import numpy as np

from repro._util.errors import ValidationError
from repro.graph.csr import Graph


def induced_subgraph(graph: Graph, vertices: np.ndarray) -> tuple[Graph, np.ndarray]:
    """The subgraph induced by ``vertices``, with compact relabeling.

    Returns
    -------
    (subgraph, mapping):
        ``mapping[i]`` is the original id of the subgraph's vertex
        ``i``. Edge weights follow their edges.
    """
    vertices = np.unique(np.asarray(vertices, dtype=np.int64))
    if vertices.size == 0:
        raise ValidationError("cannot induce a subgraph on no vertices")
    if vertices.min() < 0 or vertices.max() >= graph.n_vertices:
        raise ValidationError("vertex ids out of range")

    inverse = np.full(graph.n_vertices, -1, dtype=np.int64)
    inverse[vertices] = np.arange(vertices.size)

    src, dst = graph.edge_endpoints()
    keep = (inverse[src] >= 0) & (inverse[dst] >= 0)
    sub = Graph.from_edges(
        vertices.size,
        inverse[src[keep]],
        inverse[dst[keep]],
        weight=(graph.edge_weight[keep]
                if graph.edge_weight is not None else None),
        directed=graph.directed,
        dedup=False,
        drop_self_loops=False,
        meta={**graph.meta, "induced_from": graph.n_vertices},
    )
    return sub, vertices


def connected_component_labels(graph: Graph) -> np.ndarray:
    """Component label per vertex (undirected connectivity), via an
    iterative frontier BFS over the CSR — no recursion, no networkx."""
    n = graph.n_vertices
    labels = np.full(n, -1, dtype=np.int64)
    ptr, idx = graph.out_ptr, graph.out_dst
    if graph.directed:
        # Undirected connectivity over a directed graph needs both
        # orientations; merge in the in-adjacency.
        ptr2, idx2 = graph.in_ptr, graph.in_src
    next_label = 0
    for seed in range(n):
        if labels[seed] != -1:
            continue
        labels[seed] = next_label
        frontier = np.asarray([seed], dtype=np.int64)
        while frontier.size:
            from repro._util.segments import concat_ranges

            slots = concat_ranges(ptr[frontier], ptr[frontier + 1])
            nbrs = idx[slots]
            if graph.directed:
                slots2 = concat_ranges(ptr2[frontier], ptr2[frontier + 1])
                nbrs = np.concatenate([nbrs, idx2[slots2]])
            fresh = np.unique(nbrs[labels[nbrs] == -1])
            labels[fresh] = next_label
            frontier = fresh
        next_label += 1
    return labels


def largest_component(graph: Graph) -> tuple[Graph, np.ndarray]:
    """Extract the largest connected component (ties break by lowest
    label). Returns (subgraph, original ids)."""
    labels = connected_component_labels(graph)
    counts = np.bincount(labels)
    winner = int(np.argmax(counts))
    return induced_subgraph(graph, np.flatnonzero(labels == winner))


def component_sizes(graph: Graph) -> np.ndarray:
    """Sizes of all connected components, descending."""
    counts = np.bincount(connected_component_labels(graph))
    return np.sort(counts)[::-1]
