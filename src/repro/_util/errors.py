"""Exception hierarchy for the repro package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures without
catching programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (bad shape, dtype, range, ...)."""


class GraphConstructionError(ReproError):
    """Raised when an edge list / specification cannot form a valid graph."""


class ResourceLimitError(ReproError):
    """Raised when a computation would exceed a configured resource budget.

    This reproduces the paper's observation that 5 runs of Approximate
    Diameter at the largest graph size failed: AD's per-vertex
    probabilistic-counting state is the largest of any algorithm in the
    suite, and the engine enforces an explicit memory budget instead of
    dying with an allocation failure.
    """

    def __init__(self, message: str, *, required_bytes: int | None = None,
                 budget_bytes: int | None = None) -> None:
        super().__init__(message)
        self.required_bytes = required_bytes
        self.budget_bytes = budget_bytes


class ConvergenceError(ReproError):
    """Raised when an algorithm that must converge fails to do so."""


class NumericError(ReproError):
    """Raised by the run-health numeric guard on non-finite state.

    Iterative programs (Jacobi, LBP, SGD, ALS) can silently poison a
    run with NaN — every behavior counter downstream of a NaN apply is
    untrustworthy, yet the run would otherwise complete and enter the
    corpus. The engines therefore scan program state at a configurable
    cadence (see :mod:`repro.engine.health`) and raise this under the
    ``strict`` health policy; the corpus runner classifies it as the
    non-retryable ``"numeric"`` failure kind.
    """

    def __init__(self, message: str, *, iteration: int | None = None,
                 detail: str = "") -> None:
        super().__init__(message)
        self.iteration = iteration
        self.detail = detail


class NonConvergenceError(ConvergenceError):
    """Raised by a convergence watchdog on stall, oscillation, or divergence.

    ``condition`` names the detected pathology:

    - ``"stall"`` — frontier and program state recurred identically over
      the watchdog window; a deterministic run can only repeat itself
      until ``max_iterations``;
    - ``"oscillation"`` — the (frontier, state) signature is periodic
      with period ≥ 2 over the window;
    - ``"divergence"`` — the magnitude of program state grew past the
      configured divergence factor.

    Classified as the non-retryable ``"nonconvergence"`` failure kind.
    """

    def __init__(self, message: str, *, condition: str = "stall",
                 iteration: int | None = None, detail: str = "") -> None:
        super().__init__(message)
        self.condition = condition
        self.iteration = iteration
        self.detail = detail


class TraceInvariantError(ValidationError):
    """Raised when a completed trace violates a structural invariant.

    Every engine's output must satisfy the invariants enforced by
    :func:`repro.behavior.validate.validate_trace` (non-negative
    counters, bounded active sets, contiguous iteration indices, ...).
    A violation means the recorded observations are corrupt, so the
    corpus runner classifies it — like a failed numeric guard — as the
    non-retryable ``"numeric"`` failure kind.
    """


class RunTimeoutError(ReproError):
    """Raised when a run exceeds its configured wall-clock budget.

    The corpus runner enforces a per-run wall-clock limit so one
    pathological (algorithm, graph) cell cannot stall an unattended
    build; the timeout is delivered via ``SIGALRM`` (see
    :func:`repro._util.timing.wall_clock_limit`) and classified as the
    ``"timeout"`` failure kind.
    """

    def __init__(self, message: str, *, timeout_s: float | None = None) -> None:
        super().__init__(message)
        self.timeout_s = timeout_s


class CacheCorruptError(ReproError):
    """Raised when a result-store entry is corrupt and cannot be quarantined.

    Ordinarily the store moves unreadable entries into its quarantine
    directory and the runner silently re-executes the cell; this error
    surfaces only when that recovery itself fails (e.g. the quarantine
    move hits a permission error), and is classified as the
    ``"cache-corrupt"`` failure kind.
    """
