"""Vectorized segment operations over CSR-style index ranges.

These are the hot kernels behind the Gather phase of the GAS engine:
given the frontier's per-vertex adjacency ranges in a CSR structure, we
need (a) the concatenation of all adjacency slots (``concat_ranges``)
and (b) a per-vertex reduction over per-edge values
(``segmented_reduce``), both without Python-level loops.

``np.ufunc.reduceat`` has two sharp edges that this module papers over:

* an *empty* segment does not reduce to the identity — it returns the
  element at the segment's start index;
* a segment starting at ``len(values)`` raises.

``segmented_reduce`` therefore masks empty segments explicitly and fills
them with the reduction identity.
"""

from __future__ import annotations

import numpy as np

from repro._util.errors import ValidationError

#: Identity element per supported reduction, used to fill empty segments.
REDUCE_IDENTITY: dict[str, float] = {
    "sum": 0.0,
    "min": np.inf,
    "max": -np.inf,
    "or": 0,  # bitwise OR on integer payloads (Approximate Diameter)
}

_UFUNC: dict[str, np.ufunc] = {
    "sum": np.add,
    "min": np.minimum,
    "max": np.maximum,
    "or": np.bitwise_or,
}


def concat_ranges(starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
    """Concatenate integer ranges ``[starts[i], ends[i])`` into one index array.

    Equivalent to ``np.concatenate([np.arange(s, e) for s, e in
    zip(starts, ends)])`` but fully vectorized.

    Parameters
    ----------
    starts, ends:
        Integer arrays of equal length with ``ends >= starts`` elementwise.

    Returns
    -------
    np.ndarray
        int64 array of length ``(ends - starts).sum()``.
    """
    starts = np.asarray(starts, dtype=np.int64)
    ends = np.asarray(ends, dtype=np.int64)
    if starts.shape != ends.shape or starts.ndim != 1:
        raise ValidationError(
            f"starts/ends must be equal-length 1-D arrays, got shapes "
            f"{starts.shape} and {ends.shape}"
        )
    if np.any(ends < starts):
        raise ValidationError("every range must satisfy end >= start")
    counts = ends - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    # Within each segment we want starts[i] + (0, 1, ..., counts[i]-1).
    # np.arange(total) minus each segment's global offset gives the local
    # offset; adding the segment's start yields the absolute index.
    seg_of_slot = np.repeat(np.arange(starts.size, dtype=np.int64), counts)
    global_offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
    local = np.arange(total, dtype=np.int64) - global_offsets[seg_of_slot]
    return starts[seg_of_slot] + local


def segment_offsets(counts: np.ndarray) -> np.ndarray:
    """Return the start offset of each segment given per-segment counts.

    ``offsets[i] = counts[:i].sum()``; suitable as the ``indices``
    argument of ``np.ufunc.reduceat`` (modulo empty-segment handling,
    which :func:`segmented_reduce` performs).
    """
    counts = np.asarray(counts, dtype=np.int64)
    if counts.ndim != 1:
        raise ValidationError("counts must be 1-D")
    if np.any(counts < 0):
        raise ValidationError("counts must be non-negative")
    offsets = np.empty(counts.size, dtype=np.int64)
    if counts.size:
        offsets[0] = 0
        np.cumsum(counts[:-1], out=offsets[1:])
    return offsets


def segmented_reduce(
    values: np.ndarray,
    counts: np.ndarray,
    op: str = "sum",
    *,
    identity: float | None = None,
) -> np.ndarray:
    """Reduce consecutive segments of ``values`` with the given operation.

    ``values`` is the concatenation of segments whose lengths are given
    by ``counts``. Supports 1-D values (result shape ``(len(counts),)``)
    and 2-D values of shape ``(total, width)`` (result
    ``(len(counts), width)``, reduced along axis 0 per segment).

    Empty segments reduce to ``identity`` (default: the natural identity
    of ``op`` from :data:`REDUCE_IDENTITY`).

    Parameters
    ----------
    values:
        Array of shape ``(counts.sum(),)`` or ``(counts.sum(), width)``.
    counts:
        Non-negative int array; segment lengths.
    op:
        One of ``"sum"``, ``"min"``, ``"max"``.
    identity:
        Fill value for empty segments; defaults per ``op``.
    """
    if op not in _UFUNC:
        raise ValidationError(f"unsupported reduction {op!r}; "
                              f"expected one of {sorted(_UFUNC)}")
    counts = np.asarray(counts, dtype=np.int64)
    values = np.asarray(values)
    total = int(counts.sum())
    if values.shape[0] != total:
        raise ValidationError(
            f"values has {values.shape[0]} rows but counts sum to {total}"
        )
    fill = REDUCE_IDENTITY[op] if identity is None else identity
    out_shape = (counts.size,) if values.ndim == 1 else (counts.size, values.shape[1])
    dtype = np.result_type(values.dtype, np.float64) if values.dtype.kind == "f" else values.dtype
    out = np.full(out_shape, fill, dtype=dtype)
    if counts.size == 0 or total == 0:
        return out

    nonempty = counts > 0
    if np.all(nonempty):
        offsets = segment_offsets(counts)
        out[:] = _UFUNC[op].reduceat(values, offsets, axis=0)
        return out

    # Reduce only the non-empty segments; empty ones keep the identity.
    ne_counts = counts[nonempty]
    offsets = segment_offsets(ne_counts)
    reduced = _UFUNC[op].reduceat(values, offsets, axis=0)
    out[nonempty] = reduced
    return out
