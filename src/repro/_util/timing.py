"""Timing helpers: the engine's apply-phase stopwatch and the corpus
runner's per-run wall-clock limit."""

from __future__ import annotations

import contextlib
import signal
import threading
import time
from typing import Iterator

from repro._util.errors import RunTimeoutError


@contextlib.contextmanager
def wall_clock_limit(seconds: "float | None") -> Iterator[None]:
    """Raise :class:`RunTimeoutError` if the body runs longer than
    ``seconds`` of wall-clock time.

    Enforcement uses ``SIGALRM``/``setitimer``, which interrupts pure
    numpy compute loops without any cooperation from the running code.
    That mechanism only exists on Unix and only works in a process's
    main thread — exactly where corpus runs execute, both inline and in
    :class:`~concurrent.futures.ProcessPoolExecutor` workers. Anywhere
    else (Windows, a non-main thread) the limit degrades to a no-op
    rather than failing the run.

    ``seconds`` of ``None`` or ``<= 0`` disables the limit.
    """
    if seconds is None or seconds <= 0:
        yield
        return
    if (not hasattr(signal, "SIGALRM")
            or threading.current_thread() is not threading.main_thread()):
        yield
        return

    def _on_alarm(signum, frame):  # pragma: no cover - signal context
        raise RunTimeoutError(
            f"run exceeded its {seconds:g}s wall-clock limit",
            timeout_s=seconds,
        )

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


class Stopwatch:
    """Accumulating stopwatch around ``time.perf_counter``.

    Used to attribute CPU time to the Apply phase (the paper's WORK
    metric in ``measured`` mode). Supports use as a context manager::

        sw = Stopwatch()
        with sw:
            do_apply()
        print(sw.total)
    """

    __slots__ = ("total", "_started_at")

    def __init__(self) -> None:
        self.total: float = 0.0
        self._started_at: float | None = None

    def start(self) -> None:
        if self._started_at is not None:
            raise RuntimeError("Stopwatch already running")
        self._started_at = time.perf_counter()

    def stop(self) -> float:
        """Stop and return the elapsed time of this interval."""
        if self._started_at is None:
            raise RuntimeError("Stopwatch not running")
        elapsed = time.perf_counter() - self._started_at
        self._started_at = None
        self.total += elapsed
        return elapsed

    def reset(self) -> None:
        self.total = 0.0
        self._started_at = None

    def __enter__(self) -> "Stopwatch":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()
