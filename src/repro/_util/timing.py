"""Timing helpers: the engine's apply-phase stopwatch, the corpus
runner's per-run wall-clock limit, and the engines' cooperative
deadline fallback."""

from __future__ import annotations

import contextlib
import signal
import threading
import time
import warnings
from dataclasses import dataclass
from typing import Iterator

from repro._util.errors import RunTimeoutError

#: Set once the degraded-enforcement warning has been issued, so a
#: corpus of hundreds of runs warns exactly once per process.
_WARNED_UNENFORCEABLE = False


@dataclass
class TimeoutEnforcement:
    """What :func:`wall_clock_limit` could actually deliver.

    ``enforced`` is False when a limit was requested but ``SIGALRM``
    was unavailable (non-main thread, non-Unix platform); callers
    record that in run metadata (``timeout_enforced``) so a corpus
    built without hard timeouts is distinguishable from one with them.

    ``phase`` is mutable: the body under the limit updates it as it
    moves through its phases (``materialize``, ``engine``), and the
    timeout that finally fires names the phase it interrupted — a
    pathological generator is then attributable at a glance instead of
    masquerading as a slow engine run.
    """

    requested_s: "float | None"
    enforced: bool
    phase: str = "run"


class Deadline:
    """Cooperative wall-clock deadline checked inside engine loops.

    Where ``SIGALRM`` cannot interrupt a run (non-main threads,
    platforms without the signal), the engines fall back to calling
    :meth:`check` once per iteration, so a timeout still bites —
    at iteration granularity instead of instruction granularity.
    A budget of None disables the deadline entirely.
    """

    __slots__ = ("budget_s", "_expires_at")

    def __init__(self, budget_s: "float | None") -> None:
        self.budget_s = budget_s
        self._expires_at = (None if budget_s is None or budget_s <= 0
                            else time.perf_counter() + budget_s)

    def remaining(self) -> "float | None":
        """Seconds left on the budget (may be negative), or None when
        the deadline is disabled. Lets a caller hand the *unspent*
        portion of one budget to a later phase instead of granting the
        full budget twice."""
        if self._expires_at is None:
            return None
        return self._expires_at - time.perf_counter()

    def check(self, *, phase: "str | None" = None) -> None:
        """Raise :class:`RunTimeoutError` once the budget is spent;
        ``phase`` names the phase being checked in the failure detail."""
        if (self._expires_at is not None
                and time.perf_counter() > self._expires_at):
            where = f" (phase: {phase})" if phase else ""
            raise RunTimeoutError(
                f"run exceeded its {self.budget_s:g}s wall-clock limit "
                f"(cooperative per-iteration check){where}",
                timeout_s=self.budget_s,
            )


@contextlib.contextmanager
def wall_clock_limit(seconds: "float | None") -> Iterator[TimeoutEnforcement]:
    """Raise :class:`RunTimeoutError` if the body runs longer than
    ``seconds`` of wall-clock time.

    Enforcement uses ``SIGALRM``/``setitimer``, which interrupts pure
    numpy compute loops without any cooperation from the running code.
    That mechanism only exists on Unix and only works in a process's
    main thread — exactly where corpus runs execute, both inline and in
    :class:`~concurrent.futures.ProcessPoolExecutor` workers. Anywhere
    else (Windows, a non-main thread) hard enforcement is impossible:
    the context warns once per process, yields a
    :class:`TimeoutEnforcement` with ``enforced=False`` so callers can
    record the degradation, and relies on the engines' cooperative
    :class:`Deadline` checks as the fallback.

    ``seconds`` of ``None`` or ``<= 0`` disables the limit.
    """
    global _WARNED_UNENFORCEABLE
    if seconds is None or seconds <= 0:
        yield TimeoutEnforcement(requested_s=seconds, enforced=False)
        return
    if (not hasattr(signal, "SIGALRM")
            or threading.current_thread() is not threading.main_thread()):
        if not _WARNED_UNENFORCEABLE:
            _WARNED_UNENFORCEABLE = True
            warnings.warn(
                "wall-clock limits cannot be signal-enforced here "
                "(SIGALRM unavailable or non-main thread); relying on "
                "the engines' cooperative per-iteration deadline checks",
                RuntimeWarning,
                stacklevel=3,
            )
        yield TimeoutEnforcement(requested_s=seconds, enforced=False)
        return

    enforcement = TimeoutEnforcement(requested_s=seconds, enforced=True)

    def _on_alarm(signum, frame):  # pragma: no cover - signal context
        raise RunTimeoutError(
            f"run exceeded its {seconds:g}s wall-clock limit "
            f"(phase: {enforcement.phase})",
            timeout_s=seconds,
        )

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield enforcement
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


class Stopwatch:
    """Accumulating stopwatch around ``time.perf_counter``.

    Used to attribute CPU time to the Apply phase (the paper's WORK
    metric in ``measured`` mode). Supports use as a context manager::

        sw = Stopwatch()
        with sw:
            do_apply()
        print(sw.total)
    """

    __slots__ = ("total", "_started_at")

    def __init__(self) -> None:
        self.total: float = 0.0
        self._started_at: float | None = None

    def start(self) -> None:
        if self._started_at is not None:
            raise RuntimeError("Stopwatch already running")
        self._started_at = time.perf_counter()

    def stop(self) -> float:
        """Stop and return the elapsed time of this interval."""
        if self._started_at is None:
            raise RuntimeError("Stopwatch not running")
        elapsed = time.perf_counter() - self._started_at
        self._started_at = None
        self.total += elapsed
        return elapsed

    def reset(self) -> None:
        self.total = 0.0
        self._started_at = None

    def __enter__(self) -> "Stopwatch":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()
