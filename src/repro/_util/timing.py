"""Small timing helper used by the engine's measured work model."""

from __future__ import annotations

import time


class Stopwatch:
    """Accumulating stopwatch around ``time.perf_counter``.

    Used to attribute CPU time to the Apply phase (the paper's WORK
    metric in ``measured`` mode). Supports use as a context manager::

        sw = Stopwatch()
        with sw:
            do_apply()
        print(sw.total)
    """

    __slots__ = ("total", "_started_at")

    def __init__(self) -> None:
        self.total: float = 0.0
        self._started_at: float | None = None

    def start(self) -> None:
        if self._started_at is not None:
            raise RuntimeError("Stopwatch already running")
        self._started_at = time.perf_counter()

    def stop(self) -> float:
        """Stop and return the elapsed time of this interval."""
        if self._started_at is None:
            raise RuntimeError("Stopwatch not running")
        elapsed = time.perf_counter() - self._started_at
        self._started_at = None
        self.total += elapsed
        return elapsed

    def reset(self) -> None:
        self.total = 0.0
        self._started_at = None

    def __enter__(self) -> "Stopwatch":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()
