"""Internal utilities shared across repro subpackages."""

from repro._util.errors import (
    ConvergenceError,
    GraphConstructionError,
    NonConvergenceError,
    NumericError,
    ReproError,
    ResourceLimitError,
    TraceInvariantError,
    ValidationError,
)
from repro._util.segments import (
    REDUCE_IDENTITY,
    concat_ranges,
    segment_offsets,
    segmented_reduce,
)
from repro._util.timing import Stopwatch

__all__ = [
    "REDUCE_IDENTITY",
    "ConvergenceError",
    "GraphConstructionError",
    "NonConvergenceError",
    "NumericError",
    "ReproError",
    "ResourceLimitError",
    "Stopwatch",
    "TraceInvariantError",
    "ValidationError",
    "concat_ranges",
    "segment_offsets",
    "segmented_reduce",
]
