"""The paper's five behavior metrics (Section 3.4).

From a :class:`~repro.behavior.trace.RunTrace` we derive:

1. **active fraction** — per-iteration series ``|active| / |V|``;
2. **UPDT** — average vertex updates per iteration;
3. **WORK** — average apply cost per iteration;
4. **EREAD** — average edge reads per iteration;
5. **MSG** — average messages per iteration.

UPDT/WORK/EREAD/MSG are divided by the number of edges ("to capture the
per-edge behavior") — that is what :class:`BehaviorMetrics` holds. The
final normalization "to make it less than 1.0" is corpus-relative and
lives in :func:`repro.behavior.space.normalize_corpus`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util.errors import ValidationError
from repro.behavior.trace import RunTrace

#: The four dimensions of the behavior vector (Equation 2), in order.
METRIC_NAMES: tuple[str, ...] = ("updt", "work", "eread", "msg")

_SERIES_FOR_METRIC = {
    "updt": "updates",
    "work": "work",
    "eread": "edge_reads",
    "msg": "messages",
}


@dataclass(frozen=True)
class BehaviorMetrics:
    """Per-edge-normalized mean metrics of one run (pre corpus scaling)."""

    updt: float
    work: float
    eread: float
    msg: float
    active_fraction_mean: float
    n_iterations: int

    def as_array(self) -> np.ndarray:
        """The 4-D raw behavior values in :data:`METRIC_NAMES` order."""
        return np.asarray([self.updt, self.work, self.eread, self.msg])

    def __getitem__(self, name: str) -> float:
        if name not in METRIC_NAMES:
            raise ValidationError(f"unknown metric {name!r}; "
                                  f"expected one of {METRIC_NAMES}")
        return float(getattr(self, name))


def compute_metrics(trace: RunTrace) -> BehaviorMetrics:
    """Compute the per-edge mean behavior metrics of a run."""
    if trace.n_edges <= 0:
        raise ValidationError("trace has no edges; metrics are undefined")
    inv_m = 1.0 / trace.n_edges
    values = {
        name: trace.mean(series) * inv_m
        for name, series in _SERIES_FOR_METRIC.items()
    }
    af = trace.active_fraction()
    return BehaviorMetrics(
        updt=values["updt"],
        work=values["work"],
        eread=values["eread"],
        msg=values["msg"],
        active_fraction_mean=float(af.mean()) if af.size else 0.0,
        n_iterations=trace.n_iterations,
    )


def active_fraction_series(trace: RunTrace) -> np.ndarray:
    """Per-iteration active fraction (paper Figures 1, 5, 7, 11)."""
    return trace.active_fraction()


def resample_series(series: np.ndarray, n_points: int) -> np.ndarray:
    """Resample a per-iteration series onto ``n_points`` lifecycle
    positions (0% .. 100% of the run), for overlaying runs with very
    different iteration counts as the paper's active-fraction figures do."""
    if n_points < 2:
        raise ValidationError("n_points must be >= 2")
    series = np.asarray(series, dtype=np.float64)
    if series.size == 0:
        return np.zeros(n_points)
    if series.size == 1:
        return np.full(n_points, series[0])
    x_old = np.linspace(0.0, 1.0, series.size)
    x_new = np.linspace(0.0, 1.0, n_points)
    return np.interp(x_new, x_old, series)
