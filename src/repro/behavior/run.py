"""High-level run façade: ``run_computation("pagerank", spec)``.

A *graph computation* ``GC = <algorithm, graph size, degree
distribution>`` (paper Section 5.1) is represented by
:class:`GraphComputation`; :func:`run_computation` materializes the
graph, instantiates the vertex program with registry defaults, builds
the engine with profile-appropriate options, and returns the
:class:`~repro.behavior.trace.RunTrace`.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any

from repro._util.errors import ValidationError
from repro._util.timing import Deadline, wall_clock_limit
from repro.algorithms.registry import create, info
from repro.behavior.trace import RunTrace
from repro.engine.engine import EngineOptions, SynchronousEngine
from repro.experiments.config import GraphSpec
from repro.generators.problem import ProblemInstance


@dataclass(frozen=True)
class GraphComputation:
    """A planned graph computation: algorithm + input spec.

    ``params`` override the algorithm's registry defaults; ``options``
    override engine options (max_iterations, work_model, ...).
    """

    algorithm: str
    spec: GraphSpec
    params: tuple[tuple[str, Any], ...] = ()
    options: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def make(cls, algorithm: str, spec: GraphSpec,
             params: dict[str, Any] | None = None,
             options: dict[str, Any] | None = None) -> "GraphComputation":
        return cls(
            algorithm=algorithm,
            spec=spec,
            params=tuple(sorted((params or {}).items())),
            options=tuple(sorted((options or {}).items())),
        )

    @property
    def label(self) -> str:
        return f"{self.algorithm}@{self.spec.label}"

    def cache_key(self) -> str:
        extras = "".join(f"-{k}={v}" for k, v in self.params + self.options)
        return f"{self.algorithm}-{self.spec.cache_key()}{extras}"

    def run(self) -> RunTrace:
        return run_computation(self.algorithm, self.spec,
                               params=dict(self.params),
                               options=dict(self.options))


def build_engine_options(
    algorithm: str,
    overrides: dict[str, Any] | None = None,
) -> EngineOptions:
    """Merge registry per-algorithm defaults with caller overrides."""
    record = info(algorithm)
    merged: dict[str, Any] = dict(record.default_options)
    merged.update(overrides or {})
    return EngineOptions(**merged)


#: Fault-injection hooks for resilience testing. When the variable is
#: set and its value is a substring of ``<algorithm>-<spec cache key>``,
#: the matching run misbehaves *inside* :func:`run_computation` — the
#: same place a real engine fault would surface — so the corpus
#: runner's crash isolation, retries, and timeouts can be exercised
#: end-to-end (including across process-pool workers, which inherit the
#: environment).
INJECT_CRASH_ENV = "REPRO_INJECT_CRASH"
#: Value format: ``<substring>:<seconds>`` — the matching run sleeps
#: that long before executing (drives the wall-clock timeout path).
INJECT_SLEEP_ENV = "REPRO_INJECT_SLEEP"
#: Value format: ``<substring>:<kind>@<iteration>`` — the matching run
#: gets an *engine-level* fault plan (``nan``, ``diverge`` or
#: ``counter``, see :class:`~repro.engine.health.FaultPlan`) injected
#: into its engine options, so the health guards and the trace
#: validator can be exercised on otherwise-correct algorithms.
INJECT_ENGINE_FAULT_ENV = "REPRO_INJECT_ENGINE_FAULT"


def _maybe_inject_fault(run_key: str) -> None:
    target = os.environ.get(INJECT_CRASH_ENV)
    if target and target in run_key:
        raise RuntimeError(f"injected crash for {run_key}")
    sleep_spec = os.environ.get(INJECT_SLEEP_ENV)
    if sleep_spec and ":" in sleep_spec:
        substring, _, seconds = sleep_spec.rpartition(":")
        if substring and substring in run_key:
            time.sleep(float(seconds))


def _engine_fault_for(run_key: str) -> "str | None":
    """Return the ``kind@iteration`` fault plan targeted at this run."""
    spec = os.environ.get(INJECT_ENGINE_FAULT_ENV)
    if spec and ":" in spec:
        substring, _, plan = spec.rpartition(":")
        if substring and substring in run_key:
            return plan
    return None


def run_computation(
    algorithm: str,
    spec_or_problem: GraphSpec | ProblemInstance,
    *,
    params: dict[str, Any] | None = None,
    options: dict[str, Any] | None = None,
    timeout_s: "float | None" = None,
) -> RunTrace:
    """Run one algorithm on one input and return its trace.

    Parameters
    ----------
    algorithm:
        Registry name (``"pagerank"``, ``"als"``, ...).
    spec_or_problem:
        Either a :class:`GraphSpec` (generated on demand) or an
        already-materialized :class:`ProblemInstance`.
    params:
        Algorithm parameter overrides (merged over registry defaults).
    options:
        Engine option overrides (merged over registry defaults), e.g.
        ``{"mode": "reference", "work_model": "measured"}``.
    timeout_s:
        Wall-clock limit covering graph materialization plus engine
        execution; None (default) disables it.

    Raises
    ------
    ValidationError
        If the algorithm's domain does not match the input's domain.
    ResourceLimitError
        If the run exceeds the engine memory budget (AD at the largest
        size under the paper profiles).
    RunTimeoutError
        If the run exceeds ``timeout_s`` of wall-clock time.
    """
    from repro.obs.telemetry import get_telemetry

    record = info(algorithm)
    merged_options = dict(options or {})
    tel = get_telemetry()
    with wall_clock_limit(timeout_s) as enforcement:
        # The budget clock starts *here*, before graph resolution:
        # without SIGALRM the cooperative fallback deadline must also
        # cover materialization, or a pathological generator stalls the
        # worker with no timeout at all. The fallback hands only the
        # budget left after materialize to the engine's per-iteration
        # checks, so the two phases share one limit instead of each
        # getting the full grant.
        fallback = (Deadline(timeout_s)
                    if timeout_s and not enforcement.enforced else None)
        enforcement.phase = "materialize"
        if isinstance(spec_or_problem, ProblemInstance):
            problem = spec_or_problem
            run_key = algorithm
            graph_source = "direct"
            materialize_s = 0.0
        elif isinstance(spec_or_problem, GraphSpec):
            run_key = f"{algorithm}-{spec_or_problem.cache_key()}"
            _maybe_inject_fault(run_key)
            # Resolution order: shared-memory graph plane, per-process
            # LRU cache, then generate. All three happen inside the
            # wall-clock limit, so the timeout covers a (cheap) attach
            # the same way it covered a (slow) regeneration.
            from repro.experiments.graph_cache import materialize_problem

            with tel.span("materialize") as mat_span:
                problem, graph_source = materialize_problem(spec_or_problem)
                mat_span.set(source=graph_source)
            materialize_s = mat_span.seconds
        else:
            raise ValidationError(
                f"expected GraphSpec or ProblemInstance, got "
                f"{type(spec_or_problem).__name__}"
            )
        if fallback is not None:
            fallback.check(phase="materialize")
        enforcement.phase = "engine"
        if problem.domain != record.domain:
            raise ValidationError(
                f"algorithm {algorithm!r} consumes domain {record.domain!r} "
                f"inputs but got {problem.domain!r}"
            )
        fault = _engine_fault_for(run_key)
        if fault is not None and "inject_fault" not in merged_options:
            merged_options["inject_fault"] = fault
        if (fallback is not None
                and "wall_clock_budget_s" not in merged_options):
            # SIGALRM cannot bite here; fall back to the engine's
            # cooperative per-iteration deadline, granting it only the
            # budget materialize left unspent.
            remaining = fallback.remaining()
            if remaining is not None:
                merged_options["wall_clock_budget_s"] = max(remaining, 1e-6)
        program = create(algorithm, **(params or {}))
        engine = SynchronousEngine(
            build_engine_options(algorithm, merged_options))
        with tel.span("engine_run", algorithm=algorithm) as run_span:
            trace = engine.run(program, problem)
            run_span.set(engine=trace.engine)
        engine_s = run_span.seconds
        trace.meta["materialize_s"] = materialize_s
        trace.meta["engine_s"] = engine_s
        trace.meta["graph_source"] = graph_source
        trace.meta["timeout_requested_s"] = timeout_s
        trace.meta["timeout_enforced"] = enforcement.enforced
        if tel.enabled:
            tel.inc("runs_total", algorithm=algorithm)
            tel.record_peak_rss()
        return trace
