"""Run traces: the per-iteration observation record of one graph computation.

A :class:`RunTrace` is the engine's output and the input to everything
in :mod:`repro.behavior` and :mod:`repro.ensemble`. It is pure data —
JSON-serializable so the experiment harness can cache the 215-run
corpus on disk.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro._util.errors import ValidationError


@dataclass(frozen=True)
class IterationRecord:
    """Counters of one synchronous GAS iteration (see Section 3.4)."""

    iteration: int
    active: int
    updates: int
    edge_reads: int
    messages: int
    work: float


@dataclass
class RunTrace:
    """Complete record of one graph computation ``GC = <algorithm, graph>``.

    Attributes
    ----------
    algorithm:
        Registry name of the vertex program.
    graph_params:
        Generator parameters of the input (nedges, alpha, nrows, seed).
    domain:
        Application domain of the input.
    n_vertices, n_edges:
        Size of the input graph (logical edges).
    iterations:
        One :class:`IterationRecord` per GAS iteration, in order.
    converged:
        True if the run reached its convergence condition (as opposed to
        the iteration cap or an error).
    stop_reason:
        ``"converged"``, ``"frontier-empty"``, ``"max-iterations"``, ...
    result:
        Algorithm-specific output summary.
    work_model:
        ``"measured"`` or ``"unit"`` — how WORK was produced.
    wall_time_s:
        Total wall-clock time of the run.
    engine:
        Which engine produced the trace (``"synchronous"``,
        ``"asynchronous"``, ``"edge-centric"``, ``"graph-centric"``);
        trace invariants are engine-specific (see
        :func:`repro.behavior.validate.validate_trace`).
    degraded:
        True if a convergence watchdog or numeric guard stopped the run
        early under the ``degrade`` health policy; the trace is then a
        flagged *partial* observation (and is excluded from ensemble
        search).
    health:
        The health verdict for degraded runs — ``condition``
        (stall/oscillation/divergence/numeric), ``iteration``,
        ``detail``, ``policy``. Empty for healthy runs.
    meta:
        Harness metadata about how the run was executed (e.g.
        ``timeout_enforced``); never part of behavior analysis.
    """

    algorithm: str
    graph_params: dict[str, Any]
    domain: str
    n_vertices: int
    n_edges: int
    iterations: list[IterationRecord] = field(default_factory=list)
    converged: bool = False
    stop_reason: str = ""
    result: dict[str, Any] = field(default_factory=dict)
    work_model: str = "unit"
    wall_time_s: float = 0.0
    engine: str = "synchronous"
    degraded: bool = False
    health: dict[str, Any] = field(default_factory=dict)
    meta: dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Derived series
    # ------------------------------------------------------------------
    @property
    def n_iterations(self) -> int:
        return len(self.iterations)

    def series(self, name: str) -> np.ndarray:
        """Per-iteration series of one counter (``active``, ``updates``,
        ``edge_reads``, ``messages``, ``work``)."""
        if not self.iterations:
            return np.empty(0)
        try:
            return np.asarray([getattr(rec, name) for rec in self.iterations],
                              dtype=np.float64)
        except AttributeError as exc:
            raise ValidationError(f"unknown counter series {name!r}") from exc

    def active_fraction(self) -> np.ndarray:
        """Active fraction per iteration (paper metric 1)."""
        if self.n_vertices == 0:
            return np.empty(0)
        return self.series("active") / self.n_vertices

    def mean(self, name: str) -> float:
        """Mean of a counter over iterations (0.0 for empty runs)."""
        s = self.series(name)
        return float(s.mean()) if s.size else 0.0

    @property
    def label(self) -> str:
        """Short identity like ``pagerank@ga(nedges=1e+04, α=2.5)``."""
        bits = []
        for key in ("nedges", "alpha", "nrows"):
            if key in self.graph_params:
                value = self.graph_params[key]
                if key == "alpha":
                    bits.append(f"α={value}")
                else:
                    bits.append(f"{key}={value:g}")
        return f"{self.algorithm}@{self.domain}({', '.join(bits)})"

    def summary(self) -> str:
        """Human-readable one-paragraph summary of the run."""
        lines = [
            f"{self.label}: |V|={self.n_vertices:,} |E|={self.n_edges:,}",
            f"  iterations={self.n_iterations} stop={self.stop_reason} "
            f"converged={self.converged}",
            f"  mean/iter: active={self.mean('active'):.1f} "
            f"updates={self.mean('updates'):.1f} "
            f"edge_reads={self.mean('edge_reads'):.1f} "
            f"messages={self.mean('messages'):.1f} "
            f"work={self.mean('work'):.3g} ({self.work_model})",
        ]
        if self.degraded:
            lines.append(
                f"  DEGRADED: {self.health.get('condition', '?')} at "
                f"iteration {self.health.get('iteration', '?')} — "
                f"{self.health.get('detail', '')}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        data = asdict(self)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "RunTrace":
        data = dict(data)
        data["iterations"] = [IterationRecord(**rec)
                              for rec in data.get("iterations", [])]
        return cls(**data)

    def to_json(self, path: str | Path | None = None) -> str:
        text = json.dumps(self.to_dict(), indent=None, sort_keys=True)
        if path is not None:
            Path(path).write_text(text, encoding="utf-8")
        return text

    @classmethod
    def from_json(cls, source: str | Path) -> "RunTrace":
        """Load from a JSON string or a path to a JSON file."""
        if isinstance(source, Path) or (
            isinstance(source, str) and not source.lstrip().startswith("{")
        ):
            text = Path(source).read_text(encoding="utf-8")
        else:
            text = source
        return cls.from_dict(json.loads(text))
