"""Behavior characterization: run traces, the five metrics, and the
4-D behavior vector space of paper Section 5.1."""

from repro.behavior.metrics import (
    METRIC_NAMES,
    BehaviorMetrics,
    active_fraction_series,
    compute_metrics,
)
from repro.behavior.diff import TraceDiff, diff_traces
from repro.behavior.run import GraphComputation, run_computation
from repro.behavior.shapes import ActivityShape, classify_activity_shape, shape_profile
from repro.behavior.space import BehaviorSpace, BehaviorVector, normalize_corpus
from repro.behavior.temporal import (
    TemporalBehavior,
    compute_temporal_behavior,
    normalize_temporal_corpus,
    temporal_corpus,
)
from repro.behavior.trace import IterationRecord, RunTrace
from repro.behavior.validate import ENGINE_NAMES, validate_trace

__all__ = [
    "ENGINE_NAMES",
    "validate_trace",
    "ActivityShape",
    "TemporalBehavior",
    "TraceDiff",
    "diff_traces",
    "classify_activity_shape",
    "compute_temporal_behavior",
    "normalize_temporal_corpus",
    "shape_profile",
    "temporal_corpus",
    "METRIC_NAMES",
    "BehaviorMetrics",
    "BehaviorSpace",
    "BehaviorVector",
    "GraphComputation",
    "IterationRecord",
    "RunTrace",
    "active_fraction_series",
    "compute_metrics",
    "normalize_corpus",
    "run_computation",
]
