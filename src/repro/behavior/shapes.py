"""Active-fraction shape classification.

Section 4 of the paper describes algorithms by the *shape* of their
active-fraction curves: AD and KM "always activate all vertices", LBP
shows "a sharp drop", PageRank "gradually decreases", SSSP "grows
rapidly" from one vertex, and KC bursts as peeling phases restart. This
module turns those descriptions into a small, testable taxonomy so
shape claims in the benchmarks (and user analyses) are computed, not
eyeballed.
"""

from __future__ import annotations

import enum

import numpy as np

from repro._util.errors import ValidationError
from repro.behavior.trace import RunTrace


class ActivityShape(enum.Enum):
    """Taxonomy of active-fraction lifecycles."""

    #: Active fraction pinned at (almost) 1.0 throughout — AD, KM,
    #: NMF, SGD, SVD, Jacobi, DD.
    ALWAYS_ACTIVE = "always-active"
    #: Starts full and collapses within the first quarter — LBP.
    SHARP_DROP = "sharp-drop"
    #: Starts full and declines gradually — PageRank, CC.
    GRADUAL_DECAY = "gradual-decay"
    #: Starts near zero, peaks, then drains — SSSP frontier growth.
    GROW_PEAK_DRAIN = "grow-peak-drain"
    #: Repeated activity bursts (non-monotone after the peak) — KC's
    #: peeling phases.
    BURSTY = "bursty"
    #: Anything else (very short or irregular runs).
    IRREGULAR = "irregular"


#: Tolerance for "fully active".
_FULL = 0.995
#: Relative prominence a re-activation burst needs to count.
_BURST_PROMINENCE = 0.05


def classify_activity_shape(trace_or_series: "RunTrace | np.ndarray") -> ActivityShape:
    """Classify an active-fraction lifecycle into the taxonomy.

    Accepts a :class:`~repro.behavior.trace.RunTrace` or a raw
    active-fraction series.
    """
    if isinstance(trace_or_series, RunTrace):
        series = trace_or_series.active_fraction()
    else:
        series = np.asarray(trace_or_series, dtype=np.float64)
    if series.ndim != 1 or series.size == 0:
        raise ValidationError("need a non-empty 1-D active-fraction series")
    if series.min() < -1e-9 or series.max() > 1 + 1e-9:
        raise ValidationError("active fractions must lie in [0, 1]")

    if np.all(series >= _FULL):
        return ActivityShape.ALWAYS_ACTIVE
    if series.size < 3:
        return ActivityShape.IRREGULAR

    peak_idx = int(np.argmax(series))
    peak = series[peak_idx]

    # Count re-activation bursts: local rises after the global peak.
    diffs = np.diff(series)
    bursts = int(np.sum(diffs[peak_idx:] > _BURST_PROMINENCE))

    starts_full = series[0] >= _FULL
    if starts_full:
        if bursts >= 2:
            return ActivityShape.BURSTY
        quarter = max(1, series.size // 4)
        if series[quarter] <= 0.5:
            return ActivityShape.SHARP_DROP
        if series[-1] < series[0]:
            return ActivityShape.GRADUAL_DECAY
        return ActivityShape.IRREGULAR

    if series[0] < 0.5 * peak and peak_idx > 0:
        if bursts >= 2:
            return ActivityShape.BURSTY
        return ActivityShape.GROW_PEAK_DRAIN
    return ActivityShape.IRREGULAR


def shape_profile(traces: "list[RunTrace]") -> dict[str, ActivityShape]:
    """Dominant shape per algorithm over a collection of traces.

    Ties break toward the most frequent shape; the result maps
    algorithm name → its characteristic shape, the paper's per-
    algorithm signature.
    """
    from collections import Counter, defaultdict

    by_alg: dict[str, Counter] = defaultdict(Counter)
    for trace in traces:
        by_alg[trace.algorithm][classify_activity_shape(trace)] += 1
    return {alg: counts.most_common(1)[0][0]
            for alg, counts in sorted(by_alg.items())}
