"""Temporal behavior: per-iteration variability, not just means.

Paper Section 5.1: "Behavior(GCi) has two more dimensions of variation
— the temporal extent of the computation (iterations), and the spatial
extent of the graph (vertices). As in Section 4, we will use average
metric values per iteration over these sample spaces to characterize
typical values *and variability*."

The 4-D space of Equation 2 keeps only the averages. This module adds
the variability half: each metric's coefficient of variation (CV)
across iterations, yielding an extended 8-D behavior vector

``<UPDT, WORK, EREAD, MSG, cv(UPDT), cv(WORK), cv(EREAD), cv(MSG)>``.

Two runs with identical averages can have wildly different temporal
texture — a steady always-active algorithm vs a bursty phased one —
and the extended space separates them. The ablation benchmark
(`benchmarks/test_ablation_temporal.py`) quantifies how much the extra
dimensions change ensemble design.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro._util.errors import ValidationError
from repro.behavior.metrics import _SERIES_FOR_METRIC, METRIC_NAMES
from repro.behavior.trace import RunTrace

#: Dimension names of the extended space, in order.
TEMPORAL_METRIC_NAMES: tuple[str, ...] = METRIC_NAMES + tuple(
    f"cv_{m}" for m in METRIC_NAMES)


@dataclass(frozen=True)
class TemporalBehavior:
    """Mean and coefficient of variation per metric for one run."""

    means: tuple[float, float, float, float]
    cvs: tuple[float, float, float, float]
    n_iterations: int

    def as_array(self) -> np.ndarray:
        return np.asarray(self.means + self.cvs)

    def __getitem__(self, name: str) -> float:
        if name not in TEMPORAL_METRIC_NAMES:
            raise ValidationError(f"unknown temporal metric {name!r}")
        idx = TEMPORAL_METRIC_NAMES.index(name)
        return float(self.as_array()[idx])


def compute_temporal_behavior(trace: RunTrace) -> TemporalBehavior:
    """Per-edge means plus per-iteration CVs of the four metrics.

    CV is std/mean over iterations (0 for constant series and for
    all-zero series); it is scale-free, so no further normalization is
    needed for the CV half of the extended vector.
    """
    if trace.n_edges <= 0:
        raise ValidationError("trace has no edges; metrics are undefined")
    if trace.n_iterations == 0:
        raise ValidationError("trace has no iterations")
    means = []
    cvs = []
    inv_m = 1.0 / trace.n_edges
    for name in METRIC_NAMES:
        series = trace.series(_SERIES_FOR_METRIC[name]) * inv_m
        mean = float(series.mean())
        means.append(mean)
        cvs.append(float(series.std() / mean) if mean > 0 else 0.0)
    return TemporalBehavior(means=tuple(means), cvs=tuple(cvs),
                            n_iterations=trace.n_iterations)


def normalize_temporal_corpus(
    behaviors: Sequence[TemporalBehavior],
    *,
    tags: "Sequence[Any] | None" = None,
    cv_cap: float = 4.0,
):
    """Project temporal behaviors into ``[0,1]^8``.

    Means are max-normalized per dimension (as in the 4-D space); CVs
    are clipped at ``cv_cap`` and scaled by it (CV is already
    scale-free; capping keeps one pathological run from compressing
    everyone else).

    Returns plain ``(n, 8)`` coordinates plus the tags — the 8-D space
    does not reuse :class:`~repro.behavior.space.BehaviorVector`, which
    is fixed at the paper's four dimensions.
    """
    if not behaviors:
        return np.empty((0, 8)), []
    if tags is not None and len(tags) != len(behaviors):
        raise ValidationError("tags must align with behaviors")
    raw = np.vstack([b.as_array() for b in behaviors])
    means = raw[:, :4]
    cvs = raw[:, 4:]
    peak = means.max(axis=0)
    peak[peak == 0] = 1.0
    out = np.hstack([
        means / peak,
        np.clip(cvs, 0.0, cv_cap) / cv_cap,
    ])
    return out, (list(tags) if tags is not None else [None] * len(behaviors))


def temporal_corpus(corpus) -> tuple[np.ndarray, list]:
    """Extended 8-D coordinates for a
    :class:`~repro.experiments.corpus.BehaviorCorpus`."""
    behaviors = [compute_temporal_behavior(r.trace) for r in corpus.runs]
    return normalize_temporal_corpus(behaviors,
                                     tags=[r.tag for r in corpus.runs])
