"""The 4-D graph-computation behavior space (paper Section 5.1).

``Behavior(GC) = <UPDT, WORK, EREAD, MSG>`` (Equation 2), where each
coordinate is the per-edge mean metric normalized corpus-wide so every
value lies in ``[0, 1]``. Two normalization schemes are provided:

``max`` (paper-literal)
    Divide each dimension by the corpus maximum.
``log``
    ``log10`` first, then min-max per dimension — useful because the
    raw values span the paper's reported 1000-fold range, which in
    linear scaling collapses most runs near the origin.

The :class:`BehaviorSpace` fixes the unit hypercube the ensemble
metrics (spread / coverage) and their upper bounds live in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

import numpy as np

from repro._util.errors import ValidationError
from repro.behavior.metrics import METRIC_NAMES, BehaviorMetrics
from repro.generators.rng import make_rng

#: Floor applied before log-scaling (raw metrics of 0 do occur, e.g.
#: MSG of a program that never signals).
_LOG_FLOOR = 1e-12


@dataclass(frozen=True)
class BehaviorVector:
    """One point of the behavior space: a normalized 4-vector + identity."""

    updt: float
    work: float
    eread: float
    msg: float
    #: Identity of the run this point came from (algorithm, graph params).
    tag: Any = None

    def as_array(self) -> np.ndarray:
        return np.asarray([self.updt, self.work, self.eread, self.msg])

    def distance(self, other: "BehaviorVector") -> float:
        return float(np.linalg.norm(self.as_array() - other.as_array()))

    def __getitem__(self, name: str) -> float:
        if name not in METRIC_NAMES:
            raise ValidationError(f"unknown metric {name!r}")
        return float(getattr(self, name))


def normalize_corpus(
    metrics: Sequence[BehaviorMetrics],
    *,
    scheme: str = "max",
    tags: Sequence[Any] | None = None,
) -> list[BehaviorVector]:
    """Normalize a corpus of raw metrics into behavior vectors in [0,1]^4.

    Parameters
    ----------
    metrics:
        Raw per-edge metrics, one per run.
    scheme:
        ``"max"`` (divide by corpus max, paper Section 3.4) or ``"log"``
        (log10 then per-dimension min-max).
    tags:
        Optional identities carried onto the vectors (same length).
    """
    if scheme not in ("max", "log"):
        raise ValidationError(f"unknown normalization scheme {scheme!r}")
    if not metrics:
        return []
    if tags is not None and len(tags) != len(metrics):
        raise ValidationError("tags must align with metrics")
    raw = np.vstack([m.as_array() for m in metrics])
    if np.any(raw < 0):
        raise ValidationError("behavior metrics must be non-negative")

    if scheme == "max":
        peak = raw.max(axis=0)
        peak[peak == 0] = 1.0
        norm = raw / peak
    else:
        logs = np.log10(np.maximum(raw, _LOG_FLOOR))
        lo = logs.min(axis=0)
        hi = logs.max(axis=0)
        span = np.where(hi > lo, hi - lo, 1.0)
        norm = (logs - lo) / span

    out = []
    for i in range(norm.shape[0]):
        out.append(BehaviorVector(
            updt=float(norm[i, 0]),
            work=float(norm[i, 1]),
            eread=float(norm[i, 2]),
            msg=float(norm[i, 3]),
            tag=tags[i] if tags is not None else None,
        ))
    return out


@dataclass(frozen=True)
class BehaviorSpace:
    """The unit hypercube behavior vectors live in.

    Attributes
    ----------
    dims:
        Dimensionality (4 for the paper's space).
    """

    dims: int = 4

    @property
    def diameter(self) -> float:
        """Longest distance in the space (corner to corner)."""
        return float(np.sqrt(self.dims))

    def contains(self, points: np.ndarray, *, tol: float = 1e-9) -> bool:
        points = np.atleast_2d(points)
        return bool(np.all(points >= -tol) and np.all(points <= 1 + tol))

    def sample(self, n_samples: int, *, seed: int = 0) -> np.ndarray:
        """Uniform sample points for the coverage metric (Section 5.1
        uses 10^6; callers choose their budget)."""
        if n_samples < 1:
            raise ValidationError("n_samples must be >= 1")
        rng = make_rng(seed, "behavior-space", "samples")
        return rng.random((n_samples, self.dims))

    def to_matrix(self, vectors: Iterable[BehaviorVector]) -> np.ndarray:
        """Stack behavior vectors into an ``(n, dims)`` matrix."""
        rows = [v.as_array() for v in vectors]
        if not rows:
            return np.empty((0, self.dims))
        mat = np.vstack(rows)
        if mat.shape[1] != self.dims:
            raise ValidationError(
                f"vectors have {mat.shape[1]} dims, space has {self.dims}"
            )
        return mat
