"""Structural validation of run traces.

The GAP Benchmark Suite treats output verification as a first-class
benchmark component; this module is the trace-level analog. Every
engine, whatever its execution model, must emit observations satisfying
a small set of structural invariants — a trace that violates them is
corrupt (an engine bug, an injected counter fault, a torn cache entry
that slipped past JSON parsing) and must never enter the behavior
corpus. The corpus builder therefore runs :func:`validate_trace` on
every completed trace; a violation raises
:class:`~repro._util.errors.TraceInvariantError`, which the failure
taxonomy classifies as the non-retryable ``"numeric"`` kind.

Invariants
----------
Trace-level:

- ``n_vertices``/``n_edges`` non-negative, ``work_model`` legal,
  ``engine`` a known engine name, ``stop_reason`` non-empty;
- iteration indices contiguous from 0 (monotonic by construction);
- ``degraded`` traces carry a health verdict and are never
  ``converged``; healthy traces carry none.

Per-iteration (engine-aware — the execution models count differently):

- every counter non-negative; WORK finite;
- ``active``/``updates`` bounded by ``n_vertices`` per iteration —
  except the graph-centric engine, whose supersteps count inner sweeps
  (one vertex may apply many times per superstep);
- ``edge_reads``/``messages`` bounded by the arc count (``2·n_edges``
  covers both directed arc lists and symmetrized undirected storage),
  scaled by the per-iteration update count for the engines that may
  touch a vertex's edges more than once per record (asynchronous
  rounds, graph-centric sweeps). These are necessarily *relaxations* of
  the true frontier-degree-sum bounds — the trace no longer has the
  graph — but they reject sign corruption and order-of-magnitude
  nonsense.
"""

from __future__ import annotations

from repro._util.errors import TraceInvariantError
from repro.behavior.trace import RunTrace

import numpy as np

#: Engines whose per-record update count can exceed ``n_vertices``
#: (inner sweeps are folded into one superstep record).
_MULTI_SWEEP_ENGINES = frozenset({"graph-centric"})

#: Engines that may gather/scatter a vertex's edges more than once per
#: record (re-signaled vertices within an asynchronous round, inner
#: sweeps within a graph-centric superstep).
_MULTI_VISIT_ENGINES = frozenset({"asynchronous", "graph-centric"})

#: Known engine names a trace may carry.
ENGINE_NAMES: tuple[str, ...] = (
    "synchronous", "asynchronous", "edge-centric", "graph-centric",
)

_WORK_MODELS = ("unit", "measured")


def _fail(trace: RunTrace, message: str) -> None:
    raise TraceInvariantError(
        f"invalid trace for {trace.algorithm}@{trace.domain}: {message}")


def validate_trace(trace: RunTrace) -> RunTrace:
    """Check every structural invariant; returns the trace for chaining.

    Raises
    ------
    TraceInvariantError
        On the first violated invariant, with the offending iteration
        and counter named in the message.
    """
    if trace.n_vertices < 0 or trace.n_edges < 0:
        _fail(trace, f"negative graph size |V|={trace.n_vertices} "
                     f"|E|={trace.n_edges}")
    if trace.work_model not in _WORK_MODELS:
        _fail(trace, f"unknown work model {trace.work_model!r}")
    if trace.engine not in ENGINE_NAMES:
        _fail(trace, f"unknown engine {trace.engine!r}")
    if not trace.stop_reason:
        _fail(trace, "empty stop_reason")

    if trace.degraded:
        if trace.converged:
            _fail(trace, "degraded trace claims convergence")
        if not trace.health.get("condition"):
            _fail(trace, "degraded trace carries no health condition")
    elif trace.health.get("condition"):
        _fail(trace, "healthy trace carries a health condition "
                     f"({trace.health['condition']!r})")

    arc_bound = 2 * trace.n_edges
    multi_sweep = trace.engine in _MULTI_SWEEP_ENGINES
    multi_visit = trace.engine in _MULTI_VISIT_ENGINES
    for position, rec in enumerate(trace.iterations):
        where = f"iteration record {position}"
        if rec.iteration != position:
            _fail(trace, f"{where}: non-contiguous index {rec.iteration}")
        for counter in ("active", "updates", "edge_reads", "messages"):
            if getattr(rec, counter) < 0:
                _fail(trace, f"{where}: negative {counter} "
                             f"({getattr(rec, counter)})")
        if not np.isfinite(rec.work) or rec.work < 0:
            _fail(trace, f"{where}: work is {rec.work!r}")
        if not multi_sweep:
            if rec.active > trace.n_vertices:
                _fail(trace, f"{where}: active {rec.active} exceeds "
                             f"|V|={trace.n_vertices}")
            if rec.updates > trace.n_vertices:
                _fail(trace, f"{where}: updates {rec.updates} exceeds "
                             f"|V|={trace.n_vertices}")
        visit_scale = max(rec.updates, 1) if multi_visit else 1
        if rec.edge_reads > arc_bound * visit_scale:
            _fail(trace, f"{where}: edge_reads {rec.edge_reads} exceeds "
                         f"the arc bound {arc_bound * visit_scale}")
        if rec.messages > arc_bound * visit_scale:
            _fail(trace, f"{where}: messages {rec.messages} exceeds "
                         f"the arc bound {arc_bound * visit_scale}")
    return trace
