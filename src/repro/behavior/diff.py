"""Trace diffing: structured comparison of two run traces.

Used when validating one execution policy against another (sync vs
reference vs edge-centric vs async), when debugging an algorithm
change, or when checking corpus cache integrity. Produces a typed
report instead of a bare boolean so callers can see *where* traces
diverge.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.behavior.trace import RunTrace

#: Counter fields compared per iteration.
COUNTER_FIELDS = ("active", "updates", "edge_reads", "messages")


@dataclass(frozen=True)
class TraceDiff:
    """Differences between two traces.

    Empty ``mismatches`` + equal iteration counts + matching work
    (within tolerance) means the traces are behaviorally identical.
    """

    algorithm_a: str
    algorithm_b: str
    n_iterations: tuple[int, int]
    #: (iteration, field, value_a, value_b) rows, counter fields only.
    mismatches: tuple = ()
    #: Max relative WORK deviation across common iterations.
    max_work_rel_diff: float = 0.0
    #: Stop reasons of both traces.
    stop_reasons: tuple[str, str] = ("", "")

    @property
    def identical(self) -> bool:
        return (not self.mismatches
                and self.n_iterations[0] == self.n_iterations[1]
                and self.max_work_rel_diff < 1e-9)

    @property
    def counters_conserved(self) -> bool:
        """Counter equality on common iterations, ignoring WORK and
        iteration-count differences (the §3.3 conservation notion)."""
        return not self.mismatches

    def summary(self) -> str:
        if self.identical:
            return (f"{self.algorithm_a} traces identical "
                    f"({self.n_iterations[0]} iterations)")
        lines = [
            f"{self.algorithm_a} vs {self.algorithm_b}: "
            f"iterations {self.n_iterations[0]} vs {self.n_iterations[1]}, "
            f"max WORK rel. diff {self.max_work_rel_diff:.2g}",
        ]
        for iteration, fld, a, b in self.mismatches[:20]:
            lines.append(f"  iter {iteration}: {fld} {a} != {b}")
        if len(self.mismatches) > 20:
            lines.append(f"  ... {len(self.mismatches) - 20} more")
        return "\n".join(lines)


def diff_traces(a: RunTrace, b: RunTrace) -> TraceDiff:
    """Compare two traces counter-for-counter over common iterations."""
    mismatches = []
    max_work = 0.0
    for rec_a, rec_b in zip(a.iterations, b.iterations):
        for fld in COUNTER_FIELDS:
            va, vb = getattr(rec_a, fld), getattr(rec_b, fld)
            if va != vb:
                mismatches.append((rec_a.iteration, fld, va, vb))
        denom = max(abs(rec_a.work), abs(rec_b.work), 1e-300)
        max_work = max(max_work, abs(rec_a.work - rec_b.work) / denom)
    return TraceDiff(
        algorithm_a=a.algorithm,
        algorithm_b=b.algorithm,
        n_iterations=(a.n_iterations, b.n_iterations),
        mismatches=tuple(mismatches),
        max_work_rel_diff=max_work,
        stop_reasons=(a.stop_reason, b.stop_reason),
    )
