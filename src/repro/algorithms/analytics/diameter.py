"""Approximate Diameter (AD).

Paper Section 2.1: "Approximate Diameter estimates the diameter of a
graph, which is the longest distance between any two vertices." — and
Section 4: "AD has active fraction = 1.0 for the whole lifecycle";
Section 5.2: 5 runs of AD at the largest graph size failed.

Flajolet-Martin probabilistic counting (the GraphLab toolkit's
approximate_diameter): each vertex keeps ``n_hashes`` FM bitmasks; one
iteration ORs every neighbor's masks into its own, so after ``t``
iterations a vertex's masks sketch its ``t``-hop neighborhood. The
global neighborhood-function estimate ``N(t)`` stops growing once ``t``
reaches the (effective) diameter.

AD's per-vertex state — ``n_hashes`` 64-bit masks each — is the largest
of any program in the suite, which is exactly why its biggest runs blow
the engine's memory budget (:class:`~repro._util.errors.ResourceLimitError`),
reproducing the paper's failed runs by mechanism rather than by fiat.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.registry import registered
from repro.engine.context import Context
from repro.engine.program import Direction, VertexProgram

#: Inverse Flajolet-Martin bias correction.
_FM_PHI = 0.77351


@registered("diameter", domain="ga", abbrev="AD",
            default_params={"n_hashes": 16}, always_active=True)
class ApproximateDiameter(VertexProgram):
    """FM-sketch neighborhood growth until saturation.

    Parameters
    ----------
    n_hashes:
        Number of independent FM sketches per vertex; more sketches give
        a tighter estimate and proportionally more state.
    """

    gather_dir = Direction.IN
    scatter_dir = Direction.OUT
    gather_op = "or"
    gather_dtype = np.uint64
    apply_flops_per_vertex = 4.0

    def __init__(self, n_hashes: int = 16) -> None:
        if n_hashes < 1:
            raise ValueError("n_hashes must be >= 1")
        self.n_hashes = n_hashes
        self.gather_width = n_hashes  # instance override of the class var
        self.masks: np.ndarray | None = None
        self._nf_estimate: float = 0.0
        self._prev_nf: float = -1.0
        self._saturated: bool = False
        self.diameter_estimate: int = 0

    def init(self, ctx: Context) -> np.ndarray:
        n = ctx.n_vertices
        # FM initialization: each sketch sets bit r with P = 2^-(r+1).
        r = ctx.rng.geometric(0.5, size=(n, self.n_hashes)) - 1
        r = np.minimum(r, 62)
        self.masks = (np.uint64(1) << r.astype(np.uint64))
        self._mask_changed = np.ones(n, dtype=bool)
        self._prev_nf = -1.0
        self._nf_estimate = self._estimate()
        return ctx.all_vertices()

    def state_bytes(self, ctx: Context) -> int:
        return ctx.n_vertices * self.n_hashes * 8

    def _estimate(self) -> float:
        """FM neighborhood-function estimate summed over vertices."""
        # Position of lowest zero bit, averaged over hashes.
        inverted = ~self.masks
        lowest_zero = np.zeros(self.masks.shape[0])
        # log2 of lowest set bit of the inverted mask.
        low = inverted & (~inverted + np.uint64(1))
        lowest_zero = np.log2(low.astype(np.float64)).mean(axis=1)
        return float((2.0 ** lowest_zero).sum() / _FM_PHI)

    def gather_edge(self, ctx, nbr, center, eid):
        return self.masks[nbr]

    def apply(self, ctx, vids, acc):
        acc = acc.astype(np.uint64)
        merged = self.masks[vids] | acc
        self._mask_changed[vids] = np.any(merged != self.masks[vids], axis=1)
        self.masks[vids] = merged
        # Merging n_hashes 64-bit sketches dominates AD's apply cost —
        # the widest per-vertex update in the suite (paper Fig 13: AD
        # requires the most work for updating vertices).
        ctx.add_work(float(vids.size) * 4.0 * self.n_hashes)

    def scatter_edges(self, ctx, center, nbr, eid):
        # Propagate only fresh sketch content; the frontier stays full
        # regardless (select_next_frontier), so this only shapes MSG.
        return self._mask_changed[center]

    def select_next_frontier(self, ctx, signaled):
        return ctx.all_vertices()

    def on_iteration_end(self, ctx):
        self._prev_nf = self._nf_estimate
        self._nf_estimate = self._estimate()
        if self._nf_estimate <= self._prev_nf * (1.0 + 1e-12):
            self._saturated = True
            self.diameter_estimate = ctx.iteration
        else:
            self.diameter_estimate = ctx.iteration + 1

    def converged(self, ctx) -> bool:
        return self._saturated

    def result(self, ctx) -> dict:
        return {
            "diameter_estimate": int(self.diameter_estimate),
            "neighborhood_estimate": float(self._nf_estimate),
        }
