"""K-Core decomposition (KC).

Paper Section 2.1: "To find all K-Cores of the input graph, the KC
program recursively removes all vertices with degree d = 0, 1, 2, ...
Vertices only receive data from neighbors that activate it."

Peeling formulation: phase ``k`` repeatedly removes alive vertices whose
*effective degree* (alive neighbors) is below ``k``; each removal
signals the removed vertex's alive neighbors, which re-check their
degree. When a phase produces no signals, ``k`` advances and every
alive vertex re-activates. A vertex removed during phase ``k`` has core
number ``k - 1``. The run ends when every vertex has been peeled.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.registry import registered
from repro.engine.context import Context
from repro.engine.program import Direction, VertexProgram


@registered("kcore", domain="ga", abbrev="KC")
class KCoreDecomposition(VertexProgram):
    """Iterative peeling with explicit phases over ``k``."""

    gather_dir = Direction.IN
    scatter_dir = Direction.OUT
    gather_op = "sum"
    gather_width = 1
    apply_flops_per_vertex = 2.0
    #: Fused kernels: effective degree is a 0/1 count — sums of
    #: indicator values are exact in any order, so the fused gather may
    #: run as a plain SpMV. Scatter compares center *and* neighbor
    #: state, so it stays on the callback path.
    gather_shape = "vertex"
    gather_source_exact = True

    def __init__(self) -> None:
        self.alive: np.ndarray | None = None
        self.core: np.ndarray | None = None
        self.k: int = 1
        self._removed_now: np.ndarray | None = None

    def init(self, ctx: Context) -> np.ndarray:
        n = ctx.n_vertices
        self.alive = np.ones(n, dtype=bool)
        self.core = np.zeros(n, dtype=np.int64)
        self.k = 1
        self._removed_now = np.zeros(n, dtype=bool)
        return ctx.all_vertices()

    def state_bytes(self, ctx: Context) -> int:
        return ctx.n_vertices * 11

    def gather_edge(self, ctx, nbr, center, eid):
        # Effective degree: count alive neighbors. Recomputing (rather
        # than decrementing) keeps the phase restarts idempotent.
        return self.alive[nbr].astype(np.float64)

    def gather_source(self, ctx):
        return self.alive.astype(np.float64)

    def apply(self, ctx, vids, acc):
        eff_deg = acc.ravel()
        removable = self.alive[vids] & (eff_deg < self.k)
        removed_vids = vids[removable]
        self.alive[removed_vids] = False
        self.core[removed_vids] = self.k - 1
        self._removed_now[removed_vids] = True

    def scatter_edges(self, ctx, center, nbr, eid):
        # A removal notifies alive neighbors, whose degree just dropped.
        return self._removed_now[center] & self.alive[nbr]

    def select_next_frontier(self, ctx, signaled):
        signaled = signaled[self.alive[signaled]] if signaled.size else signaled
        if signaled.size == 0 and self.alive.any():
            # Phase k produced no cascade: advance k, wake every
            # survivor to test against the new threshold.
            self.k += 1
            return np.flatnonzero(self.alive)
        return signaled

    def on_iteration_end(self, ctx):
        self._removed_now[:] = False

    def result(self, ctx) -> dict:
        return {
            "max_core": int(self.core.max()) if self.core.size else 0,
            "final_k": int(self.k),
        }
