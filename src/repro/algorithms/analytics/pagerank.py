"""PageRank (PR).

Paper Section 2.1: "All vertices are active initially. A vertex becomes
inactive when its rank remains stable within a given tolerance."

GraphLab-style dynamic (delta) PageRank: the unnormalized fixed point
``rank(v) = (1 - d) + d · Σ rank(u) / deg(u)`` over neighbors ``u``. A
vertex whose rank moved more than ``tol`` in Apply signals its
neighbors; unsignaled vertices freeze. The active fraction starts at
1.0 and gradually decays — the paper's canonical contrast to SSSP.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.registry import registered
from repro.engine.context import Context
from repro.engine.program import Direction, VertexProgram


@registered("pagerank", domain="ga", abbrev="PR",
            default_params={"damping": 0.85, "tol": 1e-3})
class PageRank(VertexProgram):
    """Dynamic PageRank with per-vertex convergence.

    Parameters
    ----------
    damping:
        Damping factor ``d`` (default 0.85).
    tol:
        Per-vertex absolute rank tolerance below which a vertex stops
        signaling (default 1e-3 on the unnormalized rank scale, which
        makes the iteration count size-independent).
    """

    gather_dir = Direction.IN
    scatter_dir = Direction.OUT
    gather_op = "sum"
    gather_width = 1
    apply_flops_per_vertex = 3.0
    #: Signal-driven: runs under the asynchronous engine too.
    supports_async = True
    #: Fused kernels: gather is Σ (rank·inv_deg)[u]; scatter mask
    #: depends only on the center's delta.
    gather_shape = "vertex"
    scatter_shape = "center"

    def signal_priority(self, ctx, v: int) -> float:
        """Priority scheduling refreshes the most-perturbed ranks first
        (GraphLab's classic dynamic PageRank schedule)."""
        return float(self._delta[v])

    def __init__(self, damping: float = 0.85, tol: float = 1e-3) -> None:
        if not 0.0 < damping < 1.0:
            raise ValueError("damping must be in (0, 1)")
        if tol <= 0:
            raise ValueError("tol must be positive")
        self.damping = damping
        self.tol = tol
        self.rank: np.ndarray | None = None
        self._delta: np.ndarray | None = None
        self._inv_deg: np.ndarray | None = None

    def init(self, ctx: Context) -> np.ndarray:
        n = ctx.n_vertices
        self.rank = np.ones(n)
        self._delta = np.zeros(n)
        # Guarded normalization: dangling (degree-0) vertices map to
        # 0.0, never NaN/Inf.
        self._inv_deg = ctx.graph.inv_out_degree
        return ctx.all_vertices()

    def state_bytes(self, ctx: Context) -> int:
        return ctx.n_vertices * 24

    def gather_edge(self, ctx, nbr, center, eid):
        return self.rank[nbr] * self._inv_deg[nbr]

    def gather_source(self, ctx):
        # (rank * inv_deg)[u] == rank[u] * inv_deg[u] bit for bit.
        return self.rank * self._inv_deg

    def apply(self, ctx, vids, acc):
        new_rank = (1.0 - self.damping) + self.damping * acc.ravel()
        self._delta[vids] = np.abs(new_rank - self.rank[vids])
        self.rank[vids] = new_rank

    def scatter_edges(self, ctx, center, nbr, eid):
        return self._delta[center] > self.tol

    def scatter_vertex_mask(self, ctx, vids):
        return self._delta[vids] > self.tol

    def result(self, ctx) -> dict:
        return {
            "max_rank": float(self.rank.max()),
            "mean_rank": float(self.rank.mean()),
            "top_vertex": int(np.argmax(self.rank)),
        }
