"""Triangle Counting (TC).

Paper Section 2.1: "For each edge in the graph, the TC program counts
the number of intersections of the neighbor sets on both endpoints."

Three-superstep GAS schedule (mirroring PowerGraph's TC):

1. **collect** — every vertex reads its neighbors' adjacency through
   each edge (EREAD = 2·|E|) and signals them, so everyone enters the
   counting step.
2. **count** — every vertex computes, per incident edge, the size of
   the neighbor-set intersection with the other endpoint; its triangle
   count is half the sum (each triangle is seen through two of its
   edges at each vertex). Vertices signal only the neighbors whose
   shared edge carries at least one triangle.
3. **finalize** — only triangle-participating vertices are active; they
   read neighbor counts to fold into the global total and go quiet.

The step-2 intersection work (``Σ min-degree`` over edges) is reported
through the unit work ledger, which is what makes TC's WORK, UPDT, and
MSG fall as the degree distribution becomes more uniform (paper Fig 3)
while per-edge EREAD stays constant.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.analytics._intersect import (
    common_neighbor_counts,
    sorted_edge_keys,
)
from repro.algorithms.registry import registered
from repro.engine.context import Context
from repro.engine.program import Direction, VertexProgram


@registered("triangle", domain="ga", abbrev="TC")
class TriangleCounting(VertexProgram):
    """Per-edge neighbor-set intersection counting."""

    gather_dir = Direction.IN
    scatter_dir = Direction.OUT
    gather_op = "sum"
    gather_width = 1
    apply_flops_per_vertex = 1.0

    _COLLECT, _COUNT, _FINALIZE = 0, 1, 2

    def __init__(self) -> None:
        self.counts: np.ndarray | None = None
        self._edge_keys: np.ndarray | None = None
        self._edge_has_triangle: np.ndarray | None = None
        self._pending_work: float = 0.0
        self._total: float = 0.0

    def init(self, ctx: Context) -> np.ndarray:
        graph = ctx.graph
        self.counts = np.zeros(ctx.n_vertices)
        self._edge_keys = sorted_edge_keys(graph)
        self._edge_has_triangle = np.zeros(graph.n_edges, dtype=bool)
        return ctx.all_vertices()

    def state_bytes(self, ctx: Context) -> int:
        return ctx.n_vertices * 8 + ctx.n_edges * 9

    def _phase(self, ctx: Context) -> int:
        return min(ctx.iteration, self._FINALIZE)

    def gather_edge(self, ctx, nbr, center, eid):
        phase = self._phase(ctx)
        if phase == self._COLLECT:
            # Reading the neighbor's adjacency list; no numeric payload.
            return np.zeros(nbr.size)
        if phase == self._COUNT:
            per_edge, expansion = common_neighbor_counts(
                ctx.graph, center, nbr, self._edge_keys)
            self._pending_work += expansion
            self._edge_has_triangle[eid[per_edge > 0]] = True
            return per_edge
        # FINALIZE: read neighbor counts to fold into the global total.
        return self.counts[nbr]

    def apply(self, ctx, vids, acc):
        phase = self._phase(ctx)
        if phase == self._COUNT:
            # Each triangle at v is seen through two of its edges.
            self.counts[vids] = acc.ravel() / 2.0
            ctx.add_work(self._pending_work)
            self._pending_work = 0.0
        elif phase == self._FINALIZE:
            self._total += float(self.counts[vids].sum())

    def scatter_edges(self, ctx, center, nbr, eid):
        phase = self._phase(ctx)
        if phase == self._COLLECT:
            return np.ones(center.size, dtype=bool)
        if phase == self._COUNT:
            return self._edge_has_triangle[eid]
        return np.zeros(center.size, dtype=bool)

    def result(self, ctx) -> dict:
        return {
            "total_triangles": float(self.counts.sum() / 3.0),
            "max_per_vertex": float(self.counts.max()) if self.counts.size else 0.0,
        }
