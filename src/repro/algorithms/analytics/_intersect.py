"""Vectorized neighbor-set intersection for Triangle Counting.

For a batch of vertex pairs ``(u_i, v_i)`` that are edges of an
undirected graph, count ``|N(u_i) ∩ N(v_i)|`` without a Python loop:
expand the adjacency of the smaller-degree endpoint of each pair and
test membership of ``(candidate, other-endpoint)`` against the sorted
edge-key set with ``searchsorted``. Total work is
``Σ_edges min(deg(u), deg(v))`` — the classic triangle-counting bound.
"""

from __future__ import annotations

import numpy as np

from repro._util.segments import concat_ranges, segmented_reduce
from repro.graph.csr import Graph


def sorted_edge_keys(graph: Graph) -> np.ndarray:
    """Canonical sorted ``lo * n + hi`` keys of the undirected edge set."""
    src, dst = graph.edge_endpoints()
    lo = np.minimum(src, dst)
    hi = np.maximum(src, dst)
    keys = lo * np.int64(graph.n_vertices) + hi
    keys.sort()
    return keys


def common_neighbor_counts(
    graph: Graph,
    u: np.ndarray,
    v: np.ndarray,
    edge_keys: np.ndarray,
) -> tuple[np.ndarray, int]:
    """Count common neighbors of each pair ``(u[i], v[i])``.

    Parameters
    ----------
    graph:
        Undirected graph.
    u, v:
        Pair endpoint arrays (need not be edges, but for TC they are).
    edge_keys:
        Output of :func:`sorted_edge_keys` for ``graph``.

    Returns
    -------
    (counts, expansion):
        ``counts[i] = |N(u[i]) ∩ N(v[i])|``; ``expansion`` is the total
        number of candidate memberships tested (the data-dependent work
        the paper's WORK metric sees for TC).
    """
    u = np.asarray(u, dtype=np.int64)
    v = np.asarray(v, dtype=np.int64)
    if edge_keys.size == 0 or u.size == 0:
        return np.zeros(u.size), 0
    n = np.int64(graph.n_vertices)
    deg = graph.degree
    swap = deg[u] > deg[v]
    small = np.where(swap, v, u)
    big = np.where(swap, u, v)

    counts_per_pair = (graph.out_ptr[small + 1] - graph.out_ptr[small])
    slots = concat_ranges(graph.out_ptr[small], graph.out_ptr[small + 1])
    cand = graph.out_dst[slots]
    other = np.repeat(big, counts_per_pair)

    lo = np.minimum(cand, other)
    hi = np.maximum(cand, other)
    key = lo * n + hi
    pos = np.searchsorted(edge_keys, key)
    pos = np.minimum(pos, edge_keys.size - 1)
    # A candidate equal to the other endpoint is not a common neighbor
    # (self-pairing), and edge_keys never contains self-loops, so the
    # membership test already excludes it.
    hit = (edge_keys[pos] == key) & (cand != other)

    per_pair = segmented_reduce(hit.astype(np.float64), counts_per_pair, "sum")
    return per_pair, int(slots.size)
