"""Single-Source Shortest Path (SSSP).

Paper Section 2.1: "The source vertex is active initially. In each
iteration, an active vertex computes and updates distances for adjacent
vertices." — Bellman-Ford-style relaxation under GAS: the frontier
starts as just the source and the active fraction grows rapidly
(Section 1) before draining as distances settle.

The paper's GA inputs are unweighted graphs; if the graph carries edge
weights they are used, otherwise unit weights (BFS distances).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.registry import registered
from repro.engine.context import Context
from repro.engine.program import Direction, VertexProgram


@registered("sssp", domain="ga", abbrev="SSSP",
            default_params={"source": None})
class SingleSourceShortestPath(VertexProgram):
    """Frontier-based distance relaxation.

    Parameters
    ----------
    source:
        Source vertex id; ``None`` picks the highest-degree vertex
        (deterministic, and never an isolated vertex on the synthetic
        graphs).
    """

    gather_dir = Direction.IN
    scatter_dir = Direction.OUT
    gather_op = "min"
    gather_width = 1
    apply_flops_per_vertex = 2.0
    #: Signal-driven: runs under the asynchronous engine too.
    supports_async = True
    #: Monotone min-relaxation: also runs edge-centrically (X-Stream).
    supports_edge_centric = True

    def signal_priority(self, ctx, v: int) -> float:
        """Priority scheduling relaxes near vertices first (approaches
        Dijkstra ordering under the async priority scheduler)."""
        d = self.dist[v]
        return -float(d) if np.isfinite(d) else 0.0

    def __init__(self, source: int | None = None) -> None:
        self.source = source
        self.dist: np.ndarray | None = None
        self._changed: np.ndarray | None = None
        self._weights: np.ndarray | None = None

    def init(self, ctx: Context) -> np.ndarray:
        graph = ctx.graph
        n = graph.n_vertices
        if self.source is None:
            self.source = int(np.argmax(graph.degree))
        if not 0 <= self.source < n:
            raise ValueError(f"source {self.source} out of range [0, {n})")
        self.dist = np.full(n, np.inf)
        self.dist[self.source] = 0.0
        self._changed = np.zeros(n, dtype=bool)
        if graph.edge_weight is not None:
            self._weights = graph.edge_weight
            # dist[u] + w[e], per edge.
            self.gather_shape = "vertex_plus_edge"
        else:
            self._weights = None  # unit weights
            # (dist + 1.0)[u] == dist[u] + 1.0 bit for bit.
            self.gather_shape = "vertex"
        return np.asarray([self.source], dtype=np.int64)

    def state_bytes(self, ctx: Context) -> int:
        return ctx.n_vertices * 9

    def _w(self, eid: np.ndarray) -> np.ndarray | float:
        return 1.0 if self._weights is None else self._weights[eid]

    def gather_edge(self, ctx, nbr, center, eid):
        return self.dist[nbr] + self._w(eid)

    def gather_source(self, ctx):
        # Weighted: the kernel adds the per-slot weight; unweighted:
        # fold the unit hop into the source (bit-identical either way).
        return self.dist if self._weights is not None else self.dist + 1.0

    def apply(self, ctx, vids, acc):
        acc = acc.ravel()
        current = self.dist[vids]
        improved = acc < current
        self.dist[vids] = np.where(improved, acc, current)
        # The source's first apply sees no improvement but must still
        # scatter to seed the frontier.
        if ctx.iteration == 0:
            seed = vids == self.source
            improved = improved | seed
        self._changed[vids] = improved

    def scatter_edges(self, ctx, center, nbr, eid):
        return self._changed[center] & (self.dist[center] + self._w(eid)
                                        < self.dist[nbr])

    def on_iteration_end(self, ctx):
        self._changed[:] = False

    def result(self, ctx) -> dict:
        finite = np.isfinite(self.dist)
        return {
            "source": int(self.source),
            "reached": int(finite.sum()),
            "max_dist": float(self.dist[finite].max()) if finite.any() else 0.0,
        }
