"""Graph Analytics algorithms (paper Section 2.1, domain GA)."""

from repro.algorithms.analytics.cc import ConnectedComponents
from repro.algorithms.analytics.diameter import ApproximateDiameter
from repro.algorithms.analytics.kcore import KCoreDecomposition
from repro.algorithms.analytics.pagerank import PageRank
from repro.algorithms.analytics.sssp import SingleSourceShortestPath
from repro.algorithms.analytics.triangle import TriangleCounting

__all__ = [
    "ApproximateDiameter",
    "ConnectedComponents",
    "KCoreDecomposition",
    "PageRank",
    "SingleSourceShortestPath",
    "TriangleCounting",
]
