"""Connected Components (CC).

Paper Section 2.1: "the CC program compares the IDs of adjacent vertices
and only updates a vertex if its ID is larger than the minimum value.
Vertices only receive data from neighbors that activate it."

Label-propagation formulation: every vertex starts with its own id as
its component label; each iteration an active vertex adopts the minimum
label among itself and its neighbors, and a vertex whose label shrank
signals exactly the neighbors that can still improve. The run ends when
the frontier drains.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.registry import registered
from repro.engine.context import Context
from repro.engine.program import Direction, VertexProgram


@registered("cc", domain="ga", abbrev="CC")
class ConnectedComponents(VertexProgram):
    """Minimum-label propagation over an undirected graph."""

    gather_dir = Direction.IN
    scatter_dir = Direction.OUT
    gather_op = "min"
    gather_width = 1
    apply_flops_per_vertex = 2.0
    #: Signal-driven: runs under the asynchronous engine too.
    supports_async = True
    #: Monotone min-relaxation: also runs edge-centrically (X-Stream).
    supports_edge_centric = True
    #: Fused kernels: gather is min over neighbor labels. The scatter
    #: mask compares center vs neighbor labels, so it stays on the
    #: callback path (no "center" shape).
    gather_shape = "vertex"

    def __init__(self) -> None:
        self.component: np.ndarray | None = None
        self._changed: np.ndarray | None = None

    def init(self, ctx: Context) -> np.ndarray:
        n = ctx.n_vertices
        self.component = np.arange(n, dtype=np.float64)
        self._changed = np.zeros(n, dtype=bool)
        return ctx.all_vertices()

    def state_bytes(self, ctx: Context) -> int:
        return ctx.n_vertices * 9  # component labels + changed flags

    def gather_edge(self, ctx, nbr, center, eid):
        return self.component[nbr]

    def gather_source(self, ctx):
        return self.component

    def apply(self, ctx, vids, acc):
        acc = acc.ravel()
        current = self.component[vids]
        improved = acc < current
        self.component[vids] = np.where(improved, acc, current)
        self._changed[vids] = improved

    def scatter_edges(self, ctx, center, nbr, eid):
        # Signal only neighbors that our (possibly new) label improves.
        return self._changed[center] & (self.component[center]
                                        < self.component[nbr])

    def on_iteration_end(self, ctx):
        self._changed[:] = False

    def result(self, ctx) -> dict:
        labels = self.component.astype(np.int64)
        return {
            "n_components": int(np.unique(labels).size),
            "largest_component": int(np.bincount(
                np.unique(labels, return_inverse=True)[1]).max()),
        }
