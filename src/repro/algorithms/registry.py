"""Algorithm registry: name → vertex program class + run defaults.

The registry is the single source of truth binding an algorithm name to

- its :class:`~repro.engine.program.VertexProgram` class,
- the input domain it consumes (which picks the generator),
- default algorithm parameters, and
- default engine limits (e.g. the paper caps NMF and SGD at 20
  iterations because they do not converge — Section 3.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro._util.errors import ValidationError
from repro.engine.program import VertexProgram


@dataclass(frozen=True)
class AlgorithmInfo:
    """Registry record for one algorithm."""

    name: str
    cls: type[VertexProgram]
    domain: str
    #: Default algorithm parameters, overridable per run.
    default_params: dict[str, Any] = field(default_factory=dict)
    #: Default engine-option overrides (e.g. {"max_iterations": 20}).
    default_options: dict[str, Any] = field(default_factory=dict)
    #: Paper section/abbreviation for documentation.
    abbrev: str = ""
    #: True if the paper reports the algorithm keeps every vertex active
    #: for its whole lifecycle (AD, KM, NMF, SGD, SVD, Jacobi, DD).
    always_active: bool = False


_REGISTRY: dict[str, AlgorithmInfo] = {}


def register(info_record: AlgorithmInfo) -> None:
    """Register an algorithm; name collisions are an error."""
    if info_record.name in _REGISTRY:
        raise ValidationError(f"algorithm {info_record.name!r} already registered")
    _REGISTRY[info_record.name] = info_record


def registered(
    name: str,
    *,
    domain: str,
    abbrev: str = "",
    default_params: dict[str, Any] | None = None,
    default_options: dict[str, Any] | None = None,
    always_active: bool = False,
) -> Callable[[type[VertexProgram]], type[VertexProgram]]:
    """Class decorator registering a vertex program."""

    def wrap(cls: type[VertexProgram]) -> type[VertexProgram]:
        register(AlgorithmInfo(
            name=name,
            cls=cls,
            domain=domain,
            default_params=dict(default_params or {}),
            default_options=dict(default_options or {}),
            abbrev=abbrev or name.upper(),
            always_active=always_active,
        ))
        cls.name = name
        cls.domain = domain
        return cls

    return wrap


def _ensure_loaded() -> None:
    """Import algorithm modules so their decorators run."""
    # Imported lazily to avoid import cycles at package import time.
    import repro.algorithms.analytics  # noqa: F401
    import repro.algorithms.cf  # noqa: F401
    import repro.algorithms.clustering  # noqa: F401
    import repro.algorithms.solvers  # noqa: F401


def info(name: str) -> AlgorithmInfo:
    """Look up an algorithm's registry record."""
    _ensure_loaded()
    if name not in _REGISTRY:
        raise ValidationError(
            f"unknown algorithm {name!r}; known: {sorted(_REGISTRY)}"
        )
    return _REGISTRY[name]


def create(name: str, **params: Any) -> VertexProgram:
    """Instantiate an algorithm with defaults merged with ``params``."""
    record = info(name)
    merged = dict(record.default_params)
    merged.update(params)
    return record.cls(**merged)


def iter_algorithms() -> Iterator[AlgorithmInfo]:
    """All registered algorithms in name order."""
    _ensure_loaded()
    for name in sorted(_REGISTRY):
        yield _REGISTRY[name]


def _algorithm_names() -> list[str]:
    _ensure_loaded()
    return sorted(_REGISTRY)


class _LazyNames:
    """Sequence-like view of algorithm names that defers module loading."""

    def __iter__(self):
        return iter(_algorithm_names())

    def __len__(self) -> int:
        return len(_algorithm_names())

    def __contains__(self, item: object) -> bool:
        return item in _algorithm_names()

    def __getitem__(self, index):
        return _algorithm_names()[index]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return repr(_algorithm_names())


#: Lazily evaluated list of registered algorithm names.
ALGORITHM_NAMES = _LazyNames()
