"""Singular Value Decomposition (SVD) via restarted Golub-Kahan-Lanczos.

Paper Section 2.1: "SVD decomposes a matrix into the product of unitary
matrices and a diagonal matrix using the Restarted Lanczos algorithm."

The rating matrix ``A`` (users × items) lives on the bipartite graph;
one GAS iteration is one half-step of the Golub-Kahan recurrence:

- even iterations: ``u_j = A v_j − β_{j−1} u_{j−1}`` (users gather
  ``r · v[item]`` over their rating edges);
- odd iterations: ``v_{j+1} = Aᵀ u_j − α_j v_j`` (items gather).

Norms (``α_j``, ``β_j``) and full reorthogonalization against the
stored Krylov bases are global aggregates computed at iteration end.
After ``lanczos_steps`` full steps the bidiagonal matrix's SVD gives
Ritz values; each restart re-seeds ``v_1`` with the best Ritz right
vector. Every vertex stays active throughout (paper Section 4.3), and
only the updating side sends messages.
"""

from __future__ import annotations

import numpy as np

from repro._util.errors import ValidationError
from repro.algorithms.registry import registered
from repro.engine.context import Context
from repro.engine.program import Direction, VertexProgram


@registered("svd", domain="cf", abbrev="SVD",
            default_params={"lanczos_steps": 8, "restarts": 2},
            always_active=True)
class LanczosSVD(VertexProgram):
    """Restarted Golub-Kahan-Lanczos bidiagonalization.

    Parameters
    ----------
    lanczos_steps:
        Full GKL steps per pass (each step = 2 GAS iterations).
    restarts:
        Number of passes; pass ``p+1`` starts from the best Ritz vector
        of pass ``p``.
    """

    gather_dir = Direction.IN
    scatter_dir = Direction.OUT
    gather_op = "sum"
    gather_width = 1
    apply_flops_per_vertex = 2.0

    def __init__(self, lanczos_steps: int = 8, restarts: int = 2) -> None:
        if lanczos_steps < 1:
            raise ValidationError("lanczos_steps must be >= 1")
        if restarts < 1:
            raise ValidationError("restarts must be >= 1")
        self.steps = lanczos_steps
        self.restarts = restarts
        self.val: np.ndarray | None = None
        self._is_user: np.ndarray | None = None
        self._u_prev: np.ndarray | None = None
        self._v_cur: np.ndarray | None = None
        self._alphas: list[float] = []
        self._betas: list[float] = []
        self._U: list[np.ndarray] = []
        self._V: list[np.ndarray] = []
        self._pass = 0
        self._done = False
        self.singular_values: np.ndarray = np.empty(0)

    def init(self, ctx: Context) -> np.ndarray:
        if ctx.graph.edge_weight is None:
            raise ValidationError("SVD requires a rating (weighted) graph")
        self._is_user = np.asarray(ctx.problem.require_input("is_user"),
                                   dtype=bool)
        n = ctx.n_vertices
        self.val = np.zeros(n)
        v1 = ctx.rng.normal(0.0, 1.0, size=int((~self._is_user).sum()))
        v1 /= np.linalg.norm(v1)
        self.val[~self._is_user] = v1
        self._u_prev = np.zeros(n)
        self._v_cur = self.val.copy()
        return ctx.all_vertices()

    def state_bytes(self, ctx: Context) -> int:
        basis = 2 * self.steps * ctx.n_vertices * 8
        return ctx.n_vertices * 24 + basis

    def _users_turn(self, ctx: Context) -> bool:
        return (ctx.iteration % (2 * self.steps)) % 2 == 0

    def gather_edge(self, ctx, nbr, center, eid):
        return ctx.graph.edge_weight[eid] * self.val[nbr]

    def apply(self, ctx, vids, acc):
        acc = acc.ravel()
        users_turn = self._users_turn(ctx)
        side = self._is_user[vids] == users_turn
        movers = vids[side]
        if movers.size == 0:
            return
        if users_turn:
            beta = self._betas[-1] if self._betas else 0.0
            self.val[movers] = acc[side] - beta * self._u_prev[movers]
        else:
            alpha = self._alphas[-1] if self._alphas else 0.0
            self.val[movers] = acc[side] - alpha * self._v_cur[movers]
        ctx.add_work(float(movers.size) * 2.0)

    def scatter_edges(self, ctx, center, nbr, eid):
        return self._is_user[center] == self._users_turn(ctx)

    def select_next_frontier(self, ctx, signaled):
        return ctx.all_vertices()

    def on_iteration_end(self, ctx):
        users = self._is_user
        if self._users_turn(ctx):
            # Finish the u half-step: reorthogonalize, record alpha.
            u = self.val * users
            for basis_vec in self._U:
                u -= basis_vec * float(u @ basis_vec)
            alpha = float(np.linalg.norm(u))
            if alpha > 1e-12:
                u /= alpha
            self._alphas.append(alpha)
            self._u_prev = u
            self._U.append(u.copy())
            self.val = u + self.val * (~users)  # items keep v for next gather
        else:
            v = self.val * (~users)
            for basis_vec in self._V:
                v -= basis_vec * float(v @ basis_vec)
            beta = float(np.linalg.norm(v))
            if beta > 1e-12:
                v /= beta
            self._betas.append(beta)
            self._v_cur = v
            self._V.append(v.copy())
            self.val = v + self.val * users
            if len(self._alphas) >= self.steps:
                self._finish_pass(ctx)

    def _finish_pass(self, ctx: Context) -> None:
        # Bidiagonal B: diag alphas, superdiag betas[:-1].
        j = len(self._alphas)
        B = np.zeros((j, j))
        B[np.arange(j), np.arange(j)] = self._alphas
        if j > 1:
            B[np.arange(j - 1), np.arange(1, j)] = self._betas[:j - 1]
        _, s, wt = np.linalg.svd(B)
        self.singular_values = s
        self._pass += 1
        if self._pass >= self.restarts:
            self._done = True
            return
        # Restart: seed v1 with the best Ritz right vector Σ w_i V_i.
        top = wt[0]
        v1 = np.zeros_like(self.val)
        for coef, basis_vec in zip(top, self._V):
            v1 += coef * basis_vec
        norm = float(np.linalg.norm(v1))
        if norm > 1e-12:
            v1 /= norm
        self._alphas.clear()
        self._betas.clear()
        self._U.clear()
        self._V.clear()
        self._u_prev = np.zeros_like(self.val)
        self._v_cur = v1
        self.val = v1.copy()

    def converged(self, ctx) -> bool:
        return self._done

    def result(self, ctx) -> dict:
        return {
            "singular_values": self.singular_values.tolist(),
            "top_singular_value": float(self.singular_values[0])
            if self.singular_values.size else 0.0,
        }
