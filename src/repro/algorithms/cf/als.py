"""Alternating Least Squares (ALS) matrix factorization.

Paper Section 2.1: ALS learns user- and item-factor vectors by
alternately solving regularized least-squares problems; Section 4.3
singles it out: "ALS behavior strongly depends on graph size and degree
distribution ... ALS converges much more slowly over larger graphs" and
its active fraction varies per graph — the only CF algorithm without a
constant 1.0 active fraction.

GAS formulation (GraphLab's ALS): an active vertex gathers, over its
rating edges, the Gram-matrix and right-hand-side contributions
``f_nbr f_nbrᵀ`` and ``r · f_nbr``, then solves the ``k×k`` normal
equations ``(Σ f f ᵀ + λ·deg·I) x = Σ r f``. A vertex whose factor moved
more than ``tol`` signals its neighbors (the opposite side), so the two
sides alternate *through activation*, and per-vertex convergence drains
the frontier — producing the graph-dependent active-fraction trends of
Figure 7.
"""

from __future__ import annotations

import numpy as np

from repro._util.errors import ValidationError
from repro.algorithms.registry import registered
from repro.engine.context import Context
from repro.engine.program import Direction, VertexProgram


@registered("als", domain="cf", abbrev="ALS",
            default_params={"k": 4, "reg": 0.08, "tol": 0.02},
            default_options={"max_iterations": 200})
class AlternatingLeastSquares(VertexProgram):
    """Regularized ALS with activation-driven alternation.

    Parameters
    ----------
    k:
        Factor dimension.
    reg:
        Tikhonov regularization weight λ (scaled by vertex degree).
    tol:
        Per-vertex factor-change (∞-norm) threshold below which a vertex
        stops signaling.
    """

    gather_dir = Direction.IN
    scatter_dir = Direction.OUT
    gather_op = "sum"

    def __init__(self, k: int = 4, reg: float = 0.08, tol: float = 0.02) -> None:
        if k < 1:
            raise ValidationError("k must be >= 1")
        if reg < 0:
            raise ValidationError("reg must be non-negative")
        self.k = k
        self.gather_width = k * k + k
        self.reg = reg
        self.tol = tol
        self.factors: np.ndarray | None = None
        self._delta: np.ndarray | None = None
        self._is_user: np.ndarray | None = None

    def init(self, ctx: Context) -> np.ndarray:
        n = ctx.n_vertices
        if ctx.graph.edge_weight is None:
            raise ValidationError("ALS requires a rating (weighted) graph")
        self._is_user = np.asarray(ctx.problem.require_input("is_user"),
                                   dtype=bool)
        self.factors = ctx.rng.normal(0.0, 0.1, size=(n, self.k)) + 0.2
        self._delta = np.zeros(n)
        # Users move first; items respond to their signals.
        return np.flatnonzero(self._is_user)

    def state_bytes(self, ctx: Context) -> int:
        return ctx.n_vertices * (self.k + 1) * 8

    def gather_edge(self, ctx, nbr, center, eid):
        f = self.factors[nbr]
        rating = ctx.graph.edge_weight[eid]
        gram = f[:, :, None] * f[:, None, :]
        return np.concatenate(
            [gram.reshape(nbr.size, self.k * self.k),
             rating[:, None] * f],
            axis=1,
        )

    def apply(self, ctx, vids, acc):
        k = self.k
        gram = acc[:, :k * k].reshape(vids.size, k, k)
        rhs = acc[:, k * k:]
        deg = ctx.graph.degree[vids].astype(np.float64)
        ridge = self.reg * np.maximum(deg, 1.0)
        lhs = gram + ridge[:, None, None] * np.eye(k)[None, :, :]
        new = np.linalg.solve(lhs, rhs[:, :, None])[:, :, 0]
        self._delta[vids] = np.abs(new - self.factors[vids]).max(axis=1)
        self.factors[vids] = new
        ctx.add_work(float(vids.size) * k ** 3)

    def scatter_edges(self, ctx, center, nbr, eid):
        return self._delta[center] > self.tol

    def result(self, ctx) -> dict:
        src, dst = ctx.graph.edge_endpoints()
        pred = (self.factors[src] * self.factors[dst]).sum(axis=1)
        err = pred - ctx.graph.edge_weight
        return {
            "rmse": float(np.sqrt((err ** 2).mean())) if err.size else 0.0,
            "k": self.k,
        }
