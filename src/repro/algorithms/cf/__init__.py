"""Collaborative Filtering algorithms (paper Section 2.1, domain CF).

All four operate on the bipartite user-item rating graph produced by
:func:`repro.generators.bipartite_rating_graph`: users are vertices
``0..n_users-1``, items the rest, and each edge's weight is a rating.
"""

from repro.algorithms.cf.als import AlternatingLeastSquares
from repro.algorithms.cf.nmf import NonNegativeMatrixFactorization
from repro.algorithms.cf.sgd import StochasticGradientDescent
from repro.algorithms.cf.svd import LanczosSVD

__all__ = [
    "AlternatingLeastSquares",
    "LanczosSVD",
    "NonNegativeMatrixFactorization",
    "StochasticGradientDescent",
]
