"""Stochastic Gradient Descent (SGD) matrix factorization.

Paper Section 2.1: "SGD is a gradient descent optimization method for
minimizing an objective function written as a sum of differentiable
functions"; Section 3.3 caps it at 20 iterations, and Section 4.5 notes
"SGD requires the most message transferring" — in the synchronous GAS
formulation every rating edge pushes a gradient to *both* endpoints
every iteration, so MSG = 2·|E| per iteration, the maximum in the suite.

Per iteration, vertex ``v`` gathers ``Σ_e (r_e − f_v·f_nbr) · f_nbr``
over its rating edges and takes a regularized step. (The synchronous
engine makes this a full-batch step per vertex; the paper's "stochastic"
character lives in the per-edge decomposition of the objective.)
"""

from __future__ import annotations

import numpy as np

from repro._util.errors import ValidationError
from repro.algorithms.registry import registered
from repro.engine.context import Context
from repro.engine.program import Direction, VertexProgram


@registered("sgd", domain="cf", abbrev="SGD",
            default_params={"k": 4, "lr": 0.02, "reg": 0.05, "decay": 0.1},
            default_options={"max_iterations": 20},
            always_active=True)
class StochasticGradientDescent(VertexProgram):
    """Gradient steps on both sides every iteration.

    Parameters
    ----------
    k:
        Factor dimension.
    lr:
        Base learning rate; iteration ``t`` uses ``lr / (1 + decay·t)``.
    reg:
        L2 regularization weight.
    decay:
        Learning-rate decay coefficient.
    """

    gather_dir = Direction.IN
    scatter_dir = Direction.OUT
    gather_op = "sum"

    def __init__(self, k: int = 4, lr: float = 0.02, reg: float = 0.05,
                 decay: float = 0.1) -> None:
        if k < 1:
            raise ValidationError("k must be >= 1")
        if lr <= 0:
            raise ValidationError("lr must be positive")
        self.k = k
        self.gather_width = k
        self.lr = lr
        self.reg = reg
        self.decay = decay
        self.factors: np.ndarray | None = None

    def init(self, ctx: Context) -> np.ndarray:
        if ctx.graph.edge_weight is None:
            raise ValidationError("SGD requires a rating (weighted) graph")
        n = ctx.n_vertices
        self.factors = ctx.rng.normal(0.0, 0.1, size=(n, self.k)) + 0.5
        return ctx.all_vertices()

    def state_bytes(self, ctx: Context) -> int:
        return ctx.n_vertices * self.k * 8

    def gather_edge(self, ctx, nbr, center, eid):
        f_nbr = self.factors[nbr]
        f_center = self.factors[center]
        err = ctx.graph.edge_weight[eid] - (f_center * f_nbr).sum(axis=1)
        return err[:, None] * f_nbr

    def apply(self, ctx, vids, acc):
        step = self.lr / (1.0 + self.decay * ctx.iteration)
        # Mean gradient over the vertex's ratings: scale-free in degree,
        # so hub users cannot blow the step up (a raw gradient sum
        # diverges on power-law rating graphs).
        deg = np.maximum(ctx.graph.degree[vids], 1).astype(np.float64)
        grad = acc / deg[:, None] - self.reg * self.factors[vids]
        self.factors[vids] += step * grad
        ctx.add_work(float(vids.size) * self.k * 4.0)

    def scatter_edges(self, ctx, center, nbr, eid):
        # Every edge carries a gradient both ways, every iteration.
        return np.ones(center.size, dtype=bool)

    def select_next_frontier(self, ctx, signaled):
        return ctx.all_vertices()

    def result(self, ctx) -> dict:
        src, dst = ctx.graph.edge_endpoints()
        pred = (self.factors[src] * self.factors[dst]).sum(axis=1)
        err = pred - ctx.graph.edge_weight
        return {
            "rmse": float(np.sqrt((err ** 2).mean())) if err.size else 0.0,
        }
