"""Non-negative Matrix Factorization (NMF).

Paper Section 2.1: "NMF is used to factorize non-negative matrices";
Section 3.3 caps NMF at 20 iterations because it does not converge
on its own, and Section 4.3 reports all vertices active for the entire
lifecycle with behavior similar to SVD.

Lee-Seung multiplicative updates adapted to GAS: every iteration one
*side* of the bipartite graph refreshes its factors with

``f ← f ⊙ (Σ r·f_nbr) / (Σ (f·f_nbr)·f_nbr + ε)``

while the other side holds still; the sides alternate by iteration
parity but — matching the paper — every vertex stays in the frontier
throughout, and only the updating side sends messages (MSG = |E| per
iteration).
"""

from __future__ import annotations

import numpy as np

from repro._util.errors import ValidationError
from repro.algorithms.registry import registered
from repro.engine.context import Context
from repro.engine.program import Direction, VertexProgram

_EPS = 1e-9


@registered("nmf", domain="cf", abbrev="NMF",
            default_params={"k": 4},
            default_options={"max_iterations": 20},
            always_active=True)
class NonNegativeMatrixFactorization(VertexProgram):
    """Alternating multiplicative updates (Lee-Seung)."""

    gather_dir = Direction.IN
    scatter_dir = Direction.OUT
    gather_op = "sum"

    def __init__(self, k: int = 4) -> None:
        if k < 1:
            raise ValidationError("k must be >= 1")
        self.k = k
        self.gather_width = 2 * k
        self.factors: np.ndarray | None = None
        self._is_user: np.ndarray | None = None

    def init(self, ctx: Context) -> np.ndarray:
        if ctx.graph.edge_weight is None:
            raise ValidationError("NMF requires a rating (weighted) graph")
        self._is_user = np.asarray(ctx.problem.require_input("is_user"),
                                   dtype=bool)
        n = ctx.n_vertices
        self.factors = np.abs(ctx.rng.normal(0.5, 0.15, size=(n, self.k))) + 0.05
        return ctx.all_vertices()

    def state_bytes(self, ctx: Context) -> int:
        return ctx.n_vertices * self.k * 8

    def _updating_users(self, ctx: Context) -> bool:
        return ctx.iteration % 2 == 0

    def gather_edge(self, ctx, nbr, center, eid):
        f_nbr = self.factors[nbr]
        f_center = self.factors[center]
        rating = ctx.graph.edge_weight[eid]
        numerator = rating[:, None] * f_nbr
        denominator = (f_center * f_nbr).sum(axis=1)[:, None] * f_nbr
        return np.concatenate([numerator, denominator], axis=1)

    def apply(self, ctx, vids, acc):
        side = self._is_user[vids] == self._updating_users(ctx)
        movers = vids[side]
        if movers.size:
            num = acc[side, :self.k]
            den = acc[side, self.k:]
            self.factors[movers] *= num / (den + _EPS)
            ctx.add_work(float(movers.size) * self.k * 3.0)

    def scatter_edges(self, ctx, center, nbr, eid):
        # Only the side that moved this iteration propagates.
        return self._is_user[center] == self._updating_users(ctx)

    def select_next_frontier(self, ctx, signaled):
        return ctx.all_vertices()

    def result(self, ctx) -> dict:
        src, dst = ctx.graph.edge_endpoints()
        pred = (self.factors[src] * self.factors[dst]).sum(axis=1)
        err = pred - ctx.graph.edge_weight
        return {
            "rmse": float(np.sqrt((err ** 2).mean())) if err.size else 0.0,
            "min_factor": float(self.factors.min()),
        }
