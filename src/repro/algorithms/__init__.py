"""The paper's fourteen graph algorithms as GAS vertex programs.

Domains (paper Section 2.1):

- **Graph Analytics**: Connected Components, K-Core decomposition,
  Triangle Counting, Single-Source Shortest Path, PageRank, Approximate
  Diameter;
- **Clustering**: K-Means;
- **Collaborative Filtering**: Alternating Least Squares, Non-negative
  Matrix Factorization, Stochastic Gradient Descent, Singular Value
  Decomposition (restarted Lanczos);
- **Other**: Jacobi, Loopy Belief Propagation, Dual Decomposition.

Use :func:`repro.algorithms.registry.create` (or the top-level
:func:`repro.run_computation`) to instantiate by name.
"""

from repro.algorithms.registry import (
    ALGORITHM_NAMES,
    AlgorithmInfo,
    create,
    info,
    iter_algorithms,
    register,
)

__all__ = [
    "ALGORITHM_NAMES",
    "AlgorithmInfo",
    "create",
    "info",
    "iter_algorithms",
    "register",
]
