"""Dual Decomposition (DD) for MAP inference on pairwise MRFs.

Paper Section 2.1: "Dual Decomposition solves a relaxation of difficult
optimization problems by decomposing them into simpler sub-problems";
Section 4.4: all vertices are active for all iterations, and DD is the
slowest-converging algorithm in the suite (three orders of magnitude
more iterations than TC).

Projected-subgradient DD (Komodakis et al.): every pairwise factor is a
*slave* subproblem; every variable is coordinated by the *master*.
Each iteration:

- **Gather** — variable ``v`` sums the dual variables λ of its incident
  factors (width ``n_states``).
- **Apply** — the master labels ``v`` by ``argmin(θ_v + Σ λ)``.
- **Scatter** — each factor solves its 2-variable subproblem
  ``argmin θ_uv(x_u,x_v) + λ_u(x_u) + λ_v(x_v)`` and takes a
  subgradient step pushing slave and master label distributions
  together, with a diminishing step size.

Duals are double-buffered like LBP's messages so both engine modes
produce identical traces. The run converges when every slave agrees
with the master labeling (primal-feasible) — or hits the iteration cap,
faithfully slow.
"""

from __future__ import annotations

import numpy as np

from repro._util.errors import ValidationError
from repro.algorithms.registry import registered
from repro.engine.context import Context
from repro.engine.program import Direction, VertexProgram


@registered("dd", domain="mrf", abbrev="DD",
            default_params={"step0": 0.2},
            default_options={"max_iterations": 500},
            always_active=True)
class DualDecomposition(VertexProgram):
    """Projected subgradient dual decomposition over edge slaves.

    Parameters
    ----------
    step0:
        Initial subgradient step size; iteration ``t`` uses
        ``step0 / √(t + 1)``.
    """

    gather_dir = Direction.IN
    scatter_dir = Direction.OUT
    gather_op = "sum"

    def __init__(self, step0: float = 0.5) -> None:
        if step0 <= 0:
            raise ValidationError("step0 must be positive")
        self.step0 = step0
        self.label: np.ndarray | None = None
        self._unary: np.ndarray | None = None
        self._tables: np.ndarray | None = None
        self._duals_cur: np.ndarray | None = None
        self._duals_next: np.ndarray | None = None
        self._staged_iter: int = -1
        self._disagreements: int = -1
        self.n_states: int = 0

    def init(self, ctx: Context) -> np.ndarray:
        mrf = ctx.problem.require_input("mrf")
        cards = np.unique(mrf.cardinalities)
        if cards.size != 1:
            raise ValidationError(
                "DD vertex program requires uniform variable cardinality"
            )
        self.n_states = int(cards[0])
        self.gather_width = self.n_states
        if ctx.n_edges != len(mrf.pair_tables):
            raise ValidationError(
                "MRF pairwise factors must map 1:1 onto graph edges "
                "(duplicate or self-loop factors present?)"
            )
        self._unary = np.stack(mrf.unary)
        self._tables = np.stack(mrf.pair_tables)
        m = ctx.n_edges
        self._duals_cur = np.zeros((m, 2, self.n_states))
        self._duals_next = self._duals_cur
        self.label = np.zeros(ctx.n_vertices, dtype=np.int64)
        self._staged_iter = -1
        self._disagreements = -1
        return ctx.all_vertices()

    def state_bytes(self, ctx: Context) -> int:
        s = max(self.n_states, 2)
        return (ctx.n_vertices * (8 + s * 8)
                + ctx.n_edges * (2 * s * 16 + s * s * 8))

    @staticmethod
    def _side(center: np.ndarray, nbr: np.ndarray) -> np.ndarray:
        # Side 0 is the canonical lo endpoint of the (undirected) edge.
        return np.where(center < nbr, 0, 1)

    def gather_edge(self, ctx, nbr, center, eid):
        return self._duals_cur[eid, self._side(center, nbr), :]

    def apply(self, ctx, vids, acc):
        scores = self._unary[vids] + acc
        self.label[vids] = np.argmin(scores, axis=1)
        ctx.add_work(float(vids.size) * self.n_states)

    def _stage(self, ctx: Context) -> None:
        if self._staged_iter != ctx.iteration:
            self._duals_next = self._duals_cur.copy()
            self._staged_iter = ctx.iteration
            self._iter_disagreements = 0

    def scatter_edges(self, ctx, center, nbr, eid):
        self._stage(ctx)
        s = self.n_states
        # Each edge is processed once, from its canonical lo endpoint.
        owner = center < nbr
        if owner.any():
            e = eid[owner]
            u = center[owner]
            v = nbr[owner]
            # Slave subproblem: argmin over S×S of table + duals.
            cost = (self._tables[e]
                    + self._duals_cur[e, 0, :, None]
                    + self._duals_cur[e, 1, None, :])
            flat = cost.reshape(e.size, s * s)
            best = np.argmin(flat, axis=1)
            slave_u = best // s
            slave_v = best % s
            step = self.step0 / np.sqrt(ctx.iteration + 1.0)
            disagree_u = slave_u != self.label[u]
            disagree_v = slave_v != self.label[v]
            # Subgradient: pull the dual toward master/slave agreement.
            self._duals_next[e, 0, slave_u] += step
            self._duals_next[e, 0, self.label[u]] -= step
            self._duals_next[e, 1, slave_v] += step
            self._duals_next[e, 1, self.label[v]] -= step
            self._iter_disagreements += int(disagree_u.sum()
                                            + disagree_v.sum())
            ctx.add_work(float(e.size) * s * s)
        # All variables stay coupled: every edge signals both ways.
        return np.ones(center.size, dtype=bool)

    def select_next_frontier(self, ctx, signaled):
        return ctx.all_vertices()

    def on_iteration_end(self, ctx):
        if self._staged_iter == ctx.iteration:
            self._duals_cur = self._duals_next
            self._disagreements = self._iter_disagreements

    def converged(self, ctx) -> bool:
        return self._disagreements == 0

    def result(self, ctx) -> dict:
        src, dst = ctx.graph.edge_endpoints()
        lo = np.minimum(src, dst)
        hi = np.maximum(src, dst)
        pair_energy = self._tables[np.arange(ctx.n_edges),
                                   self.label[lo], self.label[hi]].sum()
        unary_energy = self._unary[np.arange(ctx.n_vertices),
                                   self.label].sum()
        return {
            "primal_energy": float(unary_energy + pair_energy),
            "final_disagreements": int(max(self._disagreements, 0)),
        }
