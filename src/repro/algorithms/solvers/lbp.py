"""Loopy Belief Propagation (LBP) for pixel-lattice denoising.

Paper Section 2.1: "Loopy Belief Propagation is a discrete structured
prediction application"; Section 4.4: "LBP exhibits a sharp drop in the
number of active vertices over time" and "graph size has no effect on
the shape of active fraction" (Figure 11).

Max-sum BP in the log domain with a Potts agreement bonus: each vertex
(pixel) holds a belief over ``n_states`` labels; incoming messages live
on edges (one slot per direction). Gather sums incoming log-messages,
Apply refreshes the belief, and Scatter recomputes the outgoing message
on each edge of a vertex whose belief moved, signaling the neighbor
only if the message residual exceeds the tolerance — which is what
drains the frontier from the smooth interior outward.

Messages are double-buffered (read ``cur``, write ``next``, swap at
iteration end) so the vectorized and reference engines produce
identical synchronous traces.
"""

from __future__ import annotations

import numpy as np

from repro._util.errors import ValidationError
from repro.algorithms.registry import registered
from repro.engine.context import Context
from repro.engine.program import Direction, VertexProgram


@registered("lbp", domain="grid", abbrev="LBP",
            default_params={"smoothness": 1.0, "tol": 1e-3},
            default_options={"max_iterations": 200})
class LoopyBeliefPropagation(VertexProgram):
    """Synchronous max-sum BP with Potts potentials.

    Parameters
    ----------
    smoothness:
        Potts agreement bonus λ (log-domain) between neighboring pixels.
    tol:
        Belief/message residual below which a vertex stops propagating.
    """

    gather_dir = Direction.IN
    scatter_dir = Direction.OUT
    gather_op = "sum"

    def __init__(self, smoothness: float = 1.0, tol: float = 1e-3) -> None:
        if tol <= 0:
            raise ValidationError("tol must be positive")
        self.smoothness = smoothness
        self.tol = tol
        self.belief: np.ndarray | None = None
        self._prior_log: np.ndarray | None = None
        self._msg_cur: np.ndarray | None = None
        self._msg_next: np.ndarray | None = None
        self._changed: np.ndarray | None = None
        self._staged_iter: int = -1
        self.n_states: int = 0

    def init(self, ctx: Context) -> np.ndarray:
        priors = np.asarray(ctx.problem.require_input("priors"),
                            dtype=np.float64)
        if priors.ndim != 2 or priors.shape[0] != ctx.n_vertices:
            raise ValidationError("priors must be (n_vertices, n_states)")
        self.n_states = priors.shape[1]
        self.gather_width = self.n_states
        self._prior_log = np.log(np.clip(priors, 1e-12, None))
        self.belief = self._prior_log.copy()
        m = ctx.n_edges
        self._msg_cur = np.zeros((m, 2, self.n_states))
        self._msg_next = self._msg_cur
        self._changed = np.zeros(ctx.n_vertices, dtype=bool)
        self._staged_iter = -1
        return ctx.all_vertices()

    def state_bytes(self, ctx: Context) -> int:
        s = max(self.n_states, 4)
        return ctx.n_vertices * s * 16 + ctx.n_edges * 2 * s * 16

    @staticmethod
    def _incoming_dir(nbr: np.ndarray, center: np.ndarray) -> np.ndarray:
        # Direction slot 0 carries lo→hi, slot 1 carries hi→lo.
        return np.where(nbr < center, 0, 1)

    def gather_edge(self, ctx, nbr, center, eid):
        return self._msg_cur[eid, self._incoming_dir(nbr, center), :]

    def apply(self, ctx, vids, acc):
        new_belief = self._prior_log[vids] + acc
        delta = np.abs(new_belief - self.belief[vids]).max(axis=1)
        self.belief[vids] = new_belief
        # Everyone propagates once at startup so messages exist at all.
        self._changed[vids] = (delta > self.tol) | (ctx.iteration == 0)
        ctx.add_work(float(vids.size) * self.n_states)

    def _stage(self, ctx: Context) -> None:
        if self._staged_iter != ctx.iteration:
            self._msg_next = self._msg_cur.copy()
            self._staged_iter = ctx.iteration

    def scatter_edges(self, ctx, center, nbr, eid):
        self._stage(ctx)
        active = self._changed[center]
        if not active.any():
            return np.zeros(center.size, dtype=bool)
        c, nb, e = center[active], nbr[active], eid[active]
        # Remove the recipient's own contribution from the belief, then
        # push through the Potts potential.
        inc = self._msg_cur[e, self._incoming_dir(nb, c), :]
        tmp = self.belief[c] - inc
        new_msg = np.maximum(tmp.max(axis=1, keepdims=True),
                             tmp + self.smoothness)
        new_msg -= new_msg.max(axis=1, keepdims=True)
        out_dir = self._incoming_dir(c, nb)  # direction c → nb
        residual = np.abs(new_msg - self._msg_cur[e, out_dir, :]).max(axis=1)
        send = residual > self.tol
        self._msg_next[e[send], out_dir[send], :] = new_msg[send]
        mask = np.zeros(center.size, dtype=bool)
        mask[np.flatnonzero(active)[send]] = True
        return mask

    def on_iteration_end(self, ctx):
        if self._staged_iter == ctx.iteration:
            self._msg_cur = self._msg_next
        self._changed[:] = False

    def labels(self) -> np.ndarray:
        """MAP label per pixel under the current beliefs."""
        return np.argmax(self.belief, axis=1)

    def result(self, ctx) -> dict:
        out = {"n_states": self.n_states}
        if "truth" in ctx.problem.inputs:
            truth = np.asarray(ctx.problem.inputs["truth"])
            out["accuracy"] = float((self.labels() == truth).mean())
        return out
