"""Linear-solver and graphical-model algorithms (paper Section 2.1)."""

from repro.algorithms.solvers.dd import DualDecomposition
from repro.algorithms.solvers.jacobi import JacobiSolver
from repro.algorithms.solvers.lbp import LoopyBeliefPropagation

__all__ = [
    "DualDecomposition",
    "JacobiSolver",
    "LoopyBeliefPropagation",
]
