"""Jacobi iterative linear solver.

Paper Section 2.1: "Jacobi method is an iterative method to solve a
diagonally dominant system of linear equations"; Section 4.4: all
vertices stay active every iteration, and all metrics except EREAD
depend on problem scale.

Vertex ``i`` holds ``x_i``; edge ``j → i`` carries ``A_ij``. One
iteration is the textbook sweep ``x_i ← (b_i − Σ_{j≠i} A_ij x_j) / A_ii``
with the off-diagonal sum gathered over in-edges. Convergence is a
global ∞-norm test on the update.
"""

from __future__ import annotations

import numpy as np

from repro._util.errors import ValidationError
from repro.algorithms.registry import registered
from repro.engine.context import Context
from repro.engine.program import Direction, VertexProgram


@registered("jacobi", domain="matrix", abbrev="Jacobi",
            default_params={"tol": 1e-8}, always_active=True)
class JacobiSolver(VertexProgram):
    """Synchronous Jacobi sweeps on a diagonally dominant system.

    Parameters
    ----------
    tol:
        ∞-norm threshold on ``x_{t+1} − x_t`` for convergence.
    """

    gather_dir = Direction.IN
    scatter_dir = Direction.OUT
    gather_op = "sum"
    gather_width = 1
    apply_flops_per_vertex = 3.0
    #: Fused kernels: the off-diagonal row sum is Σ A_ij·x_j and every
    #: vertex always rebroadcasts (an unconditional "center" scatter).
    gather_shape = "vertex_times_edge"
    scatter_shape = "center"

    def __init__(self, tol: float = 1e-8) -> None:
        if tol <= 0:
            raise ValidationError("tol must be positive")
        self.tol = tol
        self.x: np.ndarray | None = None
        self._b: np.ndarray | None = None
        self._diag: np.ndarray | None = None
        self._max_delta: float = np.inf

    def init(self, ctx: Context) -> np.ndarray:
        if ctx.graph.edge_weight is None:
            raise ValidationError("Jacobi requires edge weights (matrix entries)")
        self._b = np.asarray(ctx.problem.require_input("b"), dtype=np.float64)
        self._diag = np.asarray(ctx.problem.require_input("diag"),
                                dtype=np.float64)
        if np.any(self._diag == 0):
            raise ValidationError("matrix diagonal contains zeros")
        self.x = np.zeros(ctx.n_vertices)
        self._max_delta = np.inf
        return ctx.all_vertices()

    def state_bytes(self, ctx: Context) -> int:
        return ctx.n_vertices * 8

    def gather_edge(self, ctx, nbr, center, eid):
        return ctx.graph.edge_weight[eid] * self.x[nbr]

    def gather_source(self, ctx):
        return self.x

    def apply(self, ctx, vids, acc):
        new_x = (self._b[vids] - acc.ravel()) / self._diag[vids]
        delta = float(np.abs(new_x - self.x[vids]).max()) if vids.size else 0.0
        # Track the global max update across (possibly per-vertex) calls.
        if ctx.iteration != getattr(self, "_delta_iter", -1):
            self._max_delta = 0.0
            self._delta_iter = ctx.iteration
        self._max_delta = max(self._max_delta, delta)
        self.x[vids] = new_x

    def scatter_edges(self, ctx, center, nbr, eid):
        # Everyone rebroadcasts its new x along the matrix structure.
        return np.ones(center.size, dtype=bool)

    def scatter_vertex_mask(self, ctx, vids):
        return np.ones(vids.size, dtype=bool)

    def select_next_frontier(self, ctx, signaled):
        return ctx.all_vertices()

    def converged(self, ctx) -> bool:
        return self._max_delta < self.tol

    def result(self, ctx) -> dict:
        out = {"max_delta": float(self._max_delta)}
        if "x_true" in ctx.problem.inputs:
            err = self.x - np.asarray(ctx.problem.inputs["x_true"])
            out["solution_error"] = float(np.abs(err).max())
        return out
