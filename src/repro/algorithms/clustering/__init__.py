"""Clustering algorithms (paper Section 2.1, domain Clustering)."""

from repro.algorithms.clustering.kmeans import KMeansClustering

__all__ = ["KMeansClustering"]
