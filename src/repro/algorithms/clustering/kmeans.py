"""K-Means clustering (KM) over a graph of data points.

Paper Sections 2.1/3.2: vertices are 2-D data points, edges are
pairwise rewards between points; KM partitions the points into ``k``
clusters by nearest mean. "All vertices remain active through the whole
lifecycle. In scatter, each vertex sends messages to neighbors when the
cluster assignment has changed."

Graph-regularized Lloyd iteration: a vertex's cluster objective is its
squared distance to each center minus a reward for agreeing with its
neighbors (the per-edge pairwise reward), so assignment both tracks the
centers and smooths over the graph — that is what couples KM's behavior
to the degree distribution (Figure 6). Centers are global aggregates
recomputed at the end of every iteration.

KM is the paper's slowest-converging Clustering workload (>700
iterations at cluster scale); at library scale the run is capped by the
engine's ``max_iterations`` (profile default) and typically converges
earlier.
"""

from __future__ import annotations

import numpy as np

from repro._util.errors import ValidationError
from repro.algorithms.registry import registered
from repro.engine.context import Context
from repro.engine.program import Direction, VertexProgram


@registered("kmeans", domain="clustering", abbrev="KM",
            default_params={"k": 4, "reward": 0.05, "center_tol": 1e-6},
            default_options={"max_iterations": 200},
            always_active=True)
class KMeansClustering(VertexProgram):
    """Lloyd's algorithm with neighbor-vote regularization.

    Parameters
    ----------
    k:
        Number of clusters.
    reward:
        Pairwise reward per neighbor voting for a cluster (0 recovers
        plain Lloyd).
    center_tol:
        Convergence threshold on the max center displacement.
    """

    gather_dir = Direction.IN
    scatter_dir = Direction.OUT
    gather_op = "sum"

    def __init__(self, k: int = 4, reward: float = 0.05,
                 center_tol: float = 1e-6) -> None:
        if k < 1:
            raise ValidationError("k must be >= 1")
        if reward < 0:
            raise ValidationError("reward must be non-negative")
        self.k = k
        self.gather_width = k
        self.reward = reward
        self.center_tol = center_tol
        self.points: np.ndarray | None = None
        self.assignment: np.ndarray | None = None
        self.centers: np.ndarray | None = None
        self._changed: np.ndarray | None = None
        self._stable: bool = False

    def init(self, ctx: Context) -> np.ndarray:
        self.points = np.asarray(ctx.problem.require_input("points"),
                                 dtype=np.float64)
        n = ctx.n_vertices
        if self.points.shape[0] != n:
            raise ValidationError("points must have one row per vertex")
        pick = ctx.rng.choice(n, size=min(self.k, n), replace=False)
        self.centers = self.points[pick].copy()
        if self.centers.shape[0] < self.k:  # degenerate tiny graphs
            pad = np.zeros((self.k - self.centers.shape[0],
                            self.points.shape[1]))
            self.centers = np.vstack([self.centers, pad])
        self.assignment = np.zeros(n, dtype=np.int64)
        # Initial nearest-center assignment (iteration -1 state).
        self.assignment = self._nearest(np.arange(n), None)
        self._changed = np.zeros(n, dtype=bool)
        return ctx.all_vertices()

    def state_bytes(self, ctx: Context) -> int:
        return ctx.n_vertices * (8 + 1) + self.k * 16

    def _nearest(self, vids: np.ndarray, votes: np.ndarray | None) -> np.ndarray:
        pts = self.points[vids]
        # Squared distances to each center: (|vids|, k).
        d2 = ((pts[:, None, :] - self.centers[None, :, :]) ** 2).sum(axis=2)
        if votes is not None:
            d2 = d2 - self.reward * votes
        return np.argmin(d2, axis=1).astype(np.int64)

    def gather_edge(self, ctx, nbr, center, eid):
        # One-hot neighbor votes for their current clusters.
        votes = np.zeros((nbr.size, self.k))
        votes[np.arange(nbr.size), self.assignment[nbr]] = 1.0
        return votes

    def apply(self, ctx, vids, acc):
        new_assign = self._nearest(vids, acc)
        changed = new_assign != self.assignment[vids]
        self.assignment[vids] = new_assign
        self._changed[vids] = changed
        ctx.add_work(float(vids.size) * self.k * 4.0)

    def scatter_edges(self, ctx, center, nbr, eid):
        return self._changed[center]

    def select_next_frontier(self, ctx, signaled):
        return ctx.all_vertices()

    def on_iteration_end(self, ctx):
        # Recompute centers from the synchronous assignment snapshot.
        old = self.centers.copy()
        for c in range(self.k):
            members = self.assignment == c
            if members.any():
                self.centers[c] = self.points[members].mean(axis=0)
        shift = float(np.abs(self.centers - old).max())
        self._stable = (not self._changed.any()) and shift < self.center_tol
        self._changed[:] = False

    def converged(self, ctx) -> bool:
        return self._stable

    def result(self, ctx) -> dict:
        d2 = ((self.points - self.centers[self.assignment]) ** 2).sum(axis=1)
        sizes = np.bincount(self.assignment, minlength=self.k)
        return {
            "inertia": float(d2.sum()),
            "cluster_sizes": sizes.tolist(),
        }
