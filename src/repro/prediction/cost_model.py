"""Linear behavior-cost models of graph-processing systems.

A system's per-iteration cost on a run is modeled as

``cost = w_updt·UPDT + w_work·WORK + w_eread·EREAD + w_msg·MSG + w_0``

with the behavior metrics in their raw per-edge form (not
corpus-normalized — a cost model must be corpus-independent). The
weights express the system's architecture: a communication-bound
distributed engine pays heavily per message, an out-of-core engine per
edge read, a JIT-compiled single-node engine mostly per unit of apply
work.

``fit_system_model`` recovers weights from (behavior, measured cost)
observations by non-negative least squares, so a model can be
calibrated against a handful of profiled runs and then *predict* the
cost of unseen (algorithm, graph) pairs — the paper's future-work
question.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.optimize

from repro._util.errors import ValidationError
from repro.behavior.metrics import METRIC_NAMES, BehaviorMetrics


@dataclass(frozen=True)
class SystemModel:
    """A graph-processing system as behavior-unit costs.

    Attributes
    ----------
    name:
        Display name, e.g. ``"sync-distributed"``.
    weights:
        Cost per unit of each behavior metric, keyed by
        :data:`~repro.behavior.metrics.METRIC_NAMES`.
    overhead:
        Fixed per-iteration cost (barrier/synchronization overhead).
    """

    name: str
    weights: dict[str, float] = field(default_factory=dict)
    overhead: float = 0.0

    def __post_init__(self) -> None:
        unknown = set(self.weights) - set(METRIC_NAMES)
        if unknown:
            raise ValidationError(f"unknown metric weights: {sorted(unknown)}")
        if any(w < 0 for w in self.weights.values()) or self.overhead < 0:
            raise ValidationError("cost weights must be non-negative")

    def weight_vector(self) -> np.ndarray:
        return np.asarray([self.weights.get(m, 0.0) for m in METRIC_NAMES])


#: Illustrative system archetypes used by examples and tests. The
#: absolute scales are arbitrary; only the *ratios* matter for ranking.
ARCHETYPES: dict[str, SystemModel] = {
    # Message-passing distributed engine: network-dominated.
    "sync-distributed": SystemModel(
        "sync-distributed",
        weights={"updt": 1.0, "work": 2e7, "eread": 0.5, "msg": 6.0},
        overhead=0.05,
    ),
    # Shared-memory multicore engine: compute-dominated, cheap messages.
    "shared-memory": SystemModel(
        "shared-memory",
        weights={"updt": 0.5, "work": 8e7, "eread": 0.8, "msg": 0.2},
        overhead=0.01,
    ),
    # Out-of-core single machine: edge traffic is I/O.
    "out-of-core": SystemModel(
        "out-of-core",
        weights={"updt": 0.2, "work": 1e7, "eread": 8.0, "msg": 0.5},
        overhead=0.02,
    ),
}


def predict_cost(model: SystemModel, metrics: BehaviorMetrics,
                 *, n_iterations: int | None = None) -> float:
    """Predicted cost of one run under a system model.

    Uses the run's mean per-iteration behavior times its iteration
    count (taken from ``metrics.n_iterations`` unless overridden).
    """
    iters = metrics.n_iterations if n_iterations is None else n_iterations
    if iters < 1:
        raise ValidationError("n_iterations must be >= 1")
    per_iter = float(model.weight_vector() @ metrics.as_array()) + model.overhead
    return per_iter * iters


def predict_ensemble_cost(model: SystemModel,
                          metrics: "list[BehaviorMetrics]") -> float:
    """Total predicted cost of running a whole ensemble on a system."""
    if not metrics:
        raise ValidationError("empty ensemble")
    return float(sum(predict_cost(model, m) for m in metrics))


def fit_system_model(
    name: str,
    metrics: "list[BehaviorMetrics]",
    costs: "list[float] | np.ndarray",
) -> SystemModel:
    """Calibrate a system model from observed run costs.

    Solves the non-negative least-squares problem
    ``min ||A w − cost/iters||`` where ``A`` stacks the runs' behavior
    vectors (plus a constant column for the overhead term).

    Parameters
    ----------
    metrics:
        Behavior metrics of the profiled runs.
    costs:
        Total observed cost per run (same units you want predictions in).
    """
    if len(metrics) != len(costs):
        raise ValidationError("metrics and costs must align")
    if len(metrics) < len(METRIC_NAMES) + 1:
        raise ValidationError(
            f"need at least {len(METRIC_NAMES) + 1} observations to fit "
            f"{len(METRIC_NAMES)} weights + overhead"
        )
    A = np.vstack([np.concatenate([m.as_array(), [1.0]]) for m in metrics])
    y = np.asarray(costs, dtype=np.float64) / np.asarray(
        [m.n_iterations for m in metrics], dtype=np.float64)
    # Column scaling keeps NNLS well-conditioned (WORK is ~1e-9 scale).
    scale = np.maximum(np.abs(A).max(axis=0), 1e-30)
    w_scaled, _residual = scipy.optimize.nnls(A / scale, y)
    w = w_scaled / scale
    return SystemModel(
        name=name,
        weights={m: float(w[i]) for i, m in enumerate(METRIC_NAMES)},
        overhead=float(w[-1]),
    )
