"""Behavior-based performance prediction (paper Section 7, future work).

"Can we model precisely a graph computation's behavior, and predict its
performance?" — this package takes the step the paper sketches: a
graph-processing *system* is modeled by how much each unit of behavior
costs it (per vertex update, per unit apply work, per edge read, per
message), so a run's predicted cost is a dot product with its behavior
metrics. Comparing two system models over an ensemble then reproduces
the paper's finding (1) mechanically: on narrow ensembles the predicted
winner flips with the ensemble choice, while behavior-diverse ensembles
rank systems stably.
"""

from repro.prediction.cost_model import (
    SystemModel,
    fit_system_model,
    predict_cost,
    predict_ensemble_cost,
)
from repro.prediction.comparison import ComparisonReport, compare_systems

__all__ = [
    "ComparisonReport",
    "SystemModel",
    "compare_systems",
    "fit_system_model",
    "predict_cost",
    "predict_ensemble_cost",
]
