"""System comparisons over ensembles — the paper's finding (1), made
mechanical.

"An ensemble drawn from a single algorithm or a single graph may
unfairly characterize a graph-processing system": with two system cost
models, :func:`compare_systems` scores both over an ensemble and
reports the winner per run and overall. Running it over single-
algorithm ensembles exhibits the conflicting-conclusions phenomenon of
the paper's Table 1 — different narrow ensembles crown different
winners — while high-coverage ensembles produce a stable verdict.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util.errors import ValidationError
from repro.behavior.metrics import BehaviorMetrics
from repro.prediction.cost_model import SystemModel, predict_cost


@dataclass(frozen=True)
class ComparisonReport:
    """Outcome of comparing two systems over one ensemble."""

    system_a: str
    system_b: str
    #: Per-run (tag, cost_a, cost_b) rows.
    rows: tuple
    wins_a: int
    wins_b: int
    total_cost_a: float
    total_cost_b: float

    @property
    def overall_winner(self) -> str:
        if self.total_cost_a == self.total_cost_b:
            return "tie"
        return (self.system_a if self.total_cost_a < self.total_cost_b
                else self.system_b)

    @property
    def split_decision(self) -> bool:
        """True when each system wins some runs — the regime where
        ensemble choice decides the published conclusion."""
        return self.wins_a > 0 and self.wins_b > 0

    def summary(self) -> str:
        lines = [
            f"{self.system_a} vs {self.system_b}: "
            f"{self.wins_a}-{self.wins_b} by runs; totals "
            f"{self.total_cost_a:.3g} vs {self.total_cost_b:.3g} "
            f"→ overall winner: {self.overall_winner}",
        ]
        for tag, ca, cb in self.rows:
            mark = "<" if ca < cb else ">"
            lines.append(f"  {str(tag):<40} {ca:>10.3g} {mark} {cb:<10.3g}")
        return "\n".join(lines)


def compare_systems(
    model_a: SystemModel,
    model_b: SystemModel,
    metrics: "list[BehaviorMetrics]",
    tags: "list | None" = None,
) -> ComparisonReport:
    """Score two system models over an ensemble of runs.

    Parameters
    ----------
    metrics:
        Raw behavior metrics of the ensemble's runs (per-edge,
        un-normalized — cost models are corpus-independent).
    tags:
        Optional run identities for the report rows.
    """
    if not metrics:
        raise ValidationError("empty ensemble")
    if tags is not None and len(tags) != len(metrics):
        raise ValidationError("tags must align with metrics")
    rows = []
    wins_a = wins_b = 0
    total_a = total_b = 0.0
    for i, m in enumerate(metrics):
        ca = predict_cost(model_a, m)
        cb = predict_cost(model_b, m)
        total_a += ca
        total_b += cb
        if ca < cb:
            wins_a += 1
        elif cb < ca:
            wins_b += 1
        rows.append((tags[i] if tags is not None else i, ca, cb))
    return ComparisonReport(
        system_a=model_a.name,
        system_b=model_b.name,
        rows=tuple(rows),
        wins_a=wins_a,
        wins_b=wins_b,
        total_cost_a=total_a,
        total_cost_b=total_b,
    )
