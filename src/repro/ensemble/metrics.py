"""Spread and coverage — the paper's two ensemble-quality metrics.

**Spread** (Section 5.1): the mean pairwise Euclidean distance between
the behavior vectors of an ensemble — "a form of dispersion"; tightly
clustered ensembles score low, dispersed ones high.

**Coverage**: the paper defines the average minimum distance from
uniform sample points of the space to the nearest ensemble member, yet
plots coverage *increasing* with ensemble size and calls high coverage
desirable — so the reported quantity must be a decreasing transform of
that distance. We expose both: :func:`mean_min_distance` (the raw
average-min-distance) and :func:`coverage` ``= diam(space) −
mean_min_distance`` (monotone in sampling quality, same optimizer
argmax, bounded by the space diameter). See DESIGN.md §2.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree
from scipy.spatial.distance import pdist

from repro._util.errors import ValidationError
from repro.behavior.space import BehaviorSpace
from repro.ensemble.budgets import REPORT_SAMPLES
from repro.ensemble.ensemble import Ensemble


def _as_matrix(ensemble: "Ensemble | np.ndarray",
               space: BehaviorSpace) -> np.ndarray:
    if isinstance(ensemble, Ensemble):
        return ensemble.matrix(space)
    if isinstance(ensemble, (list, tuple)) and ensemble and not np.isscalar(
            ensemble[0]) and hasattr(ensemble[0], "as_array"):
        return space.to_matrix(ensemble)
    mat = np.atleast_2d(np.asarray(ensemble, dtype=np.float64))
    if mat.shape[1] != space.dims:
        raise ValidationError(
            f"points have {mat.shape[1]} dims, space has {space.dims}"
        )
    return mat


def spread(ensemble: "Ensemble | np.ndarray",
           *, space: BehaviorSpace | None = None) -> float:
    """Mean pairwise Euclidean distance between ensemble members.

    Returns 0.0 for ensembles with fewer than two members.
    """
    space = space or BehaviorSpace()
    mat = _as_matrix(ensemble, space)
    if mat.shape[0] < 2:
        return 0.0
    return float(pdist(mat).mean())


def mean_min_distance(
    ensemble: "Ensemble | np.ndarray",
    *,
    space: BehaviorSpace | None = None,
    samples: np.ndarray | None = None,
    n_samples: int = REPORT_SAMPLES,
    seed: int = 0,
) -> float:
    """Average distance from uniform sample points to the nearest member.

    Parameters
    ----------
    samples:
        Pre-drawn sample points (reused across many evaluations by the
        search code); drawn fresh from ``space`` otherwise.
    n_samples, seed:
        Sampling budget when ``samples`` is not supplied — the
        *reporting* budget
        (:data:`~repro.ensemble.budgets.REPORT_SAMPLES`); the paper
        uses 10^6 points and Monte-Carlo error scales as 1/√n.
    """
    space = space or BehaviorSpace()
    mat = _as_matrix(ensemble, space)
    if mat.shape[0] == 0:
        raise ValidationError("mean_min_distance of an empty ensemble is undefined")
    if samples is None:
        samples = space.sample(n_samples, seed=seed)
    tree = cKDTree(mat)
    dists, _ = tree.query(samples, k=1, workers=-1)
    return float(dists.mean())


def coverage(
    ensemble: "Ensemble | np.ndarray",
    *,
    space: BehaviorSpace | None = None,
    samples: np.ndarray | None = None,
    n_samples: int = REPORT_SAMPLES,
    seed: int = 0,
) -> float:
    """Coverage = space diameter − mean minimum distance (higher is better).

    An ensemble that leaves whole regions of the behavior space empty
    has sample points far from any member, a large mean-min-distance,
    and therefore low coverage.
    """
    space = space or BehaviorSpace()
    mmd = mean_min_distance(ensemble, space=space, samples=samples,
                            n_samples=n_samples, seed=seed)
    return space.diameter - mmd
