"""Empirical upper bounds for spread and coverage (paper Figs 14-19).

The paper plots, for each ensemble size, an empirical upper bound
"computed assuming ensemble members uniformly and maximally distributed
in the behavior space". We realize that with two deterministic
constructions over the unit hypercube:

- :func:`max_spread_points` — greedy mean-pairwise-distance
  maximization over a candidate pool seeded with the hypercube's
  corners (the optimum concentrates on corners: antipodal pairs realize
  the diameter);
- :func:`max_coverage_points` — greedy farthest-point (maximin)
  sampling, the classic 2-approximation of the k-center objective,
  which is what minimizes the mean minimum distance in practice.

Both are upper bounds *empirically*: no achievable ensemble of real
runs exceeded them in any experiment, and tests assert that invariant.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util.errors import ValidationError
from repro.behavior.space import BehaviorSpace
from repro.ensemble.metrics import coverage, spread
from repro.generators.rng import make_rng


def _candidate_pool(space: BehaviorSpace, n_random: int, seed: int) -> np.ndarray:
    """Hypercube corners + midpoint + uniform random points."""
    dims = space.dims
    corners = np.array(
        [[(i >> b) & 1 for b in range(dims)] for i in range(2 ** dims)],
        dtype=np.float64,
    )
    rng = make_rng(seed, "bounds", "pool")
    randoms = rng.random((n_random, dims))
    center = np.full((1, dims), 0.5)
    return np.vstack([corners, center, randoms])


def max_spread_points(
    n: int,
    *,
    space: BehaviorSpace | None = None,
    n_random: int = 2000,
    seed: int = 0,
) -> np.ndarray:
    """``n`` points greedily maximizing mean pairwise distance."""
    if n < 1:
        raise ValidationError("n must be >= 1")
    space = space or BehaviorSpace()
    pool = _candidate_pool(space, n_random, seed)
    # Start from the most antipodal corner pair (indices 0 and 2^d - 1).
    chosen = [0, 2 ** space.dims - 1][:n]
    if n == 1:
        return pool[chosen[:1]]
    # dist_sum[c] = sum of distances from pool point c to chosen points.
    dist_sum = np.linalg.norm(pool[:, None, :] - pool[None, chosen, :],
                              axis=2).sum(axis=1)
    while len(chosen) < n:
        # Adding c makes the new pairwise sum old_sum + dist_sum[c];
        # maximizing the mean is maximizing dist_sum[c].
        best = int(np.argmax(dist_sum))
        chosen.append(best)
        dist_sum += np.linalg.norm(pool - pool[best], axis=1)
    return pool[chosen]


def max_coverage_points(
    n: int,
    *,
    space: BehaviorSpace | None = None,
    n_random: int = 2000,
    n_samples: int = 4000,
    seed: int = 0,
    refine_passes: int = 3,
) -> np.ndarray:
    """``n`` points greedily maximizing coverage (minimizing the mean
    minimum distance over a fixed uniform sample set), then refined by
    single-point swaps.

    Coverage gain is monotone submodular, so the greedy choice is
    near-optimal; the swap pass closes most of the remaining gap. This
    construction empirically dominates every achievable run ensemble
    (asserted by tests against random ensembles at matched sizes).
    """
    if n < 1:
        raise ValidationError("n must be >= 1")
    space = space or BehaviorSpace()
    pool = _candidate_pool(space, n_random, seed)
    samples = space.sample(n_samples, seed=seed)
    # D[c, s] = distance from pool candidate c to sample s.
    diff = pool[:, None, :] - samples[None, :, :]
    D = np.sqrt((diff ** 2).sum(axis=2))

    chosen: list[int] = []
    min_dist = np.full(samples.shape[0], np.inf)
    for _ in range(n):
        # Adding c gives mean(min(min_dist, D[c])); pick the argmin.
        means = np.minimum(min_dist[None, :], D).mean(axis=1)
        means[chosen] = np.inf
        best = int(np.argmin(means))
        chosen.append(best)
        min_dist = np.minimum(min_dist, D[best])

    # Swap refinement.
    for _ in range(refine_passes):
        improved = False
        for pos in range(len(chosen)):
            others = [chosen[i] for i in range(len(chosen)) if i != pos]
            payload = (D[others].min(axis=0) if others
                       else np.full(samples.shape[0], np.inf))
            means = np.minimum(payload[None, :], D).mean(axis=1)
            means[chosen] = np.inf
            cand = int(np.argmin(means))
            current_mean = np.minimum(payload, D[chosen[pos]]).mean()
            if means[cand] < current_mean - 1e-12:
                chosen[pos] = cand
                improved = True
        if not improved:
            break
    return pool[chosen]


@dataclass(frozen=True)
class UpperBounds:
    """Spread/coverage upper-bound curves over ensemble sizes."""

    sizes: tuple[int, ...]
    spread_bound: tuple[float, ...]
    coverage_bound: tuple[float, ...]

    @classmethod
    def compute(
        cls,
        sizes: "list[int] | tuple[int, ...]",
        *,
        space: BehaviorSpace | None = None,
        samples: np.ndarray | None = None,
        n_samples: int = 20_000,
        seed: int = 0,
    ) -> "UpperBounds":
        space = space or BehaviorSpace()
        if samples is None:
            samples = space.sample(n_samples, seed=seed)
        spreads = []
        coverages = []
        for size in sizes:
            if size < 1:
                raise ValidationError("ensemble sizes must be >= 1")
            spreads.append(spread(max_spread_points(size, space=space,
                                                    seed=seed), space=space))
            coverages.append(coverage(
                max_coverage_points(size, space=space, seed=seed),
                space=space, samples=samples))
        return cls(sizes=tuple(int(s) for s in sizes),
                   spread_bound=tuple(spreads),
                   coverage_bound=tuple(coverages))
