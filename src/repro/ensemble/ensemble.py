"""The Ensemble abstraction (paper Equation 3).

``Ensemble_k = {GC_1, GC_2, ..., GC_N}`` — a set of graph computations,
represented here by their behavior vectors (each tagged with the run's
identity). A benchmark suite *is* an ensemble; so is any ad-hoc set of
performance experiments, which is what lets the paper compare published
comparative studies on equal footing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro._util.errors import ValidationError
from repro.behavior.space import BehaviorSpace, BehaviorVector


@dataclass(frozen=True)
class Ensemble:
    """An immutable set of behavior-space points.

    Members keep their insertion order (search results sort by corpus
    index); duplicates are allowed — an ensemble is a multiset of runs.
    """

    members: tuple[BehaviorVector, ...]
    name: str = ""

    @classmethod
    def of(cls, vectors: Iterable[BehaviorVector], name: str = "") -> "Ensemble":
        return cls(members=tuple(vectors), name=name)

    @property
    def size(self) -> int:
        return len(self.members)

    def matrix(self, space: BehaviorSpace | None = None) -> np.ndarray:
        """Members stacked as an ``(N, dims)`` matrix."""
        space = space or BehaviorSpace()
        return space.to_matrix(self.members)

    def tags(self) -> list:
        return [m.tag for m in self.members]

    def algorithms(self) -> list[str]:
        """Algorithm names of members whose tag is (algorithm, ...)."""
        out = []
        for tag in self.tags():
            if isinstance(tag, (tuple, list)) and tag:
                out.append(str(tag[0]))
            elif tag is not None:
                out.append(str(tag))
        return out

    def with_member(self, vector: BehaviorVector) -> "Ensemble":
        return Ensemble(members=self.members + (vector,), name=self.name)

    def subset(self, indices: Iterable[int]) -> "Ensemble":
        indices = list(indices)
        if any(i < 0 or i >= self.size for i in indices):
            raise ValidationError("subset index out of range")
        return Ensemble(members=tuple(self.members[i] for i in indices),
                        name=self.name)

    def __iter__(self) -> Iterator[BehaviorVector]:
        return iter(self.members)

    def __len__(self) -> int:
        return self.size

    def describe(self) -> str:
        """Multi-line listing of members (paper Table 3 style)."""
        lines = [f"Ensemble {self.name or '(unnamed)'} — {self.size} members"]
        for m in self.members:
            tag = m.tag if m.tag is not None else "?"
            lines.append(
                f"  {tag}: <{m.updt:.3f}, {m.work:.3f}, "
                f"{m.eread:.3f}, {m.msg:.3f}>"
            )
        return "\n".join(lines)
