"""Ensemble analysis: spread, coverage, best-ensemble search, and
complexity-constrained benchmark design (paper Section 5)."""

from repro.ensemble.bounds import UpperBounds, max_coverage_points, max_spread_points
from repro.ensemble.constrained import (
    limit_to_algorithms,
    limit_to_structures,
    truncate_trace,
)
from repro.ensemble.ensemble import Ensemble
from repro.ensemble.frequency import algorithm_frequencies
from repro.ensemble.metrics import coverage, mean_min_distance, spread
from repro.ensemble.search import best_ensemble, best_ensemble_curve, top_k_ensembles

__all__ = [
    "Ensemble",
    "UpperBounds",
    "algorithm_frequencies",
    "best_ensemble",
    "best_ensemble_curve",
    "coverage",
    "limit_to_algorithms",
    "limit_to_structures",
    "max_coverage_points",
    "max_spread_points",
    "mean_min_distance",
    "spread",
    "top_k_ensembles",
    "truncate_trace",
]
