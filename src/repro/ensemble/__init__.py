"""Ensemble analysis: spread, coverage, best-ensemble search, and
complexity-constrained benchmark design (paper Section 5)."""

from repro.ensemble.bounds import UpperBounds, max_coverage_points, max_spread_points
from repro.ensemble.budgets import (
    REPORT_SAMPLES,
    SEARCH_SAMPLES,
    WIDE_SEARCH_SAMPLES,
)
from repro.ensemble.constrained import (
    limit_to_algorithms,
    limit_to_structures,
    truncate_trace,
)
from repro.ensemble.ensemble import Ensemble
from repro.ensemble.fast import FastEngine
from repro.ensemble.frequency import algorithm_frequencies
from repro.ensemble.metrics import coverage, mean_min_distance, spread
from repro.ensemble.search import (
    best_ensemble,
    best_ensemble_curve,
    best_subset,
    exhaustive_best,
    top_k_ensembles,
)

__all__ = [
    "Ensemble",
    "FastEngine",
    "REPORT_SAMPLES",
    "SEARCH_SAMPLES",
    "UpperBounds",
    "WIDE_SEARCH_SAMPLES",
    "algorithm_frequencies",
    "best_ensemble",
    "best_ensemble_curve",
    "best_subset",
    "coverage",
    "exhaustive_best",
    "limit_to_algorithms",
    "limit_to_structures",
    "max_coverage_points",
    "max_spread_points",
    "mean_min_distance",
    "spread",
    "top_k_ensembles",
    "truncate_trace",
]
