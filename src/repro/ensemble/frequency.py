"""Algorithm-contribution analysis via top-K ensembles (paper Section 5.5).

"To reliably assess the diversity contribution of an algorithm, we
would like to minimize shadowing effects ... we expand our
consideration of the best ensemble of size n to the 100 best ensembles
of size n ... within the 100 best ensembles, we use the frequency of
appearance of each algorithm as an indication of contribution to
diversity." (Figures 20-21.)
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro._util.errors import ValidationError
from repro.ensemble.search import SearchResult


@dataclass(frozen=True)
class FrequencyReport:
    """Per-algorithm appearance statistics over a set of ensembles."""

    metric: str
    n_ensembles: int
    #: Fraction of member *slots* occupied by each algorithm.
    slot_share: dict[str, float]
    #: Fraction of ensembles *containing* each algorithm at least once.
    presence: dict[str, float]

    def ranked(self) -> list[tuple[str, float]]:
        """Algorithms by slot share, descending; equal shares break
        alphabetically so rankings are deterministic."""
        return sorted(self.slot_share.items(),
                      key=lambda kv: (-kv[1], kv[0]))

    def top_algorithms(self, n: int = 3) -> list[str]:
        return [name for name, _share in self.ranked()[:n]]


def algorithm_frequencies(results: "list[SearchResult]") -> FrequencyReport:
    """Aggregate algorithm appearance over top-K search results.

    Member tags must carry the run identity as ``(algorithm, ...)`` —
    which is how :class:`~repro.experiments.corpus.BehaviorCorpus`
    labels its vectors.
    """
    if not results:
        raise ValidationError("no search results to analyze")
    slots: Counter[str] = Counter()
    containing: Counter[str] = Counter()
    total_slots = 0
    for res in results:
        algs = res.ensemble.algorithms()
        if len(algs) != res.ensemble.size:
            raise ValidationError(
                "ensemble members lack (algorithm, ...) tags; build vectors "
                "through BehaviorCorpus.vectors()"
            )
        slots.update(algs)
        containing.update(set(algs))
        total_slots += len(algs)
    metric = results[0].metric
    return FrequencyReport(
        metric=metric,
        n_ensembles=len(results),
        slot_share={a: c / total_slots for a, c in sorted(slots.items())},
        presence={a: c / len(results) for a, c in sorted(containing.items())},
    )
