"""Blocked, batched, parallel ensemble-search engine (DESIGN §15).

The legacy search in :mod:`repro.ensemble.search` materializes the full
pairwise matrix (``squareform(pdist(pool))`` — O(n²) float64, ~800 MB
at n = 10⁴) and walks beam states in a Python loop with a fancy-index
copy per state. This module provides the corpus-scale replacement:

- **Blocked distance kernels** — :class:`PairwiseBlocks` (column tiles
  of the pool×pool distances) and :class:`SampleBlocks` (row tiles of
  the pool×samples distances), built on demand through a byte-bounded
  LRU :class:`BlockCache` with hit/miss telemetry. Tiles may be stored
  float32 (``dtype``); every *score* is accumulated in float64.
- **Batched beam** — one masked matrix operation per level scores all
  beam states' extensions at once; selection is tie-stable (see
  :func:`tie_sorted`) so results are deterministic across NumPy
  versions and identical to the tie-stable legacy reference.
- **Incremental swap refinement** — per-position replacement scoring
  reuses a maintained column-sum (spread) or per-sample first/second
  minimum (coverage) instead of recomputing ``D[others].min(axis=0)``
  from scratch for every position.
- **Lazy-greedy submodular selection** (coverage only) — CELF-style
  priority queue of stale marginal gains with re-evaluation on pop;
  coverage is monotone submodular, so the greedy pick carries the
  classic ``(1 − 1/e)`` approximation guarantee.
- **Parallel scoring** — per-level fan-out of beam-state batches /
  candidate tiles over a thread pool (NumPy releases the GIL in the
  underlying kernels). Chunk boundaries are fixed by ``block_bytes``,
  never by ``workers``, so results are bitwise independent of the
  worker count.

Telemetry (all levels, cheap when off): ``ensemble_search_states_total``
counts scored beam states, ``ensemble_block_cache_total{kind,outcome}``
tracks tile reuse, ``ensemble_block_build_seconds`` times tile builds,
and ``ensemble_greedy_reevaluations`` histograms CELF re-evaluations
per selection step.
"""

from __future__ import annotations

import heapq
import os
import threading
import time
from collections import OrderedDict
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ThreadPoolExecutor

import numpy as np
from scipy.spatial.distance import cdist

from repro._util.errors import ValidationError
from repro.behavior.space import BehaviorSpace
from repro.obs.telemetry import get_telemetry

#: Default distance-tile size. 32 MiB keeps a tile comfortably inside
#: L3 on server parts while amortizing the Python dispatch per tile.
DEFAULT_BLOCK_BYTES = 32 << 20

#: Scores closer than this are treated as equal and ordered by index
#: tuple (lexicographically smallest first) — the tie-stability rule
#: shared by the fast and legacy paths.
TIE_TOL = 1e-12

#: Minimum improvement a swap must bring to be accepted (matches the
#: legacy refinement loop).
SWAP_TOL = 1e-12

VALID_PRECISIONS = ("float64", "float32")


def resolve_workers(workers: "int | None") -> int:
    """Normalize a ``workers`` argument to a concrete thread count."""
    if workers is None or workers in (0, 1):
        return 1
    if workers < 0:
        return max(1, os.cpu_count() or 1)
    return int(workers)


def resolve_precision(precision: "str | None") -> np.dtype:
    """Map a precision name to the tile storage dtype."""
    if precision is None:
        return np.dtype(np.float64)
    if precision not in VALID_PRECISIONS:
        raise ValidationError(
            f"precision must be one of {VALID_PRECISIONS}")
    return np.dtype(np.float32 if precision == "float32" else np.float64)


# -- tie-stable ordering ----------------------------------------------

def tie_sorted(items: "Sequence[tuple]") -> list:
    """Order ``(score, indices, ...)`` items best-first, tie-stably.

    Primary order is score descending. Scores within :data:`TIE_TOL`
    of the best score of their run ("head-anchored" groups over the
    descending sequence) are considered equal and ordered by their
    index tuple, lexicographically smallest first. Both search paths
    (fast and legacy) rank candidates through this rule, which makes
    results — in particular the top-k sets feeding the Figs 20-21
    frequency analysis — deterministic across NumPy versions.
    """
    ranked = sorted(items, key=lambda it: -it[0])
    out: list = []
    i = 0
    while i < len(ranked):
        head = ranked[i][0]
        g = i + 1
        while g < len(ranked) and head - ranked[g][0] <= TIE_TOL:
            g += 1
        if g - i > 1:
            out.extend(sorted(ranked[i:g], key=lambda it: it[1]))
        else:
            out.append(ranked[i])
        i = g
    return out


def tie_argmax(scores: np.ndarray) -> int:
    """Index of the best score; near-ties go to the smallest index."""
    j_best = int(np.argmax(scores))
    ties = np.flatnonzero(scores >= scores[j_best] - TIE_TOL)
    return int(ties.min())


def boundary_positions(scores: np.ndarray, width: int) -> np.ndarray:
    """Positions that can belong to the tie-stable top ``width``.

    Keeps every entry scoring within :data:`TIE_TOL` of the
    ``width``-th best, so a later tie-stable global ordering over the
    union of per-chunk boundaries selects exactly the same set it
    would have selected over all candidates.
    """
    scores = np.asarray(scores)
    finite = scores > -np.inf
    n_finite = int(np.count_nonzero(finite))
    if n_finite == 0:
        return np.empty(0, dtype=np.intp)
    k = min(width, n_finite)
    cut = np.partition(scores, scores.size - k)[scores.size - k]
    return np.flatnonzero(finite & (scores >= cut - TIE_TOL))


def grouped_top(scores: np.ndarray, parent: np.ndarray, cand: np.ndarray,
                width: int) -> np.ndarray:
    """Tie-stable top-``width`` positions among extension candidates.

    ``parent`` must index states kept in lexicographic tuple order, so
    comparing ``(parent, cand)`` pairs is equivalent to comparing the
    full extended index tuples. Semantics match :func:`tie_sorted`.
    """
    order = np.lexsort((cand, parent, -scores))
    ranked = scores[order]
    out: list[np.ndarray] = []
    total = 0
    i = 0
    while i < ranked.size and total < width:
        head = ranked[i]
        g = i + 1
        while g < ranked.size and head - ranked[g] <= TIE_TOL:
            g += 1
        grp = order[i:g]
        if grp.size > 1:
            grp = grp[np.lexsort((cand[grp], parent[grp]))]
        out.append(grp)
        total += grp.size
        i = g
    if not out:
        return np.empty(0, dtype=np.intp)
    return np.concatenate(out)[:width].astype(np.intp, copy=False)


# -- blocked distance kernels -----------------------------------------

class BlockCache:
    """Byte-bounded LRU of distance tiles with hit/miss telemetry.

    Thread-safe: scoring threads may fetch tiles concurrently; a miss
    builds the tile under the lock (builds are serialized, scoring is
    not). At least one tile is always retained so the current consumer
    never sees its block evicted mid-use.
    """

    def __init__(self, budget_bytes: int, kind: str) -> None:
        self.budget = max(int(budget_bytes), 0)
        self.kind = kind
        self.hits = 0
        self.misses = 0
        self._blocks: "OrderedDict[int, np.ndarray]" = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()

    def get(self, key: int, build: "Callable[[int], np.ndarray]") -> np.ndarray:
        tel = get_telemetry()
        with self._lock:
            blk = self._blocks.get(key)
            if blk is not None:
                self._blocks.move_to_end(key)
                self.hits += 1
                if tel.enabled:
                    tel.inc("ensemble_block_cache_total",
                            kind=self.kind, outcome="hit")
                return blk
            self.misses += 1
            if tel.enabled:
                tel.inc("ensemble_block_cache_total",
                        kind=self.kind, outcome="miss")
            started = time.perf_counter()
            blk = build(key)
            if tel.enabled:
                tel.observe("ensemble_block_build_seconds",
                            time.perf_counter() - started, kind=self.kind)
            self._blocks[key] = blk
            self._bytes += blk.nbytes
            while self._bytes > self.budget and len(self._blocks) > 1:
                _, old = self._blocks.popitem(last=False)
                self._bytes -= old.nbytes
            return blk

    @property
    def cached_bytes(self) -> int:
        return self._bytes


class PairwiseBlocks:
    """Column tiles of the pool's pairwise Euclidean distance matrix.

    Every consumer of pairwise distances (beam extension, swap
    refinement, from-scratch scoring) wants *all rows × a few columns*
    — the columns of current ensemble members — so tiles are
    column-major: tile ``b`` holds ``dist(X, X[j0:j1])`` for a
    contiguous column range sized to ``block_bytes``.
    """

    def __init__(self, points: np.ndarray, *,
                 block_bytes: "int | None" = None,
                 dtype: "np.dtype | type" = np.float64,
                 cache_bytes: "int | None" = None) -> None:
        self.X = np.ascontiguousarray(points, dtype=np.float64)
        self.n = self.X.shape[0]
        self.dtype = np.dtype(dtype)
        block_bytes = int(block_bytes or DEFAULT_BLOCK_BYTES)
        if block_bytes < 1:
            raise ValidationError("block_bytes must be >= 1")
        row_bytes = max(self.n, 1) * self.dtype.itemsize
        self.cols_per_block = max(1, block_bytes // row_bytes)
        self.n_blocks = -(-max(self.n, 1) // self.cols_per_block)
        self.cache = BlockCache(cache_bytes or 8 * block_bytes, "pairwise")

    def _build(self, bid: int) -> np.ndarray:
        j0 = bid * self.cols_per_block
        j1 = min(self.n, j0 + self.cols_per_block)
        blk = cdist(self.X, self.X[j0:j1])
        return blk.astype(self.dtype, copy=False)

    def block(self, bid: int) -> "tuple[int, int, np.ndarray]":
        """``(j0, j1, dist(X, X[j0:j1]))`` for tile ``bid``."""
        j0 = bid * self.cols_per_block
        j1 = min(self.n, j0 + self.cols_per_block)
        return j0, j1, self.cache.get(bid, self._build)

    def columns(self, idx: "Iterable[int]") -> np.ndarray:
        """Distances from every pool point to the given members."""
        idx = np.asarray(list(idx) if not isinstance(idx, np.ndarray)
                         else idx, dtype=np.intp)
        out = np.empty((self.n, idx.size), dtype=self.dtype)
        bids = idx // self.cols_per_block
        for bid in np.unique(bids):
            _, _, blk = self.block(int(bid))
            sel = np.flatnonzero(bids == bid)
            out[:, sel] = blk[:, idx[sel] - int(bid) * self.cols_per_block]
        return out


class SampleBlocks:
    """Row tiles of the pool-to-samples distance matrix.

    Coverage scoring sweeps candidate rows against the sample cloud,
    so tiles are row-major: tile ``b`` holds
    ``dist(X[i0:i1], samples)`` for a contiguous candidate range.
    """

    def __init__(self, points: np.ndarray, samples: np.ndarray, *,
                 block_bytes: "int | None" = None,
                 dtype: "np.dtype | type" = np.float64,
                 cache_bytes: "int | None" = None) -> None:
        self.X = np.ascontiguousarray(points, dtype=np.float64)
        self.samples = np.ascontiguousarray(samples, dtype=np.float64)
        self.n = self.X.shape[0]
        self.m = self.samples.shape[0]
        self.dtype = np.dtype(dtype)
        block_bytes = int(block_bytes or DEFAULT_BLOCK_BYTES)
        if block_bytes < 1:
            raise ValidationError("block_bytes must be >= 1")
        row_bytes = max(self.m, 1) * self.dtype.itemsize
        self.rows_per_block = max(1, block_bytes // row_bytes)
        self.n_blocks = -(-max(self.n, 1) // self.rows_per_block)
        self.cache = BlockCache(cache_bytes or 8 * block_bytes, "samples")

    def _build(self, bid: int) -> np.ndarray:
        i0 = bid * self.rows_per_block
        i1 = min(self.n, i0 + self.rows_per_block)
        blk = cdist(self.X[i0:i1], self.samples)
        return blk.astype(self.dtype, copy=False)

    def block(self, bid: int) -> "tuple[int, int, np.ndarray]":
        """``(i0, i1, dist(X[i0:i1], samples))`` for tile ``bid``."""
        i0 = bid * self.rows_per_block
        i1 = min(self.n, i0 + self.rows_per_block)
        return i0, i1, self.cache.get(bid, self._build)

    def tiles(self) -> "Iterable[tuple[int, int, np.ndarray]]":
        for bid in range(self.n_blocks):
            yield self.block(bid)

    def rows(self, idx: "Iterable[int]") -> np.ndarray:
        """Distance rows for the given pool members, ``(len(idx), m)``."""
        idx = np.asarray(list(idx) if not isinstance(idx, np.ndarray)
                         else idx, dtype=np.intp)
        out = np.empty((idx.size, self.m), dtype=self.dtype)
        bids = idx // self.rows_per_block
        for bid in np.unique(bids):
            i0, _, blk = self.block(int(bid))
            sel = np.flatnonzero(bids == bid)
            out[sel] = blk[idx[sel] - i0]
        return out


# -- the engine --------------------------------------------------------

class FastEngine:
    """Incremental, batched spread/coverage search over a fixed pool.

    Drop-in scorer behind :func:`repro.ensemble.search.best_ensemble`
    and friends: beam results are selection-identical to the
    tie-stable legacy reference, with scores accumulated in float64
    regardless of the tile storage ``dtype``.
    """

    def __init__(self, pool: np.ndarray, metric: str, *,
                 space: BehaviorSpace,
                 samples: "np.ndarray | None",
                 n_samples: int,
                 seed: int,
                 block_bytes: "int | None" = None,
                 dtype: "np.dtype | type" = np.float64,
                 workers: "int | None" = None) -> None:
        if metric not in ("spread", "coverage"):
            raise ValidationError(
                "metric must be one of ('spread', 'coverage')")
        self.metric = metric
        self.pool = np.ascontiguousarray(pool, dtype=np.float64)
        self.n = self.pool.shape[0]
        self.space = space
        self.diam = space.diameter
        self.block_bytes = int(block_bytes or DEFAULT_BLOCK_BYTES)
        self.workers = resolve_workers(workers)
        if metric == "spread":
            self.pair = PairwiseBlocks(self.pool,
                                       block_bytes=self.block_bytes,
                                       dtype=dtype)
            self.samp = None
            self.m = 0
        else:
            if samples is None:
                samples = space.sample(n_samples, seed=seed)
            self.samp = SampleBlocks(self.pool, samples,
                                     block_bytes=self.block_bytes,
                                     dtype=dtype)
            self.pair = None
            self.m = self.samp.m

    # -- shared helpers ------------------------------------------------

    def _map(self, fn, items: list) -> list:
        """Map ``fn`` over chunks, threaded when ``workers`` > 1.

        Chunking never depends on the worker count and every chunk
        computes an independent output, so results are bitwise equal
        to the serial path.
        """
        if self.workers <= 1 or len(items) <= 1:
            return [fn(item) for item in items]
        with ThreadPoolExecutor(
                max_workers=min(self.workers, len(items))) as pool:
            return list(pool.map(fn, items))

    def _count_states(self, n_states: int) -> None:
        tel = get_telemetry()
        if tel.enabled:
            tel.inc("ensemble_search_states_total", float(n_states),
                    metric=self.metric, engine="fast")

    def score_indices(self, indices: "Iterable[int]") -> float:
        """From-scratch float64 score of an arbitrary index set."""
        idx = np.asarray(list(indices), dtype=np.intp)
        if self.metric == "spread":
            if idx.size < 2:
                return 0.0
            sub = self.pair.columns(idx)[idx].astype(np.float64, copy=False)
            return float(sub.sum() / (idx.size * (idx.size - 1)))
        payload = self.samp.rows(idx).min(axis=0)
        return self.diam - float(payload.mean(dtype=np.float64))

    # -- beam ----------------------------------------------------------

    def beam(self, size: int, beam_width: int) -> "list[tuple[float, tuple]]":
        """Tie-stable beam search; returns ``(score, indices)`` states."""
        if size < 1:
            raise ValidationError("size must be >= 1")
        if size > self.n:
            raise ValidationError(f"cannot pick {size} of {self.n} runs")
        if size == 1:
            self._count_states(self.n)
            if self.metric == "spread":
                return [(0.0, (i,)) for i in range(self.n)]
            sums = self._coverage_row_sums()
            return [(self.diam - sums[i] / self.m, (i,))
                    for i in range(self.n)]
        if self.metric == "spread":
            return self._beam_spread(size, beam_width)
        return self._beam_coverage(size, beam_width)

    # -- spread beam ---------------------------------------------------

    def _beam_spread(self, size, beam_width):
        members, sums = self._level1_spread(size, beam_width)
        for length in range(2, size):
            members, sums = self._extend_spread(members, sums, length,
                                                size, beam_width)
        denom = size * (size - 1)
        return [(2.0 * float(sums[b]) / denom, tuple(int(v) for v in row))
                for b, row in enumerate(members)]

    def _level1_spread(self, size, beam_width):
        """Rank all feasible pairs straight off the distance tiles."""
        n = self.n
        j_max = n - size + 1  # highest feasible second member
        self._count_states(n)
        rows_idx = np.arange(n)
        found: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []

        def scan(bid):
            j0, j1, blk = self.pair.block(bid)
            hi = min(j1, j_max + 1)
            if hi <= j0:
                return None
            cols = np.arange(j0, hi)
            scores = blk[:, :hi - j0].astype(np.float64, copy=True)
            # feasible pairs are strictly upper-triangular: i < j
            scores[rows_idx[:, None] >= cols[None, :]] = -np.inf
            keep = boundary_positions(scores.ravel(), beam_width)
            if keep.size == 0:
                return None
            i_arr = keep // cols.size
            j_arr = cols[keep % cols.size]
            return scores.ravel()[keep], i_arr, j_arr

        for part in self._map(scan, list(range(self.pair.n_blocks))):
            if part is not None:
                found.append(part)
        if not found:
            raise ValidationError(
                f"pool of {n} cannot form an ensemble of size {size}")
        scores = np.concatenate([p[0] for p in found])
        i_arr = np.concatenate([p[1] for p in found])
        j_arr = np.concatenate([p[2] for p in found])
        top = grouped_top(scores, i_arr, j_arr, beam_width)
        i_top, j_top, s_top = i_arr[top], j_arr[top], scores[top]
        order = np.lexsort((j_top, i_top))  # lexicographic state order
        members = np.stack([i_top[order], j_top[order]], axis=1)
        return members, s_top[order]

    def _extend_spread(self, members, sums, length, size, beam_width):
        """Score every state × candidate in one batched gather-sum."""
        n = self.n
        n_states = members.shape[0]
        self._count_states(n_states)
        uniq, inverse = np.unique(members, return_inverse=True)
        cols = inverse.reshape(members.shape).astype(np.intp)
        dist_u = self.pair.columns(uniq)  # (n, u)
        j_max = n - size + length  # feasibility bound for the next pick
        last = members[:, -1]
        k = length + 1
        norm = 2.0 / (k * (k - 1))
        row_bytes = max(1, n_states * length * 8)
        chunk = max(1, self.block_bytes // row_bytes)
        chunks = [(r0, min(n, r0 + chunk)) for r0 in range(0, n, chunk)]

        def score_chunk(bounds):
            r0, r1 = bounds
            # adds[c, b] = Σ_l dist(candidate c, member l of state b)
            adds = dist_u[r0:r1][:, cols].sum(axis=2, dtype=np.float64)
            totals = adds + sums[None, :]
            cand = np.arange(r0, r1)
            feasible = (cand[:, None] > last[None, :]) \
                & (cand[:, None] <= j_max)
            # select on *normalized* scores so the tie tolerance acts
            # on the same scale as the legacy path
            scores = np.where(feasible, norm * totals, -np.inf)
            keep = boundary_positions(scores.ravel(), beam_width)
            if keep.size == 0:
                return None
            b_arr = (keep % n_states).astype(np.intp)
            c_arr = cand[keep // n_states]
            return scores.ravel()[keep], totals.ravel()[keep], b_arr, c_arr

        parts = [p for p in self._map(score_chunk, chunks) if p is not None]
        if not parts:
            raise ValidationError(
                f"pool of {n} cannot form an ensemble of size {size}")
        scores = np.concatenate([p[0] for p in parts])
        totals = np.concatenate([p[1] for p in parts])
        b_arr = np.concatenate([p[2] for p in parts])
        c_arr = np.concatenate([p[3] for p in parts])
        top = grouped_top(scores, b_arr, c_arr, beam_width)
        b_top, c_top = b_arr[top], c_arr[top]
        order = np.lexsort((c_top, b_top))
        b_top, c_top = b_top[order], c_top[order]
        new_members = np.concatenate(
            [members[b_top], c_top[:, None]], axis=1)
        return new_members, totals[top][order]

    # -- coverage beam -------------------------------------------------

    def _coverage_row_sums(self) -> np.ndarray:
        sums = np.empty(self.n, dtype=np.float64)

        def tile_sum(bid):
            i0, i1, blk = self.samp.block(bid)
            sums[i0:i1] = blk.sum(axis=1, dtype=np.float64)

        self._map(tile_sum, list(range(self.samp.n_blocks)))
        return sums

    def _beam_coverage(self, size, beam_width):
        members, payloads = self._level1_coverage(size, beam_width)
        for length in range(2, size):
            members, payloads = self._extend_coverage(
                members, payloads, length, size, beam_width)
        sums = payloads.sum(axis=1, dtype=np.float64)
        return [(self.diam - float(sums[b]) / self.m,
                 tuple(int(v) for v in row))
                for b, row in enumerate(members)]

    def _pairmin_sums(self, rows_a: np.ndarray,
                      rows_b: np.ndarray) -> np.ndarray:
        """``out[a, b] = Σ_s min(rows_a[a, s], rows_b[b, s])`` tiled.

        The broadcast temporary is transient, so it gets a few times
        the tile budget — fewer, larger kernels beat strict residency.
        """
        na, nb = rows_a.shape[0], rows_b.shape[0]
        out = np.zeros((na, nb), dtype=np.float64)
        step = max(1, (4 * self.block_bytes)
                   // max(1, na * nb * rows_a.dtype.itemsize))
        for s0 in range(0, self.m, step):
            s1 = min(self.m, s0 + step)
            out += np.minimum(rows_a[:, None, s0:s1],
                              rows_b[None, :, s0:s1]
                              ).sum(axis=2, dtype=np.float64)
        return out

    def _level1_coverage(self, size, beam_width):
        n = self.n
        j_max = n - size + 1
        self._count_states(n)
        # chunk pairs (i-block, j-block); a chunk edge is sized so one
        # member-row block stays within the tile budget, and j-chunks
        # start past the i-chunk's diagonal (feasible pairs have i < j).
        chunk = max(1, self.block_bytes // max(1, self.m * 8))
        i_chunks = [(a, min(n, min(a + chunk, j_max)))
                    for a in range(0, min(n, j_max), chunk)]
        j_hi = j_max + 1
        found = []
        for i0, i1 in i_chunks:
            if i1 <= i0:
                continue
            rows_i = self.samp.rows(np.arange(i0, i1))

            def scan(bounds, rows_i=rows_i, i0=i0):
                jc0, jc1 = bounds
                rows_j = self.samp.rows(np.arange(jc0, jc1))
                sums = self._pairmin_sums(rows_i, rows_j)
                scores = self.diam - sums / self.m
                i_grid = np.arange(i0, i0 + rows_i.shape[0])
                j_grid = np.arange(jc0, jc1)
                scores[i_grid[:, None] >= j_grid[None, :]] = -np.inf
                keep = boundary_positions(scores.ravel(), beam_width)
                if keep.size == 0:
                    return None
                i_arr = i_grid[keep // j_grid.size]
                j_arr = j_grid[keep % j_grid.size]
                return scores.ravel()[keep], i_arr, j_arr

            j_chunks = [(a, min(j_hi, a + chunk))
                        for a in range(i0 + 1, j_hi, chunk)]
            for part in self._map(scan, j_chunks):
                if part is not None:
                    found.append(part)
        if not found:
            raise ValidationError(
                f"pool of {n} cannot form an ensemble of size {size}")
        scores = np.concatenate([p[0] for p in found])
        i_arr = np.concatenate([p[1] for p in found])
        j_arr = np.concatenate([p[2] for p in found])
        top = grouped_top(scores, i_arr, j_arr, beam_width)
        i_top, j_top = i_arr[top], j_arr[top]
        order = np.lexsort((j_top, i_top))
        i_top, j_top = i_top[order], j_top[order]
        members = np.stack([i_top, j_top], axis=1)
        payloads = np.minimum(self.samp.rows(i_top), self.samp.rows(j_top))
        return members, payloads

    def _extend_coverage(self, members, payloads, length, size, beam_width):
        n = self.n
        n_states = members.shape[0]
        self._count_states(n_states)
        j_max = n - size + length
        last = members[:, -1]
        found = []
        for bid in range(self.samp.n_blocks):
            i0, i1, blk = self.samp.block(bid)
            hi = min(i1, j_max + 1)
            if hi <= i0:
                continue
            tile = blk[:hi - i0]
            sums = np.empty((hi - i0, n_states), dtype=np.float64)

            # per-state contiguous min+sum over the whole tile: large
            # kernels, disjoint output columns — safe to fan out
            def state_col(b, tile=tile, sums=sums):
                sums[:, b] = np.minimum(tile, payloads[b][None, :]) \
                    .sum(axis=1, dtype=np.float64)

            self._map(state_col, list(range(n_states)))
            scores = self.diam - sums / self.m
            cand = np.arange(i0, hi)
            scores[cand[:, None] <= last[None, :]] = -np.inf
            keep = boundary_positions(scores.ravel(), beam_width)
            if keep.size == 0:
                continue
            b_arr = (keep % n_states).astype(np.intp)
            c_arr = cand[keep // n_states]
            found.append((scores.ravel()[keep], b_arr, c_arr))
        if not found:
            raise ValidationError(
                f"pool of {n} cannot form an ensemble of size {size}")
        scores = np.concatenate([p[0] for p in found])
        b_arr = np.concatenate([p[1] for p in found])
        c_arr = np.concatenate([p[2] for p in found])
        top = grouped_top(scores, b_arr, c_arr, beam_width)
        b_top, c_top = b_arr[top], c_arr[top]
        order = np.lexsort((c_top, b_top))
        b_top, c_top = b_top[order], c_top[order]
        new_members = np.concatenate(
            [members[b_top], c_top[:, None]], axis=1)
        new_payloads = np.minimum(payloads[b_top],
                                  self.samp.rows(c_top))
        return new_members, new_payloads

    # -- swap refinement ----------------------------------------------

    def refine(self, indices: "Iterable[int]",
               max_passes: int = 8) -> "tuple[tuple[int, ...], float]":
        """Incremental hill-climb by single-member swaps (tie-stable)."""
        if self.metric == "spread":
            return self._refine_spread(tuple(indices), max_passes)
        return self._refine_coverage(tuple(indices), max_passes)

    def _refine_spread(self, indices, max_passes):
        current = list(indices)
        k = len(current)
        best_score = self.score_indices(current)
        if k < 2:
            return tuple(sorted(current)), best_score
        denom = k * (k - 1)
        for _ in range(max_passes):
            improved = False
            cols = self.pair.columns(current).astype(np.float64, copy=False)
            colsum = cols.sum(axis=1, dtype=np.float64)
            cur_idx = np.asarray(current, dtype=np.intp)
            pairsum = float(cols[cur_idx].sum()) / 2.0
            for pos in range(k):
                r = current[pos]
                base = pairsum - float(colsum[r])
                adds = colsum - cols[:, pos]
                scores = 2.0 * (base + adds) / denom
                scores[current] = -np.inf
                j = tie_argmax(scores)
                if scores[j] > best_score + SWAP_TOL:
                    new_col = self.pair.columns([j])[:, 0].astype(
                        np.float64, copy=False)
                    pairsum = base + float(adds[j])
                    colsum += new_col - cols[:, pos]
                    cols[:, pos] = new_col
                    current[pos] = j
                    cur_idx = np.asarray(current, dtype=np.intp)
                    best_score = float(scores[j])
                    improved = True
            if not improved:
                break
        return tuple(sorted(current)), best_score

    def _refine_coverage(self, indices, max_passes):
        current = list(indices)
        k = len(current)
        rows = self.samp.rows(current).astype(np.float64, copy=False)
        payload = rows.min(axis=0)
        best_score = self.diam - float(payload.mean(dtype=np.float64))
        for _ in range(max_passes):
            improved = False
            min1 = rows.min(axis=0)
            arg1 = rows.argmin(axis=0)
            if k > 1:
                masked = rows.copy()
                masked[arg1, np.arange(self.m)] = np.inf
                min2 = masked.min(axis=0)
            else:
                min2 = np.full(self.m, np.inf)
            for pos in range(k):
                # second-minimum update: the payload without this
                # member is min2 wherever this member held the minimum
                without = np.where(arg1 == pos, min2, min1)
                sums = np.empty(self.n, dtype=np.float64)

                def sweep(bid, without=without, sums=sums):
                    i0, i1, blk = self.samp.block(bid)
                    sums[i0:i1] = np.minimum(
                        blk, without[None, :]).sum(axis=1, dtype=np.float64)

                self._map(sweep, list(range(self.samp.n_blocks)))
                scores = self.diam - sums / self.m
                scores[current] = -np.inf
                j = tie_argmax(scores)
                if scores[j] > best_score + SWAP_TOL:
                    current[pos] = j
                    rows[pos] = self.samp.rows([j])[0]
                    min1 = rows.min(axis=0)
                    arg1 = rows.argmin(axis=0)
                    if k > 1:
                        masked = rows.copy()
                        masked[arg1, np.arange(self.m)] = np.inf
                        min2 = masked.min(axis=0)
                    best_score = float(scores[j])
                    improved = True
            if not improved:
                break
        return tuple(sorted(current)), best_score

    # -- lazy-greedy submodular selection (coverage) -------------------

    def greedy(self, size: int) -> "tuple[tuple[int, ...], float]":
        """CELF lazy-greedy coverage maximization.

        Coverage ``f(S) = diam − mean_s min_{i∈S} d(s, i)`` equals the
        facility-location objective ``mean_s (diam − min d)`` (every
        distance is bounded by the space diameter), which is monotone
        submodular with ``f(∅) = 0`` — so the greedy sequence satisfies
        ``f(greedy_k) ≥ (1 − 1/e) · f(opt_k)`` at every prefix ``k``.
        Marginal gains are kept in a priority queue and only
        re-evaluated when popped with a stale generation stamp.
        """
        if self.metric != "coverage":
            raise ValidationError(
                "lazy-greedy selection applies to the coverage metric")
        if size < 1:
            raise ValidationError("size must be >= 1")
        if size > self.n:
            raise ValidationError(f"cannot pick {size} of {self.n} runs")
        tel = get_telemetry()
        sums = self._coverage_row_sums()
        gains = self.diam - sums / self.m
        heap = [(-gains[j], j, 0) for j in range(self.n)]
        heapq.heapify(heap)
        selected: list[int] = []
        payload: "np.ndarray | None" = None
        while len(selected) < size:
            reevals = 0
            while True:
                neg_gain, j, stamp = heapq.heappop(heap)
                if stamp == len(selected):
                    break
                row = self.samp.rows([j])[0]
                gain = float(np.maximum(payload - row, 0.0)
                             .sum(dtype=np.float64)) / self.m
                reevals += 1
                heapq.heappush(heap, (-gain, j, len(selected)))
            row = self.samp.rows([j])[0]
            payload = row.astype(np.float64, copy=True) if payload is None \
                else np.minimum(payload, row)
            selected.append(j)
            self._count_states(1 + reevals)
            if tel.enabled:
                tel.observe("ensemble_greedy_reevaluations", float(reevals),
                            metric=self.metric)
        score = self.diam - float(payload.mean(dtype=np.float64))
        return tuple(sorted(selected)), score
