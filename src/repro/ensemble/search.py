"""Best-ensemble search over a corpus of runs (paper Sections 5.2-5.4).

The paper asks, for each ensemble size N: which N of the 215 runs
maximize spread (or coverage)? Exhaustive enumeration is infeasible
beyond tiny sizes (C(215, 10) ≈ 10^16), so the search uses a beam over
index-ordered subsets with incremental scoring:

- **spread** — a state carries its pairwise-distance sum; extending by
  candidate ``j`` adds ``Σ_{i∈state} P[j, i]``;
- **coverage** — a state carries the per-sample minimum distance to its
  members; extending by ``j`` takes an elementwise ``min`` with the
  candidate-to-sample distance row ``D[j]``.

The best beam state is then refined by swap local search. The same
machinery returns the top-K ensembles for the paper's shadowing-free
frequency analysis (Figures 20-21).

Two engines implement this contract (DESIGN §15):

``fast`` (default)
    The blocked, batched, parallel engine in
    :mod:`repro.ensemble.fast`: tiled distance kernels behind an LRU
    byte budget, one matrix operation per beam level, incremental swap
    refinement, and — for coverage — a lazy-greedy submodular selector
    (``strategy="greedy"``) with the (1 − 1/e) guarantee.
``legacy``
    The original monolithic evaluator (full ``squareform(pdist(...))``
    / ``cdist`` materialization, Python loop per beam state). Kept as
    the bit-checked reference: both engines rank candidates through
    the same tie-stable rule (:func:`repro.ensemble.fast.tie_sorted`),
    so on equal scores (within 1e-12) both prefer the lexicographically
    smallest index tuple and select identical ensembles.

Select with the ``engine=`` argument or ``REPRO_ENSEMBLE_ENGINE``.
"""

from __future__ import annotations

import itertools
import math
import os
from dataclasses import dataclass

import numpy as np
from scipy.spatial.distance import cdist, pdist, squareform

from repro._util.errors import ValidationError
from repro.behavior.space import BehaviorSpace, BehaviorVector
from repro.ensemble.budgets import SEARCH_SAMPLES, WIDE_SEARCH_SAMPLES
from repro.ensemble.ensemble import Ensemble
from repro.ensemble.fast import (
    TIE_TOL,
    FastEngine,
    boundary_positions,
    resolve_precision,
    tie_argmax,
    tie_sorted,
)
from repro.obs.telemetry import get_telemetry

VALID_METRICS = ("spread", "coverage")
VALID_ENGINES = ("fast", "legacy")
VALID_STRATEGIES = ("beam", "greedy")

#: Environment override for the default search engine.
ENGINE_ENV = "REPRO_ENSEMBLE_ENGINE"


def resolve_engine(engine: "str | None") -> str:
    """Resolve an explicit engine or fall back to env / ``fast``."""
    if engine is None:
        engine = os.environ.get(ENGINE_ENV, "").strip().lower() or "fast"
    if engine not in VALID_ENGINES:
        raise ValidationError(
            f"engine must be one of {VALID_ENGINES}")
    return engine


def _resolve_strategy(strategy: "str | None", metric: str,
                      engine: str) -> str:
    if strategy is None:
        strategy = "beam"
    if strategy not in VALID_STRATEGIES:
        raise ValidationError(
            f"strategy must be one of {VALID_STRATEGIES}")
    if strategy == "greedy":
        if metric != "coverage":
            raise ValidationError(
                "strategy='greedy' applies to the coverage metric only "
                "(spread is not submodular over index-ordered subsets)")
        if engine != "fast":
            raise ValidationError(
                "strategy='greedy' requires engine='fast'")
    return strategy


@dataclass(frozen=True)
class SearchResult:
    """One discovered ensemble and its score under the search metric."""

    ensemble: Ensemble
    score: float
    indices: tuple[int, ...]
    metric: str


class _Evaluator:
    """Incremental spread/coverage scoring over a fixed candidate pool."""

    def __init__(
        self,
        pool: np.ndarray,
        metric: str,
        *,
        space: BehaviorSpace,
        samples: np.ndarray | None,
        n_samples: int,
        seed: int,
    ) -> None:
        if metric not in VALID_METRICS:
            raise ValidationError(f"metric must be one of {VALID_METRICS}")
        self.metric = metric
        self.pool = pool
        self.n = pool.shape[0]
        self.space = space
        if metric == "spread":
            self.P = squareform(pdist(pool)) if self.n > 1 else np.zeros((1, 1))
            self.D = None
        else:
            if samples is None:
                samples = space.sample(n_samples, seed=seed)
            self.samples = samples
            self.D = cdist(pool, samples)  # (n_pool, n_samples)
            self.P = None

    # -- state = (indices tuple, payload) ------------------------------
    def initial_state(self, first: int):
        if self.metric == "spread":
            return ((first,), 0.0)
        return ((first,), self.D[first].copy())

    def extend(self, state, j: int):
        indices, payload = state
        if self.metric == "spread":
            add = float(self.P[j, list(indices)].sum())
            return (indices + (j,), payload + add)
        return (indices + (j,), np.minimum(payload, self.D[j]))

    def score(self, state) -> float:
        indices, payload = state
        k = len(indices)
        if self.metric == "spread":
            if k < 2:
                return 0.0
            return 2.0 * payload / (k * (k - 1))
        return self.space.diameter - float(payload.mean())

    def scores_of_extensions(self, state, candidates: np.ndarray) -> np.ndarray:
        """Vectorized scores of extending ``state`` by each candidate."""
        indices, payload = state
        k = len(indices) + 1
        if self.metric == "spread":
            adds = self.P[candidates][:, list(indices)].sum(axis=1)
            sums = payload + adds
            if k < 2:
                return np.zeros(candidates.size)
            return 2.0 * sums / (k * (k - 1))
        mins = np.minimum(payload[None, :], self.D[candidates])
        return self.space.diameter - mins.mean(axis=1)

    def score_indices(self, indices) -> float:
        """Score an arbitrary index set from scratch."""
        idx = list(indices)
        if self.metric == "spread":
            if len(idx) < 2:
                return 0.0
            sub = self.P[np.ix_(idx, idx)]
            return float(sub.sum() / (len(idx) * (len(idx) - 1)))
        payload = self.D[idx].min(axis=0)
        return self.space.diameter - float(payload.mean())


def _beam_search(ev: _Evaluator, size: int, beam_width: int) -> list[tuple]:
    """Top states of exactly ``size`` members via index-ordered beam.

    Tie-stable: per-state extension candidates keep everything within
    :data:`~repro.ensemble.fast.TIE_TOL` of the local cut, and the
    global per-level selection orders near-equal scores by index tuple
    (:func:`~repro.ensemble.fast.tie_sorted`), so the surviving beam —
    and hence the top-k sets feeding Figs 20-21 — is deterministic
    across NumPy versions.
    """
    tel = get_telemetry()
    states = [ev.initial_state(i) for i in range(ev.n)]
    if size == 1:
        return states
    for _level in range(1, size):
        if tel.enabled:
            tel.inc("ensemble_search_states_total", float(len(states)),
                    metric=ev.metric, engine="legacy")
        scored: list[tuple[float, tuple, tuple]] = []
        for state in states:
            last = state[0][-1]
            length = len(state[0])
            # Feasibility bound: after picking candidate j there must be
            # enough higher indices left to reach the target size, so
            # j <= n - size + length.
            hi = ev.n - size + length + 1
            candidates = np.arange(last + 1, hi)
            if candidates.size == 0:
                continue
            cand_scores = ev.scores_of_extensions(state, candidates)
            # Keep the locally best extensions (with tie slack) to
            # bound work.
            for t in boundary_positions(cand_scores, beam_width):
                extended = ev.extend(state, int(candidates[t]))
                scored.append((float(cand_scores[t]), extended[0], extended))
        if not scored:
            raise ValidationError(
                f"pool of {ev.n} cannot form an ensemble of size {size}"
            )
        states = [item[2] for item in tie_sorted(scored)[:beam_width]]
    return states


def _swap_refine(ev: _Evaluator, indices: tuple[int, ...],
                 max_passes: int = 8) -> tuple[tuple[int, ...], float]:
    """Hill-climb by single-member swaps until no improvement.

    Each position's replacement candidates are scored in one vectorized
    sweep: for spread via the pairwise matrix, for coverage via a
    min over the remaining members' sample distances plus the
    candidate's row. Replacement ties (within
    :data:`~repro.ensemble.fast.TIE_TOL`) go to the smallest index.
    """
    current = list(indices)
    best_score = ev.score_indices(current)
    k = len(current)
    for _ in range(max_passes):
        improved = False
        for pos in range(k):
            others = [current[i] for i in range(k) if i != pos]
            if ev.metric == "spread":
                if k < 2:
                    break
                base = float(ev.P[np.ix_(others, others)].sum()) / 2.0
                adds = ev.P[:, others].sum(axis=1)
                scores = 2.0 * (base + adds) / (k * (k - 1))
            else:
                payload = (ev.D[others].min(axis=0) if others
                           else np.full(ev.D.shape[1], np.inf))
                mins = np.minimum(payload[None, :], ev.D)
                scores = ev.space.diameter - mins.mean(axis=1)
            scores[current] = -np.inf  # keep members distinct
            j = tie_argmax(scores)
            if scores[j] > best_score + TIE_TOL:
                current[pos] = j
                best_score = float(scores[j])
                improved = True
        if not improved:
            break
    return tuple(sorted(current)), best_score


def _make_evaluator(pool, metric, space, samples, n_samples, seed):
    space = space or BehaviorSpace()
    if isinstance(pool, Ensemble):
        vectors = list(pool.members)
    else:
        vectors = list(pool)
    mat = space.to_matrix(vectors)
    ev = _Evaluator(mat, metric, space=space, samples=samples,
                    n_samples=n_samples, seed=seed)
    return ev, vectors, space


def _make_engine(mat, metric, space, samples, n_samples, seed,
                 block_bytes, precision, workers) -> FastEngine:
    return FastEngine(mat, metric, space=space, samples=samples,
                      n_samples=n_samples, seed=seed,
                      block_bytes=block_bytes,
                      dtype=resolve_precision(precision),
                      workers=workers)


def _make_searcher(pool, metric, space, samples, n_samples, seed,
                   engine, block_bytes, precision, workers):
    """Build the requested engine over a vector pool."""
    space = space or BehaviorSpace()
    if isinstance(pool, Ensemble):
        vectors = list(pool.members)
    else:
        vectors = list(pool)
    mat = space.to_matrix(vectors)
    if engine == "legacy":
        searcher = _Evaluator(mat, metric, space=space, samples=samples,
                              n_samples=n_samples, seed=seed)
    else:
        searcher = _make_engine(mat, metric, space, samples, n_samples,
                                seed, block_bytes, precision, workers)
    return searcher, vectors, space


def _search_best(searcher, size, metric, beam_width, refine, strategy):
    """One best-of-size search over a built engine/evaluator."""
    if size < 1:
        raise ValidationError("size must be >= 1")
    n = searcher.n
    if size > n:
        raise ValidationError(f"cannot pick {size} of {n} runs")
    engine = "legacy" if isinstance(searcher, _Evaluator) else "fast"
    tel = get_telemetry()
    with tel.span("ensemble_search", metric=metric, engine=engine,
                  size=size, strategy=strategy):
        if engine == "legacy":
            states = _beam_search(searcher, size, beam_width)
            ordered = tie_sorted(
                [(searcher.score(s), s[0]) for s in states])
            score, indices = ordered[0][0], ordered[0][1]
            if refine:
                indices, score = _swap_refine(searcher, indices)
        elif strategy == "greedy":
            indices, score = searcher.greedy(size)
            if refine:
                indices, score = searcher.refine(indices)
        else:
            score, indices = tie_sorted(searcher.beam(size, beam_width))[0]
            if refine:
                indices, score = searcher.refine(indices)
    return tuple(int(i) for i in indices), float(score)


def best_ensemble(
    pool: "Ensemble | list[BehaviorVector]",
    size: int,
    metric: str = "spread",
    *,
    space: BehaviorSpace | None = None,
    samples: np.ndarray | None = None,
    n_samples: int = SEARCH_SAMPLES,
    seed: int = 0,
    beam_width: int = 64,
    refine: bool = True,
    engine: "str | None" = None,
    strategy: "str | None" = None,
    block_bytes: "int | None" = None,
    precision: "str | None" = None,
    workers: "int | None" = None,
) -> SearchResult:
    """Find the (approximately) best size-``size`` ensemble in the pool.

    ``n_samples`` is the coverage *search* budget
    (:data:`~repro.ensemble.budgets.SEARCH_SAMPLES`); re-score the
    result with :func:`repro.ensemble.metrics.coverage` at the
    reporting budget before quoting it. ``engine`` picks the fast
    blocked engine (default) or the legacy reference;
    ``strategy="greedy"`` (coverage only) swaps the beam for the
    lazy-greedy submodular selector. ``block_bytes`` /
    ``precision`` / ``workers`` tune the fast engine's distance tiles.
    """
    if size < 1:
        raise ValidationError("size must be >= 1")
    engine = resolve_engine(engine)
    strategy = _resolve_strategy(strategy, metric, engine)
    searcher, vectors, space = _make_searcher(
        pool, metric, space, samples, n_samples, seed,
        engine, block_bytes, precision, workers)
    indices, score = _search_best(searcher, size, metric, beam_width,
                                  refine, strategy)
    members = tuple(vectors[i] for i in indices)
    return SearchResult(
        ensemble=Ensemble(members=members,
                          name=f"best-{metric}-{size}"),
        score=score,
        indices=indices,
        metric=metric,
    )


def top_k_ensembles(
    pool: "Ensemble | list[BehaviorVector]",
    size: int,
    metric: str = "spread",
    *,
    k: int = 100,
    space: BehaviorSpace | None = None,
    samples: np.ndarray | None = None,
    n_samples: int = WIDE_SEARCH_SAMPLES,
    seed: int = 0,
    beam_width: int = 400,
    engine: "str | None" = None,
    block_bytes: "int | None" = None,
    precision: "str | None" = None,
    workers: "int | None" = None,
) -> list[SearchResult]:
    """The ``k`` best size-``size`` ensembles found by a wide beam.

    Used for the paper's shadowing analysis (Section 5.5): within the
    100 best ensembles, the frequency of appearance of each algorithm
    indicates its contribution to diversity. ``n_samples`` defaults to
    the wide-beam budget
    (:data:`~repro.ensemble.budgets.WIDE_SEARCH_SAMPLES`).
    """
    if k < 1:
        raise ValidationError("k must be >= 1")
    engine = resolve_engine(engine)
    searcher, vectors, space = _make_searcher(
        pool, metric, space, samples, n_samples, seed,
        engine, block_bytes, precision, workers)
    if size > searcher.n:
        raise ValidationError(f"cannot pick {size} of {searcher.n} runs")
    tel = get_telemetry()
    with tel.span("ensemble_search", metric=metric, engine=engine,
                  size=size, strategy="beam"):
        width = max(beam_width, k)
        if engine == "legacy":
            states = _beam_search(searcher, size, width)
            ordered = tie_sorted(
                [(searcher.score(s), s[0]) for s in states])
        else:
            ordered = tie_sorted(searcher.beam(size, width))
    results = []
    for score, indices in ordered[:k]:
        members = tuple(vectors[i] for i in indices)
        results.append(SearchResult(
            ensemble=Ensemble(members=members, name=f"top-{metric}-{size}"),
            score=float(score),
            indices=tuple(int(i) for i in indices),
            metric=metric,
        ))
    return results


def best_ensemble_curve(
    pool: "Ensemble | list[BehaviorVector]",
    sizes: "list[int] | tuple[int, ...]",
    metric: str = "spread",
    *,
    space: BehaviorSpace | None = None,
    samples: np.ndarray | None = None,
    n_samples: int = SEARCH_SAMPLES,
    seed: int = 0,
    beam_width: int = 64,
    refine: bool = True,
    engine: "str | None" = None,
    strategy: "str | None" = None,
    block_bytes: "int | None" = None,
    precision: "str | None" = None,
    workers: "int | None" = None,
) -> dict[int, SearchResult]:
    """Best ensembles across a range of sizes (the Figs 14-19 curves).

    The engine — blocked distance tiles for the fast path, the full
    pairwise / candidate-to-sample matrix for the legacy one — is
    built once and shared by every size, so a 20-point curve pays for
    one distance materialization instead of 20.
    """
    engine = resolve_engine(engine)
    strategy = _resolve_strategy(strategy, metric, engine)
    searcher, vectors, _space = _make_searcher(
        pool, metric, space, samples, n_samples, seed,
        engine, block_bytes, precision, workers)
    curve: dict[int, SearchResult] = {}
    for size in sizes:
        indices, score = _search_best(searcher, int(size), metric,
                                      beam_width, refine, strategy)
        members = tuple(vectors[i] for i in indices)
        curve[int(size)] = SearchResult(
            ensemble=Ensemble(members=members,
                              name=f"best-{metric}-{int(size)}"),
            score=score,
            indices=indices,
            metric=metric,
        )
    return curve


def best_subset(
    points: np.ndarray,
    size: int,
    metric: str = "spread",
    *,
    space: BehaviorSpace | None = None,
    samples: np.ndarray | None = None,
    n_samples: int = SEARCH_SAMPLES,
    seed: int = 0,
    beam_width: int = 64,
    refine: bool = True,
    engine: "str | None" = None,
    strategy: "str | None" = None,
    block_bytes: "int | None" = None,
    precision: "str | None" = None,
    workers: "int | None" = None,
) -> tuple[tuple[int, ...], float]:
    """Dimension-agnostic best-subset search over raw coordinates.

    Like :func:`best_ensemble` but over an ``(n, d)`` point matrix in a
    ``d``-dimensional unit hypercube (the extended temporal space, or
    any user-defined space). Returns ``(indices, score)``.
    """
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    if size < 1:
        raise ValidationError("size must be >= 1")
    if size > points.shape[0]:
        raise ValidationError(
            f"cannot pick {size} of {points.shape[0]} points")
    space = space or BehaviorSpace(dims=points.shape[1])
    if space.dims != points.shape[1]:
        raise ValidationError(
            f"points have {points.shape[1]} dims, space has {space.dims}")
    engine = resolve_engine(engine)
    strategy = _resolve_strategy(strategy, metric, engine)
    if engine == "legacy":
        searcher = _Evaluator(points, metric, space=space, samples=samples,
                              n_samples=n_samples, seed=seed)
    else:
        searcher = _make_engine(points, metric, space, samples, n_samples,
                                seed, block_bytes, precision, workers)
    indices, score = _search_best(searcher, size, metric, beam_width,
                                  refine, strategy)
    return indices, score


def exhaustive_best(
    pool: "Ensemble | list[BehaviorVector]",
    size: int,
    metric: str = "spread",
    *,
    space: BehaviorSpace | None = None,
    samples: np.ndarray | None = None,
    n_samples: int = WIDE_SEARCH_SAMPLES,
    seed: int = 0,
    limit: int = 500_000,
) -> SearchResult:
    """Exact search by enumeration; refuses when C(n, size) exceeds
    ``limit``. Used by tests to validate the beam search and the
    lazy-greedy (1 − 1/e) guarantee.

    Tie-stable: combinations are enumerated in lexicographic order and
    a later combination only displaces the incumbent when it scores
    more than :data:`~repro.ensemble.fast.TIE_TOL` better, so equal
    scores keep the lexicographically smallest index tuple.
    """
    ev, vectors, space = _make_evaluator(pool, metric, space, samples,
                                         n_samples, seed)
    total = math.comb(ev.n, size)
    if total > limit:
        raise ValidationError(
            f"C({ev.n}, {size}) = {total} exceeds the exhaustive limit {limit}"
        )
    best_indices: tuple[int, ...] | None = None
    best_score = -np.inf
    for combo in itertools.combinations(range(ev.n), size):
        s = ev.score_indices(combo)
        if s > best_score + TIE_TOL:
            best_score, best_indices = s, combo
    members = tuple(vectors[i] for i in best_indices)
    return SearchResult(
        ensemble=Ensemble(members=members, name=f"exact-{metric}-{size}"),
        score=float(best_score),
        indices=best_indices,
        metric=metric,
    )
