"""Best-ensemble search over a corpus of runs (paper Sections 5.2-5.4).

The paper asks, for each ensemble size N: which N of the 215 runs
maximize spread (or coverage)? Exhaustive enumeration is infeasible
beyond tiny sizes (C(215, 10) ≈ 10^16), so the search uses a beam over
index-ordered subsets with O(1)-amortized incremental scoring:

- **spread** — a state carries its pairwise-distance sum; extending by
  candidate ``j`` adds ``Σ_{i∈state} P[j, i]``, read from a precomputed
  pairwise matrix;
- **coverage** — a state carries the per-sample minimum distance to its
  members; extending by ``j`` takes an elementwise ``min`` with the
  precomputed candidate-to-sample distance row ``D[j]``.

The best beam state is then refined by swap local search. The same
machinery returns the top-K ensembles for the paper's shadowing-free
frequency analysis (Figures 20-21).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass

import numpy as np
from scipy.spatial.distance import cdist, squareform, pdist

from repro._util.errors import ValidationError
from repro.behavior.space import BehaviorSpace, BehaviorVector
from repro.ensemble.ensemble import Ensemble

VALID_METRICS = ("spread", "coverage")


@dataclass(frozen=True)
class SearchResult:
    """One discovered ensemble and its score under the search metric."""

    ensemble: Ensemble
    score: float
    indices: tuple[int, ...]
    metric: str


class _Evaluator:
    """Incremental spread/coverage scoring over a fixed candidate pool."""

    def __init__(
        self,
        pool: np.ndarray,
        metric: str,
        *,
        space: BehaviorSpace,
        samples: np.ndarray | None,
        n_samples: int,
        seed: int,
    ) -> None:
        if metric not in VALID_METRICS:
            raise ValidationError(f"metric must be one of {VALID_METRICS}")
        self.metric = metric
        self.pool = pool
        self.n = pool.shape[0]
        self.space = space
        if metric == "spread":
            self.P = squareform(pdist(pool)) if self.n > 1 else np.zeros((1, 1))
            self.D = None
        else:
            if samples is None:
                samples = space.sample(n_samples, seed=seed)
            self.samples = samples
            self.D = cdist(pool, samples)  # (n_pool, n_samples)
            self.P = None

    # -- state = (indices tuple, payload) ------------------------------
    def initial_state(self, first: int):
        if self.metric == "spread":
            return ((first,), 0.0)
        return ((first,), self.D[first].copy())

    def extend(self, state, j: int):
        indices, payload = state
        if self.metric == "spread":
            add = float(self.P[j, list(indices)].sum())
            return (indices + (j,), payload + add)
        return (indices + (j,), np.minimum(payload, self.D[j]))

    def score(self, state) -> float:
        indices, payload = state
        k = len(indices)
        if self.metric == "spread":
            if k < 2:
                return 0.0
            return 2.0 * payload / (k * (k - 1))
        return self.space.diameter - float(payload.mean())

    def scores_of_extensions(self, state, candidates: np.ndarray) -> np.ndarray:
        """Vectorized scores of extending ``state`` by each candidate."""
        indices, payload = state
        k = len(indices) + 1
        if self.metric == "spread":
            adds = self.P[candidates][:, list(indices)].sum(axis=1)
            sums = payload + adds
            if k < 2:
                return np.zeros(candidates.size)
            return 2.0 * sums / (k * (k - 1))
        mins = np.minimum(payload[None, :], self.D[candidates])
        return self.space.diameter - mins.mean(axis=1)

    def score_indices(self, indices) -> float:
        """Score an arbitrary index set from scratch."""
        idx = list(indices)
        if self.metric == "spread":
            if len(idx) < 2:
                return 0.0
            sub = self.P[np.ix_(idx, idx)]
            return float(sub.sum() / (len(idx) * (len(idx) - 1)))
        payload = self.D[idx].min(axis=0)
        return self.space.diameter - float(payload.mean())


def _beam_search(ev: _Evaluator, size: int, beam_width: int) -> list[tuple]:
    """Top states of exactly ``size`` members via index-ordered beam."""
    states = [ev.initial_state(i) for i in range(ev.n)]
    if size == 1:
        return states
    for _level in range(1, size):
        scored: list[tuple[float, tuple]] = []
        for state in states:
            last = state[0][-1]
            length = len(state[0])
            # Feasibility bound: after picking candidate j there must be
            # enough higher indices left to reach the target size, so
            # j <= n - size + length.
            hi = ev.n - size + length + 1
            candidates = np.arange(last + 1, hi)
            if candidates.size == 0:
                continue
            cand_scores = ev.scores_of_extensions(state, candidates)
            # Keep only the locally best extensions to bound work.
            keep = min(beam_width, candidates.size)
            top = np.argpartition(cand_scores, -keep)[-keep:]
            for t in top:
                scored.append((float(cand_scores[t]),
                               ev.extend(state, int(candidates[t]))))
        if not scored:
            raise ValidationError(
                f"pool of {ev.n} cannot form an ensemble of size {size}"
            )
        scored.sort(key=lambda pair: pair[0], reverse=True)
        states = [state for _score, state in scored[:beam_width]]
    return states


def _swap_refine(ev: _Evaluator, indices: tuple[int, ...],
                 max_passes: int = 8) -> tuple[tuple[int, ...], float]:
    """Hill-climb by single-member swaps until no improvement.

    Each position's replacement candidates are scored in one vectorized
    sweep: for spread via the pairwise matrix, for coverage via a
    min over the remaining members' sample distances plus the
    candidate's row.
    """
    current = list(indices)
    best_score = ev.score_indices(current)
    k = len(current)
    for _ in range(max_passes):
        improved = False
        for pos in range(k):
            others = [current[i] for i in range(k) if i != pos]
            if ev.metric == "spread":
                if k < 2:
                    break
                base = float(ev.P[np.ix_(others, others)].sum()) / 2.0
                adds = ev.P[:, others].sum(axis=1)
                scores = 2.0 * (base + adds) / (k * (k - 1))
            else:
                payload = (ev.D[others].min(axis=0) if others
                           else np.full(ev.D.shape[1], np.inf))
                mins = np.minimum(payload[None, :], ev.D)
                scores = ev.space.diameter - mins.mean(axis=1)
            scores[current] = -np.inf  # keep members distinct
            j = int(np.argmax(scores))
            if scores[j] > best_score + 1e-12:
                current[pos] = j
                best_score = float(scores[j])
                improved = True
        if not improved:
            break
    return tuple(sorted(current)), best_score


def _make_evaluator(pool, metric, space, samples, n_samples, seed):
    space = space or BehaviorSpace()
    if isinstance(pool, Ensemble):
        vectors = list(pool.members)
    else:
        vectors = list(pool)
    mat = space.to_matrix(vectors)
    ev = _Evaluator(mat, metric, space=space, samples=samples,
                    n_samples=n_samples, seed=seed)
    return ev, vectors, space


def _best_with_evaluator(
    ev: _Evaluator,
    vectors: list,
    size: int,
    metric: str,
    beam_width: int,
    refine: bool,
) -> SearchResult:
    """Beam search + optional swap refinement over a built evaluator."""
    if size < 1:
        raise ValidationError("size must be >= 1")
    if size > ev.n:
        raise ValidationError(f"cannot pick {size} of {ev.n} runs")
    states = _beam_search(ev, size, beam_width)
    best_state = max(states, key=ev.score)
    indices = best_state[0]
    score = ev.score(best_state)
    if refine:
        indices, score = _swap_refine(ev, indices)
    members = tuple(vectors[i] for i in indices)
    return SearchResult(
        ensemble=Ensemble(members=members,
                          name=f"best-{metric}-{size}"),
        score=float(score),
        indices=tuple(indices),
        metric=metric,
    )


def best_ensemble(
    pool: "Ensemble | list[BehaviorVector]",
    size: int,
    metric: str = "spread",
    *,
    space: BehaviorSpace | None = None,
    samples: np.ndarray | None = None,
    n_samples: int = 4_000,
    seed: int = 0,
    beam_width: int = 64,
    refine: bool = True,
) -> SearchResult:
    """Find the (approximately) best size-``size`` ensemble in the pool.

    ``n_samples`` is the coverage search budget; re-score the result
    with :func:`repro.ensemble.metrics.coverage` at full budget for
    reporting.
    """
    if size < 1:
        raise ValidationError("size must be >= 1")
    ev, vectors, space = _make_evaluator(pool, metric, space, samples,
                                         n_samples, seed)
    return _best_with_evaluator(ev, vectors, size, metric, beam_width,
                                refine)


def top_k_ensembles(
    pool: "Ensemble | list[BehaviorVector]",
    size: int,
    metric: str = "spread",
    *,
    k: int = 100,
    space: BehaviorSpace | None = None,
    samples: np.ndarray | None = None,
    n_samples: int = 2_000,
    seed: int = 0,
    beam_width: int = 400,
) -> list[SearchResult]:
    """The ``k`` best size-``size`` ensembles found by a wide beam.

    Used for the paper's shadowing analysis (Section 5.5): within the
    100 best ensembles, the frequency of appearance of each algorithm
    indicates its contribution to diversity.
    """
    if k < 1:
        raise ValidationError("k must be >= 1")
    ev, vectors, space = _make_evaluator(pool, metric, space, samples,
                                         n_samples, seed)
    if size > ev.n:
        raise ValidationError(f"cannot pick {size} of {ev.n} runs")
    states = _beam_search(ev, size, max(beam_width, k))
    scored = [(ev.score(s), s[0]) for s in states]
    top = heapq.nlargest(k, scored, key=lambda pair: pair[0])
    results = []
    for score, indices in top:
        members = tuple(vectors[i] for i in indices)
        results.append(SearchResult(
            ensemble=Ensemble(members=members, name=f"top-{metric}-{size}"),
            score=float(score),
            indices=tuple(indices),
            metric=metric,
        ))
    return results


def best_ensemble_curve(
    pool: "Ensemble | list[BehaviorVector]",
    sizes: "list[int] | tuple[int, ...]",
    metric: str = "spread",
    *,
    space: BehaviorSpace | None = None,
    samples: np.ndarray | None = None,
    n_samples: int = 4_000,
    seed: int = 0,
    beam_width: int = 64,
    refine: bool = True,
) -> dict[int, SearchResult]:
    """Best ensembles across a range of sizes (the Figs 14-19 curves).

    The :class:`_Evaluator` — the full pairwise-distance matrix for
    spread, the candidate-to-sample distance matrix for coverage — is
    built once and shared by every size, so a 20-point curve pays for
    one ``pdist``/``cdist`` instead of 20.
    """
    ev, vectors, _space = _make_evaluator(pool, metric, space, samples,
                                          n_samples, seed)
    return {int(size): _best_with_evaluator(ev, vectors, int(size), metric,
                                            beam_width, refine)
            for size in sizes}


def best_subset(
    points: np.ndarray,
    size: int,
    metric: str = "spread",
    *,
    space: BehaviorSpace | None = None,
    samples: np.ndarray | None = None,
    n_samples: int = 4_000,
    seed: int = 0,
    beam_width: int = 64,
    refine: bool = True,
) -> tuple[tuple[int, ...], float]:
    """Dimension-agnostic best-subset search over raw coordinates.

    Like :func:`best_ensemble` but over an ``(n, d)`` point matrix in a
    ``d``-dimensional unit hypercube (the extended temporal space, or
    any user-defined space). Returns ``(indices, score)``.
    """
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    if size < 1:
        raise ValidationError("size must be >= 1")
    if size > points.shape[0]:
        raise ValidationError(
            f"cannot pick {size} of {points.shape[0]} points")
    space = space or BehaviorSpace(dims=points.shape[1])
    if space.dims != points.shape[1]:
        raise ValidationError(
            f"points have {points.shape[1]} dims, space has {space.dims}")
    ev = _Evaluator(points, metric, space=space, samples=samples,
                    n_samples=n_samples, seed=seed)
    states = _beam_search(ev, size, beam_width)
    best_state = max(states, key=ev.score)
    indices, score = best_state[0], ev.score(best_state)
    if refine:
        indices, score = _swap_refine(ev, indices)
    return tuple(indices), float(score)


def exhaustive_best(
    pool: "Ensemble | list[BehaviorVector]",
    size: int,
    metric: str = "spread",
    *,
    space: BehaviorSpace | None = None,
    samples: np.ndarray | None = None,
    n_samples: int = 2_000,
    seed: int = 0,
    limit: int = 500_000,
) -> SearchResult:
    """Exact search by enumeration; refuses when C(n, size) exceeds
    ``limit``. Used by tests to validate the beam search."""
    ev, vectors, space = _make_evaluator(pool, metric, space, samples,
                                         n_samples, seed)
    import math
    total = math.comb(ev.n, size)
    if total > limit:
        raise ValidationError(
            f"C({ev.n}, {size}) = {total} exceeds the exhaustive limit {limit}"
        )
    best_indices: tuple[int, ...] | None = None
    best_score = -np.inf
    for combo in itertools.combinations(range(ev.n), size):
        s = ev.score_indices(combo)
        if s > best_score:
            best_score, best_indices = s, combo
    members = tuple(vectors[i] for i in best_indices)
    return SearchResult(
        ensemble=Ensemble(members=members, name=f"exact-{metric}-{size}"),
        score=float(best_score),
        indices=best_indices,
        metric=metric,
    )
