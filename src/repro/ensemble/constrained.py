"""Complexity-constrained ensemble design (paper Section 5.6, Figs 22-23).

Three ways to make a benchmark suite cheaper while conserving quality:

- **limited algorithms** — restrict the pool to a few algorithms chosen
  for diversity contribution (the paper lands on KM, ALS, TC);
- **limited graphs** — restrict to a few graph structures (the paper
  finds this *hurts*: spread decays rapidly, coverage drops below even
  single-algorithm ensembles);
- **limited runtime** — truncate the runs of algorithms with constant,
  repetitive behavior (AD, KM, NMF, SGD, SVD all hold active fraction
  at 1.0), whose behavior metrics are unchanged by shortening.
"""

from __future__ import annotations

from dataclasses import replace

from repro._util.errors import ValidationError
from repro.behavior.space import BehaviorVector
from repro.behavior.trace import RunTrace
from repro.ensemble.budgets import WIDE_SEARCH_SAMPLES

#: Algorithms the paper identifies as contributing most to both spread
#: and coverage (Section 5.6).
PAPER_LIMITED_ALGORITHMS: tuple[str, ...] = ("kmeans", "als", "triangle")

#: Algorithms with constant, repetitive behavior whose runs can be
#: shortened (Section 5.6: AD, KM, NMF, SGD, SVD).
REPETITIVE_ALGORITHMS: tuple[str, ...] = (
    "diameter", "kmeans", "nmf", "sgd", "svd",
)


def _tag_algorithm(vector: BehaviorVector) -> str:
    tag = vector.tag
    if isinstance(tag, (tuple, list)) and tag:
        return str(tag[0])
    raise ValidationError(
        "behavior vector lacks an (algorithm, ...) tag; build vectors "
        "through BehaviorCorpus.vectors()"
    )


def _tag_structure(vector: BehaviorVector) -> tuple:
    tag = vector.tag
    if isinstance(tag, (tuple, list)) and len(tag) >= 2:
        return tuple(tag[1:])
    raise ValidationError("behavior vector lacks a graph-structure tag")


def limit_to_algorithms(
    vectors: "list[BehaviorVector]",
    algorithms: "tuple[str, ...] | list[str]" = PAPER_LIMITED_ALGORITHMS,
) -> list[BehaviorVector]:
    """Pool restriction: keep only runs of the given algorithms."""
    allowed = set(algorithms)
    kept = [v for v in vectors if _tag_algorithm(v) in allowed]
    if not kept:
        raise ValidationError(
            f"no runs of algorithms {sorted(allowed)} in the pool"
        )
    return kept


def limit_to_structures(
    vectors: "list[BehaviorVector]",
    structures: "list[tuple]",
) -> list[BehaviorVector]:
    """Pool restriction: keep only runs on the given graph structures.

    Structures are matched against the tag's ``(size, alpha)`` suffix;
    the paper's choice is the three largest sizes with α = 2.0.
    """
    allowed = {tuple(s) for s in structures}
    kept = [v for v in vectors if _tag_structure(v) in allowed]
    if not kept:
        raise ValidationError(f"no runs on structures {sorted(allowed)}")
    return kept


def select_algorithm_suite(
    vectors: "list[BehaviorVector]",
    n_algorithms: int = 3,
    *,
    ensemble_size: int = 6,
    samples=None,
    n_samples: int = WIDE_SEARCH_SAMPLES,
    seed: int = 0,
    beam_width: int = 16,
) -> tuple[str, ...]:
    """Choose the ``n_algorithms`` whose runs jointly explore best.

    Implements the paper's suite design step (Section 5.6): "we limit
    ensembles to three algorithms, selecting those that contribute most
    to *both* spread and coverage". Each candidate algorithm
    combination is scored by the best spread and best coverage its runs
    can achieve at ``ensemble_size``, each normalized by the
    unrestricted optimum; the combination maximizing the summed
    normalized score wins. ``n_samples`` defaults to the wide-search
    budget (:data:`~repro.ensemble.budgets.WIDE_SEARCH_SAMPLES`): the
    sweep only compares combinations against each other, never quotes
    the scores.
    """
    import itertools

    from repro.behavior.space import BehaviorSpace
    from repro.ensemble.search import best_ensemble

    algorithms = sorted({_tag_algorithm(v) for v in vectors})
    if n_algorithms < 1 or n_algorithms > len(algorithms):
        raise ValidationError(
            f"n_algorithms must be in [1, {len(algorithms)}]"
        )
    space = BehaviorSpace()
    if samples is None:
        samples = space.sample(n_samples, seed=seed)

    ref = {
        metric: best_ensemble(vectors, ensemble_size, metric,
                              samples=samples, beam_width=beam_width).score
        for metric in ("spread", "coverage")
    }
    best_combo: tuple[str, ...] = tuple(algorithms[:n_algorithms])
    best_score = -float("inf")
    for combo in itertools.combinations(algorithms, n_algorithms):
        allowed = set(combo)
        pool = [v for v in vectors if _tag_algorithm(v) in allowed]
        if len(pool) < ensemble_size:
            continue
        score = 0.0
        for metric in ("spread", "coverage"):
            s = best_ensemble(pool, ensemble_size, metric, samples=samples,
                              beam_width=beam_width).score
            score += s / max(ref[metric], 1e-12)
        if score > best_score:
            best_score, best_combo = score, combo
    return best_combo


def truncate_trace(trace: RunTrace, max_iterations: int) -> RunTrace:
    """Shorten a run to its first ``max_iterations`` iterations.

    Models the paper's runtime-limited ensembles: for repetitive
    algorithms the per-iteration behavior is constant, so the truncated
    trace's mean metrics match the full run's while the benchmarking
    cost drops proportionally.
    """
    if max_iterations < 1:
        raise ValidationError("max_iterations must be >= 1")
    if trace.n_iterations <= max_iterations:
        return trace
    return replace(
        trace,
        iterations=list(trace.iterations[:max_iterations]),
        converged=False,
        stop_reason=f"truncated@{max_iterations}",
    )
