"""Coverage sampling budgets: the search-budget / reporting-budget split.

Coverage is a Monte-Carlo estimate — the mean minimum distance from
uniform sample points of the behavior space to the nearest ensemble
member — so every coverage number carries a sampling budget, and the
right budget depends on what the number is *for*:

``SEARCH_SAMPLES`` (search budget)
    Used by :func:`repro.ensemble.search.best_ensemble` and friends
    while *ranking* candidate ensembles. Search only needs the budget
    to be large enough that the ranking of nearby candidates is
    stable; the absolute value is re-measured afterwards. 4 000 points
    keeps one candidate-to-sample distance row at a few tens of KB so
    beam states stay cheap to carry.

``WIDE_SEARCH_SAMPLES`` (wide-beam budget)
    Used by :func:`repro.ensemble.search.top_k_ensembles` and the
    suite-design sweep in :mod:`repro.ensemble.constrained`. The
    frequency analysis (Figs 20-21) scores hundreds of beam states per
    level across many algorithm combinations, so it trades another 2×
    of Monte-Carlo error for 2× less work per state — only the
    *relative frequencies* of members are consumed, never the scores.

``REPORT_SAMPLES`` (reporting budget)
    Used by :func:`repro.ensemble.metrics.coverage` /
    :func:`~repro.ensemble.metrics.mean_min_distance` when quoting a
    coverage number (tables, figures, CLI output). The paper uses 10^6
    points; 10^5 keeps the 1/√n Monte-Carlo error near 3·10^-3 of the
    space diameter while staying interactive. Always re-score search
    results at this budget before reporting them.

Search results therefore follow a two-step discipline: *select* under
``SEARCH_SAMPLES`` (or ``WIDE_SEARCH_SAMPLES``), then *report* under
``REPORT_SAMPLES`` — never quote a search-budget score as a result.
"""

from __future__ import annotations

#: Coverage sampling budget while searching (ranking candidates).
SEARCH_SAMPLES = 4_000

#: Coverage sampling budget for wide beams (top-k frequency analysis,
#: suite-design sweeps) where per-state cost dominates.
WIDE_SEARCH_SAMPLES = 2_000

#: Coverage sampling budget when reporting a number (tables, figures).
REPORT_SAMPLES = 100_000
