"""Aggregation + rendering behind ``repro stats`` and ``repro tail``.

``repro stats`` reads the ``telemetry.json`` snapshot (and the
retained event log for the per-cell table) of an observability
directory and renders ASCII tables: phase time breakdown, failure
taxonomy counts, graph-plane hit rates, and p50/p95 iteration latency.
``repro tail`` formats the live event stream.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Iterable

from repro._util.errors import ValidationError
from repro.experiments.reporting import format_table
from repro.obs.events import (
    EVENTS_FILENAME,
    TELEMETRY_FILENAME,
    read_all_events,
)
from repro.obs.export import load_telemetry

#: Default subdirectory (under a ResultStore root) where a corpus
#: build drops its observability artifacts.
OBS_SUBDIR = "obs"


def resolve_run_dir(path: "str | Path") -> Path:
    """Accept either an obs dir or its parent run/store directory."""

    root = Path(path)
    candidates = [root, root / OBS_SUBDIR]
    for candidate in candidates:
        if ((candidate / TELEMETRY_FILENAME).exists()
                or (candidate / EVENTS_FILENAME).exists()):
            return candidate
    raise ValidationError(
        f"no telemetry found under {root} (looked for "
        f"{TELEMETRY_FILENAME} / {EVENTS_FILENAME}, also in ./{OBS_SUBDIR})")


# -- snapshot accessors ------------------------------------------------

def _entries(snapshot: dict[str, Any], group: str,
             name: str) -> list[dict[str, Any]]:
    return snapshot.get(group, {}).get(name, [])


def _total(snapshot: dict[str, Any], name: str,
           **match: str) -> float:
    total = 0.0
    for entry in _entries(snapshot, "counters", name):
        labels = entry.get("labels", {})
        if all(labels.get(k) == v for k, v in match.items()):
            total += float(entry.get("value", 0.0))
    return total


def _by_label(snapshot: dict[str, Any], name: str,
              label: str) -> dict[str, float]:
    out: dict[str, float] = {}
    for entry in _entries(snapshot, "counters", name):
        key = entry.get("labels", {}).get(label, "?")
        out[key] = out.get(key, 0.0) + float(entry.get("value", 0.0))
    return out


def _fmt_s(value: float) -> str:
    return f"{value:.3f}"


def _fmt_ms(value: float) -> str:
    return f"{value * 1e3:.2f}"


def _fmt_bytes(value: float) -> str:
    units = ["B", "KiB", "MiB", "GiB"]
    for unit in units:
        if abs(value) < 1024 or unit == units[-1]:
            return (f"{value:.0f} {unit}" if unit == "B"
                    else f"{value:.1f} {unit}")
        value /= 1024
    return f"{value:.1f} GiB"


# -- stats rendering ---------------------------------------------------

def _node_rollup(events: list[dict[str, Any]]) -> dict[str, dict[str, int]]:
    """Per-node activity counts for distributed builds.

    Aggregated from the merged event stream (every node agent's sink
    carries its ``node`` stamp), so it works on a coordinator's obs
    directory after the per-node logs were folded in.
    """

    per_node: dict[str, dict[str, int]] = {}
    for event in events:
        node = event.get("node")
        if not node:
            continue
        row = per_node.setdefault(node, {
            "events": 0, "cells": 0, "claims": 0, "stale": 0})
        row["events"] += 1
        kind = event.get("kind")
        action = event.get("action")
        if kind == "cell_end":
            row["cells"] += 1
        elif kind == "node" and action == "claim":
            row["claims"] += 1
        elif kind == "node" and action == "stale-epoch-rejected":
            row["stale"] += 1
    return per_node


def _node_table(events: list[dict[str, Any]]) -> "str | None":
    per_node = _node_rollup(events)
    if not per_node:
        return None
    rows = [[node, row["events"], row["claims"], row["cells"],
             row["stale"]]
            for node, row in sorted(per_node.items())]
    return format_table(
        ["node", "events", "claims", "cells", "stale stores"],
        rows, title=f"Nodes ({len(per_node)})")


#: telemetry.json keys surfaced in the stats header / JSON meta block.
_META_KEYS = ("run", "level", "profile", "workers", "build_seconds",
              "interrupted", "generated_at", "schema")


def stats_payload(run_dir: "str | Path", *,
                  node: "str | None" = None) -> dict[str, Any]:
    """Machine-readable ``repro stats --format json`` payload.

    Mirrors the human report's inputs — the ``telemetry.json`` metric
    snapshot plus event-derived rollups — without any table
    formatting, so CI and downstream services can consume telemetry
    without scraping ASCII.
    """

    obs_dir = resolve_run_dir(run_dir)
    payload = load_telemetry(obs_dir)
    events = read_all_events(obs_dir)
    if payload is None and not events:
        raise ValidationError(f"no telemetry data in {obs_dir}")
    nodes = _node_rollup(events)
    if node is not None:
        events = [e for e in events if e.get("node") == node]
        if not events:
            raise ValidationError(
                f"no events stamped node={node!r} in {obs_dir}")
    cells = []
    for event in events:
        if event.get("kind") != "cell_end":
            continue
        cells.append({
            "cell": event.get("cell"),
            "status": event.get("status"),
            "source": event.get("source"),
            "graph_source": event.get("graph_source"),
            "failure_kind": event.get("failure_kind"),
            "attempts": event.get("attempts", 1),
            "materialize_s": float(event.get("materialize_s", 0.0)),
            "engine_s": float(event.get("engine_s", 0.0)),
            "store_s": float(event.get("store_s", 0.0)),
            "node": event.get("node"),
        })
    cells.sort(key=lambda c: str(c["cell"]))
    meta = {key: payload[key] for key in _META_KEYS
            if payload and key in payload}
    return {
        "obs_dir": str(obs_dir),
        "node_filter": node,
        "meta": meta,
        "metrics": (payload or {}).get("metrics", {}),
        "nodes": nodes,
        "cells": cells,
        "n_events": len(events),
    }


def render_stats(run_dir: "str | Path", *,
                 node: "str | None" = None) -> str:
    """Full ``repro stats`` report for an observability directory.

    With *node*, the event-derived sections (per-cell table, node
    table) are restricted to events stamped with that node id; the
    registry-derived sections still cover the whole build (worker
    registries are merged without node labels).
    """

    obs_dir = resolve_run_dir(run_dir)
    payload = load_telemetry(obs_dir)
    events = read_all_events(obs_dir)
    if payload is None and not events:
        raise ValidationError(f"no telemetry data in {obs_dir}")
    node_table = _node_table(events)
    if node is not None:
        events = [e for e in events if e.get("node") == node]
        if not events:
            raise ValidationError(
                f"no events stamped node={node!r} in {obs_dir}")
    snapshot = (payload or {}).get("metrics", {})
    sections: list[str] = []

    header = [f"telemetry: {obs_dir}"]
    if node is not None:
        header.append(f"node filter: {node}")
    if payload:
        for key in ("run", "level", "profile", "workers",
                    "build_seconds", "interrupted"):
            if key in payload:
                value = payload[key]
                if key == "build_seconds":
                    value = _fmt_s(float(value)) + " s"
                header.append(f"{key}: {value}")
    sections.append("\n".join(header))
    if node_table is not None and node is None:
        sections.append(node_table)

    # Cell outcome summary.
    status_counts = _by_label(snapshot, "corpus_cells_total", "status")
    source_counts = _by_label(snapshot, "corpus_cells_total", "source")
    if status_counts:
        rows = [[status, int(count)]
                for status, count in sorted(status_counts.items())]
        rows.append(["(from cache)",
                     int(source_counts.get("cache", 0))])
        sections.append(format_table(
            ["status", "cells"], rows, title="Cell outcomes"))

    # Phase time breakdown: corpus level, then engine level.
    phase_totals = _by_label(snapshot, "corpus_cell_seconds_total", "phase")
    if phase_totals:
        grand = sum(phase_totals.values()) or 1.0
        rows = [[phase, _fmt_s(total), f"{100 * total / grand:.1f}%"]
                for phase, total in sorted(
                    phase_totals.items(), key=lambda kv: -kv[1])]
        sections.append(format_table(
            ["phase", "total s", "share"], rows,
            title="Cell phase time breakdown"))

    engine_rows = []
    for entry in _entries(snapshot, "histograms", "engine_phase_seconds"):
        labels = entry.get("labels", {})
        engine_rows.append([
            labels.get("engine", "?"), labels.get("phase", "?"),
            int(entry.get("count", 0)), _fmt_s(float(entry.get("sum", 0.0))),
            _fmt_ms(float(entry.get("p50", 0.0))),
            _fmt_ms(float(entry.get("p95", 0.0))),
        ])
    if engine_rows:
        engine_rows.sort(key=lambda r: (r[0], r[1]))
        merged: dict[tuple, list] = {}
        for row in engine_rows:
            key = (row[0], row[1])
            if key in merged:
                merged[key][2] += row[2]
                merged[key][3] = _fmt_s(
                    float(merged[key][3]) + float(row[3]))
            else:
                merged[key] = list(row)
        sections.append(format_table(
            ["engine", "phase", "samples", "total s", "p50 ms", "p95 ms"],
            merged.values(), title="Engine phase timing (sampled)"))

    # Failure taxonomy.
    failure_counts = _by_label(snapshot, "corpus_failures_total", "kind")
    retries = _total(snapshot, "corpus_retries_total")
    if failure_counts or retries:
        rows = [[kind, int(count)]
                for kind, count in sorted(failure_counts.items())]
        rows.append(["(retries)", int(retries)])
        sections.append(format_table(
            ["failure kind", "count"], rows, title="Failure taxonomy"))

    # Graph plane: resolution sources + hit rate, shm traffic.
    resolutions = _by_label(snapshot, "graph_resolutions_total", "source")
    if resolutions:
        total = sum(resolutions.values()) or 1.0
        rows = [[source, int(count), f"{100 * count / total:.1f}%"]
                for source, count in sorted(resolutions.items())]
        hits = resolutions.get("shm", 0.0) + resolutions.get("cache", 0.0)
        rows.append(["(hit rate)", int(hits),
                     f"{100 * hits / total:.1f}%"])
        sections.append(format_table(
            ["graph source", "count", "share"], rows,
            title="Graph resolution"))
    shm_bytes = _total(snapshot, "shm_published_bytes_total")
    shm_fail = _total(snapshot, "shm_attach_failures_total")
    ckpt_bytes = _total(snapshot, "checkpoint_published_bytes_total")
    extras = []
    if shm_bytes:
        extras.append(f"shm published: {_fmt_bytes(shm_bytes)}"
                      + (f", attach failures: {int(shm_fail)}"
                         if shm_fail else ""))
    if ckpt_bytes:
        extras.append(
            f"checkpoints: {int(_total(snapshot, 'checkpoint_publishes_total'))}"
            f" published ({_fmt_bytes(ckpt_bytes)}), "
            f"{int(_total(snapshot, 'checkpoint_restores_total'))} restored")
    trips = _by_label(snapshot, "health_trips_total", "condition")
    if trips:
        extras.append("health trips: " + ", ".join(
            f"{cond}={int(n)}" for cond, n in sorted(trips.items())))
    rss_entries = _entries(snapshot, "gauges", "peak_rss_bytes")
    if rss_entries:
        overall = max(float(e.get("value", 0.0)) for e in rss_entries)
        extras.append(f"peak RSS: {_fmt_bytes(overall)}")
        labeled = [e for e in rss_entries if e.get("labels")]
        if len(labeled) > 1:
            # One series per worker pid (plus node on distributed
            # builds) — the whole point of the labels is that workers
            # no longer overwrite each other in the merged rollup.
            parts = []
            for e in sorted(labeled,
                            key=lambda e: -float(e.get("value", 0.0))):
                labels = e.get("labels", {})
                who = labels.get("node") or f"pid {labels.get('pid', '?')}"
                parts.append(f"{who}={_fmt_bytes(float(e['value']))}")
            extras.append("peak RSS by worker: " + ", ".join(parts))
    if extras:
        sections.append("\n".join(extras))

    # Ensemble search: per-search walls, states scored, tile cache.
    search_rows = []
    for entry in _entries(snapshot, "histograms", "ensemble_search_seconds"):
        labels = entry.get("labels", {})
        search_rows.append([
            labels.get("metric", "?"), labels.get("engine", "?"),
            labels.get("strategy", "?"), labels.get("size", "?"),
            int(entry.get("count", 0)),
            _fmt_s(float(entry.get("sum", 0.0))),
        ])
    if search_rows:
        search_rows.sort(key=lambda r: (
            r[0], r[1], r[2], int(r[3]) if str(r[3]).isdigit() else 0))
        sections.append(format_table(
            ["metric", "engine", "strategy", "size", "searches",
             "total s"],
            search_rows, title="Ensemble search"))
    search_extras = []
    states = _by_label(snapshot, "ensemble_search_states_total", "engine")
    if states:
        search_extras.append("ensemble states scored: " + ", ".join(
            f"{eng}={int(n)}" for eng, n in sorted(states.items())))
    cache = _by_label(snapshot, "ensemble_block_cache_total", "outcome")
    if cache:
        hits = cache.get("hit", 0.0)
        lookups = sum(cache.values()) or 1.0
        search_extras.append(
            f"distance-tile cache: {int(hits)}/{int(lookups)} hits "
            f"({100.0 * hits / lookups:.1f}%)")
    for entry in _entries(snapshot, "histograms",
                          "ensemble_greedy_reevaluations"):
        count = int(entry.get("count", 0)) or 1
        mean = float(entry.get("sum", 0.0)) / count
        search_extras.append(
            f"greedy gain re-evaluations: mean {mean:.1f}/step "
            f"over {count} steps")
        break
    if search_extras:
        sections.append("\n".join(search_extras))

    # Iteration latency percentiles per engine/algorithm.
    latency_rows = []
    for entry in _entries(snapshot, "histograms",
                          "engine_iteration_seconds"):
        labels = entry.get("labels", {})
        latency_rows.append([
            labels.get("engine", "?"), labels.get("algorithm", "?"),
            int(entry.get("count", 0)),
            _fmt_ms(float(entry.get("p50", 0.0))),
            _fmt_ms(float(entry.get("p95", 0.0))),
        ])
    if latency_rows:
        latency_rows.sort(key=lambda r: (r[0], r[1]))
        sections.append(format_table(
            ["engine", "algorithm", "iters", "p50 ms", "p95 ms"],
            latency_rows, title="Iteration latency (sampled)"))

    # Per-cell table from lifecycle events.
    cell_rows = []
    for event in events:
        if event.get("kind") != "cell_end":
            continue
        cell_rows.append([
            event.get("cell", "?"),
            event.get("status", "?"),
            event.get("source", "?"),
            event.get("graph_source", "-"),
            event.get("attempts", 1),
            _fmt_s(float(event.get("materialize_s", 0.0))),
            _fmt_s(float(event.get("engine_s", 0.0))),
            _fmt_s(float(event.get("store_s", 0.0))),
        ])
    if cell_rows:
        cell_rows.sort(key=lambda r: str(r[0]))
        sections.append(format_table(
            ["cell", "status", "from", "graph", "tries",
             "mat s", "eng s", "store s"],
            cell_rows, title=f"Cells ({len(cell_rows)})"))

    return "\n\n".join(sections) + "\n"


# -- tail rendering ----------------------------------------------------

#: ``trace``/``span``/``parent`` are causal plumbing (``repro trace``
#: renders them); showing 12-hex ids on every tail line is noise.
_SKIP_FIELDS = {"ts", "kind", "pid", "run", "cell", "attempt", "node",
                "trace", "span", "parent"}


def format_event(event: dict[str, Any]) -> str:
    """One human-readable line for an event (used by ``repro tail``)."""

    import datetime

    ts = float(event.get("ts", 0.0))
    clock = datetime.datetime.fromtimestamp(ts).strftime("%H:%M:%S")
    kind = str(event.get("kind", "?"))
    if kind == "progress":
        # Single source of truth: the human progress line is a
        # formatter over the event payload (see experiments.corpus).
        from repro.experiments.corpus import format_progress

        try:
            return f"{clock} progress   {format_progress(event)}"
        except Exception:
            pass  # fall through to the generic rendering
    parts = [clock, f"{kind:<10}"]
    origin = event.get("node")
    if origin:
        parts.append(f"@{origin}")
    cell = event.get("cell")
    if cell:
        attempt = event.get("attempt")
        parts.append(f"{cell}" + (f"#{attempt}" if attempt else ""))
    for key in sorted(k for k in event if k not in _SKIP_FIELDS):
        value = event[key]
        if key in ("snapshot",):
            continue
        if isinstance(value, float):
            value = f"{value:.4g}"
        parts.append(f"{key}={value}")
    return " ".join(parts)


def tail_lines(run_dir: "str | Path", n: int, *,
               node: "str | None" = None) -> list[str]:
    """Last *n* formatted events of a run directory (optionally only
    those stamped with one node id)."""

    obs_dir = resolve_run_dir(run_dir)
    events = read_all_events(obs_dir)
    if node is not None:
        events = [e for e in events if e.get("node") == node]
    return [format_event(e) for e in events[-n:]]


def iter_follow(run_dir: "str | Path", *, duration_s: "float | None",
                poll_s: float = 0.25,
                node: "str | None" = None) -> Iterable[str]:
    """Formatted lines appended to the live log; see ``follow_events``."""

    from repro.obs.events import follow_events

    obs_dir = resolve_run_dir(run_dir)
    for event in follow_events(obs_dir, poll_s=poll_s,
                               duration_s=duration_s):
        if node is not None and event.get("node") != node:
            continue
        yield format_event(event)
