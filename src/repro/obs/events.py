"""Append-only JSONL event log with rotation, plus worker-sink merge.

Layout of an observability directory (one per corpus build / run)::

    <obs_dir>/
        events.jsonl          # main event stream (parent process)
        events.jsonl.1 ...    # rotated generations, newest = .1
        sinks/
            events-<pid>.jsonl  # per-pool-worker sink, merged + removed
        telemetry.json        # machine-readable metric snapshot
        metrics.prom          # Prometheus-style text exposition

Every event is one JSON object per line with at least ``ts`` (unix
seconds), ``kind`` and ``pid``; run/cell/attempt identifiers are added
by :class:`~repro.obs.telemetry.Telemetry` when set.  Readers are
tolerant of torn lines: a worker killed by SIGKILL mid-write leaves at
most one partial line at the end of its sink, which
:func:`read_events` silently skips.
"""

from __future__ import annotations

import io
import json
import os
import time
from pathlib import Path
from typing import Any, Callable, Iterator

EVENTS_FILENAME = "events.jsonl"
SINKS_DIRNAME = "sinks"
TELEMETRY_FILENAME = "telemetry.json"
PROM_FILENAME = "metrics.prom"

DEFAULT_MAX_BYTES = 4 << 20
DEFAULT_BACKUPS = 3


class EventLog:
    """Append-only JSONL file, rotated at ``max_bytes`` into backups.

    Rotation shifts ``events.jsonl`` → ``events.jsonl.1`` → ``.2`` …,
    dropping the oldest beyond ``backups`` generations, so the log is
    bounded at roughly ``(backups + 1) * max_bytes`` on disk.  One
    ``write()`` call per event keeps lines atomic in practice; readers
    still tolerate the rare torn tail.
    """

    def __init__(self, path: "str | Path",
                 max_bytes: int = DEFAULT_MAX_BYTES,
                 backups: int = DEFAULT_BACKUPS) -> None:
        self.path = Path(path)
        self.max_bytes = int(max_bytes)
        self.backups = int(backups)
        self._fh: "io.TextIOWrapper | None" = None
        self._size = 0

    def _open(self) -> io.TextIOWrapper:
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
            self._size = self._fh.tell()
        return self._fh

    def append(self, event: dict[str, Any]) -> None:
        line = json.dumps(event, separators=(",", ":"),
                          sort_keys=True, default=str) + "\n"
        fh = self._open()
        if self._size + len(line) > self.max_bytes and self._size > 0:
            self._rotate()
            fh = self._open()
        fh.write(line)
        fh.flush()
        self._size += len(line)

    def _rotate(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        self._size = 0
        oldest = self.path.with_name(f"{self.path.name}.{self.backups}")
        if oldest.exists():
            oldest.unlink()
        for gen in range(self.backups - 1, 0, -1):
            src = self.path.with_name(f"{self.path.name}.{gen}")
            if src.exists():
                os.replace(src, self.path.with_name(
                    f"{self.path.name}.{gen + 1}"))
        if self.backups > 0 and self.path.exists():
            os.replace(self.path, self.path.with_name(f"{self.path.name}.1"))
        elif self.path.exists():
            self.path.unlink()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def worker_sink_path(obs_dir: "str | Path", pid: int) -> Path:
    """Per-worker sink file for a pool worker process."""

    return Path(obs_dir) / SINKS_DIRNAME / f"events-{pid}.jsonl"


def node_sink_path(obs_dir: "str | Path", node: str) -> Path:
    """Per-node sink file for a distributed-build node agent.

    Same ``events-<id>.jsonl`` shape as the worker sinks, so
    :func:`merge_sinks` folds node logs and worker logs identically;
    node ids are sanitized to keep the name filesystem-safe and free
    of collisions with numeric pids.
    """

    safe = "".join(c if c.isalnum() or c in "-_" else "-" for c in node)
    return Path(obs_dir) / SINKS_DIRNAME / f"events-{safe}.jsonl"


def node_metrics_path(obs_dir: "str | Path", node: str) -> Path:
    """Per-node cumulative metrics-snapshot file (cf. the pid twin)."""

    safe = "".join(c if c.isalnum() or c in "-_" else "-" for c in node)
    return Path(obs_dir) / SINKS_DIRNAME / f"metrics-{safe}.json"


def worker_metrics_path(obs_dir: "str | Path", pid: int) -> Path:
    """Per-worker cumulative metrics-snapshot file.

    Kept apart from the event sink so the (large, cumulative) registry
    snapshot never rotates cell events out of the sink log.
    """

    return Path(obs_dir) / SINKS_DIRNAME / f"metrics-{pid}.json"


def write_worker_metrics(path: "str | Path",
                         snapshot: dict[str, Any]) -> None:
    """Atomically overwrite a worker's cumulative metrics snapshot.

    Stage + ``os.replace`` so a worker killed mid-write leaves the
    previous complete snapshot, never a torn file — the merge then
    still credits every cell the worker finished before dying.
    """

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    try:
        tmp.write_text(json.dumps(snapshot, separators=(",", ":")),
                       encoding="utf-8")
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


def read_events(path: "str | Path") -> Iterator[dict[str, Any]]:
    """Yield events from one JSONL file, skipping torn/invalid lines."""

    path = Path(path)
    if not path.exists():
        return
    with open(path, encoding="utf-8", errors="replace") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError:
                continue  # torn line from a killed writer
            if isinstance(event, dict):
                yield event


def log_files(obs_dir: "str | Path") -> list[Path]:
    """Event-log generations of *obs_dir*, oldest first."""

    root = Path(obs_dir)
    main = root / EVENTS_FILENAME
    rotated = sorted(
        (p for p in root.glob(f"{EVENTS_FILENAME}.*")
         if p.suffix.lstrip(".").isdigit()),
        key=lambda p: int(p.suffix.lstrip(".")),
        reverse=True,
    )
    return rotated + ([main] if main.exists() else [])


def read_all_events(obs_dir: "str | Path") -> list[dict[str, Any]]:
    """All retained events of a run directory, oldest file first."""

    events: list[dict[str, Any]] = []
    for path in log_files(obs_dir):
        events.extend(read_events(path))
    return events


def merge_sinks(obs_dir: "str | Path", into: "EventLog | None") -> tuple[
        int, list[dict[str, Any]]]:
    """Fold per-worker sink files into the main log.

    Returns ``(n_events, metric_snapshots)``.  Each worker's event
    sink — *including* any rotated generations, oldest first — is
    appended to *into*; its cumulative ``metrics-<pid>.json`` snapshot
    (see :func:`write_worker_metrics`) is collected for the caller to
    merge into the parent registry.  All sink files are removed.
    """

    sink_dir = Path(obs_dir) / SINKS_DIRNAME
    if not sink_dir.is_dir():
        return 0, []
    merged = 0
    snapshots: list[dict[str, Any]] = []
    by_worker: dict[str, list[Path]] = {}
    for sink in sink_dir.glob("events-*.jsonl*"):
        stem = sink.name.split(".jsonl", 1)[0]
        by_worker.setdefault(stem, []).append(sink)

    def generation(path: Path) -> int:
        # events-<pid>.jsonl.3 is the oldest, the bare file the newest.
        suffix = path.suffix.lstrip(".")
        return -int(suffix) if suffix.isdigit() else 0

    for stem in sorted(by_worker):
        for sink in sorted(by_worker[stem], key=generation):
            for event in read_events(sink):
                if event.get("kind") == "metrics":
                    continue  # legacy in-band snapshot; superseded
                if into is not None:
                    into.append(event)
                merged += 1
            sink.unlink(missing_ok=True)
    for metrics in sorted(sink_dir.glob("metrics-*.json")):
        try:
            data = json.loads(metrics.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            data = None
        if isinstance(data, dict):
            snapshots.append(data)
        metrics.unlink(missing_ok=True)
    try:
        sink_dir.rmdir()
    except OSError:
        pass  # concurrent writer or leftover files; keep it
    return merged, snapshots


def follow_events(obs_dir: "str | Path", *,
                  poll_s: float = 0.25,
                  duration_s: "float | None" = None,
                  stop: "Callable[[], bool] | None" = None,
                  ) -> Iterator[dict[str, Any]]:
    """Tail the main event log, yielding events as they are appended.

    Follows ``events.jsonl`` from its current end; detects rotation
    (file replaced under us) and reopens.  Stops after *duration_s*
    seconds, or when *stop()* returns true, whichever comes first.
    """

    path = Path(obs_dir) / EVENTS_FILENAME
    deadline = None if duration_s is None else time.monotonic() + duration_s
    fh: "io.TextIOWrapper | None" = None
    inode = -1
    buffer = ""
    while True:
        if fh is None and path.exists():
            fh = open(path, encoding="utf-8", errors="replace")
            inode = os.fstat(fh.fileno()).st_ino
        if fh is not None:
            chunk = fh.read()
            if chunk:
                buffer += chunk
                while "\n" in buffer:
                    line, buffer = buffer.split("\n", 1)
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        event = json.loads(line)
                    except ValueError:
                        continue
                    if isinstance(event, dict):
                        yield event
            else:
                try:
                    current = os.stat(path).st_ino
                except FileNotFoundError:
                    current = -1
                if current != inode:  # rotated under us
                    fh.close()
                    fh = None
                    buffer = ""
                    continue
        if stop is not None and stop():
            break
        if deadline is not None and time.monotonic() >= deadline:
            break
        time.sleep(poll_s)
    if fh is not None:
        fh.close()
