"""Process-wide telemetry registry: counters, gauges, histograms, spans.

This is the zero-dependency core of the observability plane.  A single
:class:`Telemetry` instance per process aggregates labeled metric
series and (optionally) appends structured events to a JSONL
:class:`~repro.obs.events.EventLog`.  Pool workers run their *own*
instance writing to a per-worker sink file; the parent merges worker
snapshots back at the end of a corpus build (see
``repro.obs.events.merge_sinks``).

Three observability levels gate the cost:

``off``
    The default.  ``get_telemetry().enabled`` is ``False`` and
    ``engine_observer()`` returns ``None`` — instrumented code paths
    reduce to a single attribute check / ``None`` test.
``basic``
    Metrics only.  Engine iterations are *sampled* (every
    ``BASIC_SAMPLE_EVERY``-th iteration is timed); no event log
    chatter beyond cell-level lifecycle events.
``full``
    Every iteration is timed, spans and subsystem actions are also
    emitted as events.

Crucially, no instrumentation ever touches ``Counters``, frontiers, or
any value that feeds :meth:`BehaviorCorpus.vectors`.  Under the
``unit`` work model the behavior vectors are therefore bit-identical
across all three levels — telemetry observes the computation, it never
participates in it (DESIGN §12).
"""

from __future__ import annotations

import os
import resource
import sys
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Iterator

from repro._util.errors import ValidationError
from repro.obs.events import EventLog
from repro.obs.tracing import TraceContext

#: Recognised observability levels, least to most verbose.
OBS_LEVELS = ("off", "basic", "full")

#: Environment variable consulted when no explicit level is given.
OBS_ENV = "REPRO_OBS"
#: Environment variable for the default event/export directory.
OBS_DIR_ENV = "REPRO_OBS_DIR"

#: At level ``basic`` engines time one iteration in this many.
BASIC_SAMPLE_EVERY = 16

#: Bounded per-series reservoir used for p50/p95 estimates.
RESERVOIR_SIZE = 2048
#: Samples retained per histogram when snapshotting for cross-process
#: merge / export (keeps worker sink lines and telemetry.json small).
SNAPSHOT_SAMPLES = 512


def validate_obs_level(level: str) -> str:
    """Return *level* or raise :class:`ValidationError`."""

    if level not in OBS_LEVELS:
        raise ValidationError(
            f"unknown obs level {level!r}; expected one of {OBS_LEVELS}")
    return level


def resolve_obs_level(level: "str | None") -> str:
    """Resolve an explicit level or fall back to ``$REPRO_OBS``/off."""

    if level is not None:
        return validate_obs_level(level)
    env = os.environ.get(OBS_ENV, "").strip().lower()
    return env if env in OBS_LEVELS else "off"


def peak_rss_bytes() -> int:
    """Peak resident set size of this process, in bytes."""

    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KiB on Linux, bytes on macOS.
    if sys.platform != "darwin":
        peak *= 1024
    return int(peak)


def _label_key(labels: dict[str, Any]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Histogram:
    """Streaming summary plus a bounded reservoir for percentiles.

    ``count``/``sum``/``min``/``max`` are exact; percentiles are
    computed over the most recent :data:`RESERVOIR_SIZE` observations,
    which is representative for the steady-state distributions we care
    about (iteration and phase latencies).
    """

    __slots__ = ("count", "sum", "min", "max", "_sample")

    def __init__(self) -> None:
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._sample: deque[float] = deque(maxlen=RESERVOIR_SIZE)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self._sample.append(value)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile over the retained sample."""

        if not self._sample:
            return 0.0
        ordered = sorted(self._sample)
        rank = min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))
        return ordered[rank]

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def snapshot(self) -> dict[str, Any]:
        sample = list(self._sample)
        if len(sample) > SNAPSHOT_SAMPLES:
            step = len(sample) / SNAPSHOT_SAMPLES
            sample = [sample[int(i * step)]
                      for i in range(SNAPSHOT_SAMPLES)]
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "sample": sample,
        }

    def merge_snapshot(self, snap: dict[str, Any]) -> None:
        count = int(snap.get("count", 0))
        if count <= 0:
            return
        self.count += count
        self.sum += float(snap.get("sum", 0.0))
        self.min = min(self.min, float(snap.get("min", self.min)))
        self.max = max(self.max, float(snap.get("max", self.max)))
        for value in snap.get("sample", ()):
            self._sample.append(float(value))


class SpanHandle:
    """Mutable handle for an in-flight :meth:`Telemetry.span` region."""

    __slots__ = ("name", "labels", "seconds")

    def __init__(self, name: str, labels: dict[str, Any]) -> None:
        self.name = name
        self.labels = labels
        self.seconds = 0.0

    def set(self, **labels: Any) -> None:
        """Attach labels discovered while the span is open."""
        self.labels.update(labels)


class Telemetry:
    """Registry of labeled counters/gauges/histograms + event emitter.

    Metric series are addressed by ``(name, labels)``; label values are
    stringified.  Merge semantics (used for worker → parent folding):
    counters **sum**, gauges **max** (they record peaks, e.g.
    ``peak_rss_bytes``), histograms merge their exact aggregates and
    concatenate bounded samples.
    """

    def __init__(self, level: str = "off",
                 events: "EventLog | None" = None,
                 run_id: "str | None" = None,
                 node: "str | None" = None) -> None:
        self.level = validate_obs_level(level)
        self.events = events
        self.run_id = run_id
        self.node = node
        self.cell: "str | None" = None
        self.attempt: "int | None" = None
        self.trace: "TraceContext | None" = None
        self._counters: dict[str, dict[tuple, float]] = {}
        self._gauges: dict[str, dict[tuple, float]] = {}
        self._histograms: dict[str, dict[tuple, Histogram]] = {}

    # -- level helpers ------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self.level != "off"

    @property
    def full(self) -> bool:
        return self.level == "full"

    # -- context ------------------------------------------------------
    def set_context(self, *, cell: "str | None" = None,
                    attempt: "int | None" = None) -> None:
        self.cell = cell
        self.attempt = attempt

    def set_node(self, node: "str | None") -> None:
        """Stamp subsequent events with the distributed-build node
        identity. Unlike cell/attempt, the node never changes for the
        life of the process, so it is set once rather than per-cell."""
        self.node = node

    def set_trace(self, trace: "TraceContext | None") -> None:
        """Install the ambient causal context stamped onto events.

        Span ids are deterministic (see :mod:`repro.obs.tracing`), so
        setting the same cell context on a retried or re-dispatched
        attempt re-links its events to the original span node.
        """
        self.trace = trace

    def record_peak_rss(self) -> None:
        """Record this process's peak RSS under worker/node labels.

        Pool workers and node agents share gauge *names* when their
        registries merge back into the parent; labeling by pid (and
        node, when set) keeps each worker's peak as its own series
        instead of all of them collapsing into one process-wide max.
        """
        if not self.enabled:
            return
        labels: dict[str, Any] = {"pid": os.getpid()}
        if self.node is not None:
            labels["node"] = self.node
        self.gauge_max("peak_rss_bytes", peak_rss_bytes(), **labels)

    # -- metric primitives --------------------------------------------
    def inc(self, name: str, value: float = 1.0, **labels: Any) -> None:
        if not self.enabled:
            return
        series = self._counters.setdefault(name, {})
        key = _label_key(labels)
        series[key] = series.get(key, 0.0) + value

    def gauge_max(self, name: str, value: float, **labels: Any) -> None:
        if not self.enabled:
            return
        series = self._gauges.setdefault(name, {})
        key = _label_key(labels)
        if value > series.get(key, float("-inf")):
            series[key] = float(value)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        if not self.enabled:
            return
        series = self._histograms.setdefault(name, {})
        key = _label_key(labels)
        hist = series.get(key)
        if hist is None:
            hist = series[key] = Histogram()
        hist.observe(value)

    # -- spans ---------------------------------------------------------
    @contextmanager
    def span(self, name: str, **labels: Any) -> "Iterator[SpanHandle]":
        """Time a region into the ``<name>_seconds`` histogram.

        Yields a :class:`SpanHandle`; the caller can attach labels that
        are only known mid-region via :meth:`SpanHandle.set` and read
        the measured duration from ``handle.seconds`` afterwards.  The
        region is *always* timed (callers often need the duration even
        with telemetry off); recording and the level-full ``span``
        event only happen when enabled.
        """

        handle = SpanHandle(name, dict(labels))
        started = time.perf_counter()
        try:
            yield handle
        finally:
            handle.seconds = time.perf_counter() - started
            if self.enabled:
                self.observe(f"{name}_seconds", handle.seconds,
                             **handle.labels)
                if self.full:
                    # Phase spans are children of the ambient span
                    # (the cell), keyed by name + attempt so a retry's
                    # phases get their own deterministic node.
                    ctx = None
                    if self.trace is not None:
                        ctx = self.trace.child(name, self.attempt or 0)
                    self.emit("span", _trace_ctx=ctx, name=name,
                              seconds=handle.seconds, **handle.labels)

    # -- events --------------------------------------------------------
    def emit(self, kind: str,
             _trace_ctx: "TraceContext | None" = None,
             **fields: Any) -> None:
        """Append a structured event; no-op when off or no sink.

        The event is stamped with the causal context installed via
        :meth:`set_trace`; *_trace_ctx* overrides it for one event
        (used by the scheduler/agents to attribute task and node
        events to their own spans without mutating ambient state).
        """

        if not self.enabled or self.events is None:
            return
        event = {"ts": time.time(), "kind": kind, "pid": os.getpid()}
        if self.run_id is not None:
            event["run"] = self.run_id
        if self.node is not None:
            event["node"] = self.node
        if self.cell is not None:
            event["cell"] = self.cell
        if self.attempt is not None:
            event["attempt"] = self.attempt
        ctx = _trace_ctx if _trace_ctx is not None else self.trace
        if ctx is not None:
            event.update(ctx.to_dict())
        event.update(fields)
        self.events.append(event)

    # -- snapshot / merge ---------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """JSON-serialisable dump of every metric series."""

        def dump(series: dict[str, dict[tuple, float]]) -> dict:
            return {
                name: [{"labels": dict(key), "value": value}
                       for key, value in sorted(entries.items())]
                for name, entries in sorted(series.items())
            }

        return {
            "counters": dump(self._counters),
            "gauges": dump(self._gauges),
            "histograms": {
                name: [{"labels": dict(key), **hist.snapshot()}
                       for key, hist in sorted(entries.items())]
                for name, entries in sorted(self._histograms.items())
            },
        }

    def drain(self) -> dict[str, Any]:
        """Snapshot every metric series, then reset them all.

        Pool workers call this after each cell so the cell's metric
        delta can ride back to the parent on the result itself — a
        few KB per cell instead of rewriting an ever-growing
        cumulative snapshot to disk. The event log and context are
        untouched; only counters/gauges/histograms restart at zero.
        Because :meth:`merge_snapshot` is associative, merging the
        per-cell deltas in any order equals one cumulative snapshot.
        """
        snap = self.snapshot()
        self._counters = {}
        self._gauges = {}
        self._histograms = {}
        return snap

    def merge_snapshot(self, snap: dict[str, Any]) -> None:
        """Fold another process's :meth:`snapshot` into this registry."""

        for name, entries in snap.get("counters", {}).items():
            for entry in entries:
                self.inc(name, float(entry.get("value", 0.0)),
                         **entry.get("labels", {}))
        for name, entries in snap.get("gauges", {}).items():
            for entry in entries:
                self.gauge_max(name, float(entry.get("value", 0.0)),
                               **entry.get("labels", {}))
        for name, entries in snap.get("histograms", {}).items():
            series = self._histograms.setdefault(name, {})
            for entry in entries:
                key = _label_key(entry.get("labels", {}))
                hist = series.get(key)
                if hist is None:
                    hist = series[key] = Histogram()
                hist.merge_snapshot(entry)

    # -- iteration helpers --------------------------------------------
    def histogram(self, name: str, **labels: Any) -> "Histogram | None":
        series = self._histograms.get(name)
        if series is None:
            return None
        return series.get(_label_key(labels))

    def counter_value(self, name: str, **labels: Any) -> float:
        series = self._counters.get(name, {})
        return series.get(_label_key(labels), 0.0)

    def counter_total(self, name: str) -> float:
        """Sum of a counter across all of its label series."""
        return float(sum(self._counters.get(name, {}).values()))

    def close(self) -> None:
        if self.events is not None:
            self.events.close()


class EngineObserver:
    """Per-run engine hook: sampled phase/iteration timing + totals.

    Engines call :meth:`sampled` at the top of each iteration to decide
    whether to pay for ``perf_counter`` phase timing this iteration
    (every iteration at ``full``, one in :data:`BASIC_SAMPLE_EVERY` at
    ``basic``), then :meth:`iteration` with the per-iteration
    ``Counters`` deltas.  Totals are cheap dict increments and are
    recorded every iteration; wall-time histograms only on sampled
    ones.  Nothing here feeds back into the computation.
    """

    __slots__ = ("tel", "engine", "algorithm", "_every")

    def __init__(self, tel: Telemetry, engine: str, algorithm: str) -> None:
        self.tel = tel
        self.engine = engine
        self.algorithm = algorithm
        self._every = 1 if tel.full else BASIC_SAMPLE_EVERY

    def sampled(self, iteration: int) -> bool:
        return iteration % self._every == 0

    def iteration(self, *, iteration: int, active: int, updates: int,
                  edge_reads: int, messages: int,
                  seconds: "float | None" = None,
                  phases: "dict[str, float] | None" = None) -> None:
        tel = self.tel
        labels = {"engine": self.engine, "algorithm": self.algorithm}
        tel.inc("engine_iterations_total", 1, **labels)
        tel.inc("engine_active_total", active, **labels)
        tel.inc("engine_updates_total", updates, **labels)
        tel.inc("engine_edge_reads_total", edge_reads, **labels)
        tel.inc("engine_messages_total", messages, **labels)
        if seconds is not None:
            tel.observe("engine_iteration_seconds", seconds, **labels)
        if phases:
            for phase, dt in phases.items():
                tel.observe("engine_phase_seconds", dt,
                            phase=phase, **labels)

    def direction(self, *, mode: str, active_fraction: float,
                  switched: bool) -> None:
        """Record one iteration's traversal direction decision.

        ``mode`` is ``"push"`` or ``"pull"``; ``switched`` marks
        iterations whose mode differs from the previous one, and those
        observe the active fraction that triggered the switch.
        Observational only — the decision itself is a pure function of
        (active_fraction, threshold), never of telemetry state.
        """
        tel = self.tel
        labels = {"engine": self.engine, "algorithm": self.algorithm}
        tel.inc("engine_direction_iterations_total", 1, mode=mode, **labels)
        if switched:
            tel.observe("engine_direction_switch_active_fraction",
                        active_fraction, to=mode, **labels)


# -- process-global instance ------------------------------------------

_TELEMETRY: "Telemetry | None" = None


def get_telemetry() -> Telemetry:
    """The process-wide registry (off-level unless configured)."""

    global _TELEMETRY
    if _TELEMETRY is None:
        _TELEMETRY = Telemetry(level=resolve_obs_level(None))
    return _TELEMETRY


def configure(level: str, *, events_path: "str | None" = None,
              run_id: "str | None" = None,
              max_bytes: "int | None" = None,
              backups: "int | None" = None) -> Telemetry:
    """Install a fresh process-global registry and return it."""

    global _TELEMETRY
    if _TELEMETRY is not None:
        _TELEMETRY.close()
    events = None
    if events_path is not None and level != "off":
        kwargs: dict[str, Any] = {}
        if max_bytes is not None:
            kwargs["max_bytes"] = max_bytes
        if backups is not None:
            kwargs["backups"] = backups
        events = EventLog(events_path, **kwargs)
    _TELEMETRY = Telemetry(level=level, events=events, run_id=run_id)
    return _TELEMETRY


def deactivate() -> None:
    """Close any sink and reset the global registry to level off."""

    global _TELEMETRY
    if _TELEMETRY is not None:
        _TELEMETRY.close()
    _TELEMETRY = Telemetry(level="off")


def engine_observer(engine: str, algorithm: str) -> "EngineObserver | None":
    """Observer for an engine run, or ``None`` when telemetry is off."""

    tel = get_telemetry()
    if not tel.enabled:
        return None
    return EngineObserver(tel, engine, algorithm)
