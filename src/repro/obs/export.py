"""Exporters: Prometheus-style text snapshot and ``telemetry.json``.

Both render a :meth:`Telemetry.snapshot` dict; neither imports numpy
or anything outside the stdlib, keeping the plane dependency-free.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any

from repro.obs.events import PROM_FILENAME, TELEMETRY_FILENAME

#: Every exported series is namespaced to avoid collisions on shared
#: scrape endpoints.
PROM_PREFIX = "repro_"

TELEMETRY_SCHEMA = 1


def _prom_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return "{" + body + "}"


def render_prometheus(snapshot: dict[str, Any]) -> str:
    """Prometheus text exposition of a metric snapshot."""

    lines: list[str] = []
    for name, entries in snapshot.get("counters", {}).items():
        full = f"{PROM_PREFIX}{name}"
        lines.append(f"# HELP {full} monotonic counter (sum-merged "
                     f"across workers)")
        lines.append(f"# TYPE {full} counter")
        for entry in entries:
            lines.append(f"{full}{_prom_labels(entry['labels'])} "
                         f"{entry['value']:g}")
    for name, entries in snapshot.get("gauges", {}).items():
        full = f"{PROM_PREFIX}{name}"
        lines.append(f"# HELP {full} peak gauge (max-merged across "
                     f"workers)")
        lines.append(f"# TYPE {full} gauge")
        for entry in entries:
            lines.append(f"{full}{_prom_labels(entry['labels'])} "
                         f"{entry['value']:g}")
    for name, entries in snapshot.get("histograms", {}).items():
        full = f"{PROM_PREFIX}{name}"
        lines.append(f"# HELP {full} summary: nearest-rank quantiles "
                     f"plus exact _count/_sum for rate and mean "
                     f"derivation")
        lines.append(f"# TYPE {full} summary")
        for entry in entries:
            labels = dict(entry["labels"])
            for q_key, q_val in (("p50", "0.5"), ("p95", "0.95")):
                q_labels = dict(labels, quantile=q_val)
                lines.append(f"{full}{_prom_labels(q_labels)} "
                             f"{entry[q_key]:g}")
            lines.append(f"{full}_sum{_prom_labels(labels)} "
                         f"{entry['sum']:g}")
            lines.append(f"{full}_count{_prom_labels(labels)} "
                         f"{entry['count']:g}")
    return "\n".join(lines) + "\n"


def write_prometheus(obs_dir: "str | Path",
                     snapshot: dict[str, Any]) -> Path:
    path = Path(obs_dir) / PROM_FILENAME
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_prometheus(snapshot), encoding="utf-8")
    return path


def write_telemetry_json(obs_dir: "str | Path", snapshot: dict[str, Any],
                         **extra: Any) -> Path:
    """Drop the machine-readable metric snapshot next to the run."""

    path = Path(obs_dir) / TELEMETRY_FILENAME
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema": TELEMETRY_SCHEMA,
        "generated_at": time.time(),
        **extra,
        "metrics": snapshot,
    }
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True,
                              default=str), encoding="utf-8")
    tmp.replace(path)
    return path


def load_telemetry(obs_dir: "str | Path") -> "dict[str, Any] | None":
    path = Path(obs_dir) / TELEMETRY_FILENAME
    if not path.exists():
        return None
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except ValueError:
        return None
    return payload if isinstance(payload, dict) else None
