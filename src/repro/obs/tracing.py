"""Causal tracing across the corpus-build DAG.

A :class:`TraceContext` is a ``(trace_id, span_id, parent_span_id)``
triple stamped onto every telemetry event.  IDs are **deterministic**
— derived with blake2b from the build's profile name + seed and each
span's natural key (cell cache key, scheduler task id, node id) rather
than drawn at random.  Determinism is the re-link mechanism: a build
that resumes after a crash, a retry after a revoked lease, and a
re-dispatch on another node all derive the *same* span id for the same
cell, so their events attach to the original span node instead of
starting a disconnected tree.  That is what lets ``repro trace``
reconstruct one connected tree per cell even across SIGKILLed workers
and fenced nodes (DESIGN §12's "observe, never participate" rule
still holds — ids are pure functions of build inputs).

Span-node identity is *flat by construction*: cell lifecycle events
(``cell_start``/``retry``/``cell_end``) all carry the cell span with
the build span as parent, and the attempt number rides as an ordinary
event field.  Phase spans (``materialize``/``engine_run``/
``corpus_store``) are children of the cell span, keyed by attempt.
Because ``cell_start`` always precedes any phase span in the same
sink, a parent node exists for every child a surviving log can
contain — an *orphan* (a span whose parent id never appears) therefore
indicates real event loss, which is exactly what the chaos tests
assert never happens.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Iterable

#: Hex characters per id (blake2b digest_size=6 -> 12 hex chars).
_ID_BYTES = 6

#: Event kinds that *define* a span's lifetime boundaries (as opposed
#: to merely being stamped with an ambient span id).
_OPEN_KINDS = {"build_start", "cell_start", "run_start"}
_CLOSE_KINDS = {"build_end", "cell_end", "run_end"}


def derive_id(*parts: Any) -> str:
    """Deterministic short id from the joined string forms of *parts*."""

    h = hashlib.blake2b(digest_size=_ID_BYTES)
    for part in parts:
        h.update(str(part).encode("utf-8", "replace"))
        h.update(b"\x1f")
    return h.hexdigest()


def derive_run_id(profile_name: str, seed: int) -> str:
    """Deterministic run id for a corpus build.

    Two builds of the same (profile, seed) — e.g. a crash and its
    resume — share a run id, so their events merge into one trace
    instead of two.  One-shot CLI runs keep random ids; only corpus
    builds need re-link semantics.
    """

    return derive_id("run", profile_name, seed)


@dataclass(frozen=True)
class TraceContext:
    """Immutable causal position: which trace, which span, whose child."""

    trace_id: str
    span_id: str
    parent_span_id: "str | None" = None

    @classmethod
    def for_build(cls, profile_name: str, seed: int) -> "TraceContext":
        """Root context of a corpus build (the build span)."""

        trace = derive_id("trace", profile_name, seed)
        return cls(trace_id=trace, span_id=derive_id(trace, "build"))

    def child(self, *parts: Any) -> "TraceContext":
        """Derive a child context keyed by *parts* under this span."""

        return TraceContext(
            trace_id=self.trace_id,
            span_id=derive_id(self.span_id, *parts),
            parent_span_id=self.span_id)

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"trace": self.trace_id,
                               "span": self.span_id}
        if self.parent_span_id is not None:
            out["parent"] = self.parent_span_id
        return out

    @classmethod
    def from_dict(cls, data: "dict[str, Any] | None") \
            -> "TraceContext | None":
        if not data or "trace" not in data or "span" not in data:
            return None
        return cls(trace_id=str(data["trace"]),
                   span_id=str(data["span"]),
                   parent_span_id=(str(data["parent"])
                                   if data.get("parent") else None))


# -- span-tree reconstruction ------------------------------------------

class SpanNode:
    """One reconstructed span: all events sharing a span id."""

    __slots__ = ("span_id", "parent_id", "name", "kind", "first_ts",
                 "last_ts", "n_events", "children", "status", "node",
                 "attempts")

    def __init__(self, span_id: str, parent_id: "str | None") -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name: "str | None" = None
        self.kind: "str | None" = None
        self.first_ts = float("inf")
        self.last_ts = float("-inf")
        self.n_events = 0
        self.children: list[SpanNode] = []
        self.status: "str | None" = None
        self.node: "str | None" = None
        self.attempts = 0

    @property
    def seconds(self) -> float:
        if self.n_events == 0 or self.last_ts < self.first_ts:
            return 0.0
        return self.last_ts - self.first_ts

    def absorb(self, event: dict[str, Any]) -> None:
        self.n_events += 1
        ts = float(event.get("ts", 0.0))
        kind = str(event.get("kind", "?"))
        begin = ts
        if kind == "span":
            # Span events are emitted at region end with the measured
            # duration; back-date the open edge.
            begin = ts - float(event.get("seconds", 0.0))
        if begin < self.first_ts:
            self.first_ts = begin
        if ts > self.last_ts:
            self.last_ts = ts
        name = self._name_for(event, kind)
        if name is not None and (self.name is None
                                 or kind in _OPEN_KINDS
                                 or kind in _CLOSE_KINDS):
            self.name = name
            self.kind = kind
        if "status" in event:
            self.status = str(event["status"])
        if event.get("node"):
            self.node = str(event["node"])
        attempt = event.get("attempt") or event.get("attempts")
        if attempt is not None:
            try:
                self.attempts = max(self.attempts, int(attempt))
            except (TypeError, ValueError):
                pass

    @staticmethod
    def _name_for(event: dict[str, Any], kind: str) -> "str | None":
        if kind in ("build_start", "build_end"):
            return f"build {event.get('profile', event.get('run', ''))}" \
                .strip()
        if kind in ("run_start", "run_end"):
            return f"cli {event.get('command', event.get('run', ''))}" \
                .strip()
        if kind in ("cell_start", "cell_end", "retry", "progress"):
            cell = event.get("cell")
            return str(cell) if cell else None
        if kind == "span":
            return str(event.get("name", "span"))
        if kind == "task":
            return f"task {event.get('task', '?')}"
        if kind in ("node", "distqueue", "scheduler"):
            base = event.get("node") or event.get("action") or kind
            return f"{kind} {base}"
        return None


class SpanTree:
    """Reconstructed forest of spans for one trace id."""

    def __init__(self, trace_id: "str | None") -> None:
        self.trace_id = trace_id
        self.nodes: dict[str, SpanNode] = {}
        self.roots: list[SpanNode] = []
        self.orphans: list[SpanNode] = []
        self.n_events = 0

    @property
    def connected(self) -> bool:
        return not self.orphans


def list_traces(events: Iterable[dict[str, Any]]) -> list[str]:
    """Distinct trace ids present in an event stream, oldest first."""

    seen: dict[str, float] = {}
    for event in events:
        trace = event.get("trace")
        if trace and trace not in seen:
            seen[str(trace)] = float(event.get("ts", 0.0))
    return sorted(seen, key=lambda t: seen[t])


def build_span_tree(events: Iterable[dict[str, Any]],
                    trace_id: "str | None" = None) -> SpanTree:
    """Reconstruct the span forest for one trace.

    With *trace_id* None the first trace seen in the stream is used.
    Nodes whose (non-null) parent id never appears among the seen span
    ids are reported as **orphans**: with deterministic derivation an
    orphan can only mean the parent's events were lost.
    """

    events = list(events)
    if trace_id is None:
        traces = list_traces(events)
        trace_id = traces[0] if traces else None
    tree = SpanTree(trace_id)
    for event in events:
        span = event.get("span")
        if not span or (trace_id is not None
                        and event.get("trace") != trace_id):
            continue
        span = str(span)
        parent = event.get("parent")
        parent = str(parent) if parent else None
        node = tree.nodes.get(span)
        if node is None:
            node = tree.nodes[span] = SpanNode(span, parent)
        elif node.parent_id is None and parent is not None:
            node.parent_id = parent
        node.absorb(event)
        tree.n_events += 1
    for node in tree.nodes.values():
        if node.parent_id is None:
            tree.roots.append(node)
        else:
            parent_node = tree.nodes.get(node.parent_id)
            if parent_node is None:
                tree.orphans.append(node)
            else:
                parent_node.children.append(node)
    for node in tree.nodes.values():
        node.children.sort(key=lambda n: (n.first_ts, n.span_id))
    tree.roots.sort(key=lambda n: (n.first_ts, n.span_id))
    tree.orphans.sort(key=lambda n: (n.first_ts, n.span_id))
    return tree


# -- rendering ---------------------------------------------------------

_BAR_WIDTH = 32


def _timeline_bar(node: SpanNode, t0: float, t1: float,
                  width: int = _BAR_WIDTH) -> str:
    window = max(t1 - t0, 1e-9)
    lo = max(0, min(width - 1,
                    int((node.first_ts - t0) / window * width)))
    hi = max(lo + 1, min(width,
                         int((node.last_ts - t0) / window * width + 0.5)))
    return "|" + "." * lo + "#" * (hi - lo) + "." * (width - hi) + "|"


def _render_node(node: SpanNode, t0: float, t1: float, depth: int,
                 lines: list[str], max_depth: "int | None") -> None:
    label = node.name or node.span_id
    extra = []
    if node.status:
        extra.append(node.status)
    if node.attempts > 1:
        extra.append(f"x{node.attempts}")
    if node.node:
        extra.append(f"@{node.node}")
    suffix = f" [{' '.join(extra)}]" if extra else ""
    indent = "  " * depth
    head = f"{indent}{label}{suffix}"
    bar = _timeline_bar(node, t0, t1)
    lines.append(f"{head:<44.44} {bar} {node.seconds:8.3f}s "
                 f"({node.n_events} ev)")
    if max_depth is not None and depth + 1 >= max_depth:
        return
    for child in node.children:
        _render_node(child, t0, t1, depth + 1, lines, max_depth)


def render_trace(events: Iterable[dict[str, Any]], *,
                 trace_id: "str | None" = None,
                 cell: "str | None" = None,
                 max_depth: "int | None" = None) -> str:
    """``repro trace``: span tree + ASCII timeline + orphan report.

    With *cell*, only the subtree(s) whose span name matches the cell
    label are rendered (orphan accounting still covers the whole
    trace).
    """

    tree = build_span_tree(events, trace_id)
    if not tree.nodes:
        return ("no spans found" +
                (f" for trace {trace_id}" if trace_id else "") +
                " (was the build run with --obs full?)\n")
    t0 = min(n.first_ts for n in tree.nodes.values())
    t1 = max(n.last_ts for n in tree.nodes.values())
    lines = [
        f"trace {tree.trace_id}: {len(tree.nodes)} spans over "
        f"{tree.n_events} events, window {max(t1 - t0, 0.0):.3f}s",
        f"orphan spans: {len(tree.orphans)}",
        "",
    ]
    if cell is not None:
        targets = [n for n in tree.nodes.values() if n.name == cell]
        if not targets:
            lines.append(f"no span named {cell!r} in this trace")
        for node in targets:
            _render_node(node, t0, t1, 0, lines, max_depth)
    else:
        for root in tree.roots:
            _render_node(root, t0, t1, 0, lines, max_depth)
    if tree.orphans:
        lines.append("")
        lines.append("ORPHANED SPANS (parent events missing — "
                     "possible event loss):")
        for node in tree.orphans:
            lines.append(f"  {node.name or node.span_id} "
                         f"(span {node.span_id}, "
                         f"missing parent {node.parent_id})")
    return "\n".join(lines) + "\n"
