"""Critical-path decomposition of a corpus build (``repro critical-path``).

Answers "why was this build slow" from the merged event log alone: a
backward walk over per-cell execution intervals from ``build_end`` to
``build_start`` reconstructs the chain of work that bounded the build
wall, attributing every second to one of six categories:

``materialize`` / ``engine`` / ``store``
    The cell phase durations reported on ``cell_end`` events.
``retry-backoff``
    Jittered sleeps between failed attempts (``retry`` events).
``lease-latency``
    Dispatch overhead: the delay between a scheduler lease grant and
    the worker's ``cell_start``, plus in-worker time not covered by a
    phase (trace validation, result collection).
``queue-wait``
    Chain gaps — time when the path-bounding cell had not been
    dispatched yet (plan ordering, scheduler ticks, worker scarcity).

By construction the six categories sum *exactly* to the walked build
window, so the report can be trusted to account for the whole wall —
the acceptance bar is "within 10% of measured wall" and this meets it
identically (up to the sub-second difference between the perf-counter
build duration and the event-timestamp window).
"""

from __future__ import annotations

from typing import Any, Iterable

#: Attribution categories, in rendering order.
CATEGORIES = ("engine", "materialize", "store", "retry-backoff",
              "lease-latency", "queue-wait")


class CellInterval:
    """One cell's execution window with its phase breakdown."""

    __slots__ = ("cell", "key", "start_ts", "end_ts", "materialize_s",
                 "engine_s", "store_s", "backoff_s", "status", "source",
                 "attempts", "node")

    def __init__(self, cell: str) -> None:
        self.cell = cell
        self.key: "str | None" = None
        self.start_ts = float("inf")
        self.end_ts = float("-inf")
        self.materialize_s = 0.0
        self.engine_s = 0.0
        self.store_s = 0.0
        self.backoff_s = 0.0
        self.status: "str | None" = None
        self.source: "str | None" = None
        self.attempts = 1
        self.node: "str | None" = None

    @property
    def seconds(self) -> float:
        if self.end_ts < self.start_ts:
            return 0.0
        return self.end_ts - self.start_ts

    def phase_seconds(self) -> dict[str, float]:
        return {"materialize": self.materialize_s,
                "engine": self.engine_s,
                "store": self.store_s,
                "retry-backoff": self.backoff_s}


def collect_intervals(events: Iterable[dict[str, Any]]) \
        -> "tuple[float, float, float, dict[str, CellInterval], dict]":
    """Scan the merged log into per-cell intervals.

    Returns ``(build_start_ts, build_end_ts, reported_wall_s,
    intervals, leased_ts_by_key)``.  Only the *last* build in the log
    is analysed (a log can hold a crash and its resume); a missing
    ``build_end`` falls back to the latest event timestamp.
    """

    events = list(events)
    build_start_ts = None
    build_end_ts = None
    reported_wall = 0.0
    for event in events:
        kind = event.get("kind")
        if kind == "build_start":
            build_start_ts = float(event.get("ts", 0.0))
        elif kind == "build_end":
            build_end_ts = float(event.get("ts", 0.0))
            reported_wall = float(event.get("seconds", 0.0))
    if build_start_ts is None:
        tss = [float(e.get("ts", 0.0)) for e in events if "ts" in e]
        build_start_ts = min(tss) if tss else 0.0
    if build_end_ts is None or build_end_ts < build_start_ts:
        tss = [float(e.get("ts", 0.0)) for e in events if "ts" in e]
        build_end_ts = max(tss) if tss else build_start_ts
    intervals: dict[str, CellInterval] = {}
    leased: dict[str, list[float]] = {}
    for event in events:
        ts = float(event.get("ts", 0.0))
        if ts < build_start_ts or ts > build_end_ts + 1e-6:
            continue
        kind = event.get("kind")
        if kind == "task" and event.get("to") == "leased":
            task = str(event.get("task", ""))
            if task.startswith("run:"):
                leased.setdefault(task[len("run:"):], []).append(ts)
        cell = event.get("cell")
        if not cell or kind not in ("cell_start", "cell_end", "retry"):
            continue
        iv = intervals.get(cell)
        if iv is None:
            iv = intervals[cell] = CellInterval(str(cell))
        iv.start_ts = min(iv.start_ts, ts)
        iv.end_ts = max(iv.end_ts, ts)
        if kind == "cell_start" and event.get("key"):
            iv.key = str(event["key"])
        elif kind == "retry":
            iv.backoff_s += float(event.get("backoff_s", 0.0))
        elif kind == "cell_end":
            iv.materialize_s += float(event.get("materialize_s", 0.0))
            iv.engine_s += float(event.get("engine_s", 0.0))
            iv.store_s += float(event.get("store_s", 0.0))
            iv.status = str(event.get("status", "?"))
            iv.source = str(event.get("source", "?"))
            iv.attempts = max(iv.attempts,
                              int(event.get("attempts", 1) or 1))
            if event.get("node"):
                iv.node = str(event["node"])
    return build_start_ts, build_end_ts, reported_wall, intervals, leased


def critical_path(events: Iterable[dict[str, Any]],
                  *, straggler_quantile: float = 0.95) -> dict[str, Any]:
    """Decompose the build wall along its critical path.

    The walk starts at ``build_end`` and repeatedly picks, among cells
    whose interval starts before the cursor, the one ending last; its
    clipped duration is attributed to its phases (remainder →
    lease-latency) and the gap up to the cursor to queue-wait (split
    with lease-latency when the successor cell's lease-grant timestamp
    is known).  The cursor then jumps to the chosen interval's start.
    Every second of the window lands in exactly one category.
    """

    (t0, t1, reported_wall, intervals, leased) = \
        collect_intervals(events)
    decomp = {category: 0.0 for category in CATEGORIES}
    chain: list[dict[str, Any]] = []
    cursor = t1
    successor: "CellInterval | None" = None
    pool = [iv for iv in intervals.values() if iv.seconds > 0.0]
    eps = 1e-9
    while cursor > t0 + eps:
        candidates = [iv for iv in pool if iv.start_ts < cursor - eps]
        chosen: "CellInterval | None" = None
        if candidates:
            chosen = max(candidates,
                         key=lambda iv: (min(iv.end_ts, cursor),
                                         iv.cell))
        end = min(chosen.end_ts, cursor) if chosen is not None else t0
        if chosen is None or end <= t0 + eps:
            # Nothing on the path before the cursor: the head of the
            # build (scheduler start-up, premat) counts as queue-wait.
            decomp["queue-wait"] += cursor - t0
            chain.append({"cell": None, "category": "queue-wait",
                          "start": t0, "end": cursor})
            break
        gap = cursor - end
        if gap > eps:
            lease_part = 0.0
            if successor is not None and successor.key in leased:
                grants = [ts for ts in leased[successor.key]
                          if ts <= successor.start_ts + eps]
                if grants:
                    lease_part = min(
                        gap, max(0.0, successor.start_ts - max(grants)))
            decomp["lease-latency"] += lease_part
            decomp["queue-wait"] += gap - lease_part
            chain.append({"cell": None, "category": "queue-wait",
                          "start": end, "end": cursor,
                          "lease_s": lease_part})
        start = max(chosen.start_ts, t0)
        length = end - start
        phases = chosen.phase_seconds()
        phase_sum = sum(phases.values())
        scale = (length / phase_sum
                 if phase_sum > length and phase_sum > 0 else 1.0)
        attributed = 0.0
        for category, dt in phases.items():
            decomp[category] += dt * scale
            attributed += dt * scale
        decomp["lease-latency"] += max(0.0, length - attributed)
        chain.append({"cell": chosen.cell, "start": start, "end": end,
                      "seconds": length, "status": chosen.status,
                      "attempts": chosen.attempts, "node": chosen.node})
        cursor = start
        successor = chosen
        pool.remove(chosen)
    chain.reverse()

    durations = sorted(iv.seconds for iv in intervals.values())
    p_thresh = 0.0
    if durations:
        rank = min(len(durations) - 1,
                   int(straggler_quantile * (len(durations) - 1) + 0.5))
        p_thresh = durations[rank]
    stragglers = sorted(
        (iv for iv in intervals.values()
         if iv.seconds > p_thresh + eps),
        key=lambda iv: -iv.seconds)

    window = max(t1 - t0, 0.0)
    return {
        "window_s": window,
        "reported_wall_s": reported_wall or window,
        "cells": len(intervals),
        "decomposition": decomp,
        "chain": chain,
        "straggler_threshold_s": p_thresh,
        "stragglers": [
            {"cell": iv.cell, "seconds": iv.seconds,
             "attempts": iv.attempts, "status": iv.status,
             "node": iv.node, **iv.phase_seconds()}
            for iv in stragglers],
    }


def render_critical_path(events: Iterable[dict[str, Any]],
                         *, max_chain: int = 30) -> str:
    """Human report: decomposition table, path chain, stragglers."""

    report = critical_path(events)
    window = report["window_s"]
    if window <= 0.0 or not report["cells"]:
        return ("no build window found (need build_start/cell events; "
                "was the build run with --obs?)\n")
    lines = [
        f"critical path over {report['cells']} cells; "
        f"event window {window:.3f}s, "
        f"reported build wall {report['reported_wall_s']:.3f}s",
        "",
        "decomposition (sums to the event window by construction):",
    ]
    total = sum(report["decomposition"].values()) or 1.0
    for category in CATEGORIES:
        seconds = report["decomposition"][category]
        lines.append(f"  {category:<14} {seconds:9.3f}s  "
                     f"{100.0 * seconds / total:5.1f}%")
    lines.append(f"  {'total':<14} {total:9.3f}s  100.0%")

    lines.append("")
    lines.append("path chain (chronological; work that bounded the wall):")
    shown = report["chain"][:max_chain]
    for seg in shown:
        if seg.get("cell") is None:
            length = seg["end"] - seg["start"]
            note = ""
            if seg.get("lease_s"):
                note = f" (incl. {seg['lease_s']:.3f}s lease-latency)"
            lines.append(f"  {'<gap>':<40} {length:8.3f}s "
                         f"queue-wait{note}")
        else:
            extra = []
            if seg.get("attempts", 1) > 1:
                extra.append(f"x{seg['attempts']}")
            if seg.get("node"):
                extra.append(f"@{seg['node']}")
            suffix = f" [{' '.join(extra)}]" if extra else ""
            lines.append(f"  {seg['cell']:<40.40} {seg['seconds']:8.3f}s "
                         f"{seg.get('status') or ''}{suffix}")
    if len(report["chain"]) > max_chain:
        lines.append(f"  ... {len(report['chain']) - max_chain} more "
                     f"segments")

    lines.append("")
    if report["stragglers"]:
        lines.append(f"stragglers (cell wall > p95 = "
                     f"{report['straggler_threshold_s']:.3f}s):")
        for s in report["stragglers"]:
            lines.append(
                f"  {s['cell']:<40.40} {s['seconds']:8.3f}s "
                f"(mat {s['materialize']:.3f} eng {s['engine']:.3f} "
                f"store {s['store']:.3f} backoff {s['retry-backoff']:.3f}"
                f"{', x' + str(s['attempts']) if s['attempts'] > 1 else ''})")
    else:
        lines.append("stragglers: none beyond p95")
    return "\n".join(lines) + "\n"
