"""Unified telemetry plane: metrics registry, event log, exporters.

See docs/observability.md for the event schema, the span model, and
the merge semantics used to fold pool-worker telemetry back into the
parent registry.
"""

from repro.obs.events import (
    EVENTS_FILENAME,
    PROM_FILENAME,
    SINKS_DIRNAME,
    TELEMETRY_FILENAME,
    EventLog,
    merge_sinks,
    read_all_events,
    read_events,
    worker_metrics_path,
    worker_sink_path,
    write_worker_metrics,
)
from repro.obs.export import (
    load_telemetry,
    render_prometheus,
    write_prometheus,
    write_telemetry_json,
)
from repro.obs.benchdiff import compare_artifacts, render_bench_compare
from repro.obs.critpath import critical_path, render_critical_path
from repro.obs.telemetry import (
    BASIC_SAMPLE_EVERY,
    OBS_DIR_ENV,
    OBS_ENV,
    OBS_LEVELS,
    EngineObserver,
    Histogram,
    SpanHandle,
    Telemetry,
    configure,
    deactivate,
    engine_observer,
    get_telemetry,
    peak_rss_bytes,
    resolve_obs_level,
    validate_obs_level,
)
from repro.obs.tracing import (
    TraceContext,
    build_span_tree,
    derive_id,
    derive_run_id,
    render_trace,
)

__all__ = [
    "BASIC_SAMPLE_EVERY",
    "EVENTS_FILENAME",
    "OBS_DIR_ENV",
    "OBS_ENV",
    "OBS_LEVELS",
    "PROM_FILENAME",
    "SINKS_DIRNAME",
    "TELEMETRY_FILENAME",
    "EngineObserver",
    "EventLog",
    "Histogram",
    "SpanHandle",
    "Telemetry",
    "TraceContext",
    "build_span_tree",
    "compare_artifacts",
    "configure",
    "critical_path",
    "deactivate",
    "derive_id",
    "derive_run_id",
    "engine_observer",
    "get_telemetry",
    "load_telemetry",
    "merge_sinks",
    "peak_rss_bytes",
    "read_all_events",
    "read_events",
    "render_bench_compare",
    "render_critical_path",
    "render_prometheus",
    "render_trace",
    "resolve_obs_level",
    "validate_obs_level",
    "worker_metrics_path",
    "worker_sink_path",
    "write_prometheus",
    "write_worker_metrics",
    "write_telemetry_json",
]
