"""``repro bench compare``: perf-regression gate over BENCH artifacts.

Diffs the JSON reports the benchmark smokes drop under
``benchmarks/artifacts/`` (``BENCH_engine.json``, ``BENCH_corpus.json``,
``BENCH_ensemble.json``, ``BENCH_obs.json``) between a *baseline* and a
*candidate* directory, flagging metric movements beyond configurable
thresholds.

Two metric kinds are distinguished:

``ratio``
    Machine-portable relative measures (speedups, overhead factors,
    hit rates).  These are **gated**: moving past ``--warn-pct`` warns,
    past ``--fail-pct`` fails the command (warn-then-fail, exit 1).
``wall``
    Absolute times / throughputs.  These depend on the hardware the
    baseline was recorded on, so by default they are *reported* but
    only gate with ``--strict`` (useful when baseline and candidate
    come from the same machine, e.g. consecutive CI runs on one
    runner).
"""

from __future__ import annotations

import fnmatch
import json
from pathlib import Path
from typing import Any

#: Known artifacts, in comparison order.
ARTIFACTS = ("BENCH_engine.json", "BENCH_corpus.json",
             "BENCH_ensemble.json", "BENCH_obs.json")

#: (artifact glob, dotted-path glob, direction, kind).  ``direction``
#: is the *good* direction: "higher" metrics regress when they drop,
#: "lower" metrics regress when they grow.
RULES: "tuple[tuple[str, str, str, str], ...]" = (
    ("BENCH_engine.json", "workloads.*.arms.*.edges_per_s",
     "higher", "wall"),
    ("BENCH_engine.json", "workloads.*.arms.*.best_s", "lower", "wall"),
    ("BENCH_corpus.json", "speedup", "higher", "ratio"),
    ("BENCH_corpus.json", "best_wall_s.*", "lower", "wall"),
    ("BENCH_ensemble.json", "*.speedup", "higher", "ratio"),
    ("BENCH_ensemble.json", "*.best_wall_s.fast", "lower", "wall"),
    ("BENCH_obs.json", "overhead", "lower", "ratio"),
    ("BENCH_obs.json", "best_wall_s.*", "lower", "wall"),
)


def _numeric_leaves(data: Any, prefix: str = "") -> dict[str, float]:
    """Flatten a JSON tree to ``{dotted.path: value}`` numeric leaves."""

    out: dict[str, float] = {}
    if isinstance(data, dict):
        for key, value in data.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            out.update(_numeric_leaves(value, path))
    elif isinstance(data, bool):
        pass
    elif isinstance(data, (int, float)):
        out[prefix] = float(data)
    return out


def _rule_for(artifact: str, path: str) -> "tuple[str, str] | None":
    for art_glob, path_glob, direction, kind in RULES:
        if (fnmatch.fnmatchcase(artifact, art_glob)
                and fnmatch.fnmatchcase(path, path_glob)):
            return direction, kind
    return None


def compare_artifacts(baseline_dir: "str | Path",
                      candidate_dir: "str | Path", *,
                      warn_pct: float = 10.0,
                      fail_pct: float = 25.0,
                      strict: bool = False,
                      artifacts: "tuple[str, ...] | None" = None) \
        -> dict[str, Any]:
    """Compare every known artifact present in both directories.

    Returns a report dict with one entry per matched metric:
    ``regression_pct`` is positive when the metric moved in the *bad*
    direction.  ``status`` is ``ok`` / ``warn`` / ``fail`` /
    ``info`` (ungated wall metric) / ``new`` / ``missing``.
    """

    base_root = Path(baseline_dir)
    cand_root = Path(candidate_dir)
    entries: list[dict[str, Any]] = []
    skipped: list[str] = []
    for artifact in artifacts or ARTIFACTS:
        base_path = base_root / artifact
        cand_path = cand_root / artifact
        if not base_path.exists() or not cand_path.exists():
            skipped.append(artifact)
            continue
        try:
            base = _numeric_leaves(
                json.loads(base_path.read_text(encoding="utf-8")))
            cand = _numeric_leaves(
                json.loads(cand_path.read_text(encoding="utf-8")))
        except ValueError as exc:
            entries.append({"artifact": artifact, "path": "",
                            "status": "fail",
                            "note": f"unparseable artifact: {exc}"})
            continue
        for path in sorted(base.keys() | cand.keys()):
            rule = _rule_for(artifact, path)
            if rule is None:
                continue
            direction, kind = rule
            if path not in base:
                entries.append({"artifact": artifact, "path": path,
                                "status": "new",
                                "candidate": cand[path]})
                continue
            if path not in cand:
                entries.append({"artifact": artifact, "path": path,
                                "status": "missing",
                                "baseline": base[path]})
                continue
            old, new = base[path], cand[path]
            if old == 0:
                regression = 0.0
            elif direction == "higher":
                regression = 100.0 * (old - new) / abs(old)
            else:
                regression = 100.0 * (new - old) / abs(old)
            gated = kind == "ratio" or strict
            if not gated:
                status = "info"
            elif regression > fail_pct:
                status = "fail"
            elif regression > warn_pct:
                status = "warn"
            else:
                status = "ok"
            entries.append({"artifact": artifact, "path": path,
                            "direction": direction, "kind": kind,
                            "baseline": old, "candidate": new,
                            "regression_pct": regression,
                            "status": status})
    counts = {status: sum(1 for e in entries if e["status"] == status)
              for status in ("ok", "warn", "fail", "info", "new",
                             "missing")}
    return {"entries": entries, "skipped": skipped, "counts": counts,
            "warn_pct": warn_pct, "fail_pct": fail_pct,
            "strict": strict, "failed": counts["fail"] > 0}


def render_bench_compare(report: dict[str, Any]) -> str:
    """Human rendering of a :func:`compare_artifacts` report."""

    lines = [
        f"bench compare: warn > {report['warn_pct']:g}%, "
        f"fail > {report['fail_pct']:g}%"
        + (" (strict: wall metrics gated)" if report["strict"] else ""),
    ]
    if report["skipped"]:
        lines.append("skipped (artifact absent on one side): "
                     + ", ".join(report["skipped"]))
    lines.append("")
    header = (f"  {'status':<7} {'artifact':<20} {'metric':<44} "
              f"{'baseline':>12} {'candidate':>12} {'delta':>8}")
    lines.append(header)
    order = {"fail": 0, "warn": 1, "missing": 2, "new": 3, "ok": 4,
             "info": 5}
    for entry in sorted(report["entries"],
                        key=lambda e: (order.get(e["status"], 9),
                                       e["artifact"], e["path"])):
        status = entry["status"]
        if "regression_pct" in entry:
            delta = f"{-entry['regression_pct']:+.1f}%" \
                if entry["direction"] == "higher" \
                else f"{entry['regression_pct']:+.1f}%"
            lines.append(
                f"  {status:<7} {entry['artifact']:<20} "
                f"{entry['path']:<44.44} {entry['baseline']:>12.4g} "
                f"{entry['candidate']:>12.4g} {delta:>8}")
        else:
            side = entry.get("candidate", entry.get("baseline", ""))
            note = entry.get("note", status)
            lines.append(
                f"  {status:<7} {entry['artifact']:<20} "
                f"{entry['path']:<44.44} {side!s:>12} {note}")
    counts = report["counts"]
    lines.append("")
    lines.append(
        f"{counts['ok']} ok, {counts['warn']} warn, "
        f"{counts['fail']} fail, {counts['info']} informational, "
        f"{counts['new']} new, {counts['missing']} missing")
    if report["failed"]:
        lines.append("RESULT: FAIL (regressions beyond the fail "
                     "threshold)")
    elif counts["warn"]:
        lines.append("RESULT: WARN (regressions beyond the warn "
                     "threshold; failing threshold not reached)")
    else:
        lines.append("RESULT: OK")
    return "\n".join(lines) + "\n"
