"""Execution context handed to vertex programs.

One :class:`Context` lives for the duration of a run. It exposes the
problem instance, a deterministic RNG, the iteration number, and the
work ledger programs use to report data-dependent apply cost under the
unit work model.
"""

from __future__ import annotations

import copy
from typing import TYPE_CHECKING, Any

import numpy as np

from repro._util.errors import ValidationError
from repro.generators.problem import ProblemInstance
from repro.generators.rng import make_rng

if TYPE_CHECKING:  # pragma: no cover
    from repro.graph.csr import Graph


class Context:
    """Run-scoped services for a vertex program.

    Attributes
    ----------
    problem:
        The :class:`~repro.generators.problem.ProblemInstance` being
        computed on.
    graph:
        Shortcut for ``problem.graph``.
    iteration:
        0-based index of the current GAS iteration.
    params:
        Algorithm parameters (tolerances, k, damping, ...), merged from
        program defaults and run overrides.
    """

    def __init__(
        self,
        problem: ProblemInstance,
        *,
        params: dict[str, Any] | None = None,
        seed: int = 0,
    ) -> None:
        self.problem = problem
        self.iteration: int = 0
        # Deep copy: programs may mutate params (including nested
        # containers), and the caller's dict is typically the long-lived
        # EngineOptions.params reused across retries and runs — a
        # shallow copy would leak one run's mutations into the next.
        self.params: dict[str, Any] = copy.deepcopy(dict(params or {}))
        self._seed = int(seed)
        self.rng = make_rng(seed, "run")
        self._extra_work: float = 0.0

    @property
    def graph(self) -> "Graph":
        return self.problem.graph

    @property
    def n_vertices(self) -> int:
        return self.problem.graph.n_vertices

    @property
    def n_edges(self) -> int:
        return self.problem.graph.n_edges

    # ------------------------------------------------------------------
    # Parameters
    # ------------------------------------------------------------------
    def param(self, key: str, default: Any = None) -> Any:
        """Fetch an algorithm parameter with a default."""
        return self.params.get(key, default)

    def require_param(self, key: str) -> Any:
        if key not in self.params:
            raise ValidationError(f"missing required algorithm parameter {key!r}")
        return self.params[key]

    # ------------------------------------------------------------------
    # Unit work ledger
    # ------------------------------------------------------------------
    def add_work(self, units: float) -> None:
        """Report data-dependent apply work (unit work model only).

        Programs whose apply cost is not proportional to the vertex
        count (e.g. Triangle Counting's intersections, ALS's k×k solves)
        call this inside ``apply``; the engine adds it to the iteration's
        WORK under the ``unit`` model. Ignored under ``measured``.
        """
        if units < 0:
            raise ValidationError("work units must be non-negative")
        self._extra_work += float(units)

    def drain_extra_work(self) -> float:
        """Engine-internal: collect and reset reported work."""
        units, self._extra_work = self._extra_work, 0.0
        return units

    # ------------------------------------------------------------------
    # Frontier helpers
    # ------------------------------------------------------------------
    def all_vertices(self) -> np.ndarray:
        """Convenience: the full vertex id range (for always-active programs)."""
        return np.arange(self.n_vertices, dtype=np.int64)
