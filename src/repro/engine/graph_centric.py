"""Graph-centric execution ("think like a graph", Tian et al.) —
the third computation model named in paper §3.3.

The graph is split into partitions; one superstep runs each partition's
*internal* computation to local convergence (values propagate freely
inside the block), then boundary updates cross partitions
synchronously. Compared to vertex-centric synchronous execution this
trades more work per superstep for far fewer supersteps — the
graph-centric pitch — while, per the paper's conservation claim, the
*transferring-information-through-edges* behavior remains the same kind
of event stream.

Like the edge-centric engine, this is restricted to monotone
min/max-relaxation programs (CC, SSSP: ``supports_graph_centric`` via
the same ``supports_edge_centric`` contract — both need order-free
re-applicable relaxations). Results are asserted equal to the
synchronous engine's; counters are mapped as:

- ``active``/``updates`` — vertices applied during the superstep
  (inner sweeps included, as Giraph++ counts them);
- ``edge_reads`` — edges gathered across all inner sweeps;
- ``messages`` — *cross-partition* signals only (internal propagation
  is the model's whole point: it sends no messages);
- one :class:`IterationRecord` per superstep.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro._util.errors import ValidationError
from repro._util.segments import REDUCE_IDENTITY, concat_ranges, segmented_reduce
from repro._util.timing import Deadline
from repro.behavior.trace import IterationRecord, RunTrace
from repro.engine.checkpoint import (
    CheckpointConfig,
    CheckpointSession,
    restore_runtime,
)
from repro.engine.context import Context
from repro.engine.health import (
    build_monitor,
    mark_degraded,
    validate_health_options,
)
from repro.engine.program import Direction, VertexProgram
from repro.generators.problem import ProblemInstance
from repro.obs.telemetry import engine_observer


@dataclass
class GraphCentricOptions:
    """Configuration of a graph-centric run."""

    #: Number of partitions (hash partitioning by vertex id).
    n_partitions: int = 4
    max_supersteps: int = 10_000
    #: Cap on inner sweeps per partition per superstep.
    max_inner_sweeps: int = 1_000
    unit_scale: float = 1e-9
    params: dict[str, Any] = field(default_factory=dict)
    seed: int = 0
    #: Run-health knobs (see :class:`repro.engine.engine.EngineOptions`);
    #: checks run at *superstep* granularity here.
    health_policy: str = "strict"
    health_check_every: int = 1
    health_window: int = 20
    inject_fault: "str | None" = None
    #: Cooperative wall-clock budget, checked once per superstep.
    wall_clock_budget_s: "float | None" = None
    #: Superstep-level checkpointing contract; None disables snapshots.
    checkpoint: "CheckpointConfig | None" = None
    #: Gather dense local frontiers through the fused dense CSR kernel
    #: (bit-identical; DESIGN §13). Scatter keeps the callback path —
    #: the partition split needs per-edge (center, neighbor) pairs.
    fused_kernels: bool = True
    #: Local-frontier density (fraction of |V|) above which a sweep's
    #: gather uses the fused dense kernel instead of frontier slicing.
    direction_threshold: float = 0.25

    def __post_init__(self) -> None:
        if self.n_partitions < 1:
            raise ValidationError("n_partitions must be >= 1")
        if self.max_supersteps < 1 or self.max_inner_sweeps < 1:
            raise ValidationError("iteration caps must be >= 1")
        validate_health_options(self.health_policy, self.health_check_every,
                                self.health_window)
        if (self.wall_clock_budget_s is not None
                and self.wall_clock_budget_s <= 0):
            raise ValidationError(
                "wall_clock_budget_s must be positive or None")
        if not 0.0 <= self.direction_threshold <= 1.0:
            raise ValidationError(
                "direction_threshold must be in [0, 1]")


class GraphCentricEngine:
    """Partition-local convergence per superstep, synchronous boundaries."""

    def __init__(self, options: GraphCentricOptions | None = None) -> None:
        self.options = options or GraphCentricOptions()

    def run(self, program: VertexProgram, problem: ProblemInstance) -> RunTrace:
        if not getattr(program, "supports_edge_centric", False):
            raise ValidationError(
                f"{program.name} is not a monotone relaxation "
                "(supports_edge_centric contract); graph-centric "
                "execution is undefined for it"
            )
        if program.gather_dir is not Direction.IN or program.gather_width != 1:
            raise ValidationError("graph-centric execution needs a scalar "
                                  "IN-direction gather")
        opts = self.options
        ctx = Context(problem, params=opts.params, seed=opts.seed)
        graph = problem.graph

        started = time.perf_counter()
        frontier = np.unique(np.asarray(program.init(ctx), dtype=np.int64))
        ctx.drain_extra_work()

        partition = (np.arange(graph.n_vertices, dtype=np.int64)
                     % opts.n_partitions)

        from repro.engine.kernels import FusedKernels

        kernels = None
        if opts.fused_kernels:
            kernels = FusedKernels.build(program, graph)
        fused_gather = kernels is not None and kernels.can_gather
        # Density gate in vertices: below it the frontier-sliced gather
        # touches fewer slots than the dense kernel would.
        dense_min = opts.direction_threshold * graph.n_vertices

        trace = RunTrace(
            algorithm=program.name,
            graph_params=dict(problem.params),
            domain=problem.domain,
            n_vertices=graph.n_vertices,
            n_edges=graph.n_edges,
            work_model="unit",
            engine="graph-centric",
        )
        monitor = build_monitor(opts)
        deadline = Deadline(opts.wall_clock_budget_s)

        identity = REDUCE_IDENTITY[program.gather_op]

        session = CheckpointSession.begin(opts.checkpoint)
        start_superstep = 0
        elapsed_before = 0.0
        if session is not None:
            snapshot = session.load(engine="graph-centric", program=program,
                                    problem=problem)
            if snapshot is not None:
                restore_runtime(snapshot.payload, program, ctx, monitor)
                frontier = snapshot.payload["frontier"]
                trace = snapshot.trace
                start_superstep = snapshot.iteration
                elapsed_before = snapshot.elapsed_s
                trace.meta["resumed_from_iteration"] = start_superstep

        def flush(next_superstep: int) -> None:
            session.save_state(
                engine="graph-centric", program=program, problem=problem,
                ctx=ctx, monitor=monitor, trace=trace,
                next_iteration=next_superstep,
                elapsed_s=elapsed_before + time.perf_counter() - started,
                extra={"frontier": frontier})

        # Inner sweeps interleave gather/apply/scatter per partition, so
        # telemetry samples one "local-compute" timing per superstep.
        obs = engine_observer("graph-centric", program.name)

        stop_reason = "max-supersteps"
        for superstep in range(start_superstep, opts.max_supersteps):
            deadline.check()
            if frontier.size == 0:
                stop_reason = "frontier-empty"
                trace.converged = True
                break
            ctx.iteration = superstep
            sampled = obs is not None and obs.sampled(superstep)
            obs_started = time.perf_counter() if sampled else 0.0

            updates = 0
            reads = 0
            cross_msgs = 0
            next_frontier_parts: list[np.ndarray] = []

            # Each partition drains its internal activity before any
            # boundary exchange.
            for p in range(opts.n_partitions):
                local = frontier[partition[frontier] == p]
                for _sweep in range(opts.max_inner_sweeps):
                    if local.size == 0:
                        break
                    # Gather over all in-edges of the local frontier —
                    # fused dense kernel when the frontier is dense
                    # enough to amortize the full-graph reduction.
                    if fused_gather and local.size >= dense_min:
                        acc = kernels.gather_dense(ctx)[local]
                        n_slots = int(
                            kernels.gather_side.counts[local].sum())
                    else:
                        starts = graph.in_ptr[local]
                        ends = graph.in_ptr[local + 1]
                        slots = concat_ranges(starts, ends)
                        nbr = graph.in_src[slots]
                        center = np.repeat(local, ends - starts)
                        contributions = np.asarray(
                            program.gather_edge(ctx, nbr, center,
                                                graph.in_eid[slots]),
                            dtype=np.float64)
                        acc = segmented_reduce(contributions, ends - starts,
                                               program.gather_op,
                                               identity=identity)
                        n_slots = int(slots.size)
                    program.apply(ctx, local, acc)
                    updates += int(local.size)
                    reads += n_slots

                    # Scatter; internal signals continue the sweep,
                    # external ones wait for the superstep barrier.
                    s2 = graph.out_ptr[local]
                    e2 = graph.out_ptr[local + 1]
                    oslots = concat_ranges(s2, e2)
                    onbr = graph.out_dst[oslots]
                    ocenter = np.repeat(local, e2 - s2)
                    mask = np.asarray(
                        program.scatter_edges(ctx, ocenter, onbr,
                                              graph.out_eid[oslots]),
                        dtype=bool)
                    hit = onbr[mask]
                    internal = hit[partition[hit] == p]
                    external = hit[partition[hit] != p]
                    cross_msgs += int(external.size)
                    next_frontier_parts.append(np.unique(external))
                    local = np.unique(internal)
                if local.size:
                    # Inner-sweep cap hit: carry the residue into the
                    # next superstep rather than dropping it.
                    next_frontier_parts.append(local)

            program.on_iteration_end(ctx)
            monitor.inject_state_fault(program, superstep)
            reads = monitor.inject_edge_reads(reads, superstep)
            extra = ctx.drain_extra_work()
            work = (program.apply_flops_per_vertex * updates
                    + extra) * opts.unit_scale
            trace.iterations.append(IterationRecord(
                iteration=superstep,
                active=updates,
                updates=updates,
                edge_reads=reads,
                messages=cross_msgs,
                work=work,
            ))
            if obs is not None:
                elapsed = (time.perf_counter() - obs_started
                           if sampled else None)
                obs.iteration(
                    iteration=superstep, active=updates, updates=updates,
                    edge_reads=reads, messages=cross_msgs,
                    seconds=elapsed,
                    phases=({"local-compute": elapsed}
                            if sampled else None))
            verdict = monitor.observe(program, iteration=superstep,
                                      frontier=frontier, work=work)
            if verdict is not None:
                mark_degraded(trace, verdict)
                if session is not None:
                    flush(superstep + 1)
                break
            if next_frontier_parts:
                frontier = np.unique(np.concatenate(next_frontier_parts))
            else:
                frontier = np.empty(0, dtype=np.int64)
            # Contract parity with the other engines: consult the
            # program's convergence predicate (monotone relaxations
            # return False — they end by draining), then stop at the
            # drain itself so a superstep cap cannot turn a converged
            # run into "max-supersteps".
            if program.converged(ctx):
                stop_reason = "converged"
                trace.converged = True
                break
            if frontier.size == 0:
                stop_reason = "frontier-empty"
                trace.converged = True
                break
            if session is not None and session.due(superstep):
                flush(superstep + 1)

        if not trace.degraded:
            trace.stop_reason = stop_reason
        trace.result = program.result(ctx)
        trace.wall_time_s = elapsed_before + time.perf_counter() - started
        if session is not None:
            session.complete(trace)
        return trace
