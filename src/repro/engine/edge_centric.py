"""Edge-centric execution (X-Stream-style), for the paper's §3.3 claim.

"There are also other computation models used in current
graph-processing systems (edge-centric model [X-Stream] and
graph-centric model), but the basic behavior of graph computation is
conserved — transferring information through edges, performing
computation on an independent unit, and activations."

This engine executes the same :class:`~repro.engine.program.VertexProgram`
edge-centrically: every iteration **streams the full arc list** (that
is X-Stream's defining property — sequential edge streaming instead of
per-vertex indexed gathers), computes contributions only for arcs whose
source changed last iteration, scatter-adds them into per-vertex
accumulators, and applies. Consequences, which the ablation benchmark
verifies against the synchronous engine:

- *results* agree for monotone gather programs (CC, SSSP): same fixed
  point, same per-iteration frontier;
- UPDT and MSG counters are conserved iteration-for-iteration;
- EREAD differs by design: the stream touches all ``n_arcs`` arcs every
  iteration regardless of frontier size — the edge-centric cost shape.

Only programs whose gather is commutative over the *source-active*
edge subset are eligible (min/max monotone relaxations); they declare
``supports_edge_centric = True``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro._util.errors import ValidationError
from repro._util.timing import Deadline
from repro.behavior.trace import IterationRecord, RunTrace
from repro.engine.checkpoint import (
    CheckpointConfig,
    CheckpointSession,
    restore_runtime,
)
from repro.engine.context import Context
from repro.engine.health import (
    build_monitor,
    mark_degraded,
    validate_health_options,
)
from repro.engine.program import Direction, VertexProgram
from repro.generators.problem import ProblemInstance
from repro.obs.telemetry import engine_observer

_REDUCE_AT = {
    "min": np.minimum.at,
    "max": np.maximum.at,
    "sum": np.add.at,
}


@dataclass
class EdgeCentricOptions:
    """Configuration of an edge-centric run."""

    max_iterations: int = 10_000
    unit_scale: float = 1e-9
    params: dict[str, Any] = field(default_factory=dict)
    seed: int = 0
    #: Run-health knobs (see :class:`repro.engine.engine.EngineOptions`).
    health_policy: str = "strict"
    health_check_every: int = 1
    health_window: int = 20
    inject_fault: "str | None" = None
    #: Cooperative wall-clock budget, checked once per iteration.
    wall_clock_budget_s: "float | None" = None
    #: Iteration-level checkpointing contract; None disables snapshots.
    checkpoint: "CheckpointConfig | None" = None
    #: Stream fusable gathers as one dense segment reduction instead of
    #: buffered ``np.ufunc.at`` scatter-adds (bit-identical; DESIGN §13).
    fused_kernels: bool = True

    def __post_init__(self) -> None:
        if self.max_iterations < 1:
            raise ValidationError("max_iterations must be >= 1")
        validate_health_options(self.health_policy, self.health_check_every,
                                self.health_window)
        if (self.wall_clock_budget_s is not None
                and self.wall_clock_budget_s <= 0):
            raise ValidationError(
                "wall_clock_budget_s must be positive or None")


class EdgeCentricEngine:
    """Streams all arcs per iteration; updates targets of active sources."""

    def __init__(self, options: EdgeCentricOptions | None = None) -> None:
        self.options = options or EdgeCentricOptions()

    def run(self, program: VertexProgram, problem: ProblemInstance) -> RunTrace:
        if not getattr(program, "supports_edge_centric", False):
            raise ValidationError(
                f"{program.name} does not declare supports_edge_centric"
            )
        if program.gather_op not in _REDUCE_AT:
            raise ValidationError(
                f"edge-centric execution needs a scatter-add-able "
                f"reduction, got {program.gather_op!r}"
            )
        if program.gather_width != 1:
            raise ValidationError("edge-centric execution supports "
                                  "scalar gathers only")
        opts = self.options
        ctx = Context(problem, params=opts.params, seed=opts.seed)
        graph = problem.graph

        started = time.perf_counter()
        frontier = np.unique(np.asarray(program.init(ctx), dtype=np.int64))
        ctx.drain_extra_work()

        # The full arc list in (source, target, eid) form, as streamed.
        # Gather direction IN means "target collects from source".
        # Degree-zero targets own no slots of this expansion (their
        # in_degree repeat count is 0) and every accumulator path below
        # fills them with the reduction identity — isolated vertices
        # never see a divide-by-degree or a garbage accumulator row.
        if program.gather_dir is not Direction.IN:
            raise ValidationError("edge-centric execution assumes "
                                  "gather_dir == Direction.IN")
        tgt = np.repeat(np.arange(graph.n_vertices, dtype=np.int64),
                        graph.in_degree)
        src = graph.in_src
        eid = graph.in_eid

        # Fused stream: when the program declares a fusable gather
        # shape, the per-arc contributions and the per-target reduction
        # collapse into one dense CSR segment kernel over cached
        # offsets. Dead-source slots are pinned to the reduction
        # identity, which min/max absorb exactly and which leaves sum's
        # float64 bits unchanged — so the fused stream is bit-identical
        # to the ``ufunc.at`` scatter-add it replaces.
        from repro.engine.kernels import FusedKernels

        kernels = None
        if opts.fused_kernels:
            kernels = FusedKernels.build(program, graph)
        fused_stream = kernels is not None and kernels.can_gather

        trace = RunTrace(
            algorithm=program.name,
            graph_params=dict(problem.params),
            domain=problem.domain,
            n_vertices=graph.n_vertices,
            n_edges=graph.n_edges,
            work_model="unit",
            engine="edge-centric",
        )
        monitor = build_monitor(opts)
        deadline = Deadline(opts.wall_clock_budget_s)
        obs = engine_observer("edge-centric", program.name)

        from repro._util.segments import REDUCE_IDENTITY

        identity = REDUCE_IDENTITY[program.gather_op]
        reduce_at = _REDUCE_AT[program.gather_op]
        stop_reason = "max-iterations"
        # X-Stream's filter: stream contributions of the vertices whose
        # values changed last iteration (initially, the seed frontier).
        # For monotone relaxations this yields values identical to the
        # vertex-centric full gather — any older source's improvement
        # was already streamed the iteration after it changed.
        source_live = np.zeros(graph.n_vertices, dtype=bool)
        source_live[frontier] = True

        session = CheckpointSession.begin(opts.checkpoint)
        start_iteration = 0
        elapsed_before = 0.0
        if session is not None:
            snapshot = session.load(engine="edge-centric", program=program,
                                    problem=problem)
            if snapshot is not None:
                restore_runtime(snapshot.payload, program, ctx, monitor)
                frontier = snapshot.payload["frontier"]
                source_live = snapshot.payload["source_live"]
                trace = snapshot.trace
                start_iteration = snapshot.iteration
                elapsed_before = snapshot.elapsed_s
                trace.meta["resumed_from_iteration"] = start_iteration

        def flush(next_iteration: int) -> None:
            session.save_state(
                engine="edge-centric", program=program, problem=problem,
                ctx=ctx, monitor=monitor, trace=trace,
                next_iteration=next_iteration,
                elapsed_s=elapsed_before + time.perf_counter() - started,
                extra={"frontier": frontier, "source_live": source_live})

        for iteration in range(start_iteration, opts.max_iterations):
            deadline.check()
            if frontier.size == 0:
                stop_reason = "frontier-empty"
                trace.converged = True
                break
            ctx.iteration = iteration
            sampled = obs is not None and obs.sampled(iteration)
            phase_times: "dict[str, float] | None" = {} if sampled else None
            mark = time.perf_counter() if sampled else 0.0

            # ---- Stream phase: touch EVERY arc; act on live sources.
            live = source_live[src]
            if not live.any():
                acc = np.full(graph.n_vertices, identity)
            elif fused_stream:
                acc = kernels.stream_dense(ctx, live)
            else:
                acc = np.full(graph.n_vertices, identity)
                contributions = np.asarray(
                    program.gather_edge(ctx, src[live], tgt[live],
                                        eid[live]),
                    dtype=np.float64)
                reduce_at(acc, tgt[live], contributions)
            edge_reads = int(src.size)  # the stream reads all arcs
            if sampled:
                now = time.perf_counter()
                phase_times["stream"] = now - mark
                mark = now

            # ---- Apply on the synchronous frontier (same set the
            # synchronous engine would apply to).
            program.apply(ctx, frontier, acc[frontier])
            if sampled:
                now = time.perf_counter()
                phase_times["apply"] = now - mark
                mark = now

            # ---- Scatter: same signal semantics as the sync engine.
            from repro._util.segments import concat_ranges

            starts = graph.out_ptr[frontier]
            ends = graph.out_ptr[frontier + 1]
            slots = concat_ranges(starts, ends)
            nbr = graph.out_dst[slots]
            center = np.repeat(frontier, ends - starts)
            mask = np.asarray(
                program.scatter_edges(ctx, center, nbr,
                                      graph.out_eid[slots]), dtype=bool)
            signaled = np.unique(nbr[mask])
            # Next iteration streams the vertices that just emitted
            # updates (a changed vertex improving no neighbor now can
            # never improve one later under a monotone reduction).
            source_live[:] = False
            source_live[np.unique(center[mask])] = True

            program.on_iteration_end(ctx)
            monitor.inject_state_fault(program, iteration)
            edge_reads = monitor.inject_edge_reads(edge_reads, iteration)
            extra = ctx.drain_extra_work()
            work = (program.apply_flops_per_vertex * frontier.size
                    + extra) * opts.unit_scale
            trace.iterations.append(IterationRecord(
                iteration=iteration,
                active=int(frontier.size),
                updates=int(frontier.size),
                edge_reads=edge_reads,
                messages=int(mask.sum()),
                work=work,
            ))
            if obs is not None:
                if sampled:
                    phase_times["scatter"] = time.perf_counter() - mark
                obs.iteration(
                    iteration=iteration, active=int(frontier.size),
                    updates=int(frontier.size), edge_reads=edge_reads,
                    messages=int(mask.sum()),
                    seconds=(sum(phase_times.values())
                             if sampled else None),
                    phases=phase_times)
            verdict = monitor.observe(program, iteration=iteration,
                                      frontier=frontier, work=work)
            if verdict is not None:
                mark_degraded(trace, verdict)
                if session is not None:
                    flush(iteration + 1)
                break
            frontier = np.unique(np.asarray(
                program.select_next_frontier(ctx, signaled),
                dtype=np.int64))
            if program.converged(ctx):
                stop_reason = "converged"
                trace.converged = True
                break
            if frontier.size == 0:
                # Stop at the drain itself so a run converging exactly
                # at the iteration cap still reports "frontier-empty"
                # (same accounting as the synchronous engine).
                stop_reason = "frontier-empty"
                trace.converged = True
                break
            if session is not None and session.due(iteration):
                flush(iteration + 1)

        if not trace.degraded:
            trace.stop_reason = stop_reason
        trace.result = program.result(ctx)
        trace.wall_time_s = elapsed_before + time.perf_counter() - started
        if session is not None:
            session.complete(trace)
        return trace
