"""The synchronous GAS engine.

One iteration (paper Section 3.3):

1. **Gather** — every active vertex collects data through its gather
   edges; each collected edge is one *edge read*. Contributions are
   combined per vertex with the program's reduction.
2. **Apply** — every active vertex updates its value; each update is one
   *vertex update*, and the phase's cost is the *WORK* metric.
3. **Scatter** — every applied vertex may send a *signal* (message)
   along its scatter edges; signaled vertices form the next frontier.

The engine runs the same :class:`~repro.engine.program.VertexProgram`
in two modes:

``vectorized``
    All three phases operate on the entire frontier at once using CSR
    segment kernels (``concat_ranges`` + ``segmented_reduce``). This is
    the production mode.

``reference``
    Each phase loops over frontier vertices one at a time, with a
    barrier between phases (gather-all, then apply-all, then
    scatter-all) so synchronous semantics are preserved exactly. This is
    the oracle the test suite compares the vectorized mode against —
    traces must match counter-for-counter.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro._util.errors import ResourceLimitError, ValidationError
from repro._util.segments import concat_ranges, segmented_reduce
from repro._util.timing import Deadline, Stopwatch
from repro.behavior.trace import IterationRecord, RunTrace
from repro.engine.checkpoint import (
    CheckpointConfig,
    CheckpointSession,
    Snapshot,
    capture_runtime,
    restore_runtime,
)
from repro.engine.context import Context
from repro.engine.health import (
    build_monitor,
    mark_degraded,
    validate_health_options,
)
from repro.engine.instrumentation import Counters, WorkModel
from repro.engine.kernels import FusedKernels
from repro.engine.program import Direction, VertexProgram
from repro.obs.telemetry import engine_observer
from repro.generators.problem import ProblemInstance


@dataclass
class EngineOptions:
    """Engine configuration for one run."""

    #: ``"vectorized"`` (production) or ``"reference"`` (oracle).
    mode: str = "vectorized"
    #: Hard iteration cap; programs may converge earlier.
    max_iterations: int = 10_000
    #: WORK metric production: ``"unit"`` (deterministic) or ``"measured"``.
    work_model: str = "unit"
    #: Scale for unit work so magnitudes resemble seconds.
    unit_scale: float = 1e-9
    #: Memory budget enforced against graph + program state estimates.
    memory_budget_bytes: int = 4 << 30
    #: Extra algorithm parameters forwarded into the Context.
    params: dict[str, Any] = field(default_factory=dict)
    #: Seed for the run-scoped RNG (stochastic programs only).
    seed: int = 0
    #: Run-health policy: ``"strict"`` (raise on detected pathologies),
    #: ``"degrade"`` (stop early, flag the trace), or ``"off"``.
    health_policy: str = "strict"
    #: Cadence, in iterations, of numeric guard + watchdog checks.
    health_check_every: int = 1
    #: Recurrence window (in checks) for the stall/oscillation watchdogs.
    health_window: int = 20
    #: Fault-injection spec (``"nan@3"``, ``"diverge@2"``, ``"counter@1"``)
    #: for exercising the health path; None in production.
    inject_fault: "str | None" = None
    #: Cooperative wall-clock budget checked once per iteration — the
    #: timeout fallback where SIGALRM cannot enforce one. None disables.
    wall_clock_budget_s: "float | None" = None
    #: Iteration-level checkpointing contract; None disables snapshots.
    checkpoint: "CheckpointConfig | None" = None
    #: Dispatch recognized gather/scatter shapes to fused dense CSR
    #: kernels (bit-identical to the callback path; DESIGN §13).
    fused_kernels: bool = True
    #: Traversal direction policy: ``"auto"`` pulls when the active
    #: fraction reaches :attr:`direction_threshold`, ``"push"``/
    #: ``"pull"`` force one mode. Pull requires a fusable program;
    #: otherwise the engine stays on the push path.
    direction: str = "auto"
    #: Active-fraction threshold at which ``"auto"`` switches from push
    #: (frontier-sliced) to pull (dense full-graph) traversal.
    direction_threshold: float = 0.25

    def __post_init__(self) -> None:
        if self.mode not in ("vectorized", "reference"):
            raise ValidationError(
                f"mode must be 'vectorized' or 'reference', got {self.mode!r}"
            )
        WorkModel(kind=self.work_model)  # validates
        if self.max_iterations < 1:
            raise ValidationError("max_iterations must be >= 1")
        if self.unit_scale <= 0:
            raise ValidationError("unit_scale must be positive")
        if self.memory_budget_bytes < 1:
            raise ValidationError("memory_budget_bytes must be >= 1")
        validate_health_options(self.health_policy, self.health_check_every,
                                self.health_window)
        if (self.wall_clock_budget_s is not None
                and self.wall_clock_budget_s <= 0):
            raise ValidationError(
                "wall_clock_budget_s must be positive or None")
        if self.direction not in ("auto", "push", "pull"):
            raise ValidationError(
                f"direction must be 'auto', 'push' or 'pull', got "
                f"{self.direction!r}")
        if not 0.0 <= self.direction_threshold <= 1.0:
            raise ValidationError(
                "direction_threshold must be in [0, 1]")


class SynchronousEngine:
    """Executes one vertex program on one problem instance."""

    def __init__(self, options: EngineOptions | None = None) -> None:
        self.options = options or EngineOptions()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self, program: VertexProgram, problem: ProblemInstance) -> RunTrace:
        """Run ``program`` to convergence (or the iteration cap).

        Raises
        ------
        ResourceLimitError
            If the graph plus the program's estimated state exceed the
            configured memory budget (this is the paper's AD-at-largest-
            size failure mode).
        """
        opts = self.options
        ctx = Context(problem, params=opts.params, seed=opts.seed)
        graph = problem.graph

        required = graph.memory_bytes() + program.state_bytes(ctx)
        if required > opts.memory_budget_bytes:
            raise ResourceLimitError(
                f"{program.name} on {problem.label} needs ~{required:,} bytes "
                f"of state, exceeding the budget of "
                f"{opts.memory_budget_bytes:,} bytes",
                required_bytes=required,
                budget_bytes=opts.memory_budget_bytes,
            )

        started = time.perf_counter()
        frontier = self._canonical_frontier(program.init(ctx), graph.n_vertices)
        ctx.drain_extra_work()  # init-phase work is not an iteration's WORK

        trace = RunTrace(
            algorithm=program.name,
            graph_params=dict(problem.params),
            domain=problem.domain,
            n_vertices=graph.n_vertices,
            n_edges=graph.n_edges,
            work_model=opts.work_model,
            engine="synchronous",
        )

        monitor = build_monitor(opts)
        deadline = Deadline(opts.wall_clock_budget_s)
        obs = engine_observer("synchronous", program.name)

        session = CheckpointSession.begin(opts.checkpoint)
        start_iteration = 0
        elapsed_before = 0.0
        if session is not None:
            snapshot = session.load(engine="synchronous", program=program,
                                    problem=problem)
            if snapshot is not None:
                restore_runtime(snapshot.payload, program, ctx, monitor)
                frontier = snapshot.payload["frontier"]
                trace = snapshot.trace
                start_iteration = snapshot.iteration
                elapsed_before = snapshot.elapsed_s
                trace.meta["resumed_from_iteration"] = start_iteration

        def flush(next_iteration: int) -> None:
            session.save_state(
                engine="synchronous", program=program, problem=problem,
                ctx=ctx, monitor=monitor, trace=trace,
                next_iteration=next_iteration,
                elapsed_s=elapsed_before + time.perf_counter() - started,
                extra={"frontier": frontier})

        # Fused dense kernels: built once per run (graph-derived caches
        # only, so checkpoint resume reconstructs them losslessly);
        # None when the program declares no fusable shape.
        kernels = None
        if opts.mode == "vectorized" and opts.fused_kernels:
            kernels = FusedKernels.build(program, graph)
        prev_direction: "str | None" = None

        stop_reason = "max-iterations"
        for iteration in range(start_iteration, opts.max_iterations):
            deadline.check()
            if frontier.size == 0:
                stop_reason = "frontier-empty"
                trace.converged = True
                break
            ctx.iteration = iteration
            active = frontier
            # Direction decision: a pure function of this iteration's
            # active fraction and the configured policy — stateless, so
            # a resumed run re-derives the identical push/pull sequence.
            active_fraction = frontier.size / graph.n_vertices
            pull = kernels is not None and (
                opts.direction == "pull"
                or (opts.direction == "auto"
                    and active_fraction >= opts.direction_threshold))
            # Telemetry is observational only: phase timing is sampled
            # (obs level dependent) and never feeds back into counters,
            # so the unit work model stays bit-reproducible.
            sampled = obs is not None and obs.sampled(iteration)
            phase_times: "dict[str, float] | None" = {} if sampled else None
            obs_started = time.perf_counter() if sampled else 0.0
            if obs is not None:
                mode_label = "pull" if pull else "push"
                obs.direction(
                    mode=mode_label, active_fraction=active_fraction,
                    switched=(prev_direction is not None
                              and prev_direction != mode_label))
                prev_direction = mode_label
            counters, frontier = self._iterate(program, ctx, frontier,
                                               phase_times, kernels=kernels,
                                               pull=pull)
            monitor.inject_state_fault(program, iteration)
            counters.edge_reads = monitor.inject_edge_reads(
                counters.edge_reads, iteration)
            trace.iterations.append(IterationRecord(
                iteration=iteration,
                active=counters.active,
                updates=counters.updates,
                edge_reads=counters.edge_reads,
                messages=counters.messages,
                work=counters.work,
            ))
            if obs is not None:
                obs.iteration(
                    iteration=iteration, active=counters.active,
                    updates=counters.updates,
                    edge_reads=counters.edge_reads,
                    messages=counters.messages,
                    seconds=(time.perf_counter() - obs_started
                             if sampled else None),
                    phases=phase_times)
            verdict = monitor.observe(program, iteration=iteration,
                                      frontier=active, work=counters.work)
            if verdict is not None:
                mark_degraded(trace, verdict)
                if session is not None:
                    flush(iteration + 1)
                break
            if program.converged(ctx):
                stop_reason = "converged"
                trace.converged = True
                break
            if frontier.size == 0:
                # A drained frontier ends the run *now*, not at the top
                # of a next loop pass that an iteration cap might never
                # grant — otherwise a run converging exactly at the cap
                # would misreport "max-iterations".
                stop_reason = "frontier-empty"
                trace.converged = True
                break
            if session is not None and session.due(iteration):
                flush(iteration + 1)

        if not trace.degraded:
            trace.stop_reason = stop_reason
        trace.result = program.result(ctx)
        trace.wall_time_s = elapsed_before + time.perf_counter() - started
        if session is not None:
            session.complete(trace)
        return trace

    # ------------------------------------------------------------------
    # One iteration
    # ------------------------------------------------------------------
    def _iterate(
        self,
        program: VertexProgram,
        ctx: Context,
        frontier: np.ndarray,
        phase_times: "dict[str, float] | None" = None,
        kernels: "FusedKernels | None" = None,
        pull: bool = False,
    ) -> tuple[Counters, np.ndarray]:
        counters = Counters(active=int(frontier.size))
        graph = ctx.graph
        timed = phase_times is not None
        mark = time.perf_counter() if timed else 0.0

        # ---- Gather -------------------------------------------------
        acc: np.ndarray | None = None
        if program.gather_dir is not Direction.NONE:
            if pull and kernels is not None and kernels.can_gather:
                acc, n_reads = kernels.gather_frontier(ctx, frontier)
            elif self.options.mode == "vectorized":
                ptr, idx, eid = self._adjacency(graph, program.gather_dir)
                acc, n_reads = self._gather_vectorized(
                    program, ctx, frontier, ptr, idx, eid)
            else:
                ptr, idx, eid = self._adjacency(graph, program.gather_dir)
                acc, n_reads = self._gather_reference(
                    program, ctx, frontier, ptr, idx, eid)
            counters.edge_reads += n_reads
        if timed:
            now = time.perf_counter()
            phase_times["gather"] = now - mark
            mark = now

        # ---- Apply --------------------------------------------------
        counters.updates += int(frontier.size)
        sw = Stopwatch()
        with sw:
            if self.options.mode == "vectorized":
                program.apply(ctx, frontier, acc)
            else:
                for i in range(frontier.size):
                    row = None
                    if acc is not None:
                        row = acc[i:i + 1]
                    program.apply(ctx, frontier[i:i + 1], row)
        if self.options.work_model == "measured":
            counters.work += sw.total
        if timed:
            now = time.perf_counter()
            phase_times["apply"] = now - mark
            mark = now

        # ---- Scatter ------------------------------------------------
        signaled = np.empty(0, dtype=np.int64)
        if program.scatter_dir is not Direction.NONE:
            if pull and kernels is not None and kernels.can_scatter:
                signaled, n_msgs = kernels.scatter_frontier(ctx, frontier)
            elif self.options.mode == "vectorized":
                ptr, idx, eid = self._adjacency(graph, program.scatter_dir)
                signaled, n_msgs = self._scatter_vectorized(
                    program, ctx, frontier, ptr, idx, eid)
            else:
                ptr, idx, eid = self._adjacency(graph, program.scatter_dir)
                signaled, n_msgs = self._scatter_reference(
                    program, ctx, frontier, ptr, idx, eid)
            counters.messages += n_msgs

        program.on_iteration_end(ctx)
        # Unit work: engine-declared per-vertex cost plus whatever the
        # program reported via ctx.add_work anywhere in the iteration
        # (TC's intersections in gather, DD's slave solves in scatter).
        extra = ctx.drain_extra_work()
        if self.options.work_model != "measured":
            unit = program.apply_flops_per_vertex * frontier.size + extra
            counters.work += unit * self.options.unit_scale
        nxt = program.select_next_frontier(ctx, signaled)
        if nxt is not signaled:
            nxt = self._canonical_frontier(nxt, graph.n_vertices)
        # (else: every engine scatter path already produces a sorted
        # unique in-range array — re-canonicalizing it would only
        # re-sort the hot loop's largest intermediate.)
        if timed:
            phase_times["scatter"] = time.perf_counter() - mark
        return counters, nxt

    # ------------------------------------------------------------------
    # Phase kernels
    # ------------------------------------------------------------------
    @staticmethod
    def _adjacency(graph, direction: Direction):
        """(ptr, other-endpoint, eid) arrays for a traversal direction."""
        if direction is Direction.IN:
            return graph.in_ptr, graph.in_src, graph.in_eid
        if direction is Direction.OUT:
            return graph.out_ptr, graph.out_dst, graph.out_eid
        if direction is Direction.BOTH:
            if not graph.directed:
                raise ValidationError(
                    "Direction.BOTH on an undirected graph would visit "
                    "every edge twice; use IN or OUT"
                )
            raise ValidationError(
                "Direction.BOTH is not supported; gather twice or "
                "symmetrize the graph"
            )
        raise ValidationError(f"no adjacency for direction {direction}")

    def _gather_vectorized(self, program, ctx, frontier, ptr, idx, eid):
        starts = ptr[frontier]
        ends = ptr[frontier + 1]
        counts = ends - starts
        slots = concat_ranges(starts, ends)
        nbr = idx[slots]
        center = np.repeat(frontier, counts)
        contributions = program.gather_edge(ctx, nbr, center, eid[slots])
        contributions = self._check_gather_shape(
            program, contributions, slots.size)
        acc = segmented_reduce(contributions, counts, program.gather_op)
        return acc, int(slots.size)

    def _gather_reference(self, program, ctx, frontier, ptr, idx, eid):
        width = program.gather_width
        shape = (frontier.size,) if width == 1 else (frontier.size, width)
        from repro._util.segments import REDUCE_IDENTITY
        acc = np.full(shape, REDUCE_IDENTITY[program.gather_op],
                      dtype=program.gather_dtype)
        n_reads = 0
        for i, v in enumerate(frontier.tolist()):
            s, e = int(ptr[v]), int(ptr[v + 1])
            if e == s:
                continue
            slots = np.arange(s, e)
            nbr = idx[slots]
            center = np.full(nbr.size, v, dtype=np.int64)
            contributions = program.gather_edge(ctx, nbr, center, eid[slots])
            contributions = self._check_gather_shape(
                program, contributions, nbr.size)
            reduced = segmented_reduce(
                contributions, np.asarray([nbr.size]), program.gather_op)
            acc[i] = reduced[0]
            n_reads += nbr.size
        return acc, n_reads

    def _scatter_vectorized(self, program, ctx, frontier, ptr, idx, eid):
        starts = ptr[frontier]
        ends = ptr[frontier + 1]
        counts = ends - starts
        slots = concat_ranges(starts, ends)
        nbr = idx[slots]
        center = np.repeat(frontier, counts)
        mask = np.asarray(program.scatter_edges(ctx, center, nbr, eid[slots]),
                          dtype=bool)
        if mask.shape != (slots.size,):
            raise ValidationError(
                f"{program.name}.scatter_edges returned shape {mask.shape}, "
                f"expected ({slots.size},)"
            )
        signaled = np.unique(nbr[mask])
        return signaled, int(mask.sum())

    def _scatter_reference(self, program, ctx, frontier, ptr, idx, eid):
        signaled_parts: list[np.ndarray] = []
        n_msgs = 0
        for v in frontier.tolist():
            s, e = int(ptr[v]), int(ptr[v + 1])
            if e == s:
                continue
            slots = np.arange(s, e)
            nbr = idx[slots]
            center = np.full(nbr.size, v, dtype=np.int64)
            mask = np.asarray(program.scatter_edges(ctx, center, nbr,
                                                    eid[slots]), dtype=bool)
            if mask.shape != (nbr.size,):
                raise ValidationError(
                    f"{program.name}.scatter_edges returned shape "
                    f"{mask.shape}, expected ({nbr.size},)"
                )
            n_msgs += int(mask.sum())
            if mask.any():
                signaled_parts.append(nbr[mask])
        if signaled_parts:
            signaled = np.unique(np.concatenate(signaled_parts))
        else:
            signaled = np.empty(0, dtype=np.int64)
        return signaled, n_msgs

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _canonical_frontier(vids: np.ndarray, n_vertices: int) -> np.ndarray:
        vids = np.asarray(vids, dtype=np.int64).ravel()
        if vids.size and (vids.min() < 0 or vids.max() >= n_vertices):
            raise ValidationError("frontier vertex ids out of range")
        return np.unique(vids)

    @staticmethod
    def _check_gather_shape(program, contributions, n_edges_sel):
        contributions = np.asarray(contributions, dtype=program.gather_dtype)
        width = program.gather_width
        expected = (n_edges_sel,) if width == 1 else (n_edges_sel, width)
        if contributions.shape != expected:
            raise ValidationError(
                f"{program.name}.gather_edge returned shape "
                f"{contributions.shape}, expected {expected}"
            )
        return contributions
