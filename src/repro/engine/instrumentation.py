"""Behavior counters for one GAS iteration.

These are the raw observations behind the paper's five metrics
(Section 3.4):

- ``active`` — active vertices at iteration start (active fraction);
- ``updates`` — vertex updates, i.e. apply calls (UPDT);
- ``edge_reads`` — edges whose data was collected in Gather (EREAD);
- ``messages`` — signals delivered in Scatter (MSG);
- ``work`` — apply-phase cost (WORK), in seconds under the ``measured``
  model or abstract units under the deterministic ``unit`` model.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class Counters:
    """Mutable counter block the engine fills during one iteration."""

    active: int = 0
    updates: int = 0
    edge_reads: int = 0
    messages: int = 0
    work: float = 0.0

    def merge(self, other: "Counters") -> None:
        """Fold another counter block into this one (used by phased
        algorithms that run sub-sweeps inside one logical iteration).

        ``active`` is **max-merged**: it gauges a population (how many
        vertices participated this iteration), and a vertex active in
        several sub-sweeps is still one active vertex — summing would
        double-count it. Every other field measures *flow* (events
        that happened) and **sums**. The same max-vs-sum split governs
        how worker telemetry folds into the parent registry; see
        docs/metrics.md. Both operations are associative and
        commutative, so merge order never changes the result."""
        self.active = max(self.active, other.active)
        self.updates += other.updates
        self.edge_reads += other.edge_reads
        self.messages += other.messages
        self.work += other.work


@dataclass
class WorkModel:
    """How the WORK metric is produced.

    ``measured``
        Wall-clock time of the apply phase (paper-faithful; used by the
        benchmark harness).
    ``unit``
        Deterministic cost model: ``flops_per_vertex * |apply set| +
        program-reported extra work`` — bit-reproducible, used by tests
        and for cross-machine comparability.

    The scale applied to unit work lives on the engine options
    (``EngineOptions.unit_scale``), which is what the engines read.
    """

    kind: str = "unit"

    VALID: tuple = ("measured", "unit")

    def __post_init__(self) -> None:
        if self.kind not in self.VALID:
            raise ValueError(f"work model must be one of {self.VALID}, "
                             f"got {self.kind!r}")
