"""Iteration-level checkpoint/restore: preemption-tolerant execution.

Long corpus builds die for reasons that have nothing to do with the
computation: wall-clock limits, OOM kills, preempted workers, Ctrl-C.
Before this subsystem, any of those forfeited every completed iteration
of the in-flight run. Distributed GraphLab answered the same problem
with snapshot-based fault tolerance; checkpoint-restart is likewise the
standard preemption answer in large training stacks. This module is the
single-machine analog for all four engines:

- :class:`CheckpointPolicy` — *when* to snapshot (every N iterations
  and/or every T seconds).
- :class:`SnapshotStore` — *where* snapshots live, crash-consistently:
  each write is staged to a writer-unique temp file and published with
  ``os.replace``; the previous generation is kept as a fallback; a
  blake2b checksum over the payload is verified on load, and corrupt
  snapshots are quarantined (mirroring the
  :class:`~repro.experiments.results.ResultStore` discipline).
- :class:`CheckpointConfig` — one run's checkpointing contract (store +
  policy + key), carried inside the engine options.
- :class:`CheckpointSession` — the engine-side driver: decides when a
  snapshot is due, captures/restores the full run state (program state
  arrays, context RNG/params/work ledger, health-monitor watchdog
  state, the partial :class:`~repro.behavior.trace.RunTrace`, and the
  engine's own loop state), and cleans up after a completed run.

The restore guarantee is exact: because every engine is deterministic
given (program state, context state, scheduler/frontier state), a run
killed at iteration *k* and resumed from its snapshot produces a
bit-identical final vertex state and an identical behavior vector to an
uninterrupted run. The test suite proves this per engine.

Snapshots are serialized with :mod:`pickle` (the state is arbitrary
numpy arrays, RNG generators, and scheduler objects — exactness matters
more than a readable format). They are a local, trusted cache with the
same threat model as the result store; never load snapshots from an
untrusted directory.

Two fault hooks drive the resilience tests:

- ``REPRO_INJECT_KILL="<substring>:<iteration>"`` raises
  :class:`SimulatedKillError` immediately after the snapshot covering
  that iteration is published — a deterministic stand-in for dying
  right after a commit.
- ``REPRO_CHAOS_KILL="<token-dir>:<p>"`` SIGKILLs the *process* with
  probability ``p`` after a snapshot publish, consuming one kill token
  (a file in ``token-dir``) per kill so a chaos run terminates once the
  tokens are spent.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import signal
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

from repro._util.errors import ValidationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.behavior.trace import RunTrace
    from repro.engine.context import Context
    from repro.engine.health import HealthMonitor
    from repro.engine.program import VertexProgram

#: Environment variable overriding the default snapshot directory.
CHECKPOINT_ENV = "REPRO_CHECKPOINT_DIR"
#: Deterministic kill injection: ``"<substring>:<iteration>"``.
INJECT_KILL_ENV = "REPRO_INJECT_KILL"
#: Probabilistic process SIGKILL: ``"<token-dir>:<p>"``.
CHAOS_KILL_ENV = "REPRO_CHAOS_KILL"

#: Snapshot file magic + format version.
_MAGIC = b"REPROSNAP1\n"
#: blake2b digest size (bytes) of the payload checksum.
_DIGEST_SIZE = 16
#: Hex digits of the raw-key hash appended to snapshot filenames.
_KEY_DIGEST_LEN = 10
#: Subdirectory (under the store root) receiving corrupt snapshots.
QUARANTINE_DIRNAME = "quarantine"
#: Default quarantine retention (see ResultStore.gc_quarantine): every
#: quarantine call sweeps the oldest entries beyond this bound.
QUARANTINE_MAX_ENTRIES = 256


class SimulatedKillError(RuntimeError):
    """Raised by the ``REPRO_INJECT_KILL`` hook right after a snapshot
    publish — the deterministic, in-process stand-in for a worker dying
    immediately after committing progress."""


def default_checkpoint_dir() -> Path:
    env = os.environ.get(CHECKPOINT_ENV)
    if env:
        return Path(env)
    return Path.cwd() / ".repro_checkpoints"


# ----------------------------------------------------------------------
# Policy
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CheckpointPolicy:
    """When to snapshot: every N iterations, every T seconds, or both
    (whichever comes first).

    The *when* never affects correctness — a snapshot captures exact
    state, so resume is equivalence-preserving wherever it was taken —
    only how much forward progress a preemption can forfeit.
    """

    every_iterations: "int | None" = None
    every_seconds: "float | None" = None

    def __post_init__(self) -> None:
        if self.every_iterations is None and self.every_seconds is None:
            raise ValidationError(
                "checkpoint policy needs every_iterations and/or "
                "every_seconds")
        if self.every_iterations is not None and self.every_iterations < 1:
            raise ValidationError("every_iterations must be >= 1")
        if self.every_seconds is not None and self.every_seconds <= 0:
            raise ValidationError("every_seconds must be positive")

    @classmethod
    def parse(cls, spec: "str | int | CheckpointPolicy") -> "CheckpointPolicy":
        """Parse CLI specs: ``"5"`` (iterations), ``"2.5s"`` (seconds),
        or ``"5,30s"`` (both)."""
        if isinstance(spec, CheckpointPolicy):
            return spec
        if isinstance(spec, int):
            return cls(every_iterations=spec)
        every_n: "int | None" = None
        every_s: "float | None" = None
        for part in str(spec).split(","):
            part = part.strip()
            if not part:
                continue
            try:
                if part.endswith("s"):
                    every_s = float(part[:-1])
                else:
                    every_n = int(part)
            except ValueError as exc:
                raise ValidationError(
                    f"checkpoint spec must be '<N>', '<T>s' or '<N>,<T>s', "
                    f"got {spec!r}") from exc
        return cls(every_iterations=every_n, every_seconds=every_s)

    def __str__(self) -> str:
        bits = []
        if self.every_iterations is not None:
            bits.append(f"{self.every_iterations}")
        if self.every_seconds is not None:
            bits.append(f"{self.every_seconds:g}s")
        return ",".join(bits)


# ----------------------------------------------------------------------
# Snapshot + store
# ----------------------------------------------------------------------
@dataclass
class Snapshot:
    """One crash-consistent capture of a run in flight.

    ``iteration`` is the *resume point*: the index of the next
    iteration (round / superstep) to execute. ``payload`` carries the
    engine-specific loop state plus the common program/context/monitor
    state captured by :func:`capture_runtime`.
    """

    engine: str
    algorithm: str
    n_vertices: int
    n_edges: int
    iteration: int
    trace: "RunTrace"
    payload: dict[str, Any] = field(default_factory=dict)
    #: Wall-clock seconds already spent before this snapshot, so a
    #: resumed run reports cumulative wall time.
    elapsed_s: float = 0.0


class SnapshotStore:
    """Directory-backed snapshot store, crash-consistent by layout.

    Per key the store keeps up to two generations: ``<entry>.snap``
    (latest) and ``<entry>.prev.snap`` (the one before). A save stages
    into a writer-unique temp file, demotes the current latest to
    ``.prev``, then publishes via ``os.replace`` — at every instant at
    least one complete generation is on disk, so a process killed
    mid-save can always resume. Loads verify a blake2b checksum over
    the pickled payload; a corrupt latest is quarantined and the load
    falls back to the previous generation, then to a cold start.
    """

    def __init__(self, root: "str | Path | None" = None) -> None:
        self.root = (Path(root) if root is not None
                     else default_checkpoint_dir())

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------
    @property
    def quarantine_dir(self) -> Path:
        return self.root / QUARANTINE_DIRNAME

    def _stem(self, key: str) -> str:
        safe = "".join(c if c.isalnum() or c in "-_.=" else "_" for c in key)
        if not safe:
            raise ValidationError("empty snapshot key")
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()
        return f"{safe}-{digest[:_KEY_DIGEST_LEN]}"

    def _latest_path(self, key: str) -> Path:
        return self.root / f"{self._stem(key)}.snap"

    def _prev_path(self, key: str) -> Path:
        return self.root / f"{self._stem(key)}.prev.snap"

    # ------------------------------------------------------------------
    # Save / load
    # ------------------------------------------------------------------
    @staticmethod
    def _encode(snapshot: Snapshot) -> bytes:
        payload = pickle.dumps(snapshot, protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.blake2b(payload, digest_size=_DIGEST_SIZE).digest()
        return _MAGIC + digest + payload

    @staticmethod
    def _decode(blob: bytes) -> Snapshot:
        """Checksum-verify and unpickle; raises ValidationError on any
        corruption (bad magic, short file, digest mismatch, torn
        pickle)."""
        if not blob.startswith(_MAGIC) or len(blob) < len(_MAGIC) + _DIGEST_SIZE:
            raise ValidationError("snapshot header corrupt")
        digest = blob[len(_MAGIC):len(_MAGIC) + _DIGEST_SIZE]
        payload = blob[len(_MAGIC) + _DIGEST_SIZE:]
        actual = hashlib.blake2b(payload, digest_size=_DIGEST_SIZE).digest()
        if actual != digest:
            raise ValidationError("snapshot checksum mismatch")
        try:
            snapshot = pickle.loads(payload)
        except Exception as exc:  # torn/garbled pickle stream
            raise ValidationError(f"snapshot payload unreadable: {exc}") \
                from exc
        if not isinstance(snapshot, Snapshot):
            raise ValidationError("snapshot payload is not a Snapshot")
        return snapshot

    def save(self, key: str, snapshot: Snapshot) -> Path:
        """Publish a new latest generation, demoting the old one.

        Transient disk faults (EIO, ENOSPC, ESTALE) during the stage/
        demote/publish sequence get bounded jittered retries — the
        sequence is idempotent, so re-running it after a partial
        failure still leaves at least one complete generation.
        """
        from repro.experiments.failures import retry_transient_disk
        from repro.obs.telemetry import get_telemetry

        started = time.perf_counter()
        latest = self._latest_path(key)
        blob = self._encode(snapshot)

        def publish() -> None:
            latest.parent.mkdir(parents=True, exist_ok=True)
            tmp = latest.with_name(
                f"{latest.name}.{os.getpid()}.{uuid.uuid4().hex[:8]}.tmp")
            try:
                tmp.write_bytes(blob)
                try:
                    os.replace(latest, self._prev_path(key))
                except FileNotFoundError:
                    pass  # no latest yet, or a concurrent saver demoted it
                os.replace(tmp, latest)
            finally:
                if tmp.exists():
                    tmp.unlink(missing_ok=True)

        def count_retry(exc: OSError, attempt: int,
                        delay_s: float) -> None:
            tel = get_telemetry()
            if tel.enabled:
                tel.inc("checkpoint_disk_retries_total")
                tel.emit("checkpoint", action="disk-retry",
                         errno=exc.errno, attempt=attempt,
                         backoff_s=delay_s)

        retry_transient_disk(publish, key=f"snap:{key}",
                             on_retry=count_retry)
        tel = get_telemetry()
        if tel.enabled:
            elapsed = time.perf_counter() - started
            tel.inc("checkpoint_publishes_total")
            tel.inc("checkpoint_published_bytes_total", len(blob))
            tel.observe("checkpoint_publish_seconds", elapsed)
            if tel.full:
                tel.emit("checkpoint", action="publish", key=key,
                         iteration=snapshot.iteration,
                         bytes=len(blob), seconds=elapsed)
        return latest

    def quarantine(self, path: Path) -> "Path | None":
        """Move a corrupt snapshot aside; None if it vanished first."""
        from repro.obs.telemetry import get_telemetry

        dest = self.quarantine_dir / (
            f"{path.stem}.{os.getpid()}.{uuid.uuid4().hex[:8]}{path.suffix}")
        try:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, dest)
        except FileNotFoundError:
            return None
        tel = get_telemetry()
        if tel.enabled:
            tel.inc("checkpoint_quarantined_total")
            tel.emit("checkpoint", action="quarantine", file=str(path.name))
        # Bounded retention: sweep the oldest entries past the cap so
        # resumed builds cannot grow the quarantine without limit.
        self.gc_quarantine(QUARANTINE_MAX_ENTRIES)
        return dest

    def gc_quarantine(self, keep: int = QUARANTINE_MAX_ENTRIES) -> int:
        """Oldest-first sweep keeping the ``keep`` newest quarantined
        snapshots; returns how many were removed."""
        if keep < 0 or not self.quarantine_dir.exists():
            return 0
        entries = []
        for path in self.quarantine_dir.glob("*.snap*"):
            try:
                entries.append((path.stat().st_mtime, path.name, path))
            except FileNotFoundError:
                continue
        entries.sort()
        removed = 0
        for _mtime, _name, path in entries[:max(0, len(entries) - keep)]:
            try:
                path.unlink()
                removed += 1
            except FileNotFoundError:
                continue
        return removed

    def _load_one(self, path: Path) -> "Snapshot | None":
        """Read one generation; quarantine and report None if corrupt."""
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            return None
        except OSError:
            self.quarantine(path)
            return None
        try:
            return self._decode(blob)
        except ValidationError:
            self.quarantine(path)
            return None

    def load_latest(self, key: str) -> "Snapshot | None":
        """Newest readable generation for a key, or None (cold start).

        A corrupt latest generation falls back to the previous one;
        corrupt files are quarantined, never consumed and never fatal.
        """
        from repro.obs.telemetry import get_telemetry

        started = time.perf_counter()
        snapshot = self._load_one(self._latest_path(key))
        if snapshot is None:
            snapshot = self._load_one(self._prev_path(key))
        if snapshot is not None:
            tel = get_telemetry()
            if tel.enabled:
                elapsed = time.perf_counter() - started
                tel.inc("checkpoint_restores_total")
                tel.observe("checkpoint_restore_seconds", elapsed)
                if tel.full:
                    tel.emit("checkpoint", action="restore", key=key,
                             iteration=snapshot.iteration, seconds=elapsed)
        return snapshot

    def latest_iteration(self, key: str) -> "int | None":
        """Resume point of the newest readable snapshot, or None."""
        snapshot = self.load_latest(key)
        return None if snapshot is None else snapshot.iteration

    def discard(self, key: str) -> int:
        """Drop every generation for a key (run completed); returns the
        number of files removed."""
        removed = 0
        for path in (self._latest_path(key), self._prev_path(key)):
            try:
                path.unlink()
                removed += 1
            except FileNotFoundError:
                pass
        return removed

    def n_quarantined(self) -> int:
        if not self.quarantine_dir.exists():
            return 0
        return sum(1 for _ in self.quarantine_dir.glob("*.snap*"))


# ----------------------------------------------------------------------
# Config + session
# ----------------------------------------------------------------------
@dataclass
class CheckpointConfig:
    """One run's checkpointing contract, carried in engine options."""

    store: SnapshotStore
    policy: CheckpointPolicy
    #: Store key identifying this run (corpus cells use their cache key).
    key: str
    #: Attempt to resume from the newest snapshot at run start.
    resume: bool = True
    #: Remove the run's snapshots once it completes normally.
    discard_on_success: bool = True


def capture_runtime(program: "VertexProgram", ctx: "Context",
                    monitor: "HealthMonitor") -> dict[str, Any]:
    """Common snapshot state shared by every engine: the program's
    entire instance state (vertex/edge arrays and scalars), the
    context's RNG / params / work ledger, and the health monitor's
    watchdog history."""
    return {
        "program_state": dict(vars(program)),
        "rng": ctx.rng,
        "params": ctx.params,
        "extra_work": ctx._extra_work,
        "monitor": monitor.state_dict(),
    }


def restore_runtime(payload: dict[str, Any], program: "VertexProgram",
                    ctx: "Context", monitor: "HealthMonitor") -> None:
    """Inverse of :func:`capture_runtime`: rebind the unpickled state
    onto the fresh program/context/monitor (``program.init`` is *not*
    called on a resumed run)."""
    program.__dict__.clear()
    program.__dict__.update(payload["program_state"])
    ctx.rng = payload["rng"]
    ctx.params = payload["params"]
    ctx._extra_work = payload["extra_work"]
    monitor.restore_state(payload["monitor"])


class CheckpointSession:
    """Engine-side checkpoint driver for one run.

    Construct via :meth:`begin` (None config → None session, so engine
    code reads ``if session is not None``). The session owns the policy
    clock, the save/kill-hook sequence, and completion cleanup.
    """

    def __init__(self, config: CheckpointConfig) -> None:
        self.config = config
        self.saved = 0
        self._last_saved_iteration: "int | None" = None
        self._last_saved_at = time.monotonic()

    @classmethod
    def begin(cls, config: "CheckpointConfig | None") \
            -> "CheckpointSession | None":
        return None if config is None else cls(config)

    # ------------------------------------------------------------------
    def load(self, *, engine: str, program: "VertexProgram",
             problem) -> "Snapshot | None":
        """Resume snapshot for this run, identity-checked.

        A snapshot recorded by a different engine/algorithm/graph under
        the same key means the key discipline was violated — that is a
        caller bug, reported loudly rather than silently mixing state.
        """
        if not self.config.resume:
            return None
        snapshot = self.config.store.load_latest(self.config.key)
        if snapshot is None:
            return None
        graph = problem.graph
        if (snapshot.engine != engine
                or snapshot.algorithm != program.name
                or snapshot.n_vertices != graph.n_vertices
                or snapshot.n_edges != graph.n_edges):
            raise ValidationError(
                f"snapshot {self.config.key!r} was recorded by "
                f"{snapshot.algorithm}@{snapshot.engine} on a "
                f"{snapshot.n_vertices}-vertex graph; refusing to resume "
                f"{program.name}@{engine} on {graph.n_vertices} vertices")
        self._last_saved_iteration = snapshot.iteration
        return snapshot

    def due(self, completed_iteration: int) -> bool:
        """Is a snapshot due after ``completed_iteration`` finished?"""
        policy = self.config.policy
        if policy.every_iterations is not None:
            done_since = (completed_iteration + 1
                          if self._last_saved_iteration is None
                          else completed_iteration + 1
                          - self._last_saved_iteration)
            if done_since >= policy.every_iterations:
                return True
        if policy.every_seconds is not None:
            if (time.monotonic() - self._last_saved_at
                    >= policy.every_seconds):
                return True
        return False

    def save(self, snapshot: Snapshot) -> None:
        """Publish a snapshot, then run the kill hooks (so an injected
        death always lands *after* a commit — the chaos harness is then
        guaranteed forward progress across kill/resume cycles)."""
        self.config.store.save(self.config.key, snapshot)
        self.saved += 1
        self._last_saved_iteration = snapshot.iteration
        self._last_saved_at = time.monotonic()
        maybe_kill(self.config.key, snapshot.iteration - 1)

    def save_state(self, *, engine: str, program: "VertexProgram",
                   problem, ctx: "Context", monitor: "HealthMonitor",
                   trace: "RunTrace", next_iteration: int,
                   elapsed_s: float, extra: dict[str, Any]) -> None:
        """Capture and publish one full-run snapshot: the common
        program/context/monitor runtime plus the engine's own loop state
        (``extra``), resumable at ``next_iteration``."""
        payload = capture_runtime(program, ctx, monitor)
        payload.update(extra)
        graph = problem.graph
        self.save(Snapshot(
            engine=engine,
            algorithm=program.name,
            n_vertices=graph.n_vertices,
            n_edges=graph.n_edges,
            iteration=next_iteration,
            trace=trace,
            payload=payload,
            elapsed_s=elapsed_s,
        ))

    def complete(self, trace: "RunTrace") -> None:
        """End of run: annotate the trace; drop snapshots only on a
        healthy completion (a ``degrade`` stop keeps its final flush on
        disk for post-mortem inspection and possible re-runs)."""
        trace.meta["checkpoints_written"] = self.saved
        if self.config.discard_on_success and not trace.degraded:
            self.config.store.discard(self.config.key)


# ----------------------------------------------------------------------
# Kill hooks (resilience testing)
# ----------------------------------------------------------------------
def maybe_kill(run_key: str, iteration: int) -> None:
    """Honor the kill-injection env hooks after a snapshot publish."""
    spec = os.environ.get(INJECT_KILL_ENV)
    if spec and ":" in spec:
        substring, _, at = spec.rpartition(":")
        if substring and substring in run_key and iteration == int(at):
            raise SimulatedKillError(
                f"injected kill for {run_key} after the iteration-"
                f"{iteration} snapshot")
    chaos = os.environ.get(CHAOS_KILL_ENV)
    if chaos and ":" in chaos:
        token_dir, _, prob = chaos.rpartition(":")
        if token_dir and np.random.default_rng(
                os.getpid() * 1_000_003 + iteration).random() < float(prob):
            if _consume_kill_token(Path(token_dir)):
                os.kill(os.getpid(), signal.SIGKILL)  # pragma: no cover


def _consume_kill_token(token_dir: Path) -> bool:
    """Atomically claim one kill token; False once the budget is spent.

    Tokens are plain files; ``os.unlink`` is atomic, so concurrent
    workers can never double-spend one — the chaos harness therefore
    performs a bounded number of kills and always terminates.
    """
    try:
        tokens = sorted(token_dir.iterdir())
    except FileNotFoundError:
        return False
    for token in tokens:
        try:
            token.unlink()
        except FileNotFoundError:
            continue
        return True
    return False


#: Public alias: the same atomic token-claim primitive bounds the
#: scheduler's stall-injection hook (repro.experiments.worksite).
claim_token = _consume_kill_token
