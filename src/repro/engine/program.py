"""The vertex-program abstraction executed by the GAS engine.

A :class:`VertexProgram` holds the per-vertex (and per-edge) state of
one algorithm run and implements the three GAS phases as *array-level*
callbacks: the engine hands it arrays of vertices/edges, never single
scalars. This one API serves both engine modes — the vectorized engine
passes the whole frontier; the reference engine passes length-1 slices —
so every algorithm is written exactly once.

Phase contracts (synchronous semantics)
---------------------------------------
``gather_edge``
    Must be a pure function of *pre-iteration* vertex/edge state. Called
    before any ``apply`` of the same iteration.
``apply``
    May mutate only the state of the vertices in ``vids`` (plus global
    aggregates). Must not read other frontier vertices' *new* values —
    the engine does not order applies.
``scatter_edges``
    Runs after every apply of the iteration; sees post-apply state. May
    mutate per-edge state. Returns the boolean signal mask that defines
    both the MSG counter and the next frontier.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, ClassVar

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.engine.context import Context


class Direction(enum.Enum):
    """Which adjacency a phase traverses.

    For undirected graphs the stored adjacency is symmetric, so ``IN``
    and ``OUT`` are the same neighbor set and ``BOTH`` is rejected (it
    would double-count every edge).
    """

    IN = "in"
    OUT = "out"
    BOTH = "both"
    NONE = "none"


class VertexProgram(ABC):
    """Base class for all fourteen algorithms (and user-defined ones).

    Subclasses set the class attributes to describe their shape and
    implement the phase callbacks. State arrays are allocated in
    :meth:`init` and live on the instance; a program instance is
    single-use (one run).
    """

    #: Registry/display name, e.g. ``"pagerank"``.
    name: ClassVar[str] = "abstract"
    #: Application domain the program consumes (see generators).
    domain: ClassVar[str] = "ga"

    #: Adjacency traversed by Gather; ``NONE`` skips the phase.
    gather_dir: ClassVar[Direction] = Direction.IN
    #: Adjacency traversed by Scatter; ``NONE`` skips the phase.
    scatter_dir: ClassVar[Direction] = Direction.OUT
    #: Reduction combining per-edge gather contributions:
    #: ``sum``/``min``/``max`` on floats or ``or`` (bitwise) on integers.
    gather_op: ClassVar[str] = "sum"
    #: Columns of each gather contribution row (1 for scalar gathers).
    gather_width: ClassVar[int] = 1
    #: dtype of gather contributions (float64 for numeric reductions,
    #: an unsigned integer type for bitwise ``or``).
    gather_dtype: ClassVar[type] = np.float64

    #: Unit-work-model coefficients: cost of one apply call is
    #: ``flops_per_vertex * |vids| + extra work reported via ctx.add_work``.
    apply_flops_per_vertex: ClassVar[float] = 1.0

    # -- fused-kernel declarations (DESIGN §13) ------------------------
    #: Declares that ``gather_edge`` is a pure reduction shape over a
    #: per-vertex source vector, enabling the engines' fused dense CSR
    #: kernels. ``None`` (default) keeps the callback path. Recognized
    #: shapes (``u`` = neighbor, ``e`` = edge id, ``w`` = edge weight):
    #: ``"vertex"`` → ``source[u]``; ``"vertex_plus_edge"`` →
    #: ``source[u] + w[e]``; ``"vertex_times_edge"`` → ``w[e] *
    #: source[u]``. Declaring a shape obliges ``gather_source`` to
    #: return values bit-identical to what ``gather_edge`` computes.
    gather_shape: ClassVar["str | None"] = None
    #: Set when ``gather_source`` values are integer-valued floats whose
    #: per-vertex sums stay exact in float64 (e.g. 0/1 counts): the
    #: fused gather may then sum in any order (scipy SpMV) without
    #: changing bits.
    gather_source_exact: ClassVar[bool] = False
    #: ``"center"`` declares that ``scatter_edges`` depends only on the
    #: center vertex (the mask is constant across one vertex's edges),
    #: enabling the fused scatter via ``scatter_vertex_mask``. ``None``
    #: (default) keeps the callback path.
    scatter_shape: ClassVar["str | None"] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @abstractmethod
    def init(self, ctx: "Context") -> np.ndarray:
        """Allocate state and return the initial frontier (vertex ids).

        Returned array need not be sorted or unique; the engine
        canonicalizes it.
        """

    def state_bytes(self, ctx: "Context") -> int:
        """Estimated bytes of per-vertex/per-edge state this program will
        allocate. Used for the engine's memory budget check (the
        mechanism behind the paper's failed AD runs)."""
        return 0

    # ------------------------------------------------------------------
    # GAS phases
    # ------------------------------------------------------------------
    def gather_edge(
        self,
        ctx: "Context",
        nbr: np.ndarray,
        center: np.ndarray,
        eid: np.ndarray,
    ) -> np.ndarray:
        """Per-edge contribution to the gather accumulator.

        Parameters
        ----------
        nbr:
            The neighbor endpoint of each gathered edge (the vertex
            whose data is being *read* — one edge read each).
        center:
            The gathering vertex of each edge (repeated per edge).
        eid:
            Logical edge ids (indexes edge weights/state).

        Returns
        -------
        np.ndarray
            Shape ``(len(nbr),)`` if ``gather_width == 1`` else
            ``(len(nbr), gather_width)``.
        """
        raise NotImplementedError(
            f"{type(self).__name__} declares gather_dir={self.gather_dir} "
            "but does not implement gather_edge"
        )

    def gather_source(self, ctx: "Context") -> np.ndarray:
        """Per-vertex source vector of a declared ``gather_shape``.

        Returns a float64 array of shape ``(n_vertices,)`` such that
        indexing it by the neighbor array reproduces, bit for bit, the
        contributions ``gather_edge`` would return for the same slots
        (e.g. PageRank returns ``rank * inv_degree`` because
        ``(a*b)[u] == a[u]*b[u]`` in float64). Only called when
        ``gather_shape`` is declared.
        """
        raise NotImplementedError(
            f"{type(self).__name__} declares "
            f"gather_shape={self.gather_shape!r} but does not implement "
            "gather_source"
        )

    def scatter_vertex_mask(self, ctx: "Context",
                            vids: np.ndarray) -> np.ndarray:
        """Per-*vertex* signal mask of a declared ``"center"`` scatter.

        Returns a boolean array aligned with ``vids``; vertex ``v``
        signals along **all** of its scatter edges iff its entry is
        True — exactly the mask ``scatter_edges`` would repeat per
        edge. Only called when ``scatter_shape == "center"``.
        """
        raise NotImplementedError(
            f"{type(self).__name__} declares "
            f"scatter_shape={self.scatter_shape!r} but does not implement "
            "scatter_vertex_mask"
        )

    @abstractmethod
    def apply(self, ctx: "Context", vids: np.ndarray, acc: np.ndarray | None) -> None:
        """Update the state of vertices ``vids`` given gather results.

        ``acc`` is ``None`` when ``gather_dir == Direction.NONE``;
        otherwise rows align with ``vids`` and empty gather sets hold the
        reduction identity (``0``/``inf``/``-inf``).
        """

    def scatter_edges(
        self,
        ctx: "Context",
        center: np.ndarray,
        nbr: np.ndarray,
        eid: np.ndarray,
    ) -> np.ndarray:
        """Return the boolean mask of edges that deliver a signal.

        ``center`` is the scattering (just-applied) vertex of each
        candidate edge, ``nbr`` the potential recipient. Default: signal
        nothing (programs with ``scatter_dir == NONE`` never get called).
        """
        return np.zeros(center.shape[0], dtype=bool)

    # ------------------------------------------------------------------
    # Control hooks
    # ------------------------------------------------------------------
    def select_next_frontier(
        self, ctx: "Context", signaled: np.ndarray
    ) -> np.ndarray:
        """Map signaled vertices to the next frontier.

        Default: exactly the signaled set (paper Section 3.3: "Only
        vertices that receive messages can be active in the next
        iteration"). Always-active algorithms (AD, KM, Jacobi, DD, ...)
        override this to return all vertices.
        """
        return signaled

    def converged(self, ctx: "Context") -> bool:
        """Global convergence predicate checked after each iteration."""
        return False

    def on_iteration_end(self, ctx: "Context") -> None:
        """Hook after scatter — update global aggregates, phase counters."""

    def result(self, ctx: "Context") -> dict:
        """Algorithm output summary recorded into the run trace."""
        return {}
