"""Synchronous Gather-Apply-Scatter engine with behavior instrumentation.

This is the library's GraphLab-v2.2 stand-in (paper Section 3.1/3.3):
vertex-centric computation where only *active* vertices run, activation
travels as signals (messages) emitted during Scatter, and one complete
Gather → Apply → Scatter sweep over the active set is an *iteration*.

Two drive modes execute the same :class:`~repro.engine.program.VertexProgram`:

- ``vectorized`` — the whole frontier per phase, using CSR segment
  reductions (production mode);
- ``reference`` — one vertex at a time with phase barriers (oracle mode,
  used by the test suite to prove the vectorized path preserves
  synchronous semantics and produces identical counters).
"""

from repro.engine.async_engine import AsynchronousEngine, AsyncEngineOptions
from repro.engine.checkpoint import (
    CheckpointConfig,
    CheckpointPolicy,
    CheckpointSession,
    SimulatedKillError,
    Snapshot,
    SnapshotStore,
)
from repro.engine.context import Context
from repro.engine.edge_centric import EdgeCentricEngine, EdgeCentricOptions
from repro.engine.engine import EngineOptions, SynchronousEngine
from repro.engine.graph_centric import GraphCentricEngine, GraphCentricOptions
from repro.engine.health import (
    FAULT_KINDS,
    HEALTH_POLICIES,
    FaultPlan,
    HealthMonitor,
    HealthVerdict,
    build_monitor,
    mark_degraded,
    validate_health_options,
)
from repro.engine.instrumentation import Counters
from repro.engine.program import Direction, VertexProgram

__all__ = [
    "AsyncEngineOptions",
    "AsynchronousEngine",
    "CheckpointConfig",
    "CheckpointPolicy",
    "CheckpointSession",
    "EdgeCentricEngine",
    "EdgeCentricOptions",
    "SimulatedKillError",
    "Snapshot",
    "SnapshotStore",
    "FAULT_KINDS",
    "FaultPlan",
    "GraphCentricEngine",
    "GraphCentricOptions",
    "HEALTH_POLICIES",
    "HealthMonitor",
    "HealthVerdict",
    "Context",
    "Counters",
    "Direction",
    "EngineOptions",
    "SynchronousEngine",
    "VertexProgram",
    "build_monitor",
    "mark_degraded",
    "validate_health_options",
]
