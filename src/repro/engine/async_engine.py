"""Asynchronous GAS engine (GraphLab v2.2's other execution mode).

The paper runs everything in the *synchronous* mode (Section 3.1); the
platform it models also offers asynchronous execution, where each
vertex runs gather→apply→scatter immediately when scheduled and its
updates are visible to later vertices at once. This module provides
that mode as a sequential simulation with the same
:class:`~repro.engine.program.VertexProgram` API and the same behavior
counters, so users can study how execution policy (not just algorithm
and graph) shifts behavior — a dimension the paper leaves to future
work.

Semantics
---------
- A **scheduler** holds pending vertices: ``fifo`` (GraphLab's sweep
  scheduler) or ``priority`` (GraphLab's priority scheduler, ordered by
  the program's :meth:`~AsyncCapable.signal_priority`).
- One **step** = pop a vertex, gather over its gather edges (reading
  *current* neighbor state), apply, scatter; signaled neighbors are
  enqueued (duplicate signals collapse, as in GraphLab).
- The run ends when the scheduler drains or ``max_steps`` is hit.
- For trace compatibility, steps are grouped into *rounds* of up to
  ``|V|`` steps; each round becomes one
  :class:`~repro.behavior.trace.IterationRecord` whose ``active`` is
  the number of steps in the round. Async traces are therefore
  comparable to synchronous ones in volume (updates, edge reads,
  messages) but not in the notion of a barrier.

Only *signal-driven* programs are meaningful here: always-active
programs (AD, KM, ...) rely on the synchronous engine's
``select_next_frontier`` override and would never drain. Programs
opt in by setting ``supports_async = True``.
"""

from __future__ import annotations

import heapq
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro._util.errors import ResourceLimitError, ValidationError
from repro._util.segments import REDUCE_IDENTITY, segmented_reduce
from repro.engine.kernels import reduce_block
from repro._util.timing import Deadline
from repro.behavior.trace import IterationRecord, RunTrace
from repro.engine.checkpoint import (
    CheckpointConfig,
    CheckpointSession,
    restore_runtime,
)
from repro.engine.context import Context
from repro.engine.health import (
    build_monitor,
    mark_degraded,
    validate_health_options,
)
from repro.engine.program import Direction, VertexProgram
from repro.generators.problem import ProblemInstance
from repro.obs.telemetry import engine_observer

SCHEDULERS = ("fifo", "priority")


@dataclass
class AsyncEngineOptions:
    """Configuration of an asynchronous run."""

    #: ``fifo`` or ``priority`` (needs the program's signal_priority).
    scheduler: str = "fifo"
    #: Hard cap on update steps (``rounds × |V|`` equivalent).
    max_steps: int = 10_000_000
    #: WORK model, as in the synchronous engine.
    work_model: str = "unit"
    unit_scale: float = 1e-9
    memory_budget_bytes: int = 4 << 30
    params: dict[str, Any] = field(default_factory=dict)
    seed: int = 0
    #: Run-health knobs (see :class:`repro.engine.engine.EngineOptions`);
    #: checks run at *round* granularity here.
    health_policy: str = "strict"
    health_check_every: int = 1
    health_window: int = 20
    inject_fault: "str | None" = None
    #: Cooperative wall-clock budget, checked once per round.
    wall_clock_budget_s: "float | None" = None
    #: Round-level checkpointing contract; None disables snapshots.
    checkpoint: "CheckpointConfig | None" = None
    #: Per-step fused adjacency access: CSR slice views plus a direct
    #: single-block ``reduceat`` instead of index materialization and
    #: the general segment kernel (bit-identical; DESIGN §13).
    fused_kernels: bool = True

    def __post_init__(self) -> None:
        if self.scheduler not in SCHEDULERS:
            raise ValidationError(
                f"scheduler must be one of {SCHEDULERS}, got "
                f"{self.scheduler!r}"
            )
        if self.work_model not in ("unit", "measured"):
            raise ValidationError("work_model must be 'unit' or 'measured'")
        if self.max_steps < 1:
            raise ValidationError("max_steps must be >= 1")
        validate_health_options(self.health_policy, self.health_check_every,
                                self.health_window)
        if (self.wall_clock_budget_s is not None
                and self.wall_clock_budget_s <= 0):
            raise ValidationError(
                "wall_clock_budget_s must be positive or None")


class _FifoScheduler:
    """FIFO with signal collapsing."""

    def __init__(self, n: int) -> None:
        self.queue: deque[int] = deque()
        self.queued = np.zeros(n, dtype=bool)

    def push(self, v: int, priority: float = 1.0) -> None:
        if not self.queued[v]:
            self.queued[v] = True
            self.queue.append(v)

    def pop(self) -> int:
        v = self.queue.popleft()
        self.queued[v] = False
        return v

    def __len__(self) -> int:
        return len(self.queue)


class _PriorityScheduler:
    """Max-priority heap with signal collapsing (highest priority first;
    re-signaling with a higher priority promotes the entry)."""

    def __init__(self, n: int) -> None:
        self.heap: list[tuple[float, int, int]] = []
        self.best = np.full(n, -np.inf)
        self.queued = np.zeros(n, dtype=bool)
        self._tie = 0

    def push(self, v: int, priority: float = 1.0) -> None:
        if self.queued[v] and priority <= self.best[v]:
            return
        self.best[v] = max(self.best[v], priority)
        self.queued[v] = True
        self._tie += 1
        heapq.heappush(self.heap, (-priority, self._tie, v))

    def pop(self) -> int:
        while self.heap:
            _negp, _tie, v = heapq.heappop(self.heap)
            if self.queued[v]:
                self.queued[v] = False
                self.best[v] = -np.inf
                return v
        raise IndexError("pop from empty scheduler")

    def __len__(self) -> int:
        return int(self.queued.sum())


class AsynchronousEngine:
    """Sequential simulation of asynchronous GAS execution."""

    def __init__(self, options: AsyncEngineOptions | None = None) -> None:
        self.options = options or AsyncEngineOptions()

    def run(self, program: VertexProgram, problem: ProblemInstance) -> RunTrace:
        """Run ``program`` asynchronously until the scheduler drains."""
        if not getattr(program, "supports_async", False):
            raise ValidationError(
                f"{program.name} does not declare supports_async; only "
                "signal-driven programs are meaningful asynchronously"
            )
        opts = self.options
        ctx = Context(problem, params=opts.params, seed=opts.seed)
        graph = problem.graph

        required = graph.memory_bytes() + program.state_bytes(ctx)
        if required > opts.memory_budget_bytes:
            raise ResourceLimitError(
                f"{program.name} exceeds the async memory budget",
                required_bytes=required,
                budget_bytes=opts.memory_budget_bytes,
            )

        started = time.perf_counter()
        initial = np.unique(np.asarray(program.init(ctx), dtype=np.int64))
        ctx.drain_extra_work()
        scheduler = (_FifoScheduler(graph.n_vertices)
                     if opts.scheduler == "fifo"
                     else _PriorityScheduler(graph.n_vertices))
        for v in initial.tolist():
            scheduler.push(v, self._priority(program, ctx, v))

        trace = RunTrace(
            algorithm=program.name,
            graph_params=dict(problem.params),
            domain=problem.domain,
            n_vertices=graph.n_vertices,
            n_edges=graph.n_edges,
            work_model=opts.work_model,
            engine="asynchronous",
        )
        monitor = build_monitor(opts)
        deadline = Deadline(opts.wall_clock_budget_s)

        g_ptr, g_idx, g_eid = self._adjacency(graph, program.gather_dir)
        s_ptr, s_idx, s_eid = self._adjacency(graph, program.scatter_dir)

        steps = 0
        round_steps = 0
        round_reads = 0
        round_msgs = 0
        round_work = 0.0
        round_index = 0

        # Checkpoints live at round boundaries — the scheduler object is
        # snapshotted wholesale, so a resumed run pops the exact same
        # vertex sequence the uninterrupted run would have.
        session = CheckpointSession.begin(opts.checkpoint)
        elapsed_before = 0.0
        if session is not None:
            snapshot = session.load(engine="asynchronous", program=program,
                                    problem=problem)
            if snapshot is not None:
                restore_runtime(snapshot.payload, program, ctx, monitor)
                scheduler = snapshot.payload["scheduler"]
                steps = snapshot.payload["steps"]
                round_index = snapshot.iteration
                trace = snapshot.trace
                elapsed_before = snapshot.elapsed_s
                trace.meta["resumed_from_iteration"] = round_index

        def flush(next_round: int) -> None:
            session.save_state(
                engine="asynchronous", program=program, problem=problem,
                ctx=ctx, monitor=monitor, trace=trace,
                next_iteration=next_round,
                elapsed_s=elapsed_before + time.perf_counter() - started,
                extra={"scheduler": scheduler, "steps": steps})

        # Async phases interleave per step, so telemetry samples at
        # *round* granularity: one timing observation per sampled round.
        obs = engine_observer("asynchronous", program.name)
        round_sampled = obs is not None and obs.sampled(round_index)
        round_mark = time.perf_counter() if round_sampled else 0.0

        stop_reason = "max-steps"
        while len(scheduler):
            if steps >= opts.max_steps:
                break
            if steps % 256 == 0:
                deadline.check()
            v = scheduler.pop()
            reads, msgs, work = self._step(
                program, ctx, v, g_ptr, g_idx, g_eid, s_ptr, s_idx, s_eid,
                scheduler)
            steps += 1
            round_steps += 1
            round_reads += reads
            round_msgs += msgs
            round_work += work
            if round_steps == graph.n_vertices or not len(scheduler):
                ctx.iteration = round_index
                program.on_iteration_end(ctx)
                monitor.inject_state_fault(program, round_index)
                round_reads = monitor.inject_edge_reads(
                    round_reads, round_index)
                trace.iterations.append(IterationRecord(
                    iteration=round_index,
                    active=round_steps,
                    updates=round_steps,
                    edge_reads=round_reads,
                    messages=round_msgs,
                    work=round_work,
                ))
                if obs is not None:
                    obs.iteration(
                        iteration=round_index, active=round_steps,
                        updates=round_steps, edge_reads=round_reads,
                        messages=round_msgs,
                        seconds=(time.perf_counter() - round_mark
                                 if round_sampled else None),
                        phases=({"round": time.perf_counter() - round_mark}
                                if round_sampled else None))
                # No frontier in the async signature: a round is an
                # arbitrary |V|-step slice of the scheduler churn, so
                # its vertex set varies even when the computation makes
                # no progress. The state arrays capture all progress.
                verdict = monitor.observe(
                    program,
                    iteration=round_index,
                    frontier=None,
                    work=round_work,
                )
                round_index += 1
                round_steps = round_reads = round_msgs = 0
                round_work = 0.0
                round_sampled = obs is not None and obs.sampled(round_index)
                round_mark = time.perf_counter() if round_sampled else 0.0
                if verdict is not None:
                    mark_degraded(trace, verdict)
                    if session is not None:
                        flush(round_index)
                    break
                if program.converged(ctx):
                    stop_reason = "converged"
                    trace.converged = True
                    break
                if session is not None and session.due(round_index - 1):
                    flush(round_index)
        else:
            stop_reason = "scheduler-drained"
            trace.converged = True

        if round_steps:  # partial round interrupted by max_steps
            trace.iterations.append(IterationRecord(
                iteration=round_index, active=round_steps,
                updates=round_steps, edge_reads=round_reads,
                messages=round_msgs, work=round_work,
            ))

        if not trace.degraded:
            trace.stop_reason = stop_reason
        trace.result = program.result(ctx)
        trace.wall_time_s = elapsed_before + time.perf_counter() - started
        if session is not None:
            session.complete(trace)
        return trace

    # ------------------------------------------------------------------
    def _step(self, program, ctx, v, g_ptr, g_idx, g_eid,
              s_ptr, s_idx, s_eid, scheduler) -> tuple[int, int, float]:
        vid = np.asarray([v], dtype=np.int64)

        fused = self.options.fused_kernels
        reads = 0
        acc = None
        if g_ptr is not None:
            s, e = int(g_ptr[v]), int(g_ptr[v + 1])
            if e > s:
                if fused:
                    # One vertex's slots are contiguous: slice views
                    # replace index materialization + fancy indexing.
                    nbr = g_idx[s:e]
                    eids = g_eid[s:e]
                else:
                    slots = np.arange(s, e)
                    nbr = g_idx[slots]
                    eids = g_eid[slots]
                center = np.full(nbr.size, v, dtype=np.int64)
                contributions = np.asarray(
                    program.gather_edge(ctx, nbr, center, eids),
                    dtype=program.gather_dtype)
                if fused:
                    acc = reduce_block(contributions, program.gather_op)
                else:
                    acc = segmented_reduce(contributions,
                                           np.asarray([nbr.size]),
                                           program.gather_op)
                reads = nbr.size
            else:
                width = program.gather_width
                shape = (1,) if width == 1 else (1, width)
                acc = np.full(shape, REDUCE_IDENTITY[program.gather_op],
                              dtype=program.gather_dtype)

        t0 = time.perf_counter()
        program.apply(ctx, vid, acc)
        elapsed = time.perf_counter() - t0
        extra = ctx.drain_extra_work()
        if self.options.work_model == "measured":
            work = elapsed
        else:
            work = (program.apply_flops_per_vertex + extra) \
                * self.options.unit_scale

        msgs = 0
        if s_ptr is not None:
            s, e = int(s_ptr[v]), int(s_ptr[v + 1])
            if e > s:
                if fused:
                    nbr = s_idx[s:e]
                    eids = s_eid[s:e]
                else:
                    slots = np.arange(s, e)
                    nbr = s_idx[slots]
                    eids = s_eid[slots]
                center = np.full(nbr.size, v, dtype=np.int64)
                mask = np.asarray(
                    program.scatter_edges(ctx, center, nbr, eids),
                    dtype=bool)
                msgs = int(mask.sum())
                for u in nbr[mask].tolist():
                    scheduler.push(u, self._priority(program, ctx, u))
        return reads, msgs, work

    @staticmethod
    def _priority(program, ctx, v) -> float:
        hook = getattr(program, "signal_priority", None)
        if hook is None:
            return 1.0
        return float(hook(ctx, v))

    @staticmethod
    def _adjacency(graph, direction: Direction):
        if direction is Direction.NONE:
            return None, None, None
        if direction is Direction.IN:
            return graph.in_ptr, graph.in_src, graph.in_eid
        if direction is Direction.OUT:
            return graph.out_ptr, graph.out_dst, graph.out_eid
        raise ValidationError(f"async engine cannot traverse {direction}")
