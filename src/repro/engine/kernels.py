"""Fused CSR kernels behind the engine interface (DESIGN §13).

The GAS callbacks (``gather_edge``/``scatter_edges``) are flexible but
interpreter-bound: every iteration re-slices the frontier's adjacency,
materializes ``(nbr, center, eid)`` triples, and funnels them through a
Python call. For the *recognized reduction shapes* declared by a
:class:`~repro.engine.program.VertexProgram` (``gather_shape`` /
``scatter_shape``), the same reduction can instead run as one dense CSR
segment kernel over the whole graph — a pull-mode sparse-matrix-vector
product — which is what the GAP benchmark's direction-optimizing
traversal does.

Bit-identity contract
---------------------
Fused kernels must be *bit-identical* to the callback path: same
accumulator bits, same frontier sequences, same counters. That rules
scipy out of the general gather — its SpMV sums rows in a different
order than ``np.ufunc.reduceat`` and float addition is not associative
— so the dense gather always reduces with ``reduceat`` over cached
full-graph offsets (the exact per-slot order the push path uses).
scipy is used only where every summation order yields the same float64
bits:

* the scatter "who got signaled" SpMV (an indicator vector of 0/1), and
* gathers whose source is declared integer-valued
  (``gather_source_exact``), e.g. K-Core's alive counts.

Counters are *model* counters, not physical traversal counts: a pull
iteration reports the same ``edge_reads``/``messages`` the push
iteration would, because the unit work model describes the logical GAS
work, never the engine's traversal strategy (DESIGN §12). Set
``REPRO_VERIFY_FUSED=1`` to cross-check every fused phase against the
callback path at runtime (tests use this; it is far too slow for
production).
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING

import numpy as np

from repro._util.errors import ValidationError
from repro._util.segments import REDUCE_IDENTITY
from repro.engine.program import Direction

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.context import Context
    from repro.engine.program import VertexProgram
    from repro.graph.csr import Graph

#: Gather shapes the dense kernels recognize; the per-slot contribution
#: for a slot with neighbor ``u`` and edge id ``e`` is:
#: ``vertex`` → ``source[u]``; ``vertex_plus_edge`` → ``source[u] +
#: weight[e]``; ``vertex_times_edge`` → ``weight[e] * source[u]``.
GATHER_SHAPES = ("vertex", "vertex_plus_edge", "vertex_times_edge")

#: Reductions with a fused dense implementation (``or`` stays on the
#: callback path: no program declares a fusable ``or`` gather).
FUSABLE_OPS = ("sum", "min", "max")

#: Environment switch: cross-check fused kernels against the callback
#: path every call and raise on the first mismatch.
VERIFY_ENV = "REPRO_VERIFY_FUSED"

_UFUNC = {"sum": np.add, "min": np.minimum, "max": np.maximum,
          "or": np.bitwise_or}

#: reduceat over ``[0]`` reduces one whole block *sequentially* — the
#: same order ``segmented_reduce`` uses for a single segment (ufunc
#: ``reduce`` would use pairwise summation and change bits).
_BLOCK_START = np.zeros(1, dtype=np.intp)


def reduce_block(values: np.ndarray, op: str) -> np.ndarray:
    """Reduce one contiguous contribution block, bit-identical to
    ``segmented_reduce(values, [len(values)], op)`` without its
    per-call validation — the async engine's per-step hot path.

    ``values`` must be non-empty; the result keeps shape ``(1,)`` (or
    ``(1, width)``) and follows ``segmented_reduce``'s dtype rule
    (floats widen to float64).
    """
    values = np.asarray(values)
    out = _UFUNC[op].reduceat(values, _BLOCK_START, axis=0)
    if values.dtype.kind == "f":
        dtype = np.result_type(values.dtype, np.float64)
        out = out.astype(dtype, copy=False)
    return out


class _DenseSide:
    """Cached full-graph segment-reduce machinery for one adjacency.

    ``ptr[:-1]`` restricted to non-empty rows is a valid ``reduceat``
    index vector: an empty row spans no slots, so the next non-empty
    row starts exactly where the previous one ended. Reducing those
    offsets therefore yields, row for row, the same sequential
    reduction ``segmented_reduce`` performs — precomputed once per
    graph instead of re-deriving cumsums every iteration.
    """

    __slots__ = ("ptr", "idx", "eid", "counts", "nonempty",
                 "all_nonempty", "offsets", "n")

    def __init__(self, ptr: np.ndarray, idx: np.ndarray,
                 eid: np.ndarray) -> None:
        self.ptr = ptr
        self.idx = idx
        self.eid = eid
        self.n = ptr.size - 1
        self.counts = np.diff(ptr)
        self.nonempty = self.counts > 0
        self.all_nonempty = bool(self.nonempty.all())
        offsets = ptr[:-1]
        if not self.all_nonempty:
            offsets = offsets[self.nonempty]
        self.offsets = offsets

    def reduce(self, values: np.ndarray, op: str) -> np.ndarray:
        """Per-row reduction of per-slot ``values`` over every vertex;
        empty rows hold the reduction identity."""
        if self.idx.size == 0:
            return np.full(self.n, REDUCE_IDENTITY[op], dtype=np.float64)
        reduced = _UFUNC[op].reduceat(values, self.offsets)
        if self.all_nonempty:
            return reduced
        out = np.full(self.n, REDUCE_IDENTITY[op], dtype=values.dtype)
        out[self.nonempty] = reduced
        return out


def _side(graph: "Graph", direction: Direction) -> _DenseSide:
    if direction is Direction.IN:
        return _DenseSide(graph.in_ptr, graph.in_src, graph.in_eid)
    return _DenseSide(graph.out_ptr, graph.out_dst, graph.out_eid)


class FusedKernels:
    """Per-run dense kernel dispatch for one (program, graph) pair.

    Build with :meth:`build`, which returns ``None`` when neither phase
    of the program is fusable; engines then keep the callback path with
    zero overhead. Holds no program *state* — only graph-derived caches
    and the program reference — so checkpoint/resume rebuilds it
    losslessly.
    """

    def __init__(self, program: "VertexProgram", graph: "Graph", *,
                 can_gather: bool, can_scatter: bool) -> None:
        self.program = program
        self.graph = graph
        self.can_gather = can_gather
        self.can_scatter = can_scatter
        self._verify = bool(os.environ.get(VERIFY_ENV, ""))

        if can_gather:
            self.gather_side = _side(graph, program.gather_dir)
            self._g_weights = None
            if program.gather_shape in ("vertex_plus_edge",
                                        "vertex_times_edge"):
                self._g_weights = graph.edge_weight[self.gather_side.eid]
            # Exact integer-valued sums may reorder: scipy SpMV allowed.
            self._g_mat = None
            if (program.gather_op == "sum"
                    and program.gather_shape == "vertex"
                    and getattr(program, "gather_source_exact", False)):
                orientation = ("in" if program.gather_dir is Direction.IN
                               else "out")
                self._g_mat = graph.ones_adjacency_csr(orientation)

        if can_scatter:
            self.scatter_counts = np.diff(
                graph.out_ptr if program.scatter_dir is Direction.OUT
                else graph.in_ptr)
            # "Who got signaled" traverses the *reverse* adjacency.
            self._rev_orientation = (
                "in" if program.scatter_dir is Direction.OUT else "out")

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, program: "VertexProgram",
              graph: "Graph") -> "FusedKernels | None":
        """Recognize the program's fusable phases, or return ``None``."""
        shape = getattr(program, "gather_shape", None)
        can_gather = (
            shape in GATHER_SHAPES
            and program.gather_dir in (Direction.IN, Direction.OUT)
            and program.gather_op in FUSABLE_OPS
            and program.gather_width == 1
            and program.gather_dtype is np.float64
        )
        if can_gather and shape != "vertex" and graph.edge_weight is None:
            can_gather = False  # *_edge shapes need per-edge weights
        can_scatter = (
            getattr(program, "scatter_shape", None) == "center"
            and program.scatter_dir in (Direction.IN, Direction.OUT)
        )
        if not can_gather and not can_scatter:
            return None
        return cls(program, graph, can_gather=can_gather,
                   can_scatter=can_scatter)

    # ------------------------------------------------------------------
    # Gather
    # ------------------------------------------------------------------
    def _slot_values(self, x: np.ndarray) -> np.ndarray:
        """Per-slot contribution for every adjacency slot of the gather
        side, in slot order — the fused equivalent of ``gather_edge``."""
        values = x[self.gather_side.idx]
        shape = self.program.gather_shape
        if shape == "vertex_plus_edge":
            values = values + self._g_weights
        elif shape == "vertex_times_edge":
            values = self._g_weights * values
        return values

    def gather_dense(self, ctx: "Context") -> np.ndarray:
        """Accumulator rows for *every* vertex (pull-mode full gather)."""
        program = self.program
        x = np.asarray(program.gather_source(ctx), dtype=np.float64)
        if x.shape != (self.graph.n_vertices,):
            raise ValidationError(
                f"{program.name}.gather_source returned shape {x.shape}, "
                f"expected ({self.graph.n_vertices},)")
        if self._g_mat is not None:
            acc = self._g_mat.dot(x)
        else:
            acc = self.gather_side.reduce(self._slot_values(x), program.gather_op)
        if self._verify:
            self._verify_gather(ctx, acc)
        return acc

    def gather_frontier(self, ctx: "Context",
                        frontier: np.ndarray) -> tuple[np.ndarray, int]:
        """Pull-mode gather restricted to the frontier's rows.

        Returns ``(acc, edge_reads)`` where ``edge_reads`` is the
        *model* count — the frontier's gather-degree sum, exactly what
        the push path reports.
        """
        acc = self.gather_dense(ctx)
        n_reads = int(self.gather_side.counts[frontier].sum())
        if frontier.size != acc.shape[0]:
            acc = acc[frontier]
        return acc, n_reads

    def stream_dense(self, ctx: "Context",
                     live_slot: np.ndarray) -> np.ndarray:
        """Edge-centric fused stream: reduce every vertex's row over
        contributions of *live-source* slots, dead slots pinned to the
        reduction identity (min/max absorb it exactly; for ``sum`` the
        interleaved ``0.0`` terms leave the float64 bits unchanged)."""
        program = self.program
        x = np.asarray(program.gather_source(ctx), dtype=np.float64)
        values = self._slot_values(x)
        values = np.where(live_slot, values,
                          REDUCE_IDENTITY[program.gather_op])
        acc = self.gather_side.reduce(values, program.gather_op)
        return acc

    # ------------------------------------------------------------------
    # Scatter
    # ------------------------------------------------------------------
    def scatter_frontier(self, ctx: "Context",
                         frontier: np.ndarray) -> tuple[np.ndarray, int]:
        """Center-shape scatter without materializing the edge mask.

        ``messages`` is the masked frontier's scatter-degree sum and
        ``signaled`` the sorted unique recipients — both bit-identical
        to the push path (the indicator SpMV sums 0/1 values, which
        every summation order reproduces exactly in float64).
        """
        program = self.program
        m = np.asarray(program.scatter_vertex_mask(ctx, frontier),
                       dtype=bool)
        if m.shape != (frontier.size,):
            raise ValidationError(
                f"{program.name}.scatter_vertex_mask returned shape "
                f"{m.shape}, expected ({frontier.size},)")
        senders = frontier[m]
        n_msgs = int(self.scatter_counts[senders].sum())
        if senders.size == 0:
            signaled = np.empty(0, dtype=np.int64)
        else:
            indicator = np.zeros(self.graph.n_vertices, dtype=np.float64)
            indicator[senders] = 1.0
            hits = self.graph.spmv_ones(self._rev_orientation, indicator)
            signaled = np.flatnonzero(hits > 0.0).astype(np.int64,
                                                         copy=False)
        if self._verify:
            self._verify_scatter(ctx, frontier, signaled, n_msgs)
        return signaled, n_msgs

    # ------------------------------------------------------------------
    # Verification (REPRO_VERIFY_FUSED=1)
    # ------------------------------------------------------------------
    def _verify_gather(self, ctx: "Context", acc: np.ndarray) -> None:
        from repro._util.segments import segmented_reduce

        side = self.gather_side
        program = self.program
        center = np.repeat(np.arange(side.n, dtype=np.int64), side.counts)
        ref_vals = np.asarray(
            program.gather_edge(ctx, side.idx, center, side.eid),
            dtype=program.gather_dtype)
        ref = segmented_reduce(ref_vals, side.counts, program.gather_op)
        if not np.array_equal(acc, ref):
            raise AssertionError(
                f"fused gather diverged from gather_edge for "
                f"{program.name} at iteration {ctx.iteration}")

    def _verify_scatter(self, ctx: "Context", frontier: np.ndarray,
                        signaled: np.ndarray, n_msgs: int) -> None:
        from repro._util.segments import concat_ranges

        graph = self.graph
        program = self.program
        if program.scatter_dir is Direction.OUT:
            ptr, idx, eid = graph.out_ptr, graph.out_dst, graph.out_eid
        else:
            ptr, idx, eid = graph.in_ptr, graph.in_src, graph.in_eid
        starts, ends = ptr[frontier], ptr[frontier + 1]
        slots = concat_ranges(starts, ends)
        nbr = idx[slots]
        center = np.repeat(frontier, ends - starts)
        mask = np.asarray(
            program.scatter_edges(ctx, center, nbr, eid[slots]), dtype=bool)
        ref_signaled = np.unique(nbr[mask])
        if n_msgs != int(mask.sum()) or not np.array_equal(
                signaled, ref_signaled):
            raise AssertionError(
                f"fused scatter diverged from scatter_edges for "
                f"{program.name} at iteration {ctx.iteration}")
