"""Run-health monitoring: numeric guards, convergence watchdogs, and
engine-level fault injection.

The engines execute iterative numerical programs that can fail in ways
no exception ever reports: a Jacobi sweep on an ill-conditioned system
silently fills its state with NaN, an SGD run with a hot learning rate
diverges, a solver whose tolerance is below machine precision repeats
the same frontier until ``max_iterations``. Each of those still
produces a complete-looking :class:`~repro.behavior.trace.RunTrace`
whose counters then poison ensemble search — the untrustworthy-corpus
failure mode this subsystem exists to prevent.

Every engine owns one :class:`HealthMonitor` per run and feeds it one
observation per iteration (round / superstep). The monitor implements:

**Numeric guard**
    Scans the program's floating-point state arrays for NaN and the
    iteration's WORK counter for NaN/Inf. Inf in *state* is deliberately
    legal — SSSP distances and reduce identities use it — but NaN never
    is.

**Convergence watchdogs**
    Each check records a signature of (frontier, full program state).
    For a deterministic program an exact recurrence is proof of
    pathology: minimal period 1 over the window is a **stall** (the run
    can only repeat itself), period ≥ 2 is an **oscillation**. A third
    watchdog tracks the magnitude of state; growth past
    ``divergence_factor`` × its observed floor is a **divergence**.

**Policy**
    ``strict`` raises :class:`~repro._util.errors.NumericError` /
    :class:`~repro._util.errors.NonConvergenceError`; ``degrade``
    returns a :class:`HealthVerdict` so the engine can stop early and
    flag the partial trace ``degraded``; ``off`` disables everything.

**Fault injection**
    A :class:`FaultPlan` (``"nan@3"``, ``"diverge@2"``, ``"counter@1"``)
    corrupts a live run at a chosen iteration so tests can exercise the
    full detection → classification → corpus-accounting path without a
    genuinely pathological program.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro._util.errors import (
    NonConvergenceError,
    NumericError,
    ValidationError,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.behavior.trace import RunTrace
    from repro.engine.program import VertexProgram

#: Legal health policies, in decreasing strictness.
HEALTH_POLICIES: tuple[str, ...] = ("strict", "degrade", "off")

#: Watchdog conditions a verdict can carry (plus ``"numeric"``).
HEALTH_CONDITIONS: tuple[str, ...] = (
    "numeric", "stall", "oscillation", "divergence",
)

#: Fault kinds understood by :class:`FaultPlan`.
FAULT_KINDS: tuple[str, ...] = ("nan", "diverge", "counter")

#: Scale applied to state arrays per iteration by the ``diverge`` fault.
_DIVERGE_SCALE = 32.0


def validate_health_options(policy: str, check_every: int,
                            window: int) -> None:
    """Shared validation for the health knobs on every engine options
    dataclass."""
    if policy not in HEALTH_POLICIES:
        raise ValidationError(
            f"health_policy must be one of {HEALTH_POLICIES}, "
            f"got {policy!r}"
        )
    if check_every < 1:
        raise ValidationError("health_check_every must be >= 1")
    if window < 4:
        raise ValidationError("health_window must be >= 4")


def build_monitor(options) -> "HealthMonitor":
    """Construct a run's monitor from any engine options dataclass
    (which all carry the same ``health_*``/``inject_fault`` fields)."""
    return HealthMonitor(
        policy=options.health_policy,
        check_every=options.health_check_every,
        window=options.health_window,
        fault=options.inject_fault,
    )


def mark_degraded(trace: "RunTrace", verdict: "HealthVerdict") -> None:
    """Flag a partial trace stopped early under the ``degrade`` policy."""
    trace.degraded = True
    trace.converged = False
    trace.health = {**verdict.to_dict(), "policy": "degrade"}
    trace.stop_reason = f"degraded-{verdict.condition}"


@dataclass(frozen=True)
class HealthVerdict:
    """One detected pathology: what, where, and why."""

    #: ``"numeric"``, ``"stall"``, ``"oscillation"``, or ``"divergence"``.
    condition: str
    #: Iteration (round / superstep) index at detection time.
    iteration: int
    #: Human-readable evidence.
    detail: str

    def to_dict(self) -> dict:
        return {"condition": self.condition, "iteration": self.iteration,
                "detail": self.detail}


@dataclass(frozen=True)
class FaultPlan:
    """Engine-level fault injection: ``<kind>@<iteration>``.

    ``nan``
        Writes NaN into the program's first float state array after the
        apply phase of the given iteration — a corrupted apply output.
    ``diverge``
        Multiplies every float state array by a constant factor each
        iteration from the given one on, forcing magnitude growth the
        divergence watchdog must catch.
    ``counter``
        Negates the iteration's EREAD counter, producing a structurally
        invalid trace that only
        :func:`~repro.behavior.validate.validate_trace` can catch
        (the in-engine guard deliberately leaves counter-sign checks to
        the validator).
    """

    kind: str
    iteration: int

    @classmethod
    def parse(cls, spec: "str | FaultPlan | None") -> "FaultPlan | None":
        """Parse ``"nan@3"``-style specs; None/empty disables injection."""
        if spec is None or isinstance(spec, FaultPlan):
            return spec or None
        text = str(spec).strip()
        if not text:
            return None
        kind, sep, iteration = text.partition("@")
        if not sep or kind not in FAULT_KINDS:
            raise ValidationError(
                f"fault spec must be '<kind>@<iteration>' with kind in "
                f"{FAULT_KINDS}, got {spec!r}"
            )
        try:
            at = int(iteration)
        except ValueError as exc:
            raise ValidationError(
                f"fault iteration must be an integer, got {iteration!r}"
            ) from exc
        if at < 0:
            raise ValidationError("fault iteration must be >= 0")
        return cls(kind=kind, iteration=at)

    # ------------------------------------------------------------------
    def corrupt_state(self, program: "VertexProgram", iteration: int) -> None:
        """Apply the ``nan``/``diverge`` fault to live program state."""
        if self.kind == "nan" and iteration == self.iteration:
            for arr in _float_state(program).values():
                if arr.size:
                    arr.flat[0] = np.nan
                    return
        elif self.kind == "diverge" and iteration >= self.iteration:
            for arr in _float_state(program).values():
                np.multiply(arr, _DIVERGE_SCALE, out=arr,
                            where=np.isfinite(arr))

    def corrupt_edge_reads(self, edge_reads: int, iteration: int) -> int:
        """Apply the ``counter`` fault to an iteration's EREAD value."""
        if self.kind == "counter" and iteration == self.iteration:
            return -edge_reads - 1
        return edge_reads


# ----------------------------------------------------------------------
# State discovery
# ----------------------------------------------------------------------
def _state_arrays(program: "VertexProgram") -> dict[str, np.ndarray]:
    """All ndarray attributes of a program instance, by attribute name.

    Programs keep their per-vertex/per-edge state as plain instance
    attributes (``self.rank``, ``self.dist``, ``self.factors``, ...),
    so discovery needs no per-program cooperation. Integer and boolean
    arrays participate in recurrence signatures; only floating arrays
    feed the NaN guard and the divergence norm.
    """
    return {name: value for name, value in vars(program).items()
            if isinstance(value, np.ndarray)}


def _float_state(program: "VertexProgram") -> dict[str, np.ndarray]:
    return {name: arr for name, arr in _state_arrays(program).items()
            if np.issubdtype(arr.dtype, np.floating)}


def _finite_norm(arrays: Iterable[np.ndarray]) -> "float | None":
    """Max |finite value| across arrays; None if no finite float data."""
    norm = None
    for arr in arrays:
        if not arr.size:
            continue
        finite = arr[np.isfinite(arr)]
        if finite.size:
            peak = float(np.abs(finite).max())
            norm = peak if norm is None else max(norm, peak)
    return norm


def _signature(frontier: "np.ndarray | None",
               arrays: dict[str, np.ndarray]) -> bytes:
    """Digest of (frontier, every state array) — exact recurrence of
    this signature means the computation revisited an earlier global
    state."""
    digest = hashlib.blake2b(digest_size=16)
    if frontier is not None:
        f = np.ascontiguousarray(np.asarray(frontier, dtype=np.int64))
        digest.update(f.tobytes())
    for name in sorted(arrays):
        arr = arrays[name]
        digest.update(name.encode("utf-8"))
        digest.update(np.ascontiguousarray(arr).tobytes())
    return digest.digest()


def _minimal_period(history: "deque[bytes]") -> "int | None":
    """Smallest p ≥ 1 such that the whole history is p-periodic, or
    None if aperiodic over the window."""
    sigs = list(history)
    n = len(sigs)
    for period in range(1, n // 2 + 1):
        if all(sigs[i] == sigs[i - period] for i in range(period, n)):
            return period
    return None


class HealthMonitor:
    """Per-run health state machine fed by the engine's iteration loop.

    Parameters
    ----------
    policy:
        ``"strict"`` (raise), ``"degrade"`` (return a verdict so the
        engine stops early and flags the trace), or ``"off"``.
    check_every:
        Cadence, in iterations, of guard + watchdog evaluation. The
        recurrence window counts *checks*, not iterations.
    window:
        Number of recent signatures kept; a stall/oscillation fires only
        once the window is full, so small runs are never flagged.
    divergence_factor:
        Growth of the state-magnitude norm, relative to its observed
        floor (with an absolute floor of 1.0), treated as divergence.
    fault:
        Optional :class:`FaultPlan` (or its string spec) injected into
        the run.
    """

    def __init__(
        self,
        *,
        policy: str = "strict",
        check_every: int = 1,
        window: int = 20,
        divergence_factor: float = 1e6,
        fault: "str | FaultPlan | None" = None,
    ) -> None:
        validate_health_options(policy, check_every, window)
        if divergence_factor <= 1.0:
            raise ValidationError("divergence_factor must be > 1")
        self.policy = policy
        self.check_every = int(check_every)
        self.window = int(window)
        self.divergence_factor = float(divergence_factor)
        self.fault = FaultPlan.parse(fault)
        self._signatures: deque[bytes] = deque(maxlen=self.window)
        self._norm_floor: "float | None" = None
        self.verdict: "HealthVerdict | None" = None

    @property
    def enabled(self) -> bool:
        return self.policy != "off"

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Mutable watchdog state for a run snapshot — the signature
        window and the divergence norm floor must survive a resume or
        the watchdogs would restart blind (a stall spanning the kill
        point would need a whole fresh window to fire again)."""
        return {
            "signatures": list(self._signatures),
            "norm_floor": self._norm_floor,
            "verdict": self.verdict,
        }

    def restore_state(self, state: dict) -> None:
        """Inverse of :meth:`state_dict`; configuration (policy, window,
        cadence) stays whatever this monitor was built with."""
        self._signatures = deque(state["signatures"], maxlen=self.window)
        self._norm_floor = state["norm_floor"]
        self.verdict = state["verdict"]

    # ------------------------------------------------------------------
    # Fault injection entry points (called by engines even when policy
    # is "off": injected faults must corrupt runs regardless, so tests
    # can prove the *absence* of guards lets them through).
    # ------------------------------------------------------------------
    def inject_state_fault(self, program: "VertexProgram",
                           iteration: int) -> None:
        if self.fault is not None:
            self.fault.corrupt_state(program, iteration)

    def inject_edge_reads(self, edge_reads: int, iteration: int) -> int:
        if self.fault is None:
            return edge_reads
        return self.fault.corrupt_edge_reads(edge_reads, iteration)

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def observe(
        self,
        program: "VertexProgram",
        *,
        iteration: int,
        frontier: "np.ndarray | None",
        work: float = 0.0,
    ) -> "HealthVerdict | None":
        """Feed one completed iteration; returns a verdict under the
        ``degrade`` policy, raises under ``strict``, and remembers the
        verdict either way (``self.verdict``).

        Engines must stop iterating once a verdict is returned.
        """
        if not self.enabled or self.verdict is not None:
            return self.verdict
        if iteration % self.check_every:
            return None
        verdict = self._check(program, iteration=iteration,
                              frontier=frontier, work=work)
        if verdict is None:
            return None
        self.verdict = verdict
        # Watchdog trips are telemetry events regardless of policy —
        # recorded before the strict path raises.
        from repro.obs.telemetry import get_telemetry

        tel = get_telemetry()
        if tel.enabled:
            tel.inc("health_trips_total", condition=verdict.condition,
                    policy=self.policy, algorithm=program.name)
            tel.emit("health", condition=verdict.condition,
                     policy=self.policy, algorithm=program.name,
                     iteration=verdict.iteration, detail=verdict.detail)
        if self.policy == "strict":
            if verdict.condition == "numeric":
                raise NumericError(
                    f"numeric guard tripped at iteration "
                    f"{verdict.iteration}: {verdict.detail}",
                    iteration=verdict.iteration, detail=verdict.detail,
                )
            raise NonConvergenceError(
                f"convergence watchdog detected {verdict.condition} at "
                f"iteration {verdict.iteration}: {verdict.detail}",
                condition=verdict.condition,
                iteration=verdict.iteration, detail=verdict.detail,
            )
        return verdict

    # ------------------------------------------------------------------
    def _check(self, program, *, iteration, frontier, work):
        state = _state_arrays(program)
        floats = {name: arr for name, arr in state.items()
                  if np.issubdtype(arr.dtype, np.floating)}

        # ---- Numeric guard: NaN state, non-finite work counter.
        if not np.isfinite(work):
            return HealthVerdict("numeric", iteration,
                                 f"WORK counter is {work!r}")
        for name, arr in floats.items():
            if arr.size and np.isnan(arr).any():
                count = int(np.isnan(arr).sum())
                return HealthVerdict(
                    "numeric", iteration,
                    f"state array {name!r} holds {count} NaN value(s)")

        # ---- Divergence: state magnitude past its floor × factor.
        norm = _finite_norm(floats.values())
        if norm is not None:
            if self._norm_floor is None:
                self._norm_floor = norm
            self._norm_floor = min(self._norm_floor, norm)
            threshold = self.divergence_factor * max(self._norm_floor, 1.0)
            if norm > threshold:
                return HealthVerdict(
                    "divergence", iteration,
                    f"state magnitude {norm:.3g} exceeds "
                    f"{self.divergence_factor:g}× its floor "
                    f"{self._norm_floor:.3g}")

        # ---- Stall / oscillation: exact (frontier, state) recurrence.
        self._signatures.append(_signature(frontier, state))
        if len(self._signatures) == self.window:
            period = _minimal_period(self._signatures)
            if period == 1:
                return HealthVerdict(
                    "stall", iteration,
                    f"frontier and state unchanged over the last "
                    f"{self.window} checks")
            if period is not None and period <= self.window // 2:
                return HealthVerdict(
                    "oscillation", iteration,
                    f"frontier and state repeat with period {period} "
                    f"over the last {self.window} checks")
        return None
